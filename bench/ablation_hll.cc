// Ablation A5: cardinality sketches (HyperLogLog union) vs VOS under
// deletions.
//
// HLL + inclusion–exclusion is a tempting similarity estimator — one small
// sketch per user, union by register-max — but HLL registers store maxima
// and cannot forget, so deletions leave the union estimate at its
// high-water mark. This bench runs HLL-union and VOS through the §V
// protocol twice: once on an insertion-only variant of the dataset and
// once on the fully dynamic variant, holding memory equal. Expected shape:
// comparable on insertion-only; HLL collapses on the dynamic stream while
// VOS is unaffected. Flags: --dataset (toy) --k (100) --csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "harness/experiment.h"

namespace vos::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags =
      ParseFlagsOrDie(argc, argv, "[--dataset=toy] [--k=100] [--csv=]");
  PrintBanner("Ablation A5: HLL-union vs VOS with and without deletions",
              flags);

  auto spec = stream::GetDatasetSpec(flags.GetString("dataset", "toy"));
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  harness::ExperimentConfig config;
  config.top_users = static_cast<size_t>(flags.GetInt("top-users", 100));
  config.max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 4000));
  config.num_checkpoints = 1;
  config.factory.base_k = static_cast<uint32_t>(flags.GetInt("k", 100));
  config.factory.seed = 99;

  const std::vector<std::string> header = {"stream", "method", "AAPE",
                                           "ARMSE"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  for (const bool dynamic : {false, true}) {
    stream::DatasetSpec variant = *spec;
    variant.dynamics.model = dynamic ? stream::DeletionModel::kMassive
                                     : stream::DeletionModel::kNone;
    variant.name += dynamic ? "/dynamic" : "/insert-only";
    const stream::GraphStream stream = stream::GenerateDataset(variant);
    auto result = harness::RunAccuracyExperiment(
        stream, {"HLL-union", "VOS"}, config);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    for (const harness::MethodCheckpoint& mc : result->Final().methods) {
      std::vector<std::string> row = {
          variant.name, mc.method,
          TablePrinter::FormatDouble(mc.metrics.aape, 4),
          TablePrinter::FormatDouble(mc.metrics.armse, 4)};
      table.AddRow(row);
      rows.push_back(std::move(row));
    }
  }
  EmitTable(flags, table, header, rows);
  std::printf(
      "\nexpected shape: HLL-union is competitive without deletions but "
      "collapses on the dynamic stream (registers cannot forget); VOS is "
      "unaffected.\n");
  return 0;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) { return vos::bench::Run(argc, argv); }

// Ablation A3: OPH densification variants on fully dynamic streams.
//
// Related work ([5] rotation, [6] random-direction, [7] optimal) fills
// OPH's empty bins at query time so the plain matches/k estimator applies.
// Densification was designed for *static* sets; under deletions the copied
// values inherit the deletion bias of their source bins. This bench runs
// all variants (plus plain OPH and VOS for reference) through the §V
// protocol and reports final AAPE/ARMSE.
// Flags: --dataset (toy) --k (100) --csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "harness/experiment.h"

namespace vos::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags =
      ParseFlagsOrDie(argc, argv, "[--dataset=toy] [--k=100] [--csv=]");
  PrintBanner("Ablation A3: OPH densification under fully dynamic streams",
              flags);
  const stream::GraphStream stream = DatasetOrDie(flags, "toy");

  harness::ExperimentConfig config;
  config.top_users = static_cast<size_t>(flags.GetInt("top-users", 100));
  config.max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 4000));
  config.num_checkpoints = 1;
  config.factory.base_k = static_cast<uint32_t>(flags.GetInt("k", 100));
  config.factory.seed = 99;

  const std::vector<std::string> methods = {"OPH", "OPH+rot", "OPH+rand",
                                            "OPH+opt", "VOS"};
  auto result = harness::RunAccuracyExperiment(stream, methods, config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::string> header = {"method", "AAPE", "ARMSE"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  for (const harness::MethodCheckpoint& mc : result->Final().methods) {
    std::vector<std::string> row = {
        mc.method, TablePrinter::FormatDouble(mc.metrics.aape, 4),
        TablePrinter::FormatDouble(mc.metrics.armse, 4)};
    table.AddRow(row);
    rows.push_back(std::move(row));
  }
  EmitTable(flags, table, header, rows);
  std::printf(
      "\nexpected shape: densification does not repair the deletion bias "
      "(it copies biased registers); VOS stays ahead.\n");
  return 0;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) { return vos::bench::Run(argc, argv); }

// Ablation A4: Monte-Carlo validation of the §IV moment formulas.
//
// For a grid of (nΔ, β), simulate the paper's noise model directly — true
// odd-sketch XOR bits with P(1) = (1−(1−2/k)^{nΔ})/2, each user's
// reconstructed bit independently flipped with probability β — and compare
// the sample mean and standard deviation of ŝ against the paper's
// closed-form E[ŝ] and Var[ŝ].
//
// Note on Var[ŝ]: the paper's printed variance has a k²β leading term; the
// bit-level derivation (and this simulation) gives a kβ-order term, so the
// printed formula overstates the β contribution by ~k. The bench prints
// both so the discrepancy is visible. Flags: --k (6400) --trials (2000).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/vos_estimator.h"

namespace vos::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags =
      ParseFlagsOrDie(argc, argv, "[--k=6400] [--trials=2000] [--csv=]");
  PrintBanner("Ablation A4: estimator moments vs Monte-Carlo", flags);

  const auto k = static_cast<uint32_t>(flags.GetInt("k", 6400));
  const auto trials = static_cast<size_t>(flags.GetInt("trials", 2000));
  const double n_items = 2000;  // n_u = n_v; s = n_items − nΔ/2

  const std::vector<std::string> header = {
      "n_delta", "beta",       "true_s",  "mc_mean",
      "paper_E", "mc_sd",      "paper_sd"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;

  core::VosEstimatorOptions options;
  options.clamp_to_feasible = false;  // moments of the raw estimator
  core::VosEstimator estimator(k, options);
  Rng rng(2024);

  for (double n_delta : {100.0, 400.0, 1600.0}) {
    for (double beta : {0.0, 0.05, 0.15}) {
      const double s = n_items - n_delta / 2;
      const double p_true = 0.5 * (1 - std::pow(1 - 2.0 / k, n_delta));
      double sum = 0, sum_sq = 0;
      for (size_t trial = 0; trial < trials; ++trial) {
        size_t ones = 0;
        for (uint32_t j = 0; j < k; ++j) {
          bool bit = rng.NextBernoulli(p_true);
          if (beta > 0 && rng.NextBernoulli(beta)) bit = !bit;
          if (beta > 0 && rng.NextBernoulli(beta)) bit = !bit;
          ones += bit;
        }
        const double alpha = static_cast<double>(ones) / k;
        const double est =
            estimator.EstimateCommonItems(n_items, n_items, alpha, beta);
        sum += est;
        sum_sq += est * est;
      }
      const double mc_mean = sum / trials;
      const double mc_var = sum_sq / trials - mc_mean * mc_mean;
      std::vector<std::string> row = {
          TablePrinter::FormatDouble(n_delta, 4),
          TablePrinter::FormatDouble(beta, 3),
          TablePrinter::FormatDouble(s, 5),
          TablePrinter::FormatDouble(mc_mean, 5),
          TablePrinter::FormatDouble(
              estimator.ExpectedCommonEstimate(s, n_delta, beta), 5),
          TablePrinter::FormatDouble(std::sqrt(std::max(0.0, mc_var)), 4),
          TablePrinter::FormatDouble(
              std::sqrt(std::max(
                  0.0, estimator.VarianceCommonEstimate(n_delta, beta))),
              4)};
      table.AddRow(row);
      rows.push_back(std::move(row));
    }
  }
  EmitTable(flags, table, header, rows);
  std::printf(
      "\nexpected shape: mc_mean tracks true_s closely (small bias); mc_sd "
      "grows with n_delta and beta. paper_sd overstates the beta term by "
      "~sqrt(k) (see header comment).\n");
  return 0;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) { return vos::bench::Run(argc, argv); }

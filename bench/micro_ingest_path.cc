// Micro-benchmark (M4) for the sharded ingestion engine and incremental
// index maintenance.
//
// Phase "ingest": update throughput (updates/s) of the serial
// `for (e : stream) Update(e)` loop vs. ShardedVosSketch at growing shard
// counts, both synchronous (routing inline, no workers — isolates the
// per-shard locality win: each shard's array is m/S bits) and
// asynchronous (shard-partitioned sub-batches drained by per-shard
// workers — the near-linear-scaling configuration on multi-core hosts;
// on a single hardware thread the async numbers degenerate to the sync
// ones plus queue overhead, which the banner calls out). A second
// multi-producer pass ("sharded-async-p" rows) holds the shard count at
// --shards and scales producer lanes 1 → --producers: each lane routes
// its own per-user sub-stream through its own (producer, shard) queues,
// so async throughput scales with the producer count instead of
// flat-lining on a single producer's routing pass. Shard state is
// verified identical to synchronous routing of the same per-producer
// streams before any timing is reported.
//
// Phase "routing": producer-side routing bandwidth per kernel dispatch
// level (common/kernels.h) — ShardRouter::Tag over the full element
// stream, the pure hash+reduce kernel every sharded pipeline runs before
// any queueing. Each level's tags are verified identical to the scalar
// table's before timing; the speedup column divides by the scalar level,
// so this row is the dispatch tier's ingest-side acceptance signal.
//
// Phase "checkpoint": ShardedVosSketch::Checkpoint/Restore wall time and
// bandwidth at --shards (the PR 6 durability path: atomic CRC-checked v3
// container). Every restored sketch is verified bit-identical to the
// checkpointed one before its timing counts; the "speedup" column carries
// the on-disk bytes / in-memory bytes ratio (MemoryBits / 8) so the
// serialization overhead is visible next to the timings.
//
// Phase "index": SimilarityIndex::Rebuild (full re-extraction) vs.
// RefreshDirty (dirty users + array-word delta only) at dirty fractions
// {1%, 10%, 50%} of the candidate set. Every RefreshDirty result is
// VOS_CHECKed bit-identical to a full Rebuild on the same sketch state —
// rows, row order and β — before its timing counts. Expected: ≥5× at
// ≤10% dirty.
//
// Run: ./build/micro_ingest_path [--users=100000] [--edges_per_user=20]
//      [--k=6400] [--m=33554432] [--shards=4] [--producers=4]
//      [--batch=16384] [--candidates=1000] [--repeats=3]
//      [--dispatch=auto|scalar|neon|avx2|avx512] [--csv=out.csv]
//      [--json=out.json]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/kernels.h"
#include "common/numa.h"
#include "common/timer.h"
#include "stream/shard_router.h"
#include "core/sharded_vos_sketch.h"
#include "core/similarity_index.h"
#include "core/vos_sketch.h"

namespace vos::bench {
namespace {

using core::QueryOptions;
using core::ShardedVosConfig;
using core::ShardedVosSketch;
using core::SimilarityIndex;
using core::VosConfig;
using core::VosSketch;
using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

/// Heavy-tailed synthetic stream: element t belongs to a hash-scattered
/// user (so consecutive updates do not share a user) and ~10% of
/// elements delete the item inserted by an earlier element of the same
/// user — exercising the fully dynamic path without infeasible deletes.
std::vector<Element> BuildStream(UserId users, size_t edges_per_user,
                                 uint64_t seed) {
  const size_t total = static_cast<size_t>(users) * edges_per_user;
  std::vector<Element> elements;
  elements.reserve(total + total / 10);
  for (size_t t = 0; t < total; ++t) {
    const UserId user = static_cast<UserId>(
        hash::ReduceToRange(hash::Hash64(t, seed), users));
    const ItemId item = static_cast<ItemId>(t);
    elements.push_back({user, item, Action::kInsert});
    if (t % 10 == 9) {
      // Delete this element's own item later-ish: defer by pushing now —
      // the pair (insert at t, delete right after) keeps the stream
      // feasible for every prefix and every user-partitioned sub-stream.
      elements.push_back({user, item, Action::kDelete});
    }
  }
  return elements;
}

/// Best-of-`repeats` wall time of `fn` in seconds.
template <typename Fn>
double BestSeconds(int repeats, const Fn& fn) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// All shard arrays and cardinality counters equal?
void CheckShardsIdentical(const ShardedVosSketch& a,
                          const ShardedVosSketch& b) {
  VOS_CHECK(a.num_shards() == b.num_shards());
  for (uint32_t s = 0; s < a.num_shards(); ++s) {
    VOS_CHECK(a.shard(s).array() == b.shard(s).array())
        << "shard " << s << " arrays diverge between pipelines";
  }
  for (UserId u = 0; u < a.num_users(); ++u) {
    VOS_CHECK(a.Cardinality(u) == b.Cardinality(u))
        << "cardinalities diverge at user " << u;
  }
}

/// Bit-identity of two index snapshots: rows, order, β.
void CheckIndexesIdentical(const SimilarityIndex& a,
                           const SimilarityIndex& b) {
  VOS_CHECK(a.candidate_count() == b.candidate_count());
  VOS_CHECK(a.snapshot_beta() == b.snapshot_beta());
  const core::DigestMatrix& ma = a.matrix();
  const core::DigestMatrix& mb = b.matrix();
  VOS_CHECK(ma.rows() == mb.rows() &&
            ma.words_per_row() == mb.words_per_row());
  for (size_t p = 0; p < ma.rows(); ++p) {
    VOS_CHECK(a.sorted_to_candidate(p) == b.sorted_to_candidate(p))
        << "row order diverges at sorted position " << p;
    VOS_CHECK(std::memcmp(ma.Row(p), mb.Row(p),
                          ma.words_per_row() * sizeof(uint64_t)) == 0)
        << "digest rows diverge at sorted position " << p;
  }
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) {
  using namespace vos;
  using namespace vos::bench;

  const Flags flags = ParseFlagsOrDie(
      argc, argv,
      "[--users=N] [--edges_per_user=N] [--k=N] [--m=N] [--shards=N] "
      "[--producers=N] [--batch=N] [--candidates=N] [--repeats=N] "
      "[--seed=N] [--pin_threads=0|1] "
      "[--dispatch=auto|scalar|neon|avx2|avx512] [--csv=path] "
      "[--json=path]");
  const auto users = static_cast<UserId>(flags.GetInt("users", 100000));
  const auto edges_per_user =
      static_cast<size_t>(flags.GetInt("edges_per_user", 20));
  const auto max_shards =
      static_cast<uint32_t>(flags.GetInt("shards", 4));
  const auto max_producers = std::max<unsigned>(
      1, static_cast<unsigned>(flags.GetInt("producers", 4)));
  const auto batch = static_cast<size_t>(flags.GetInt("batch", 16384));
  const auto num_candidates =
      static_cast<size_t>(flags.GetInt("candidates", 1000));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  // NUMA pinning of the shard workers: VOS_PIN / multi-node autodetect
  // unless forced. An identity column, not a metric — pinned and unpinned
  // rows never compare against each other.
  const bool pin_threads =
      flags.GetInt("pin_threads", numa::DefaultPinThreads() ? 1 : 0) != 0;
  const std::string pinned_tag = pin_threads ? "1" : "0";

  VosConfig config;
  config.k = static_cast<uint32_t>(flags.GetInt("k", 6400));
  config.m = static_cast<uint64_t>(flags.GetInt("m", int64_t{1} << 25));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // --dispatch forces a kernel level for the whole run; the default keeps
  // the CPUID probe's pick. Rows carry the tag in the "kernel" column —
  // "auto" for probe-picked runs so row keys stay machine-independent.
  const std::string dispatch = flags.GetString("dispatch", "auto");
  std::string kernel_tag = "auto";
  if (dispatch != "auto") {
    kernels::DispatchLevel forced;
    VOS_CHECK(kernels::ParseDispatchLevel(dispatch.c_str(), &forced))
        << "--dispatch must be auto|scalar|neon|avx2|avx512, got" << dispatch;
    VOS_CHECK(kernels::SetDispatchLevel(forced))
        << "dispatch level" << dispatch
        << "is not available on this build/CPU";
    kernel_tag = kernels::LevelName(forced);
  }

  PrintBanner("micro_ingest_path — sharded ingestion + incremental index",
              flags);
  std::printf("kernel dispatch: %s (requested %s)\n",
              kernels::Active().name, dispatch.c_str());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("NUMA: %zu node(s); worker pinning %s\n",
              numa::Detect().num_nodes(), pin_threads ? "ON" : "off");
  std::printf("hardware threads: %u%s\n", hw,
              hw < max_shards
                  ? "  (fewer than --shards: async scaling will be flat "
                    "on this host; run on a multi-core machine for the "
                    "shard-scaling measurement)"
                  : "");

  const std::vector<Element> elements =
      BuildStream(users, edges_per_user, config.seed);
  const double num_updates = static_cast<double>(elements.size());
  std::printf("stream: %zu elements over %u users | k=%u m=%llu\n\n",
              elements.size(), users, config.k,
              static_cast<unsigned long long>(config.m));

  const std::vector<std::string> header = {
      "phase",   "engine", "kernel",     "shards", "producers", "threads",
      "pinned",  "seconds", "throughput", "unit",  "speedup",   "efficiency"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  // The routing phase stamps rows with the dispatch level it forces;
  // every other row carries the run-wide tag. `efficiency` is numeric
  // only on the producer-scaling rows (throughput(P) / (P·throughput(1)),
  // per-lane efficiency); everywhere else it is the empty string, which
  // MaybeEmitJson emits as a non-numeric "" that bench_compare.py skips.
  auto emit_row = [&](const std::string& phase, const std::string& engine,
                      const std::string& kernel, uint32_t shards,
                      unsigned producers, unsigned threads, double seconds,
                      double throughput, const std::string& unit,
                      double speedup, const std::string& efficiency) {
    std::vector<std::string> row = {phase,
                                    engine,
                                    kernel,
                                    TablePrinter::FormatInt(shards),
                                    TablePrinter::FormatInt(producers),
                                    TablePrinter::FormatInt(threads),
                                    pinned_tag,
                                    TablePrinter::FormatDouble(seconds, 4),
                                    TablePrinter::FormatDouble(throughput, 4),
                                    unit,
                                    TablePrinter::FormatDouble(speedup, 3),
                                    efficiency};
    table.AddRow(row);
    rows.push_back(std::move(row));
  };
  auto emit = [&](const std::string& phase, const std::string& engine,
                  uint32_t shards, unsigned producers, unsigned threads,
                  double seconds, double throughput, const std::string& unit,
                  double speedup, const std::string& efficiency = "") {
    emit_row(phase, engine, kernel_tag, shards, producers, threads, seconds,
             throughput, unit, speedup, efficiency);
  };

  // -------------------------------------------------------------- ingest
  const double serial_seconds = BestSeconds(repeats, [&] {
    VosSketch sketch(config, users);
    for (const Element& e : elements) sketch.Update(e);
  });
  emit("ingest", "serial", 1, 1, 1, serial_seconds,
       num_updates / serial_seconds, "updates/s", 1.0);

  double async_1shard_seconds = 0.0;
  double async_max_shards_seconds = 0.0;
  for (uint32_t shards = 1; shards <= max_shards; shards *= 2) {
    ShardedVosConfig sharded;
    sharded.base = config;
    sharded.num_shards = shards;
    sharded.batch_size = batch;

    // Reference state: synchronous routing (single thread, inline).
    ShardedVosSketch reference(sharded, users);
    const double sync_seconds = BestSeconds(repeats, [&] {
      ShardedVosSketch sketch(sharded, users);
      for (size_t t = 0; t < elements.size(); t += batch) {
        sketch.UpdateBatch(elements.data() + t,
                           std::min(batch, elements.size() - t));
      }
    });
    for (size_t t = 0; t < elements.size(); t += batch) {
      reference.UpdateBatch(elements.data() + t,
                            std::min(batch, elements.size() - t));
    }
    emit("ingest", "sharded-sync", shards, 1, 1, sync_seconds,
         num_updates / sync_seconds, "updates/s",
         serial_seconds / sync_seconds);

    // Concurrent pipeline: one worker per shard, tagged shared batches.
    sharded.ingest_threads = shards;
    sharded.pin_numa_workers = pin_threads;
    double async_seconds = 0.0;
    for (int r = 0; r < repeats; ++r) {
      ShardedVosSketch sketch(sharded, users);
      WallTimer timer;
      for (size_t t = 0; t < elements.size(); t += batch) {
        sketch.UpdateBatch(elements.data() + t,
                           std::min(batch, elements.size() - t));
      }
      const Status flushed = sketch.Flush();
      const double elapsed = timer.ElapsedSeconds();
      VOS_CHECK(flushed.ok()) << "async ingest degraded:" << flushed.ToString();
      if (r == 0 || elapsed < async_seconds) async_seconds = elapsed;
      // The concurrent pipeline must land on exactly the synchronous
      // pipeline's state (per-shard order is preserved by construction).
      CheckShardsIdentical(sketch, reference);
    }
    if (shards == 1) async_1shard_seconds = async_seconds;
    async_max_shards_seconds = async_seconds;
    emit("ingest", "sharded-async", shards, 1, shards, async_seconds,
         num_updates / async_seconds, "updates/s",
         serial_seconds / async_seconds);
  }

  // -------------------------------------------------- ingest, multi-producer
  // Producer scaling at the full shard count: P lanes, each feeding its
  // own per-user sub-stream (user % P keeps every user's history — and
  // therefore feasibility — on one lane) through its own
  // (producer, shard) queues. The P=1 row is the single-producer async
  // baseline the acceptance target compares against.
  double async_1producer_seconds = 0.0;
  double async_max_producers_seconds = 0.0;
  unsigned producers_measured = 1;
  for (unsigned producers = 1; producers <= max_producers; producers *= 2) {
    std::vector<std::vector<Element>> lanes(producers);
    for (auto& lane : lanes) lane.reserve(elements.size() / producers + 1);
    for (const Element& e : elements) {
      lanes[e.user % producers].push_back(e);
    }

    ShardedVosConfig sharded;
    sharded.base = config;
    sharded.num_shards = max_shards;
    sharded.batch_size = batch;
    sharded.ingest_threads = max_shards;
    sharded.ingest_producers = producers;
    sharded.pin_numa_workers = pin_threads;

    // Reference: synchronous routing of the same per-producer streams
    // (the state every timed repeat must land on bit-for-bit).
    ShardedVosConfig sync_config = sharded;
    sync_config.ingest_threads = 0;
    ShardedVosSketch reference(sync_config, users);
    for (const std::vector<Element>& lane : lanes) {
      reference.UpdateBatch(lane.data(), lane.size());
    }

    double mp_seconds = 0.0;
    for (int r = 0; r < repeats; ++r) {
      ShardedVosSketch sketch(sharded, users);
      WallTimer timer;
      {
        std::vector<std::thread> producer_threads;
        producer_threads.reserve(producers);
        for (unsigned p = 0; p < producers; ++p) {
          producer_threads.emplace_back([&, p] {
            const std::vector<Element>& lane = lanes[p];
            for (size_t t = 0; t < lane.size(); t += batch) {
              sketch.UpdateBatch(lane.data() + t,
                                 std::min(batch, lane.size() - t), p);
            }
            const Status lane_flushed = sketch.FlushProducer(p);
            VOS_CHECK(lane_flushed.ok())
                << "producer" << p
                << "flush degraded:" << lane_flushed.ToString();
          });
        }
        for (std::thread& t : producer_threads) t.join();
      }
      const Status flushed = sketch.Flush();
      const double elapsed = timer.ElapsedSeconds();
      VOS_CHECK(flushed.ok())
          << "multi-producer ingest degraded:" << flushed.ToString();
      if (r == 0 || elapsed < mp_seconds) mp_seconds = elapsed;
      CheckShardsIdentical(sketch, reference);
    }
    if (producers == 1) async_1producer_seconds = mp_seconds;
    async_max_producers_seconds = mp_seconds;
    producers_measured = producers;
    // Per-lane efficiency: throughput(P) / (P * throughput(1)). Equal
    // seconds-per-stream means throughput(P) = P * throughput(1) and the
    // column reads 1.0; lanes serializing on each other drag it toward
    // 1/P. bench_compare.py flags drops in this column even when absolute
    // throughput noise hides the collapse.
    const double efficiency =
        async_1producer_seconds / (producers * mp_seconds);
    emit("ingest", "sharded-async-p", max_shards, producers,
         max_shards + producers, mp_seconds, num_updates / mp_seconds,
         "updates/s", serial_seconds / mp_seconds,
         TablePrinter::FormatDouble(efficiency, 4));
  }

  // ------------------------------------------------------------- routing
  // Routing bandwidth per kernel dispatch level: ShardRouter::Tag over
  // the full element stream (one Mix64 + one range-reduction per
  // element), swept enough times to be timeable. Tags verified identical
  // to the scalar table's before timing; speedup divides by scalar.
  {
    const kernels::DispatchLevel restore_level = kernels::ActiveLevel();
    const stream::ShardRouter router(max_shards, config.seed);
    const size_t route_sweeps =
        std::max<size_t>(1, 2'000'000 / std::max<size_t>(1, elements.size()));
    std::vector<uint16_t> ref_tags(elements.size());
    VOS_CHECK(kernels::SetDispatchLevel(kernels::DispatchLevel::kScalar));
    router.Tag(elements.data(), elements.size(), ref_tags.data());
    std::vector<uint16_t> tags(elements.size());
    double route_scalar_seconds = 0.0;
    size_t levels_verified = 0;
    for (const kernels::DispatchLevel level : kernels::AvailableLevels()) {
      VOS_CHECK(kernels::SetDispatchLevel(level));
      const kernels::KernelTable& kernel = kernels::Active();
      std::fill(tags.begin(), tags.end(), uint16_t{0xffff});
      router.Tag(elements.data(), elements.size(), tags.data());
      VOS_CHECK(tags == ref_tags)
          << kernel.name << " routing diverges from scalar";
      const double route_seconds = BestSeconds(repeats, [&] {
        for (size_t s = 0; s < route_sweeps; ++s) {
          router.Tag(elements.data(), elements.size(), tags.data());
        }
      });
      if (level == kernels::DispatchLevel::kScalar) {
        route_scalar_seconds = route_seconds;
      }
      emit_row("routing", "shard-tag", kernel.name, max_shards, 1, 1,
               route_seconds,
               static_cast<double>(elements.size() * route_sweeps) /
                   route_seconds,
               "routes/s", route_scalar_seconds / route_seconds, "");
      ++levels_verified;
    }
    VOS_CHECK(kernels::SetDispatchLevel(restore_level));
    std::printf("routing: %zu dispatch level(s) verified identical to "
                "scalar before timing\n\n",
                levels_verified);
  }

  // --------------------------------------------------------------- checkpoint
  // Save/restore cost of the durable v3 container at the full shard
  // count, against the state the ingest phase just verified.
  {
    ShardedVosConfig sharded;
    sharded.base = config;
    sharded.num_shards = max_shards;
    sharded.batch_size = batch;
    sharded.ingest_threads = max_shards;
    sharded.pin_numa_workers = pin_threads;
    ShardedVosSketch full_state(sharded, users);
    for (size_t t = 0; t < elements.size(); t += batch) {
      full_state.UpdateBatch(elements.data() + t,
                             std::min(batch, elements.size() - t));
    }
    const Status flushed = full_state.Flush();
    VOS_CHECK(flushed.ok()) << flushed.ToString();

    const std::string ckpt_path =
        flags.GetString("ckpt", "/tmp/micro_ingest_path.ckpt");
    const double save_seconds = BestSeconds(repeats, [&] {
      const Status saved = full_state.Checkpoint(ckpt_path);
      VOS_CHECK(saved.ok()) << saved.ToString();
    });
    double ckpt_bytes = 0.0;
    {
      std::ifstream in(ckpt_path, std::ios::binary | std::ios::ate);
      VOS_CHECK(in.good()) << "checkpoint vanished: " << ckpt_path;
      ckpt_bytes = static_cast<double>(in.tellg());
    }
    const double sketch_bytes =
        static_cast<double>(full_state.MemoryBits()) / 8.0;
    const double mib = 1024.0 * 1024.0;
    emit("checkpoint", "save", max_shards, 1, 1, save_seconds,
         ckpt_bytes / save_seconds / mib, "MB/s", ckpt_bytes / sketch_bytes);

    double restore_seconds = 0.0;
    for (int r = 0; r < repeats; ++r) {
      ShardedVosSketch restored(sharded, users);
      WallTimer timer;
      const Status status = restored.Restore(ckpt_path);
      const double elapsed = timer.ElapsedSeconds();
      VOS_CHECK(status.ok()) << status.ToString();
      if (r == 0 || elapsed < restore_seconds) restore_seconds = elapsed;
      // A restore that is fast but wrong is worthless: bit-identity first.
      CheckShardsIdentical(restored, full_state);
    }
    emit("checkpoint", "restore", max_shards, 1, 1, restore_seconds,
         ckpt_bytes / restore_seconds / mib, "MB/s",
         ckpt_bytes / sketch_bytes);
    std::remove(ckpt_path.c_str());
    std::printf("checkpoint: %.1f MB on disk vs %.1f MB sketch memory "
                "(ratio %.3f); every restore verified bit-identical\n\n",
                ckpt_bytes / mib, sketch_bytes / mib,
                ckpt_bytes / sketch_bytes);
  }

  // --------------------------------------------------------------- index
  // Candidate set: the first `num_candidates` hash-scattered users.
  VosSketch sketch(config, users);
  for (const Element& e : elements) sketch.Update(e);
  std::vector<UserId> candidates;
  candidates.reserve(num_candidates);
  for (size_t i = 0; candidates.size() < num_candidates && i < users; ++i) {
    candidates.push_back(static_cast<UserId>(
        hash::ReduceToRange(hash::Hash64(i, config.seed ^ 0xc0ffee), users)));
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  QueryOptions incremental_options;
  incremental_options.num_threads = 1;
  incremental_options.incremental = true;
  // Measure the pure refresh path at every fraction: the adaptive
  // fallback (QueryOptions default 0.5) would turn the 50% row into a
  // plain Rebuild — this bench is what the break-even is calibrated ON.
  incremental_options.refresh_fallback_fraction = 2.0;
  SimilarityIndex incremental_index(sketch, {}, incremental_options);
  incremental_index.Rebuild(candidates);

  QueryOptions plain_options;
  plain_options.num_threads = 1;
  SimilarityIndex full_index(sketch, {}, plain_options);

  const double full_rebuild_seconds = BestSeconds(repeats, [&] {
    full_index.Rebuild(candidates);
  });
  emit("index", "rebuild", 1, 1, 1, full_rebuild_seconds,
       candidates.size() / full_rebuild_seconds, "rows/s", 1.0);

  ItemId next_item = static_cast<ItemId>(elements.size()) + 1000;
  double speedup_at_10pct = 0.0;
  for (const double frac : {0.01, 0.10, 0.50}) {
    const size_t dirty_count = std::max<size_t>(
        1, static_cast<size_t>(frac * static_cast<double>(candidates.size())));
    double refresh_seconds = 0.0;
    for (int r = 0; r < repeats; ++r) {
      // Touch the first `dirty_count` candidates with a few inserts each.
      for (size_t i = 0; i < dirty_count; ++i) {
        for (int e = 0; e < 3; ++e) {
          sketch.Update({candidates[i], next_item++, Action::kInsert});
        }
      }
      WallTimer timer;
      incremental_index.RefreshDirty();
      const double elapsed = timer.ElapsedSeconds();
      if (r == 0 || elapsed < refresh_seconds) refresh_seconds = elapsed;
      full_index.Rebuild(candidates);
      CheckIndexesIdentical(incremental_index, full_index);
    }
    const double speedup = full_rebuild_seconds / refresh_seconds;
    if (frac == 0.10) speedup_at_10pct = speedup;
    emit("index", "refresh-" + TablePrinter::FormatDouble(frac, 2), 1, 1, 1,
         refresh_seconds, candidates.size() / refresh_seconds, "rows/s",
         speedup);
  }

  EmitTable(flags, table, header, rows);
  MaybeEmitJson(flags, "micro_ingest_path", header, rows);

  std::printf("\nall sharded pipelines (single- and multi-producer) "
              "verified identical to synchronous routing; every "
              "RefreshDirty verified bit-identical to a full Rebuild.\n");
  std::printf("async ingest scaling 1 -> %u shards: %.2fx (needs >= %u "
              "hardware threads to be meaningful) | RefreshDirty speedup "
              "at 10%% dirty: %.2fx (target >= 5x)\n",
              max_shards,
              async_max_shards_seconds > 0.0
                  ? async_1shard_seconds / async_max_shards_seconds
                  : 0.0,
              max_shards, speedup_at_10pct);
  std::printf("multi-producer scaling 1 -> %u producers at %u shards: "
              "%.2fx (target >= 2x at S >= 4; needs >= %u hardware "
              "threads — producers + shard workers — to be meaningful)\n",
              producers_measured,
              max_shards,
              async_max_producers_seconds > 0.0
                  ? async_1producer_seconds / async_max_producers_seconds
                  : 0.0,
              max_shards + producers_measured);
  return 0;
}

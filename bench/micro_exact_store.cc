// Micro-benchmarks (M3) for the exact substrate: the ground-truth side of
// every accuracy experiment. Establishes that the evaluation harness (not
// the sketches) dominates checkpoint cost, and by how much batch truth
// computation beats per-pair intersection.

#include <benchmark/benchmark.h>

#include "exact/exact_store.h"
#include "exact/ground_truth.h"
#include "exact/pair_selection.h"
#include "stream/dataset.h"

namespace vos::exact {
namespace {

const stream::GraphStream& ToyStream() {
  static const stream::GraphStream stream = [] {
    auto s = stream::GenerateDatasetByName("toy");
    VOS_CHECK(s.ok());
    return *std::move(s);
  }();
  return stream;
}

/// A store loaded with the full toy stream.
const ExactStore& LoadedStore() {
  static const ExactStore store = [] {
    ExactStore s(ToyStream().num_users());
    for (const stream::Element& e : ToyStream().elements()) s.Update(e);
    return s;
  }();
  return store;
}

void BM_ExactStoreUpdate(benchmark::State& state) {
  const stream::GraphStream& stream = ToyStream();
  ExactStore store(stream.num_users());
  size_t t = 0;
  for (auto _ : state) {
    store.Update(stream[t]);
    if (++t == stream.size()) t = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactStoreUpdate);

void BM_PairwiseCommonItems(benchmark::State& state) {
  const ExactStore& store = LoadedStore();
  const auto users = TopCardinalityUsers(store, 32);
  size_t i = 0;
  for (auto _ : state) {
    const UserId u = users[i % users.size()];
    const UserId v = users[(i + 7) % users.size()];
    benchmark::DoNotOptimize(store.CommonItems(u, v));
    ++i;
  }
}
BENCHMARK(BM_PairwiseCommonItems);

void BM_BatchPairTruths(benchmark::State& state) {
  const ExactStore& store = LoadedStore();
  const auto users = TopCardinalityUsers(store,
                                         static_cast<size_t>(state.range(0)));
  const auto pairs = PairsWithCommonItems(store, users, 0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePairTruths(store, pairs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.size()));
}
BENCHMARK(BM_BatchPairTruths)->Arg(32)->Arg(100);

void BM_TopCardinalitySelection(benchmark::State& state) {
  const ExactStore& store = LoadedStore();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopCardinalityUsers(store, 100));
  }
}
BENCHMARK(BM_TopCardinalitySelection);

}  // namespace
}  // namespace vos::exact

BENCHMARK_MAIN();

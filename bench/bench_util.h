// Shared plumbing for the figure-reproduction bench binaries.
//
// Every fig*/ablation* binary follows the same skeleton: parse flags,
// resolve a dataset (optionally scaled), run, print an aligned table, and
// optionally mirror the rows into a CSV (--csv=<path>). This header keeps
// that skeleton in one place; the per-figure logic stays in each binary.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/csv_writer.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "stream/dataset.h"

namespace vos::bench {

/// Parses flags or exits with the error and a usage hint.
inline Flags ParseFlagsOrDie(int argc, char** argv, const char* usage) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\nusage: %s %s\n",
                 flags.status().ToString().c_str(), argv[0], usage);
    std::exit(2);
  }
  return *std::move(flags);
}

/// Resolves `--dataset` (+ optional `--scale`) to a generated stream, or
/// exits. `def` is the default dataset name.
inline stream::GraphStream DatasetOrDie(const Flags& flags,
                                        const std::string& def) {
  const std::string name = flags.GetString("dataset", def);
  auto spec = stream::GetDatasetSpec(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    std::exit(2);
  }
  const double scale = flags.GetDouble("scale", 1.0);
  if (scale != 1.0) *spec = stream::ScaleSpec(*spec, scale);
  return stream::GenerateDataset(*spec);
}

/// Prints the table and mirrors it to --csv if given.
inline void EmitTable(const Flags& flags, const TablePrinter& table,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  std::fputs(table.ToString().c_str(), stdout);
  const std::string csv_path = flags.GetString("csv", "");
  if (csv_path.empty()) return;
  auto csv = CsvWriter::Open(csv_path, header);
  if (!csv.ok()) {
    std::fprintf(stderr, "warning: %s\n", csv.status().ToString().c_str());
    return;
  }
  for (const auto& row : rows) {
    if (auto s = csv->WriteRow(row); !s.ok()) {
      std::fprintf(stderr, "warning: %s\n", s.ToString().c_str());
      return;
    }
  }
  (void)csv->Close();
  std::printf("\n(csv mirrored to %s)\n", csv_path.c_str());
}

/// Standard experiment banner: what this binary reproduces and with which
/// configuration, so the raw output is self-describing in EXPERIMENTS.md.
inline void PrintBanner(const std::string& title, const Flags& flags) {
  std::printf("=== %s ===\n", title.c_str());
  if (!flags.values().empty()) {
    std::printf("flags:");
    for (const auto& [k, v] : flags.values()) {
      std::printf(" --%s=%s", k.c_str(), v.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace vos::bench

// Shared plumbing for the figure-reproduction bench binaries.
//
// Every fig*/ablation* binary follows the same skeleton: parse flags,
// resolve a dataset (optionally scaled), run, print an aligned table, and
// optionally mirror the rows into a CSV (--csv=<path>). This header keeps
// that skeleton in one place; the per-figure logic stays in each binary.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/csv_writer.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "stream/dataset.h"

namespace vos::bench {

/// Parses flags or exits with the error and a usage hint.
inline Flags ParseFlagsOrDie(int argc, char** argv, const char* usage) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\nusage: %s %s\n",
                 flags.status().ToString().c_str(), argv[0], usage);
    std::exit(2);
  }
  return *std::move(flags);
}

/// Resolves `--dataset` (+ optional `--scale`) to a generated stream, or
/// exits. `def` is the default dataset name.
inline stream::GraphStream DatasetOrDie(const Flags& flags,
                                        const std::string& def) {
  const std::string name = flags.GetString("dataset", def);
  auto spec = stream::GetDatasetSpec(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    std::exit(2);
  }
  const double scale = flags.GetDouble("scale", 1.0);
  if (scale != 1.0) *spec = stream::ScaleSpec(*spec, scale);
  return stream::GenerateDataset(*spec);
}

/// Prints the table and mirrors it to --csv if given.
inline void EmitTable(const Flags& flags, const TablePrinter& table,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  std::fputs(table.ToString().c_str(), stdout);
  const std::string csv_path = flags.GetString("csv", "");
  if (csv_path.empty()) return;
  auto csv = CsvWriter::Open(csv_path, header);
  if (!csv.ok()) {
    std::fprintf(stderr, "warning: %s\n", csv.status().ToString().c_str());
    return;
  }
  for (const auto& row : rows) {
    if (auto s = csv->WriteRow(row); !s.ok()) {
      std::fprintf(stderr, "warning: %s\n", s.ToString().c_str());
      return;
    }
  }
  (void)csv->Close();
  std::printf("\n(csv mirrored to %s)\n", csv_path.c_str());
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// True when `s` conforms to the JSON number grammar (emit unquoted).
/// Deliberately stricter than strtod: hex floats, inf/nan, leading '+',
/// and bare '.5'/'5.' are all valid C parses but invalid JSON.
inline bool LooksNumeric(const std::string& s) {
  size_t i = 0;
  const auto digits = [&] {
    const size_t start = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    return i > start;
  };
  if (i < s.size() && s[i] == '-') ++i;
  if (!digits()) return false;
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == s.size();
}

/// Mirrors the table rows to --json=<path> as an array of objects (one
/// per row, keys from `header`, plus "bench": `bench_name`), so the perf
/// trajectory of every bench can be collected as BENCH_*.json files and
/// diffed across PRs. Numeric-looking cells are written as JSON numbers.
inline void MaybeEmitJson(const Flags& flags, const std::string& bench_name,
                          const std::vector<std::string>& header,
                          const std::vector<std::vector<std::string>>& rows) {
  const std::string json_path = flags.GetString("json", "");
  if (json_path.empty()) return;
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n",
                 json_path.c_str());
    return;
  }
  std::fputs("[\n", out);
  for (size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(out, "  {\"bench\": \"%s\"", JsonEscape(bench_name).c_str());
    for (size_t c = 0; c < header.size() && c < rows[r].size(); ++c) {
      const std::string& value = rows[r][c];
      if (LooksNumeric(value)) {
        std::fprintf(out, ", \"%s\": %s", JsonEscape(header[c]).c_str(),
                     value.c_str());
      } else {
        std::fprintf(out, ", \"%s\": \"%s\"", JsonEscape(header[c]).c_str(),
                     JsonEscape(value).c_str());
      }
    }
    std::fprintf(out, "}%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fputs("]\n", out);
  std::fclose(out);
  std::printf("\n(json mirrored to %s)\n", json_path.c_str());
}

/// Standard experiment banner: what this binary reproduces and with which
/// configuration, so the raw output is self-describing in EXPERIMENTS.md.
inline void PrintBanner(const std::string& title, const Flags& flags) {
  std::printf("=== %s ===\n", title.c_str());
  if (!flags.values().empty()) {
    std::printf("flags:");
    for (const auto& [k, v] : flags.values()) {
      std::printf(" --%s=%s", k.c_str(), v.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace vos::bench

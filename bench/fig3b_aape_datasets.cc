// Reproduces Figure 3(b): AAPE of the common-item estimate ŝ_uv at the end
// of the stream on all four datasets, k = 100, equal memory, λ = 2.

#include "bench/fig3_common.h"

int main(int argc, char** argv) {
  return vos::bench::RunDatasetsPanel(
      argc, argv, vos::bench::Fig3Metric::kAape,
      "Figure 3(b): final AAPE of common-item estimates on all datasets");
}

// Micro-benchmark (M3) for the batch query engine: digest-extraction
// throughput (users/s) and all-pairs estimate throughput (pairs/s),
// scalar seed path vs. the DigestMatrix batch engine.
//
// The scalar baseline is the seed implementation kept verbatim as
// SimilarityIndex::AllPairsAboveReference — per-user heap BitVector
// digests, one Hamming-distance call and one closed-form (log) estimator
// evaluation per pair, single-threaded. The batch engine packs all
// digests into one contiguous DigestMatrix (thread-parallel extraction
// over the cached f-seed table), runs word-wise XOR+popcount row kernels,
// replaces per-pair logs with a Rebuild-time log table, prefilters on the
// Hamming bound, and partitions the pair loop across threads. Results are
// verified bit-identical before any timing is reported.
//
// The "planner" phase measures the shard-aware query tier
// (core/query_planner.h): AllPairsAbove planned as same-shard passes plus
// cross-shard blocks, scattered over --planner_threads task workers, at
// S ∈ {1, 4, 8} shards. The S=1 planner IS the single global index
// scanned by one task — the baseline the shard-scaling speedup column is
// measured against. Every planner result is verified bit-identical across
// planner thread counts, and (for --users ≤ 600) identical to the
// per-pair ShardedVosSketch::EstimatePair reference, before timing is
// reported.
//
// The "kernel_hamming" / "kernel_extract" phases are the dispatch tier's
// acceptance signal (common/kernels.h): the 1×8 blocked XOR+popcount and
// the batched digest-extraction kernels timed once per dispatch level the
// build + CPU offers (scalar / neon / avx2 / avx512). Every level's
// output is verified bit-identical to the scalar reference table before
// its timing counts, and the speedup column divides by the scalar level's
// time — so these rows measure exactly what runtime dispatch buys on this
// host, inside the same JSON schema bench_compare.py trends on.
//
// The "hot_shard" phase is the tiled tier's acceptance signal
// (core/pair_scan.h): the candidate set is skewed so one shard owns most
// rows — before the tier that shard's triangle ran as ONE planner task
// and serialized, so planner threads could not help; tiles are the work
// unit now, so the same workload must show multi-thread scaling. The
// "banding" phase measures opt-in LSH banding on the global index:
// banded results are verified to be a subset of the exact pass with
// bit-identical estimates, and the measured recall is reported as a
// column (exact rows print 1.0000 by definition).
//
// The "optimizer" phase is the cost-based planner's acceptance signal
// (core/query_optimizer.h): three workloads with opposite winning plans —
// a skewed uniform-cardinality community set (wide τ windows, tight
// banding buckets: banded should win), the sparse zipf set (narrow
// windows: exact should win, with the degenerate-bucket guard bounding
// the banded candidates it rejects), and a high-dirty incremental
// refresh (the upkeep term taxes the banded plan). Every row reports the
// chosen plan, its estimated cost and the measured recall against the
// forced-exact reference, plus a row measuring the optimizer's own
// per-plan overhead. --plan (or VOS_PLAN) forces every pass.
//
// Run: ./build/micro_query_path [--users=2000] [--k=6400] [--threads=8]
//      [--tau=0.5] [--repeats=3] [--planner_threads=0] [--tile_rows=0]
//      [--banding_bands=16] [--banding_rows=8] [--plan=auto|exact|banded]
//      [--dispatch=auto|scalar|neon|avx2|avx512] [--csv=out.csv]

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/kernels.h"
#include "common/timer.h"
#include "core/query_optimizer.h"
#include "core/query_planner.h"
#include "core/sharded_vos_sketch.h"
#include "core/similarity_index.h"
#include "core/vos_sketch.h"

namespace vos::bench {
namespace {

using core::DigestMatrix;
using core::QueryOptions;
using core::QueryPlanner;
using core::ShardedVosConfig;
using core::ShardedVosSketch;
using core::SimilarityIndex;
using core::VosConfig;
using core::VosSketch;
using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;
namespace optimizer = core::optimizer;

/// Synthetic community: every 4-user group's first two members share 80%
/// of their items (planted near-duplicates), the rest are disjoint — so
/// AllPairsAbove at moderate τ has real hits and realistic misses. Under
/// --dist=zipf (the default) the disjoint users' set sizes follow a
/// heavy-tailed ~1/rank law like real subscription graphs, which is what
/// the engine's cardinality-sorted sweep exploits; --dist=uniform gives
/// every user the same size, the prefilter's worst case.
std::vector<Element> BuildElements(UserId users, size_t edges_per_user,
                                   bool zipf) {
  std::vector<Element> elements;
  for (UserId u = 0; u < users; ++u) {
    const bool clustered = u % 4 <= 1;
    const uint64_t base =
        clustered ? (u / 4) * uint64_t{1000000} : u * uint64_t{1000000};
    size_t edges = edges_per_user;
    if (zipf && !clustered) {
      edges = std::max<size_t>(10, 20 * edges_per_user / (1 + u % 200));
    }
    for (size_t i = 0; i < edges; ++i) {
      const bool shared = clustered && i < edges * 8 / 10;
      const ItemId item = static_cast<ItemId>(
          shared ? base + i : base + 500000 + (u % 4) * 100000 + i);
      elements.push_back({u, item, Action::kInsert});
    }
  }
  return elements;
}

VosSketch BuildSketch(const VosConfig& config, UserId users,
                      const std::vector<Element>& elements) {
  VosSketch sketch(config, users);
  for (const Element& e : elements) sketch.Update(e);
  return sketch;
}

/// Best-of-`repeats` wall time of `fn` in seconds.
template <typename Fn>
double BestSeconds(int repeats, const Fn& fn) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) {
  using namespace vos;
  using namespace vos::bench;

  const Flags flags = ParseFlagsOrDie(
      argc, argv,
      "[--users=N] [--edges_per_user=N] [--k=N] [--m=N] [--threads=N] "
      "[--tau=J] [--repeats=N] [--seed=N] [--dist=zipf|uniform] "
      "[--planner_threads=N] [--planner_shards=N] [--tile_rows=N] "
      "[--banding_bands=N] [--banding_rows=N] [--plan=auto|exact|banded] "
      "[--dispatch=auto|scalar|neon|avx2|avx512] [--csv=path] "
      "[--json=path]");
  const auto users = static_cast<UserId>(flags.GetInt("users", 2000));
  const auto edges_per_user =
      static_cast<size_t>(flags.GetInt("edges_per_user", 200));
  const auto threads = static_cast<unsigned>(flags.GetInt("threads", 8));
  const double tau = flags.GetDouble("tau", 0.5);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const auto tile_rows = static_cast<size_t>(flags.GetInt("tile_rows", 0));
  const auto banding_bands =
      static_cast<uint32_t>(flags.GetInt("banding_bands", 16));
  const auto banding_rows =
      static_cast<uint32_t>(flags.GetInt("banding_rows", 8));
  const std::string dist = flags.GetString("dist", "zipf");
  VOS_CHECK(dist == "zipf" || dist == "uniform")
      << "--dist must be zipf or uniform, got" << dist;
  const std::string plan_flag = flags.GetString("plan", "auto");
  optimizer::PlanMode plan_mode;
  VOS_CHECK(optimizer::ParsePlanMode(plan_flag.c_str(), &plan_mode))
      << "--plan must be auto|exact|banded, got" << plan_flag;

  VosConfig config;
  config.k = static_cast<uint32_t>(flags.GetInt("k", 6400));
  config.m = static_cast<uint64_t>(flags.GetInt("m", int64_t{1} << 23));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // --dispatch forces a kernel level for the whole run; the default keeps
  // the CPUID probe's pick. Rows carry the tag in the "kernel" column —
  // "auto" for probe-picked runs so row keys stay machine-independent.
  const std::string dispatch = flags.GetString("dispatch", "auto");
  std::string kernel_tag = "auto";
  if (dispatch != "auto") {
    kernels::DispatchLevel forced;
    VOS_CHECK(kernels::ParseDispatchLevel(dispatch.c_str(), &forced))
        << "--dispatch must be auto|scalar|neon|avx2|avx512, got" << dispatch;
    VOS_CHECK(kernels::SetDispatchLevel(forced))
        << "dispatch level" << dispatch
        << "is not available on this build/CPU";
    kernel_tag = kernels::LevelName(forced);
  }

  PrintBanner("micro_query_path — scalar seed path vs. batch query engine",
              flags);
  std::printf("kernel dispatch: %s (requested %s)\n",
              kernels::Active().name, dispatch.c_str());

  const std::vector<Element> elements =
      BuildElements(users, edges_per_user, dist == "zipf");
  const VosSketch sketch = BuildSketch(config, users, elements);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);
  const double num_pairs =
      0.5 * static_cast<double>(users) * (static_cast<double>(users) - 1.0);
  std::printf("sketch: k=%u m=%llu beta=%.4f | %u candidates, %.0f pairs, "
              "tau=%.2f\n\n",
              config.k, static_cast<unsigned long long>(config.m),
              sketch.beta(), users, num_pairs, tau);

  TablePrinter table({"phase", "engine", "kernel", "threads", "seconds",
                      "throughput", "unit", "speedup", "recall", "plan",
                      "cost"});
  std::vector<std::vector<std::string>> rows;
  // `recall` is 1.0 by definition for every exact path; the banding and
  // optimizer phases override it with the measured banded-vs-exact
  // fraction. `plan` is the optimizer's verdict for query rows ("n/a" on
  // rows with no plan decision) and `cost` its estimated seconds for the
  // plan that ran (0 where not applicable); bench_compare.py treats plan
  // as an outcome (flags flips, never keys on it) and cost as a metric.
  // The kernel_* phases stamp each row with the forced dispatch level;
  // every other row carries the run-wide tag.
  const auto format_cost = [](double cost) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3e", cost);
    return std::string(buf);
  };
  auto emit_row = [&](const std::string& phase, const std::string& engine,
                      const std::string& kernel, unsigned nthreads,
                      double seconds, double throughput,
                      const std::string& unit, double speedup, double recall,
                      const std::string& plan = "n/a", double cost = 0.0) {
    std::vector<std::string> row = {
        phase,
        engine,
        kernel,
        TablePrinter::FormatInt(nthreads),
        TablePrinter::FormatDouble(seconds, 4),
        TablePrinter::FormatDouble(throughput, 4),
        unit,
        TablePrinter::FormatDouble(speedup, 3),
        TablePrinter::FormatDouble(recall, 4),
        plan,
        format_cost(cost)};
    table.AddRow(row);
    rows.push_back(std::move(row));
  };
  auto emit_planned = [&](const std::string& phase, const std::string& engine,
                          unsigned nthreads, double seconds, double throughput,
                          const std::string& unit, double speedup,
                          double recall, const std::string& plan,
                          double cost) {
    emit_row(phase, engine, kernel_tag, nthreads, seconds, throughput, unit,
             speedup, recall, plan, cost);
  };
  auto emit_with_recall = [&](const std::string& phase,
                              const std::string& engine, unsigned nthreads,
                              double seconds, double throughput,
                              const std::string& unit, double speedup,
                              double recall) {
    emit_row(phase, engine, kernel_tag, nthreads, seconds, throughput, unit,
             speedup, recall);
  };
  auto emit = [&](const std::string& phase, const std::string& engine,
                  unsigned nthreads, double seconds, double throughput,
                  const std::string& unit, double speedup) {
    emit_with_recall(phase, engine, nthreads, seconds, throughput, unit,
                     speedup, 1.0);
  };

  // ------------------------------------------------------ digest extraction
  const double scalar_extract = BestSeconds(repeats, [&] {
    std::vector<BitVector> digests;
    digests.reserve(candidates.size());
    for (UserId u : candidates) digests.push_back(sketch.ExtractUserSketch(u));
  });
  emit("extract", "scalar", 1, scalar_extract, users / scalar_extract,
       "users/s", 1.0);
  for (unsigned t : {1u, threads}) {
    const double batch_extract = BestSeconds(repeats, [&] {
      const core::DigestMatrix matrix =
          core::DigestMatrix::Build(sketch, candidates, t);
      (void)matrix;
    });
    emit("extract", "batch", t, batch_extract, users / batch_extract,
         "users/s", scalar_extract / batch_extract);
    if (threads == 1) break;
  }

  // ---------------------------------------------------------- kernel tier
  // One row per dispatch level for the two kernels the query path spends
  // its time in: the 1×8 blocked XOR+popcount (the tiled pair scan's
  // inner loop) and batched digest extraction (DigestMatrix::Build).
  // Reference outputs come from the scalar table; every level must match
  // them bit-for-bit before its timing counts, and speedup divides by the
  // scalar level's time — the measured value of runtime dispatch on this
  // host.
  {
    const kernels::DispatchLevel restore_level = kernels::ActiveLevel();
    VOS_CHECK(kernels::SetDispatchLevel(kernels::DispatchLevel::kScalar));
    const DigestMatrix matrix = DigestMatrix::Build(sketch, candidates, 1);
    const size_t words = matrix.words_per_row();
    const size_t mrows = matrix.rows();
    VOS_CHECK(mrows > 8) << "kernel phase needs more than 8 candidate rows";
    const size_t ham_pairs = (mrows - 8) * 8;
    // Scale sweeps so even the widest level runs long enough to time.
    const size_t sweeps = std::max<size_t>(
        1, 8'000'000 / std::max<size_t>(1, ham_pairs * words));

    const kernels::KernelTable& scalar_table =
        *kernels::TableFor(kernels::DispatchLevel::kScalar);
    std::vector<size_t> ham_ref(ham_pairs);
    for (size_t r = 0; r + 8 < mrows; ++r) {
      scalar_table.xor_popcount8(matrix.Row(r), matrix.Row(r + 1), words,
                                 words, &ham_ref[r * 8]);
    }

    double ham_scalar_seconds = 0.0;
    double extract_scalar_seconds = 0.0;
    size_t levels_verified = 0;
    for (const kernels::DispatchLevel level : kernels::AvailableLevels()) {
      VOS_CHECK(kernels::SetDispatchLevel(level));
      const kernels::KernelTable& kernel = kernels::Active();

      // Hamming: bit-identity against the scalar reference, then timing.
      std::vector<size_t> ham_out(ham_pairs);
      for (size_t r = 0; r + 8 < mrows; ++r) {
        kernel.xor_popcount8(matrix.Row(r), matrix.Row(r + 1), words, words,
                             &ham_out[r * 8]);
      }
      VOS_CHECK(ham_out == ham_ref)
          << kernel.name << " Hamming kernel diverges from scalar";
      size_t sink = 0;
      const double ham_seconds = BestSeconds(repeats, [&] {
        size_t block[8];
        for (size_t s = 0; s < sweeps; ++s) {
          for (size_t r = 0; r + 8 < mrows; ++r) {
            kernel.xor_popcount8(matrix.Row(r), matrix.Row(r + 1), words,
                                 words, block);
            sink += block[0] + block[7];
          }
        }
      });
      VOS_CHECK(sink != static_cast<size_t>(-1));  // keep results observable
      if (level == kernels::DispatchLevel::kScalar) {
        ham_scalar_seconds = ham_seconds;
      }
      emit_row("kernel_hamming", "xor_popcount8", kernel.name, 1, ham_seconds,
               static_cast<double>(ham_pairs * sweeps) / ham_seconds,
               "pairs/s", ham_scalar_seconds / ham_seconds, 1.0);

      // Extraction: DigestMatrix::Build routes through extract_bits; the
      // whole matrix must equal the scalar-built one word-for-word.
      const DigestMatrix level_matrix =
          DigestMatrix::Build(sketch, candidates, 1);
      VOS_CHECK(level_matrix.rows() == mrows &&
                level_matrix.words_per_row() == words);
      for (size_t r = 0; r < mrows; ++r) {
        VOS_CHECK(std::memcmp(level_matrix.Row(r), matrix.Row(r),
                              words * sizeof(uint64_t)) == 0)
            << kernel.name << " extraction diverges from scalar at row " << r;
      }
      const double extract_seconds = BestSeconds(repeats, [&] {
        const DigestMatrix built = DigestMatrix::Build(sketch, candidates, 1);
        (void)built;
      });
      if (level == kernels::DispatchLevel::kScalar) {
        extract_scalar_seconds = extract_seconds;
      }
      emit_row("kernel_extract", "extract_bits", kernel.name, 1,
               extract_seconds, users / extract_seconds, "users/s",
               extract_scalar_seconds / extract_seconds, 1.0);
      ++levels_verified;
    }
    VOS_CHECK(kernels::SetDispatchLevel(restore_level));
    std::printf("\nkernel tier: %zu dispatch level(s) verified bit-identical "
                "to scalar before timing.\n",
                levels_verified);
  }

  // ----------------------------------------------------------- all-pairs
  QueryOptions query_options;
  query_options.num_threads = threads;
  query_options.tile_rows = tile_rows;
  query_options.plan = plan_mode;
  SimilarityIndex index(sketch, {}, query_options);
  index.Rebuild(candidates);

  const auto reference = index.AllPairsAboveReference(tau);
  const auto timed_batch = [&](unsigned t) {
    QueryOptions options = query_options;
    options.num_threads = t;
    index.set_query_options(options);
    (void)index.AllPairsAbove(tau);  // warm caches (evicted by the
                                     // scalar pass's digest copies)
    WallTimer timer;
    const auto result = index.AllPairsAbove(tau);
    const double elapsed = timer.ElapsedSeconds();
    // Verify bit-identical results on every round, not just once.
    VOS_CHECK(result.size() == reference.size())
        << "batch engine disagrees with the scalar reference";
    for (size_t i = 0; i < result.size(); ++i) {
      VOS_CHECK(result[i].u == reference[i].u &&
                result[i].v == reference[i].v &&
                result[i].common == reference[i].common &&
                result[i].jaccard == reference[i].jaccard)
          << "pair " << i << " differs from the scalar reference";
    }
    return elapsed;
  };

  // Interleave the engines within each round so a slow scheduling window
  // on a shared machine penalizes all of them equally; report per-engine
  // minima.
  double scalar_pairs = 0.0, batch_one = 0.0, batch_many = 0.0;
  for (int r = 0; r < repeats; ++r) {
    (void)index.AllPairsAboveReference(tau);  // warm caches
    WallTimer timer;
    const auto result = index.AllPairsAboveReference(tau);
    const double scalar_elapsed = timer.ElapsedSeconds();
    VOS_CHECK(result.size() == reference.size());
    const double one = timed_batch(1);
    const double many = threads == 1 ? one : timed_batch(threads);
    if (r == 0 || scalar_elapsed < scalar_pairs) scalar_pairs = scalar_elapsed;
    if (r == 0 || one < batch_one) batch_one = one;
    if (r == 0 || many < batch_many) batch_many = many;
  }
  emit("all_pairs", "scalar", 1, scalar_pairs, num_pairs / scalar_pairs,
       "pairs/s", 1.0);
  emit("all_pairs", "batch", 1, batch_one, num_pairs / batch_one, "pairs/s",
       scalar_pairs / batch_one);
  if (threads != 1) {
    emit("all_pairs", "batch", threads, batch_many, num_pairs / batch_many,
         "pairs/s", scalar_pairs / batch_many);
  }

  // ------------------------------------------------------ sharded planner
  // Shard-scaling of the query tier: AllPairsAbove through QueryPlanner
  // at S ∈ {1, 4, 8}. The planner parallelizes across tasks (same-shard
  // passes + cross-shard row blocks); at S=1 there is exactly one task —
  // the single global index scanned single-threaded — which is the
  // baseline the speedup column divides by.
  const auto planner_threads =
      static_cast<unsigned>(flags.GetInt("planner_threads", 0));
  const auto max_planner_shards =
      static_cast<uint32_t>(flags.GetInt("planner_shards", 8));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw < 2) {
    std::printf("\n(single hardware thread: planner shard-scaling "
                "degenerates to the cross-shard kernel overhead; run on a "
                "multi-core host for the scaling measurement)\n");
  }
  double planner_base_seconds = 0.0;
  double planner_last_speedup = 1.0;
  uint32_t planner_last_shards = 1;
  for (const uint32_t shards : {1u, 4u, 8u}) {
    if (shards > max_planner_shards) break;
    ShardedVosConfig sharded;
    sharded.base = config;
    sharded.num_shards = shards;
    ShardedVosSketch sharded_sketch(sharded, users);
    sharded_sketch.UpdateBatch(elements.data(), elements.size());

    QueryOptions planner_options;
    planner_options.num_threads = planner_threads;
    planner_options.tile_rows = tile_rows;
    planner_options.plan = plan_mode;
    QueryPlanner planner(sharded_sketch, {}, planner_options);
    planner.Rebuild(candidates);

    // Verify before timing: bit-identical across planner thread counts,
    // and identical to the per-pair EstimatePair reference when the
    // candidate set is small enough for the O(n²·k) loop.
    QueryOptions one_thread = planner_options;
    one_thread.num_threads = 1;
    QueryPlanner single(sharded_sketch, {}, one_thread);
    single.Rebuild(candidates);
    const auto planner_reference = single.AllPairsAbove(tau);
    const auto planner_result = planner.AllPairsAbove(tau);
    VOS_CHECK(planner_result.size() == planner_reference.size())
        << "planner result depends on thread count at shards=" << shards;
    for (size_t i = 0; i < planner_result.size(); ++i) {
      VOS_CHECK(planner_result[i].u == planner_reference[i].u &&
                planner_result[i].v == planner_reference[i].v &&
                planner_result[i].common == planner_reference[i].common &&
                planner_result[i].jaccard == planner_reference[i].jaccard)
          << "planner pair " << i << " differs across thread counts";
    }
    if (users <= 600) {
      const auto brute = planner.AllPairsAboveReference(tau);
      VOS_CHECK(planner_result.size() == brute.size())
          << "planner disagrees with the EstimatePair reference";
      for (size_t i = 0; i < brute.size(); ++i) {
        VOS_CHECK(planner_result[i].u == brute[i].u &&
                  planner_result[i].v == brute[i].v &&
                  planner_result[i].common == brute[i].common &&
                  planner_result[i].jaccard == brute[i].jaccard)
            << "planner pair " << i << " differs from EstimatePair";
      }
    }

    const double planner_seconds = BestSeconds(repeats, [&] {
      (void)planner.AllPairsAbove(tau);
    });
    if (shards == 1) planner_base_seconds = planner_seconds;
    const double speedup = planner_base_seconds / planner_seconds;
    planner_last_speedup = speedup;
    planner_last_shards = shards;
    emit("planner_all_pairs", "planner-s" + std::to_string(shards),
         planner_threads, planner_seconds, num_pairs / planner_seconds,
         "pairs/s", speedup);
  }

  // ------------------------------------------------------ hot-shard tiling
  // Skewed candidate set: every user of shard 0 plus a 1-in-8 sprinkle of
  // the rest, so shard 0's triangle dominates the pair space. Pre-tier
  // that triangle was ONE planner task — threads>1 bought nothing here;
  // the tiled tier must show multi-thread scaling on exactly this
  // workload (the speedup column divides by the 1-thread time).
  {
    ShardedVosConfig sharded;
    sharded.base = config;
    sharded.num_shards = 4;
    ShardedVosSketch hot_sketch(sharded, users);
    hot_sketch.UpdateBatch(elements.data(), elements.size());
    std::vector<UserId> hot_candidates;
    size_t hot_rows = 0;
    for (UserId u = 0; u < users; ++u) {
      const bool hot = hot_sketch.ShardOf(u) == 0;
      if (hot || u % 8 == 0) {
        hot_candidates.push_back(u);
        if (hot) ++hot_rows;
      }
    }
    const double hot_n = static_cast<double>(hot_candidates.size());
    const double hot_pairs = 0.5 * hot_n * (hot_n - 1.0);

    QueryOptions hot_base;
    hot_base.tile_rows = tile_rows;
    hot_base.num_threads = 1;
    QueryPlanner hot_single(hot_sketch, {}, hot_base);
    hot_single.Rebuild(hot_candidates);
    const auto hot_reference = hot_single.AllPairsAbove(tau);

    std::printf("\nhot_shard workload: %zu candidates, %zu (%.0f%%) in "
                "shard 0 — pre-tier this triangle serialized as one task.\n",
                hot_candidates.size(), hot_rows,
                100.0 * static_cast<double>(hot_rows) / hot_n);

    double hot_base_seconds = 0.0;
    for (const unsigned t : {1u, threads}) {
      QueryOptions hot_options = hot_base;
      hot_options.num_threads = t;
      QueryPlanner hot_planner(hot_sketch, {}, hot_options);
      hot_planner.Rebuild(hot_candidates);
      // Bit-identity across thread counts on the skewed workload before
      // any timing — the tiles repartition the triangle, never its output.
      const auto hot_result = hot_planner.AllPairsAbove(tau);
      VOS_CHECK(hot_result.size() == hot_reference.size())
          << "hot-shard result depends on thread count";
      for (size_t i = 0; i < hot_result.size(); ++i) {
        VOS_CHECK(hot_result[i].u == hot_reference[i].u &&
                  hot_result[i].v == hot_reference[i].v &&
                  hot_result[i].common == hot_reference[i].common &&
                  hot_result[i].jaccard == hot_reference[i].jaccard)
            << "hot-shard pair " << i << " differs across thread counts";
      }
      const double hot_seconds = BestSeconds(repeats, [&] {
        (void)hot_planner.AllPairsAbove(tau);
      });
      if (t == 1) hot_base_seconds = hot_seconds;
      emit("hot_shard", "planner-s4-hot", t, hot_seconds,
           hot_pairs / hot_seconds, "pairs/s", hot_base_seconds / hot_seconds);
      if (threads == 1) break;
    }
  }

  // ----------------------------------------------------------- banding
  // Opt-in LSH banding on the global index: the banded result must be a
  // subset of the exact pass with bit-identical per-pair estimates
  // (precision 1), so recall = banded/exact — measured here and reported
  // as a column, never assumed.
  if (banding_bands > 0) {
    const auto exact_pairs = index.AllPairsAbove(tau);
    QueryOptions banded_options = query_options;
    banded_options.banding_bands = banding_bands;
    banded_options.banding_rows_per_band = banding_rows;
    // The phase measures what the BANDED path costs, so the plan is
    // pinned — the optimizer choosing exact here would silently turn
    // this into a second exact row (the auto-choice measurement lives in
    // the optimizer phase below).
    banded_options.plan = optimizer::PlanMode::kForceBanded;
    SimilarityIndex banded(sketch, {}, banded_options);
    banded.Rebuild(candidates);
    const auto banded_pairs = banded.AllPairsAbove(tau);
    // Subset + identical-estimate verification before timing.
    {
      size_t ei = 0;
      std::vector<SimilarityIndex::Pair> exact_sorted = exact_pairs;
      std::vector<SimilarityIndex::Pair> banded_sorted = banded_pairs;
      const auto by_ids = [](const SimilarityIndex::Pair& a,
                             const SimilarityIndex::Pair& b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
      };
      std::sort(exact_sorted.begin(), exact_sorted.end(), by_ids);
      std::sort(banded_sorted.begin(), banded_sorted.end(), by_ids);
      for (const auto& pair : banded_sorted) {
        while (ei < exact_sorted.size() && by_ids(exact_sorted[ei], pair)) {
          ++ei;
        }
        VOS_CHECK(ei < exact_sorted.size() &&
                  exact_sorted[ei].u == pair.u && exact_sorted[ei].v == pair.v)
            << "banded pair not in the exact result — precision must be 1";
        VOS_CHECK(exact_sorted[ei].common == pair.common &&
                  exact_sorted[ei].jaccard == pair.jaccard)
            << "banded estimate differs from the exact pass";
      }
    }
    const double recall =
        exact_pairs.empty() ? 1.0
                            : static_cast<double>(banded_pairs.size()) /
                                  static_cast<double>(exact_pairs.size());
    const double exact_seconds = BestSeconds(repeats, [&] {
      (void)index.AllPairsAbove(tau);
    });
    const double banded_seconds = BestSeconds(repeats, [&] {
      (void)banded.AllPairsAbove(tau);
    });
    const optimizer::PassReport banded_report = banded.PlanAllPairs(tau);
    emit_planned("banding", "exact", threads, exact_seconds,
                 num_pairs / exact_seconds, "pairs/s", 1.0, 1.0, "exact",
                 banded_report.plan.exact_cost);
    emit_planned(
        "banding",
        "banded-b" + std::to_string(banding_bands) + "r" +
            std::to_string(banding_rows),
        threads, banded_seconds, num_pairs / banded_seconds, "pairs/s",
        exact_seconds / banded_seconds, recall, "banded",
        banded_report.plan.banded_cost);
    std::printf("\nbanding b=%u r=%u: recall %.4f (%zu of %zu exact pairs), "
                "%.2fx vs the exact tiled pass.\n",
                banding_bands, banding_rows, recall, banded_pairs.size(),
                exact_pairs.size(), exact_seconds / banded_seconds);
  }

  // ----------------------------------------------------------- optimizer
  // The cost-based planner on three workloads with opposite winners. For
  // each: forced-exact (the reference), forced-banded, and the
  // configured mode (--plan, default auto) — per row the chosen plan,
  // its estimated cost and the measured recall vs forced-exact. The
  // measured recall is fed back through ReportMeasuredRecall, closing
  // the optimizer's feedback loop exactly the way a production caller
  // would.
  if (banding_bands > 0) {
    const auto measure_workload = [&](const std::string& tag,
                                      SimilarityIndex& opt_index) {
      const auto timed_with_plan = [&](optimizer::PlanMode mode) {
        QueryOptions options = opt_index.query_options();
        options.plan = mode;
        opt_index.set_query_options(options);
        (void)opt_index.AllPairsAbove(tau);  // warm
        return BestSeconds(repeats, [&] {
          (void)opt_index.AllPairsAbove(tau);
        });
      };
      const auto result_with_plan = [&](optimizer::PlanMode mode) {
        QueryOptions options = opt_index.query_options();
        options.plan = mode;
        opt_index.set_query_options(options);
        return opt_index.AllPairsAbove(tau);
      };

      const auto exact_result =
          result_with_plan(optimizer::PlanMode::kForceExact);
      const auto banded_result =
          result_with_plan(optimizer::PlanMode::kForceBanded);
      const auto chosen_result = result_with_plan(plan_mode);
      const auto recall_of = [&](size_t found) {
        return exact_result.empty()
                   ? 1.0
                   : static_cast<double>(found) /
                         static_cast<double>(exact_result.size());
      };
      VOS_CHECK(banded_result.size() <= exact_result.size())
          << tag << ": banded must be a subset of exact";
      VOS_CHECK(chosen_result.size() <= exact_result.size())
          << tag << ": the chosen plan must be a subset of exact";

      const double exact_seconds =
          timed_with_plan(optimizer::PlanMode::kForceExact);
      const double banded_seconds =
          timed_with_plan(optimizer::PlanMode::kForceBanded);
      const double chosen_seconds = timed_with_plan(plan_mode);

      // The report under the configured mode: predicts what the chosen
      // row executed (the decision code is shared with AllPairsAbove).
      QueryOptions options = opt_index.query_options();
      options.plan = plan_mode;
      opt_index.set_query_options(options);
      const optimizer::PassReport report = opt_index.PlanAllPairs(tau);
      const char* chosen_plan = optimizer::PlanKindName(report.plan.kind);
      const double chosen_cost =
          report.plan.kind == optimizer::PlanKind::kBanded
              ? report.plan.banded_cost
              : report.plan.exact_cost;

      emit_planned("optimizer", tag + "-exact", threads, exact_seconds,
                   num_pairs / exact_seconds, "pairs/s", 1.0, 1.0, "exact",
                   report.plan.exact_cost);
      emit_planned("optimizer", tag + "-banded", threads, banded_seconds,
                   num_pairs / banded_seconds, "pairs/s",
                   exact_seconds / banded_seconds,
                   recall_of(banded_result.size()), "banded",
                   report.plan.banded_cost);
      emit_planned("optimizer", tag + "-" + plan_flag, threads,
                   chosen_seconds, num_pairs / chosen_seconds, "pairs/s",
                   exact_seconds / chosen_seconds,
                   recall_of(chosen_result.size()), chosen_plan, chosen_cost);
      // Close the feedback loop with the measured recall of what ran.
      const double chosen_recall = recall_of(chosen_result.size());
      opt_index.ReportMeasuredRecall(chosen_recall);
      std::printf("optimizer %s: plan=%s (exact %.3e s vs banded %.3e s "
                  "estimated), measured %.2fx vs forced-exact, recall "
                  "%.4f (%zu of %zu exact pairs)\n",
                  tag.c_str(), chosen_plan, report.plan.exact_cost,
                  report.plan.banded_cost, exact_seconds / chosen_seconds,
                  recall_of(chosen_result.size()), chosen_result.size(),
                  exact_result.size());
      // A recall breach is handled, not fatal: the production response
      // is the feedback latch — the reported recall must force the
      // exact plan at the next snapshot (auto mode only; a forced plan
      // is the caller's explicit choice). Verify the latch engages.
      const double recall_floor =
          opt_index.query_options().banding_recall_floor;
      if (recall_floor > 0.0 && chosen_recall + 1e-12 < recall_floor &&
          !report.plan.forced) {
        opt_index.Rebuild(candidates);  // absorbs the pending feedback
        VOS_CHECK(opt_index.banding_feedback_force_exact())
            << tag << ": recall " << chosen_recall << " under the floor "
            << recall_floor << " must latch force-exact at the snapshot";
        const optimizer::PassReport after = opt_index.PlanAllPairs(tau);
        VOS_CHECK(after.plan.kind == optimizer::PlanKind::kExact)
            << tag << ": the latched snapshot must plan exact";
        std::printf("optimizer %s: recall %.4f undercut the %.2f floor — "
                    "feedback latch engaged, next snapshot plans exact\n",
                    tag.c_str(), chosen_recall, recall_floor);
      }
      return report;
    };

    QueryOptions opt_base = query_options;
    opt_base.banding_bands = banding_bands;
    opt_base.banding_rows_per_band = banding_rows;
    // The recall contract the chosen plan must honour: a breach both
    // fails the bench (VOS_CHECK above) and latches the index's
    // force-exact feedback for the next snapshot.
    opt_base.banding_recall_floor = 0.7;
    std::printf("\n");

    // Workload 1 — skewed communities with uniform cardinalities: every
    // τ window spans most of the triangle (uniform sizes defeat the
    // cardinality prefilter), so the exact tier pays the full quadratic
    // bill. The band keys are widened beyond the default 8 rows because
    // VOS digests are sparse: short keys are mostly all-zero (one
    // degenerate bucket), while wider keys regain selectivity —
    // unrelated digests rarely agree on a whole band, planted
    // near-duplicates still do. The width scales with k (digest density
    // falls as registers spread) and stays within the k rows available
    // to the configured band count. The optimizer should pick banded
    // here and beat forced-exact.
    const std::vector<Element> skew_elements =
        BuildElements(users, edges_per_user, /*zipf=*/false);
    const VosSketch skew_sketch = BuildSketch(config, users, skew_elements);
    QueryOptions opt_skew = opt_base;
    opt_skew.banding_rows_per_band = std::max<size_t>(
        banding_rows,
        std::min<size_t>(
            64, std::min<size_t>(config.k / 50, config.k / banding_bands)));
    SimilarityIndex skew_index(skew_sketch, {}, opt_skew);
    skew_index.Rebuild(candidates);
    (void)measure_workload("skew", skew_index);

    // Workload 2 — the sparse zipf set: heavy-tailed cardinalities make
    // the τ windows narrow (exact work collapses), and near-empty
    // digests pile into few buckets — the degenerate-bucket guard keeps
    // the banded candidate bound subquadratic, but exact should win.
    SimilarityIndex sparse_index(sketch, {}, opt_base);
    sparse_index.Rebuild(candidates);
    const optimizer::PassReport sparse_report =
        measure_workload("sparse", sparse_index);
    if (const core::pair_scan::BandingTable* t =
            sparse_index.banding_table()) {
      std::printf("optimizer sparse: max bucket run %zu of %zu rows, "
                  "post-guard candidate bound %zu (%.1f%% of the %zu-pair "
                  "window)\n",
                  t->MaxBucketRun(), t->rows(), t->TriangleCandidateBound(),
                  sparse_report.stats.exact_pairs == 0
                      ? 0.0
                      : 100.0 *
                            static_cast<double>(
                                sparse_report.stats.banded_candidates) /
                            static_cast<double>(
                                sparse_report.stats.exact_pairs),
                  sparse_report.stats.exact_pairs);
    }

    // Workload 3 — high-dirty incremental refresh: ~1/5 of the users
    // churn between snapshots, so the banded plan pays its table-upkeep
    // term (dirty_fraction · entries) every cycle. Shared-cell flips
    // spill dirtiness onto untouched users (the fraction grows with
    // array fill), so past refresh_fallback_fraction the refresh
    // legitimately delegates to a full rebuild — report which path ran
    // rather than assuming the patch.
    VosConfig dirty_config = config;
    dirty_config.track_dirty = true;
    VosSketch dirty_sketch = BuildSketch(dirty_config, users, elements);
    QueryOptions dirty_options = opt_base;
    dirty_options.incremental = true;
    SimilarityIndex dirty_index(dirty_sketch, {}, dirty_options);
    dirty_index.Rebuild(candidates);
    ItemId churn_item = 1u << 30;
    for (UserId u = 0; u < users; u += 5) {
      dirty_sketch.Update({u, churn_item++, Action::kInsert});
    }
    const bool patched = dirty_index.RefreshDirty();
    const optimizer::PassReport dirty_report =
        measure_workload("dirty", dirty_index);
    if (patched) {
      std::printf("optimizer dirty: refresh touched %.0f%% of the rows "
                  "(dirty_fraction %.3f in the banded upkeep term)\n",
                  100.0 * dirty_index.last_refresh_dirty_fraction(),
                  dirty_report.stats.dirty_fraction);
    } else {
      std::printf("optimizer dirty: churn crossed "
                  "refresh_fallback_fraction — full rebuild ran, upkeep "
                  "term priced at dirty_fraction %.3f\n",
                  dirty_report.stats.dirty_fraction);
    }

    // The optimizer's own overhead: statistics + costing per plan call
    // (window sweep + candidate bound; no popcounts).
    constexpr int kPlanCalls = 200;
    const double plan_seconds = BestSeconds(repeats, [&] {
      for (int i = 0; i < kPlanCalls; ++i) {
        (void)sparse_index.PlanAllPairs(tau);
      }
    });
    emit_planned("optimizer", "plan_overhead", 1, plan_seconds / kPlanCalls,
                 kPlanCalls / plan_seconds, "plans/s", 1.0, 1.0, "n/a", 0.0);
    std::printf("optimizer overhead: %.2f us per PlanAllPairs call\n",
                1e6 * plan_seconds / kPlanCalls);
  }

  const std::vector<std::string> header = {
      "phase",      "engine", "kernel",  "threads", "seconds",
      "throughput", "unit",   "speedup", "recall",  "plan",
      "cost"};
  EmitTable(flags, table, header, rows);
  MaybeEmitJson(flags, "micro_query_path", header, rows);
  std::printf("\n%zu pairs above tau=%.2f; batch results verified "
              "bit-identical to the scalar seed path.\n",
              reference.size(), tau);
  std::printf("all_pairs speedup: %.2fx single-thread, %.2fx with %u "
              "threads.\n",
              scalar_pairs / batch_one, scalar_pairs / batch_many, threads);
  std::printf("planner all_pairs scaling 1 -> %u shards: %.2fx vs. the "
              "single global index (task-parallel scatter-gather; needs "
              "multiple hardware threads).\n",
              planner_last_shards, planner_last_speedup);
  return 0;
}

// Micro-benchmark (M3) for the batch query engine: digest-extraction
// throughput (users/s) and all-pairs estimate throughput (pairs/s),
// scalar seed path vs. the DigestMatrix batch engine.
//
// The scalar baseline is the seed implementation kept verbatim as
// SimilarityIndex::AllPairsAboveReference — per-user heap BitVector
// digests, one Hamming-distance call and one closed-form (log) estimator
// evaluation per pair, single-threaded. The batch engine packs all
// digests into one contiguous DigestMatrix (thread-parallel extraction
// over the cached f-seed table), runs word-wise XOR+popcount row kernels,
// replaces per-pair logs with a Rebuild-time log table, prefilters on the
// Hamming bound, and partitions the pair loop across threads. Results are
// verified bit-identical before any timing is reported.
//
// The "planner" phase measures the shard-aware query tier
// (core/query_planner.h): AllPairsAbove planned as same-shard passes plus
// cross-shard blocks, scattered over --planner_threads task workers, at
// S ∈ {1, 4, 8} shards. The S=1 planner IS the single global index
// scanned by one task — the baseline the shard-scaling speedup column is
// measured against. Every planner result is verified bit-identical across
// planner thread counts, and (for --users ≤ 600) identical to the
// per-pair ShardedVosSketch::EstimatePair reference, before timing is
// reported.
//
// Run: ./build/micro_query_path [--users=2000] [--k=6400] [--threads=8]
//      [--tau=0.5] [--repeats=3] [--planner_threads=0] [--csv=out.csv]

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/query_planner.h"
#include "core/sharded_vos_sketch.h"
#include "core/similarity_index.h"
#include "core/vos_sketch.h"

namespace vos::bench {
namespace {

using core::DigestMatrix;
using core::QueryOptions;
using core::QueryPlanner;
using core::ShardedVosConfig;
using core::ShardedVosSketch;
using core::SimilarityIndex;
using core::VosConfig;
using core::VosSketch;
using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

/// Synthetic community: every 4-user group's first two members share 80%
/// of their items (planted near-duplicates), the rest are disjoint — so
/// AllPairsAbove at moderate τ has real hits and realistic misses. Under
/// --dist=zipf (the default) the disjoint users' set sizes follow a
/// heavy-tailed ~1/rank law like real subscription graphs, which is what
/// the engine's cardinality-sorted sweep exploits; --dist=uniform gives
/// every user the same size, the prefilter's worst case.
std::vector<Element> BuildElements(UserId users, size_t edges_per_user,
                                   bool zipf) {
  std::vector<Element> elements;
  for (UserId u = 0; u < users; ++u) {
    const bool clustered = u % 4 <= 1;
    const uint64_t base =
        clustered ? (u / 4) * uint64_t{1000000} : u * uint64_t{1000000};
    size_t edges = edges_per_user;
    if (zipf && !clustered) {
      edges = std::max<size_t>(10, 20 * edges_per_user / (1 + u % 200));
    }
    for (size_t i = 0; i < edges; ++i) {
      const bool shared = clustered && i < edges * 8 / 10;
      const ItemId item = static_cast<ItemId>(
          shared ? base + i : base + 500000 + (u % 4) * 100000 + i);
      elements.push_back({u, item, Action::kInsert});
    }
  }
  return elements;
}

VosSketch BuildSketch(const VosConfig& config, UserId users,
                      const std::vector<Element>& elements) {
  VosSketch sketch(config, users);
  for (const Element& e : elements) sketch.Update(e);
  return sketch;
}

/// Best-of-`repeats` wall time of `fn` in seconds.
template <typename Fn>
double BestSeconds(int repeats, const Fn& fn) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) {
  using namespace vos;
  using namespace vos::bench;

  const Flags flags = ParseFlagsOrDie(
      argc, argv,
      "[--users=N] [--edges_per_user=N] [--k=N] [--m=N] [--threads=N] "
      "[--tau=J] [--repeats=N] [--seed=N] [--dist=zipf|uniform] "
      "[--planner_threads=N] [--planner_shards=N] "
      "[--csv=path] [--json=path]");
  const auto users = static_cast<UserId>(flags.GetInt("users", 2000));
  const auto edges_per_user =
      static_cast<size_t>(flags.GetInt("edges_per_user", 200));
  const auto threads = static_cast<unsigned>(flags.GetInt("threads", 8));
  const double tau = flags.GetDouble("tau", 0.5);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const std::string dist = flags.GetString("dist", "zipf");
  VOS_CHECK(dist == "zipf" || dist == "uniform")
      << "--dist must be zipf or uniform, got" << dist;

  VosConfig config;
  config.k = static_cast<uint32_t>(flags.GetInt("k", 6400));
  config.m = static_cast<uint64_t>(flags.GetInt("m", int64_t{1} << 23));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  PrintBanner("micro_query_path — scalar seed path vs. batch query engine",
              flags);

  const std::vector<Element> elements =
      BuildElements(users, edges_per_user, dist == "zipf");
  const VosSketch sketch = BuildSketch(config, users, elements);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);
  const double num_pairs =
      0.5 * static_cast<double>(users) * (static_cast<double>(users) - 1.0);
  std::printf("sketch: k=%u m=%llu beta=%.4f | %u candidates, %.0f pairs, "
              "tau=%.2f\n\n",
              config.k, static_cast<unsigned long long>(config.m),
              sketch.beta(), users, num_pairs, tau);

  TablePrinter table({"phase", "engine", "threads", "seconds", "throughput",
                      "unit", "speedup"});
  std::vector<std::vector<std::string>> rows;
  auto emit = [&](const std::string& phase, const std::string& engine,
                  unsigned nthreads, double seconds, double throughput,
                  const std::string& unit, double speedup) {
    std::vector<std::string> row = {
        phase,
        engine,
        TablePrinter::FormatInt(nthreads),
        TablePrinter::FormatDouble(seconds, 4),
        TablePrinter::FormatDouble(throughput, 4),
        unit,
        TablePrinter::FormatDouble(speedup, 3)};
    table.AddRow(row);
    rows.push_back(std::move(row));
  };

  // ------------------------------------------------------ digest extraction
  const double scalar_extract = BestSeconds(repeats, [&] {
    std::vector<BitVector> digests;
    digests.reserve(candidates.size());
    for (UserId u : candidates) digests.push_back(sketch.ExtractUserSketch(u));
  });
  emit("extract", "scalar", 1, scalar_extract, users / scalar_extract,
       "users/s", 1.0);
  for (unsigned t : {1u, threads}) {
    const double batch_extract = BestSeconds(repeats, [&] {
      const core::DigestMatrix matrix =
          core::DigestMatrix::Build(sketch, candidates, t);
      (void)matrix;
    });
    emit("extract", "batch", t, batch_extract, users / batch_extract,
         "users/s", scalar_extract / batch_extract);
    if (threads == 1) break;
  }

  // ----------------------------------------------------------- all-pairs
  QueryOptions query_options;
  query_options.num_threads = threads;
  SimilarityIndex index(sketch, {}, query_options);
  index.Rebuild(candidates);

  const auto reference = index.AllPairsAboveReference(tau);
  const auto timed_batch = [&](unsigned t) {
    QueryOptions options = query_options;
    options.num_threads = t;
    index.set_query_options(options);
    (void)index.AllPairsAbove(tau);  // warm caches (evicted by the
                                     // scalar pass's digest copies)
    WallTimer timer;
    const auto result = index.AllPairsAbove(tau);
    const double elapsed = timer.ElapsedSeconds();
    // Verify bit-identical results on every round, not just once.
    VOS_CHECK(result.size() == reference.size())
        << "batch engine disagrees with the scalar reference";
    for (size_t i = 0; i < result.size(); ++i) {
      VOS_CHECK(result[i].u == reference[i].u &&
                result[i].v == reference[i].v &&
                result[i].common == reference[i].common &&
                result[i].jaccard == reference[i].jaccard)
          << "pair " << i << " differs from the scalar reference";
    }
    return elapsed;
  };

  // Interleave the engines within each round so a slow scheduling window
  // on a shared machine penalizes all of them equally; report per-engine
  // minima.
  double scalar_pairs = 0.0, batch_one = 0.0, batch_many = 0.0;
  for (int r = 0; r < repeats; ++r) {
    (void)index.AllPairsAboveReference(tau);  // warm caches
    WallTimer timer;
    const auto result = index.AllPairsAboveReference(tau);
    const double scalar_elapsed = timer.ElapsedSeconds();
    VOS_CHECK(result.size() == reference.size());
    const double one = timed_batch(1);
    const double many = threads == 1 ? one : timed_batch(threads);
    if (r == 0 || scalar_elapsed < scalar_pairs) scalar_pairs = scalar_elapsed;
    if (r == 0 || one < batch_one) batch_one = one;
    if (r == 0 || many < batch_many) batch_many = many;
  }
  emit("all_pairs", "scalar", 1, scalar_pairs, num_pairs / scalar_pairs,
       "pairs/s", 1.0);
  emit("all_pairs", "batch", 1, batch_one, num_pairs / batch_one, "pairs/s",
       scalar_pairs / batch_one);
  if (threads != 1) {
    emit("all_pairs", "batch", threads, batch_many, num_pairs / batch_many,
         "pairs/s", scalar_pairs / batch_many);
  }

  // ------------------------------------------------------ sharded planner
  // Shard-scaling of the query tier: AllPairsAbove through QueryPlanner
  // at S ∈ {1, 4, 8}. The planner parallelizes across tasks (same-shard
  // passes + cross-shard row blocks); at S=1 there is exactly one task —
  // the single global index scanned single-threaded — which is the
  // baseline the speedup column divides by.
  const auto planner_threads =
      static_cast<unsigned>(flags.GetInt("planner_threads", 0));
  const auto max_planner_shards =
      static_cast<uint32_t>(flags.GetInt("planner_shards", 8));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw < 2) {
    std::printf("\n(single hardware thread: planner shard-scaling "
                "degenerates to the cross-shard kernel overhead; run on a "
                "multi-core host for the scaling measurement)\n");
  }
  double planner_base_seconds = 0.0;
  double planner_last_speedup = 1.0;
  uint32_t planner_last_shards = 1;
  for (const uint32_t shards : {1u, 4u, 8u}) {
    if (shards > max_planner_shards) break;
    ShardedVosConfig sharded;
    sharded.base = config;
    sharded.num_shards = shards;
    ShardedVosSketch sharded_sketch(sharded, users);
    sharded_sketch.UpdateBatch(elements.data(), elements.size());

    QueryOptions planner_options;
    planner_options.num_threads = planner_threads;
    QueryPlanner planner(sharded_sketch, {}, planner_options);
    planner.Rebuild(candidates);

    // Verify before timing: bit-identical across planner thread counts,
    // and identical to the per-pair EstimatePair reference when the
    // candidate set is small enough for the O(n²·k) loop.
    QueryOptions one_thread = planner_options;
    one_thread.num_threads = 1;
    QueryPlanner single(sharded_sketch, {}, one_thread);
    single.Rebuild(candidates);
    const auto planner_reference = single.AllPairsAbove(tau);
    const auto planner_result = planner.AllPairsAbove(tau);
    VOS_CHECK(planner_result.size() == planner_reference.size())
        << "planner result depends on thread count at shards=" << shards;
    for (size_t i = 0; i < planner_result.size(); ++i) {
      VOS_CHECK(planner_result[i].u == planner_reference[i].u &&
                planner_result[i].v == planner_reference[i].v &&
                planner_result[i].common == planner_reference[i].common &&
                planner_result[i].jaccard == planner_reference[i].jaccard)
          << "planner pair " << i << " differs across thread counts";
    }
    if (users <= 600) {
      const auto brute = planner.AllPairsAboveReference(tau);
      VOS_CHECK(planner_result.size() == brute.size())
          << "planner disagrees with the EstimatePair reference";
      for (size_t i = 0; i < brute.size(); ++i) {
        VOS_CHECK(planner_result[i].u == brute[i].u &&
                  planner_result[i].v == brute[i].v &&
                  planner_result[i].common == brute[i].common &&
                  planner_result[i].jaccard == brute[i].jaccard)
            << "planner pair " << i << " differs from EstimatePair";
      }
    }

    const double planner_seconds = BestSeconds(repeats, [&] {
      (void)planner.AllPairsAbove(tau);
    });
    if (shards == 1) planner_base_seconds = planner_seconds;
    const double speedup = planner_base_seconds / planner_seconds;
    planner_last_speedup = speedup;
    planner_last_shards = shards;
    emit("planner_all_pairs", "planner-s" + std::to_string(shards),
         planner_threads, planner_seconds, num_pairs / planner_seconds,
         "pairs/s", speedup);
  }

  const std::vector<std::string> header = {
      "phase", "engine", "threads", "seconds", "throughput", "unit",
      "speedup"};
  EmitTable(flags, table, header, rows);
  MaybeEmitJson(flags, "micro_query_path", header, rows);
  std::printf("\n%zu pairs above tau=%.2f; batch results verified "
              "bit-identical to the scalar seed path.\n",
              reference.size(), tau);
  std::printf("all_pairs speedup: %.2fx single-thread, %.2fx with %u "
              "threads.\n",
              scalar_pairs / batch_one, scalar_pairs / batch_many, threads);
  std::printf("planner all_pairs scaling 1 -> %u shards: %.2fx vs. the "
              "single global index (task-parallel scatter-gather; needs "
              "multiple hardware threads).\n",
              planner_last_shards, planner_last_speedup);
  return 0;
}

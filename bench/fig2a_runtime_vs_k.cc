// Reproduces Figure 2(a): sketch-update runtime as the sketch size k grows.
//
// Paper setting: YouTube stream, k swept from 1 to 10^5, runtime of updating
// the sketch for every stream element, methods MinHash / OPH / RP / VOS.
// Expected shape: MinHash and RP grow linearly in k (every element touches
// all k registers); OPH and VOS stay flat (O(1) per element).
//
// Reproduction notes: the `runtime_s` preset (2,000 users) stands in for the
// full YouTube crawl so that the O(k)-memory baselines fit in RAM at large
// k; the default sweep stops at 10^4 to keep the default bench run short.
// Flags: --dataset --scale --kmax (10000) --lambda (2) --csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "harness/experiment.h"

namespace vos::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags = ParseFlagsOrDie(
      argc, argv, "[--dataset=runtime_s] [--kmax=10000] [--lambda=2] [--csv=]");
  PrintBanner("Figure 2(a): update runtime vs sketch size k", flags);

  const stream::GraphStream stream = DatasetOrDie(flags, "runtime_s");
  const auto stats = stream.ComputeStats();
  std::printf("dataset %s: %zu elements (%zu ins / %zu del), |U|=%u |I|=%u\n\n",
              stream.name().c_str(), stats.num_elements, stats.num_insertions,
              stats.num_deletions, stream.num_users(), stream.num_items());

  const int64_t kmax = flags.GetInt("kmax", 10000);
  std::vector<uint32_t> ks;
  for (int64_t k = 1; k <= kmax; k *= 10) ks.push_back(static_cast<uint32_t>(k));

  const std::vector<std::string> header = {"k", "method", "seconds",
                                           "ns_per_element"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  for (uint32_t k : ks) {
    for (const std::string& method : harness::PaperMethods()) {
      harness::MethodFactoryConfig factory;
      factory.base_k = k;
      factory.lambda = flags.GetDouble("lambda", 2.0);
      factory.seed = 99;
      auto seconds = harness::MeasureUpdateRuntime(stream, method, factory);
      if (!seconds.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     seconds.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {
          TablePrinter::FormatInt(k), method,
          TablePrinter::FormatDouble(*seconds, 4),
          TablePrinter::FormatDouble(*seconds * 1e9 / stats.num_elements, 4)};
      table.AddRow(row);
      rows.push_back(std::move(row));
    }
  }
  EmitTable(flags, table, header, rows);
  std::printf(
      "\nexpected shape: MinHash and RP scale linearly with k; OPH and VOS "
      "stay flat (O(1) per element).\n");
  return 0;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) { return vos::bench::Run(argc, argv); }

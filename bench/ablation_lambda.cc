// Ablation A1: sensitivity of VOS to the virtual-size multiplier λ.
//
// §V fixes λ = 2 ("we can directly set it as λ times larger than the memory
// space used by each sketch of MinHash, OPH and RP"). This bench sweeps λ
// and reports final AAPE/ARMSE on one dataset, holding the shared-array
// budget m = 32·k·|U| constant: larger λ gives each user more virtual bits
// (lower quantization error) but does not change m, so the useful range
// saturates once the per-pair symmetric difference is well below k_vos.
// Flags: --dataset (youtube_s) --k (100) --lambdas (1,2,3,4) --csv.

#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"
#include "harness/experiment.h"

namespace vos::bench {
namespace {

std::vector<double> ParseLambdas(const std::string& csv) {
  std::vector<double> out;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) out.push_back(std::stod(token));
  return out;
}

int Run(int argc, char** argv) {
  Flags flags = ParseFlagsOrDie(
      argc, argv, "[--dataset=youtube_s] [--k=100] [--lambdas=1,2,3,4]");
  PrintBanner("Ablation A1: VOS accuracy vs lambda (virtual sketch size)",
              flags);
  const stream::GraphStream stream = DatasetOrDie(flags, "youtube_s");

  const std::vector<std::string> header = {"lambda", "virtual_k", "AAPE",
                                           "ARMSE"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  for (double lambda : ParseLambdas(flags.GetString("lambdas", "1,2,3,4"))) {
    harness::ExperimentConfig config;
    config.top_users = static_cast<size_t>(flags.GetInt("top-users", 300));
    config.max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 20000));
    config.num_checkpoints = 1;
    config.factory.base_k = static_cast<uint32_t>(flags.GetInt("k", 100));
    config.factory.lambda = lambda;
    config.factory.seed = 99;
    auto result = harness::RunAccuracyExperiment(stream, {"VOS"}, config);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const harness::MemoryBudget budget(config.factory.base_k,
                                       stream.num_users());
    const harness::PairMetrics& m = result->Final().methods[0].metrics;
    std::vector<std::string> row = {
        TablePrinter::FormatDouble(lambda, 3),
        TablePrinter::FormatInt(budget.VosVirtualK(lambda)),
        TablePrinter::FormatDouble(m.aape, 4),
        TablePrinter::FormatDouble(m.armse, 4)};
    table.AddRow(row);
    rows.push_back(std::move(row));
  }
  EmitTable(flags, table, header, rows);
  std::printf(
      "\nexpected shape: error drops sharply from lambda=1 and flattens "
      "around the paper's choice lambda=2.\n");
  return 0;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) { return vos::bench::Run(argc, argv); }

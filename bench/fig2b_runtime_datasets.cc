// Reproduces Figure 2(b): sketch-update runtime across all four datasets at
// a large fixed sketch size.
//
// Paper setting: k = 10^5, full YouTube/Flickr/Orkut/LiveJournal streams.
// Expected shape: on every dataset, MinHash and RP are orders of magnitude
// slower than OPH and VOS, whose cost tracks only the stream length.
//
// Reproduction notes: k defaults to 10^4 and the measured stream is capped
// at --max-elements (default 400,000) so that all four datasets run in
// minutes on a laptop; the per-element cost (the quantity the figure's
// shape encodes) is unaffected by the cap. Flags: --k --max-elements
// --lambda --csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "harness/experiment.h"

namespace vos::bench {
namespace {

/// Truncates `stream` to its first `max_elements` elements (keeps domains).
stream::GraphStream Truncate(const stream::GraphStream& stream,
                             size_t max_elements) {
  if (stream.size() <= max_elements) return stream;
  stream::GraphStream prefix(stream.name(), stream.num_users(),
                             stream.num_items());
  prefix.Reserve(max_elements);
  for (size_t t = 0; t < max_elements; ++t) prefix.Append(stream[t]);
  return prefix;
}

int Run(int argc, char** argv) {
  Flags flags = ParseFlagsOrDie(
      argc, argv, "[--k=10000] [--max-elements=400000] [--scale=1] [--csv=]");
  PrintBanner("Figure 2(b): update runtime across datasets (large k)", flags);

  const auto k = static_cast<uint32_t>(flags.GetInt("k", 10000));
  const auto max_elements =
      static_cast<size_t>(flags.GetInt("max-elements", 400000));
  const double scale = flags.GetDouble("scale", 1.0);

  const std::vector<std::string> header = {"dataset", "method", "elements",
                                           "seconds", "ns_per_element"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : stream::PaperDatasets()) {
    auto spec = stream::GetDatasetSpec(name);
    if (!spec.ok()) {
      std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    if (scale != 1.0) *spec = stream::ScaleSpec(*spec, scale);
    const stream::GraphStream full = stream::GenerateDataset(*spec);
    const stream::GraphStream measured = Truncate(full, max_elements);
    for (const std::string& method : harness::PaperMethods()) {
      harness::MethodFactoryConfig factory;
      factory.base_k = k;
      factory.lambda = flags.GetDouble("lambda", 2.0);
      factory.seed = 99;
      auto seconds = harness::MeasureUpdateRuntime(measured, method, factory);
      if (!seconds.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     seconds.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {
          name, method, TablePrinter::FormatInt(measured.size()),
          TablePrinter::FormatDouble(*seconds, 4),
          TablePrinter::FormatDouble(*seconds * 1e9 / measured.size(), 4)};
      table.AddRow(row);
      rows.push_back(std::move(row));
    }
  }
  EmitTable(flags, table, header, rows);
  std::printf(
      "\nexpected shape: on every dataset MinHash and RP pay O(k) per "
      "element; OPH and VOS pay O(1).\n");
  return 0;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) { return vos::bench::Run(argc, argv); }

// Reproduces Figure 3(a): AAPE of the common-item estimate ŝ_uv over time t
// on the YouTube stand-in, k = 100, equal memory m = 32·k·|U| bits, λ = 2.

#include "bench/fig3_common.h"

int main(int argc, char** argv) {
  return vos::bench::RunTimeSeriesPanel(
      argc, argv, vos::bench::Fig3Metric::kAape,
      "Figure 3(a): AAPE of common-item estimates over time (YouTube)");
}

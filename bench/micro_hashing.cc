// Micro-benchmarks (M1) for the hashing substrate: the per-element cost of
// every hash family available to the sketches. VOS's O(1) update is two
// Hash64 evaluations plus a bit flip, so these numbers bound its
// throughput.

#include <benchmark/benchmark.h>

#include "hashing/feistel_permutation.h"
#include "hashing/hash64.h"
#include "hashing/tabulation.h"
#include "hashing/two_universal.h"

namespace vos::hash {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 0x1234;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_Hash64Seeded(benchmark::State& state) {
  uint64_t x = 0x1234;
  for (auto _ : state) {
    x = Hash64(x, 42);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Hash64Seeded);

void BM_TwoUniversal(benchmark::State& state) {
  TwoUniversalHash h(7, 1 << 20);
  uint64_t x = 0x1234;
  for (auto _ : state) {
    x += h(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_TwoUniversal);

void BM_Tabulation(benchmark::State& state) {
  TabulationHash h(7);
  uint64_t x = 0x1234;
  for (auto _ : state) {
    x += h(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Tabulation);

void BM_FeistelApply(benchmark::State& state) {
  FeistelPermutation perm(7, static_cast<uint64_t>(state.range(0)));
  uint64_t x = 0;
  for (auto _ : state) {
    x = perm.Apply(x % perm.domain_size());
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FeistelApply)->Arg(1 << 10)->Arg(1 << 20)->Arg((1 << 20) + 7);

void BM_ReduceToRange(benchmark::State& state) {
  uint64_t x = 0x9999;
  for (auto _ : state) {
    x += ReduceToRange(Mix64(x), 6400);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ReduceToRange);

}  // namespace
}  // namespace vos::hash

BENCHMARK_MAIN();

// Shared logic of the four Figure 3 panels: run the §V accuracy protocol
// and print either a metric's time series on one dataset (panels a/c) or
// its final value across all datasets (panels b/d).

#pragma once

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "harness/experiment.h"

namespace vos::bench {

/// Which metric a panel reports.
enum class Fig3Metric { kAape, kArmse };

inline double MetricOf(const harness::PairMetrics& m, Fig3Metric metric) {
  return metric == Fig3Metric::kAape ? m.aape : m.armse;
}

inline const char* MetricName(Fig3Metric metric) {
  return metric == Fig3Metric::kAape ? "AAPE" : "ARMSE";
}

/// Builds the experiment configuration from common flags:
/// --k (100), --lambda (2), --top-users (300), --max-pairs (20000),
/// --checkpoints, --seed (99).
inline harness::ExperimentConfig ConfigFromFlags(const Flags& flags,
                                                 size_t default_checkpoints) {
  harness::ExperimentConfig config;
  config.top_users = static_cast<size_t>(flags.GetInt("top-users", 300));
  config.max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 20000));
  config.num_checkpoints =
      static_cast<size_t>(flags.GetInt("checkpoints", default_checkpoints));
  config.factory.base_k = static_cast<uint32_t>(flags.GetInt("k", 100));
  config.factory.lambda = flags.GetDouble("lambda", 2.0);
  config.factory.seed = static_cast<uint64_t>(flags.GetInt("seed", 99));
  return config;
}

/// Panels (a)/(c): metric over time t on one dataset (default youtube_s).
inline int RunTimeSeriesPanel(int argc, char** argv, Fig3Metric metric,
                              const std::string& title) {
  Flags flags = ParseFlagsOrDie(argc, argv,
                                "[--dataset=youtube_s] [--k=100] [--lambda=2] "
                                "[--top-users=300] [--max-pairs=20000] "
                                "[--checkpoints=12] [--csv=]");
  PrintBanner(title, flags);
  const stream::GraphStream stream = DatasetOrDie(flags, "youtube_s");
  const harness::ExperimentConfig config = ConfigFromFlags(flags, 12);

  auto result = harness::RunAccuracyExperiment(
      stream, harness::PaperMethods(), config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset %s: %zu elements, %zu tracked users, %zu tracked "
              "pairs, k=%u, lambda=%g\n\n",
              result->stream_name.c_str(), result->stream_elements,
              result->tracked_users, result->tracked_pairs,
              config.factory.base_k, config.factory.lambda);

  std::vector<std::string> header = {"t", "live_edges"};
  for (const std::string& m : harness::PaperMethods()) header.push_back(m);
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  for (const harness::Checkpoint& cp : result->checkpoints) {
    std::vector<std::string> row = {TablePrinter::FormatInt(cp.t),
                                    TablePrinter::FormatInt(cp.live_edges)};
    for (const harness::MethodCheckpoint& mc : cp.methods) {
      row.push_back(
          TablePrinter::FormatDouble(MetricOf(mc.metrics, metric), 4));
    }
    table.AddRow(row);
    rows.push_back(std::move(row));
  }
  EmitTable(flags, table, header, rows);
  std::printf(
      "\nexpected shape: VOS lowest %s at every checkpoint; MinHash/OPH "
      "degrade after the massive deletions; RP unbiased but high-variance.\n",
      MetricName(metric));
  return 0;
}

/// Panels (b)/(d): metric at the end of the stream on all four datasets.
inline int RunDatasetsPanel(int argc, char** argv, Fig3Metric metric,
                            const std::string& title) {
  Flags flags = ParseFlagsOrDie(argc, argv,
                                "[--k=100] [--lambda=2] [--top-users=300] "
                                "[--max-pairs=20000] [--scale=1] [--csv=]");
  PrintBanner(title, flags);
  harness::ExperimentConfig config = ConfigFromFlags(flags, 1);
  config.num_checkpoints = 1;  // final state only, as in the paper's panel
  const double scale = flags.GetDouble("scale", 1.0);

  std::vector<std::string> header = {"dataset"};
  for (const std::string& m : harness::PaperMethods()) header.push_back(m);
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : stream::PaperDatasets()) {
    auto spec = stream::GetDatasetSpec(name);
    if (!spec.ok()) {
      std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    if (scale != 1.0) *spec = stream::ScaleSpec(*spec, scale);
    const stream::GraphStream stream = stream::GenerateDataset(*spec);
    auto result = harness::RunAccuracyExperiment(
        stream, harness::PaperMethods(), config);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row = {name};
    for (const harness::MethodCheckpoint& mc : result->Final().methods) {
      row.push_back(
          TablePrinter::FormatDouble(MetricOf(mc.metrics, metric), 4));
    }
    table.AddRow(row);
    rows.push_back(std::move(row));
  }
  EmitTable(flags, table, header, rows);
  std::printf("\nexpected shape: VOS has the smallest %s on every dataset.\n",
              MetricName(metric));
  return 0;
}

}  // namespace vos::bench

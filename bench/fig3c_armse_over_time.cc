// Reproduces Figure 3(c): ARMSE of the Jaccard estimate Ĵ(S_u, S_v) over
// time t on the YouTube stand-in, k = 100, equal memory, λ = 2.

#include "bench/fig3_common.h"

int main(int argc, char** argv) {
  return vos::bench::RunTimeSeriesPanel(
      argc, argv, vos::bench::Fig3Metric::kArmse,
      "Figure 3(c): ARMSE of Jaccard estimates over time (YouTube)");
}

// Ablation A2: contamination β and the estimator's β-correction.
//
// The defining risk of virtualizing odd sketches in one shared array is
// cross-user contamination: each reconstructed bit is wrong with
// probability β (the array's 1-bit fraction). This bench plants one tracked
// pair with known overlap in a VosSketch, then adds waves of background
// users to drive β up, reporting at each fill level:
//
//   * the measured error of the β-corrected estimate (the paper's ŝ), and
//   * the error a naive estimator that ignores β (β := 0) would make.
//
// Expected shape: the corrected estimate stays near the truth until β gets
// close to ½ (noise grows but no systematic drift); the uncorrected one
// degrades roughly linearly in β. Flags: --k (6400) --m-bits (1<<20)
// --pair-items (600) --common (300) --waves (8) --csv.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/popcount.h"
#include "core/digest_matrix.h"
#include "core/vos_estimator.h"
#include "core/vos_sketch.h"

namespace vos::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags = ParseFlagsOrDie(
      argc, argv,
      "[--k=6400] [--m-bits=1048576] [--pair-items=600] [--common=300] "
      "[--waves=8] [--trials=5] [--csv=]");
  PrintBanner("Ablation A2: contamination beta vs estimate quality", flags);

  const auto k = static_cast<uint32_t>(flags.GetInt("k", 6400));
  const auto m_bits = static_cast<uint64_t>(flags.GetInt("m-bits", 1 << 20));
  const auto pair_items =
      static_cast<uint32_t>(flags.GetInt("pair-items", 600));
  const auto common = static_cast<uint32_t>(flags.GetInt("common", 300));
  const auto waves = static_cast<size_t>(flags.GetInt("waves", 8));
  const auto trials = static_cast<size_t>(flags.GetInt("trials", 5));
  VOS_CHECK(common <= pair_items);

  const std::vector<std::string> header = {
      "beta", "corrected_mean_err", "uncorrected_mean_err", "expected_sd"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;

  // Background load per wave: enough users to lift beta by a few percent.
  const uint32_t background_users_per_wave = 400;
  const uint32_t background_degree =
      static_cast<uint32_t>(m_bits / (12 * background_users_per_wave * waves));

  for (size_t wave = 0; wave <= waves; ++wave) {
    double corrected_err = 0.0;
    double uncorrected_err = 0.0;
    double beta_sum = 0.0;
    double expected_sd = 0.0;
    for (size_t trial = 0; trial < trials; ++trial) {
      core::VosConfig config;
      config.k = k;
      config.m = m_bits;
      config.seed = 1000 + trial;
      const stream::UserId num_users =
          2 + background_users_per_wave * static_cast<stream::UserId>(waves);
      core::VosSketch sketch(config, num_users);

      // Tracked pair: users 0 and 1 share `common` items.
      for (uint32_t i = 0; i < pair_items; ++i) {
        sketch.Update({0, i, stream::Action::kInsert});
        const uint32_t v_item = i < common ? i : i + 1000000;
        sketch.Update({1, v_item, stream::Action::kInsert});
      }
      // Background load: `wave` waves of users.
      Rng rng(77 + trial);
      for (uint32_t bg = 0; bg < wave * background_users_per_wave; ++bg) {
        const stream::UserId user = 2 + bg;
        for (uint32_t d = 0; d < background_degree; ++d) {
          sketch.Update({user,
                         static_cast<stream::ItemId>(rng.NextBounded(1 << 30)),
                         stream::Action::kInsert});
        }
      }

      // Batch-extract the tracked pair's digests into contiguous rows
      // (core/digest_matrix.h) instead of two heap BitVectors.
      const core::DigestMatrix digests =
          core::DigestMatrix::Build(sketch, {0, 1}, /*num_threads=*/1);
      const size_t d = XorPopcount(digests.Row(0), digests.Row(1),
                                   digests.words_per_row());
      const double alpha = static_cast<double>(d) / k;
      const double beta = sketch.beta();
      beta_sum += beta;

      core::VosEstimator estimator(k);
      corrected_err += std::fabs(
          estimator.EstimateCommonItems(pair_items, pair_items, alpha, beta) -
          common);
      uncorrected_err += std::fabs(
          estimator.EstimateCommonItems(pair_items, pair_items, alpha, 0.0) -
          common);
      const double n_delta = 2.0 * (pair_items - common);
      expected_sd +=
          std::sqrt(std::max(0.0, estimator.VarianceCommonEstimate(
                                      n_delta, beta))) /
          trials;
    }
    std::vector<std::string> row = {
        TablePrinter::FormatDouble(beta_sum / trials, 3),
        TablePrinter::FormatDouble(corrected_err / trials, 4),
        TablePrinter::FormatDouble(uncorrected_err / trials, 4),
        TablePrinter::FormatDouble(expected_sd, 4)};
    table.AddRow(row);
    rows.push_back(std::move(row));
  }
  EmitTable(flags, table, header, rows);
  std::printf(
      "\nexpected shape: the beta-corrected error stays flat (noise only) "
      "while the uncorrected error grows with beta.\n");
  return 0;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) { return vos::bench::Run(argc, argv); }

// Reproduces Figure 3(d): ARMSE of the Jaccard estimate Ĵ(S_u, S_v) at the
// end of the stream on all four datasets, k = 100, equal memory, λ = 2.

#include "bench/fig3_common.h"

int main(int argc, char** argv) {
  return vos::bench::RunDatasetsPanel(
      argc, argv, vos::bench::Fig3Metric::kArmse,
      "Figure 3(d): final ARMSE of Jaccard estimates on all datasets");
}

// Micro-benchmarks (M2) for per-element sketch update cost — the operation
// Figure 2 times at macro scale. Measured per single Update() call on a
// prepared stream, for each method at representative sketch sizes.

#include <benchmark/benchmark.h>

#include "baselines/minhash.h"
#include "baselines/oph.h"
#include "baselines/random_pairing.h"
#include "core/vos_method.h"
#include "stream/dataset.h"

namespace vos {
namespace {

using stream::GraphStream;

const GraphStream& UnitStream() {
  static const GraphStream stream = [] {
    auto s = stream::GenerateDatasetByName("unit");
    VOS_CHECK(s.ok());
    return *std::move(s);
  }();
  return stream;
}

template <typename Method>
void DriveUpdates(benchmark::State& state, Method& method) {
  const GraphStream& stream = UnitStream();
  size_t t = 0;
  // Replay the stream cyclically: one full cycle returns every set to its
  // starting state only for VOS (parity); for register methods the state
  // converges to a steady churn, which is fine for timing.
  for (auto _ : state) {
    method.Update(stream[t]);
    if (++t == stream.size()) t = 0;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_VosUpdate(benchmark::State& state) {
  core::VosConfig config;
  config.k = static_cast<uint32_t>(state.range(0));
  config.m = 1 << 22;
  // The paper's bare O(1) update: no dirty tracking on the timed path.
  config.track_dirty = false;
  core::VosMethod method(config, UnitStream().num_users());
  DriveUpdates(state, method);
}
BENCHMARK(BM_VosUpdate)->Arg(100)->Arg(6400)->Arg(100000);

void BM_OphUpdate(benchmark::State& state) {
  baseline::OphConfig config;
  config.k = static_cast<uint32_t>(state.range(0));
  baseline::Oph method(config, UnitStream().num_users(),
                       UnitStream().num_items());
  DriveUpdates(state, method);
}
BENCHMARK(BM_OphUpdate)->Arg(100)->Arg(6400);

void BM_MinHashUpdate(benchmark::State& state) {
  baseline::MinHashConfig config;
  config.k = static_cast<uint32_t>(state.range(0));
  baseline::MinHash method(config, UnitStream().num_users(),
                           UnitStream().num_items());
  DriveUpdates(state, method);
}
BENCHMARK(BM_MinHashUpdate)->Arg(10)->Arg(100)->Arg(1000);

void BM_RandomPairingUpdate(benchmark::State& state) {
  baseline::RandomPairingConfig config;
  config.k = static_cast<uint32_t>(state.range(0));
  baseline::RandomPairing method(config, UnitStream().num_users());
  DriveUpdates(state, method);
}
BENCHMARK(BM_RandomPairingUpdate)->Arg(10)->Arg(100)->Arg(1000);

void BM_VosPairEstimate(benchmark::State& state) {
  core::VosConfig config;
  config.k = static_cast<uint32_t>(state.range(0));
  config.m = 1 << 22;
  core::VosMethod method(config, UnitStream().num_users());
  for (const auto& e : UnitStream().elements()) method.Update(e);
  method.PrepareQuery({0, 1});
  for (auto _ : state) {
    auto est = method.EstimatePair(0, 1);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_VosPairEstimate)->Arg(100)->Arg(6400);

}  // namespace
}  // namespace vos

BENCHMARK_MAIN();

// Ablation A6: consistent weighted sampling (ICWS, related work [10]) —
// accuracy vs sketch size, and the static-rebuild cost that motivates
// streaming sketches.
//
// Two panels:
//   1. Accuracy: ICWS match-rate vs exact generalized Jaccard over a sweep
//     of sketch sizes k, on synthetic heavy-tailed weighted vectors —
//     the error shrinks as 1/√k (the CWS guarantee).
//   2. Cost: time to (re)build an ICWS sketch after a weight update versus
//     a VOS O(1) streaming update at equal per-user memory — the reason §I
//     groups weighted minwise methods with the static-dataset approaches.
// Flags: --pairs (200) --items (300) --csv.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/vos_sketch.h"
#include "weighted/icws.h"

namespace vos::bench {
namespace {

weighted::WeightedSet RandomVector(Rng& rng, uint32_t items, double share,
                                   const weighted::WeightedSet* base) {
  weighted::WeightedSet set;
  for (uint32_t i = 0; i < items; ++i) {
    if (base != nullptr && rng.NextBernoulli(share)) {
      // Copy a correlated weight from the base vector.
      const auto item = static_cast<stream::ItemId>(i);
      const double w = base->Weight(item);
      if (w > 0) set.Set(item, w * (0.5 + rng.NextDouble()));
      continue;
    }
    if (rng.NextBernoulli(0.7)) {
      set.Set(i + (base ? 1000000 : 0), 0.1 + 5.0 * rng.NextDouble());
    }
  }
  return set;
}

int Run(int argc, char** argv) {
  Flags flags = ParseFlagsOrDie(argc, argv,
                                "[--pairs=200] [--items=300] [--csv=]");
  PrintBanner("Ablation A6: ICWS accuracy vs k, and rebuild-vs-stream cost",
              flags);
  const auto pairs = static_cast<size_t>(flags.GetInt("pairs", 200));
  const auto items = static_cast<uint32_t>(flags.GetInt("items", 300));

  // Panel 1: mean |estimate − exact| over random correlated vector pairs.
  const std::vector<std::string> header = {"k", "mean_abs_error",
                                           "rms_error"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  Rng rng(2025);
  std::vector<std::pair<weighted::WeightedSet, weighted::WeightedSet>> data;
  for (size_t p = 0; p < pairs; ++p) {
    weighted::WeightedSet x = RandomVector(rng, items, 0.0, nullptr);
    weighted::WeightedSet y = RandomVector(rng, items, 0.6, &x);
    data.emplace_back(std::move(x), std::move(y));
  }
  for (uint32_t k : {16u, 64u, 256u, 1024u}) {
    double abs_sum = 0, sq_sum = 0;
    for (size_t p = 0; p < data.size(); ++p) {
      const double exact =
          weighted::GeneralizedJaccard(data[p].first, data[p].second);
      weighted::IcwsSketch a(data[p].first, k, 100 + p);
      weighted::IcwsSketch b(data[p].second, k, 100 + p);
      const double err =
          weighted::IcwsSketch::EstimateJaccard(a, b) - exact;
      abs_sum += std::fabs(err);
      sq_sum += err * err;
    }
    std::vector<std::string> row = {
        TablePrinter::FormatInt(k),
        TablePrinter::FormatDouble(abs_sum / data.size(), 4),
        TablePrinter::FormatDouble(std::sqrt(sq_sum / data.size()), 4)};
    table.AddRow(row);
    rows.push_back(std::move(row));
  }
  EmitTable(flags, table, header, rows);

  // Panel 2: one weight update = full ICWS rebuild vs one VOS bit flip.
  const uint32_t k_icws = 256;
  weighted::WeightedSet victim = RandomVector(rng, items, 0.0, nullptr);
  WallTimer rebuild_timer;
  constexpr int kRebuilds = 50;
  for (int i = 0; i < kRebuilds; ++i) {
    victim.Set(1, 1.0 + i);  // one weight changes...
    weighted::IcwsSketch rebuilt(victim, k_icws, 9);  // ...full rebuild
    (void)rebuilt;
  }
  const double rebuild_us =
      rebuild_timer.ElapsedSeconds() * 1e6 / kRebuilds;

  core::VosConfig config;
  config.k = 8192;
  config.m = 1 << 20;
  core::VosSketch vos(config, 4);
  WallTimer stream_timer;
  constexpr int kUpdates = 200000;
  for (int i = 0; i < kUpdates; ++i) {
    // Feasible churn: insert item i/2, then delete it on the next step.
    vos.Update({0, static_cast<stream::ItemId>(i / 2),
                i % 2 == 0 ? stream::Action::kInsert
                           : stream::Action::kDelete});
  }
  const double update_ns = stream_timer.ElapsedSeconds() * 1e9 / kUpdates;

  std::printf(
      "\none weight update: ICWS rebuild (k=%u, %u items) = %.1f µs;  "
      "VOS streaming update = %.1f ns  (≈ %.0fx)\n",
      k_icws, items, rebuild_us, update_ns,
      rebuild_us * 1000.0 / update_ns);
  std::printf(
      "\nexpected shape: ICWS error ∝ 1/sqrt(k) (static-dataset guarantee); "
      "its per-update cost is a full rebuild, which is why §I groups "
      "weighted minwise methods with the static approaches VOS replaces.\n");
  return 0;
}

}  // namespace
}  // namespace vos::bench

int main(int argc, char** argv) { return vos::bench::Run(argc, argv); }

// Collaborative filtering over a live subscription stream (the motivating
// application of the paper's introduction, cf. TrustSVD [2]).
//
// A synthetic "YouTube-like" community subscribes and unsubscribes to
// channels over time. For a focal user we continuously maintain, via one
// shared VOS sketch:
//   * their most similar peers (by estimated Jaccard), and
//   * channel recommendations — channels the most similar peer follows that
//     the focal user does not.
//
// An exact store runs alongside purely for demonstration, so every printed
// estimate is shown next to the truth. A production deployment would keep
// only the sketch (the whole point: the sketch is ~32 bits/user·register
// instead of full adjacency).
//
// Run: ./build/examples/social_recommendation

#include <cstdio>
#include <memory>
#include <vector>

#include "core/similarity_index.h"
#include "core/vos_method.h"
#include "exact/exact_store.h"
#include "stream/dataset.h"

namespace {

using vos::core::SimilarityIndex;
using vos::core::VosConfig;
using vos::core::VosMethod;
using vos::stream::UserId;

}  // namespace

int main() {
  // The "toy" preset: 400 users, 1,500 channels, 100k subscriptions with
  // two ~50% massive unsubscription waves (Trièst-style).
  auto generated = vos::stream::GenerateDatasetByName("toy");
  VOS_CHECK(generated.ok()) << generated.status().ToString();
  const vos::stream::GraphStream& stream = *generated;

  VosConfig config;
  config.k = 6400;
  config.m = uint64_t{1} << 23;
  VosMethod method(config, stream.num_users());
  vos::exact::ExactStore exact(stream.num_users());

  const UserId focal = 3;  // a high-activity user in this preset
  std::vector<UserId> candidates;
  for (UserId u = 0; u < 64; ++u) candidates.push_back(u);

  // The batch query engine: MakeIndex builds a snapshot configured with
  // the method's QueryOptions; Rebuild() re-snapshots every candidate
  // digest once per checkpoint (thread-parallel), then TopK is a handful
  // of row kernels instead of per-pair sketch reconstructions.
  const std::unique_ptr<SimilarityIndex> index = method.MakeIndex(candidates);

  // Replay the stream; at a few checkpoints, surface neighbors and
  // recommendations.
  const size_t checkpoint_every = stream.size() / 4;
  for (size_t t = 0; t < stream.size(); ++t) {
    method.Update(stream[t]);
    exact.Update(stream[t]);
    if ((t + 1) % checkpoint_every != 0) continue;

    std::printf("=== t = %zu (focal user %u follows %u channels) ===\n",
                t + 1, focal, method.sketch().Cardinality(focal));
    index->Rebuild(candidates);
    const auto peers = index->TopK(focal, 3);
    for (const SimilarityIndex::Entry& peer : peers) {
      std::printf("  peer %3u: estimated J = %.3f (exact %.3f)\n", peer.user,
                  peer.jaccard, exact.Jaccard(focal, peer.user));
    }
    if (!peers.empty()) {
      // Recommend up to 5 channels the best peer follows and focal doesn't.
      // (Channel lookup uses the exact store — recommendation *content*
      // needs the peer's list; the sketch's job was finding the peer.)
      std::printf("  recommendations from peer %u:", peers[0].user);
      int shown = 0;
      for (vos::stream::ItemId channel : exact.Items(peers[0].user)) {
        if (exact.Items(focal).count(channel)) continue;
        std::printf(" %u", channel);
        if (++shown == 5) break;
      }
      std::printf("\n");
    }
  }
  std::printf("done: %zu stream elements, sketch memory %zu KiB, "
              "beta = %.4f\n",
              stream.size(), method.MemoryBits() / 8192,
              method.sketch().beta());
  return 0;
}

// Quickstart: estimate user similarities over a fully dynamic graph stream
// with VOS in ~40 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/vos_method.h"
#include "stream/element.h"

int main() {
  using vos::stream::Action;

  // A VOS sketch for 1,000 users: each user's virtual odd sketch has
  // k = 6400 bits, all stored in one shared array of 2^22 bits (512 KiB).
  vos::core::VosConfig config;
  config.k = 6400;
  config.m = uint64_t{1} << 22;
  config.seed = 42;
  vos::core::VosMethod vos_method(config, /*num_users=*/1000);

  // Alice (user 0) and Bob (user 1) subscribe to overlapping channels.
  // Channels 0..149 are shared; 150..249 are Alice-only, 300..399 Bob-only.
  for (uint32_t channel = 0; channel < 250; ++channel) {
    vos_method.Update({0, channel, Action::kInsert});
  }
  for (uint32_t channel = 0; channel < 150; ++channel) {
    vos_method.Update({1, channel, Action::kInsert});
  }
  for (uint32_t channel = 300; channel < 400; ++channel) {
    vos_method.Update({1, channel, Action::kInsert});
  }

  auto before = vos_method.EstimatePair(0, 1);
  std::printf("before unsubscriptions: common ≈ %.1f (true 150), "
              "Jaccard ≈ %.3f (true %.3f)\n",
              before.common, before.jaccard, 150.0 / 350.0);

  // Fully dynamic: Alice unsubscribes from half of the shared channels.
  // Deletions are the same O(1) bit flip as insertions — no rebuild.
  for (uint32_t channel = 0; channel < 75; ++channel) {
    vos_method.Update({0, channel, Action::kDelete});
  }

  auto after = vos_method.EstimatePair(0, 1);
  std::printf("after  unsubscriptions: common ≈ %.1f (true 75), "
              "Jaccard ≈ %.3f (true %.3f)\n",
              after.common, after.jaccard, 75.0 / 325.0);

  std::printf("shared array fill beta = %.4f, sketch memory = %zu KiB\n",
              vos_method.sketch().beta(), vos_method.MemoryBits() / 8192);
  return 0;
}

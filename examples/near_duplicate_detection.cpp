// Streaming near-duplicate detection (the dedup application of the paper's
// introduction, cf. SILO [1]).
//
// Documents are "users", shingle hashes are "items". Documents arrive and
// then age: every expiry round, 15% of the globally live features age out
// of the store and disappear from every document holding them — feature
// *deletions*, exactly the fully dynamic setting where min-wise digests go
// stale. Global expiry scales every pair's intersection and union by the
// same factor, so the true Jaccard stays ~constant: the correct answer
// remains "these documents are still near-duplicates"; the question is
// whether a digest keeps saying so:
//
//   * MinHash registers whose sampled feature expired go empty and, with no
//     fresh insertions to refill them, silently stop matching — recall
//     collapses round by round (the §III bias).
//   * VOS flips the same parity bit on deletion as on insertion, so its
//     estimate tracks the true (stable) Jaccard throughout.
//
// An exact store runs alongside purely to score precision/recall; a real
// deployment keeps only the sketches.
//
// Run: ./build/examples/near_duplicate_detection

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "baselines/minhash.h"
#include "common/random.h"
#include "core/similarity_index.h"
#include "core/vos_method.h"
#include "exact/exact_store.h"

namespace {

using vos::Rng;
using vos::stream::Action;
using vos::stream::Element;
using vos::stream::ItemId;
using vos::stream::UserId;

constexpr uint32_t kDocs = 60;  // 20 base docs × 3 near-duplicate versions
constexpr uint32_t kFeaturesPerDoc = 600;
constexpr double kThreshold = 0.5;  // near-duplicate if J ≥ 0.5

/// Applies `e` to every index structure at once.
template <typename... Sinks>
void Apply(const Element& e, Sinks&... sinks) {
  (sinks.Update(e), ...);
}

struct Quality {
  double precision;
  double recall;
  double mean_sibling_j;  // mean estimated J over the true-duplicate pairs
};

Quality ScoreFromEstimates(const std::vector<std::vector<double>>& estimate,
                           const vos::exact::ExactStore& exact) {
  size_t tp = 0, fp = 0, fn = 0;
  double sibling_j = 0;
  size_t siblings = 0;
  for (UserId a = 0; a < kDocs; ++a) {
    for (UserId b = a + 1; b < kDocs; ++b) {
      const bool truth = exact.Jaccard(a, b) >= kThreshold;
      const bool flagged = estimate[a][b] >= kThreshold;
      tp += truth && flagged;
      fp += !truth && flagged;
      fn += truth && !flagged;
      if (a / 3 == b / 3) {
        sibling_j += estimate[a][b];
        ++siblings;
      }
    }
  }
  return {tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp),
          tp + fn == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn),
          sibling_j / siblings};
}

template <typename Method>
Quality Score(const Method& method, const vos::exact::ExactStore& exact) {
  std::vector<std::vector<double>> estimate(kDocs,
                                            std::vector<double>(kDocs, 0.0));
  for (UserId a = 0; a < kDocs; ++a) {
    for (UserId b = a + 1; b < kDocs; ++b) {
      estimate[a][b] = method.EstimatePair(a, b).jaccard;
    }
  }
  return ScoreFromEstimates(estimate, exact);
}

/// VOS is scored through the batch query engine: one Rebuild snapshots all
/// document digests, one thread-partitioned AllPairsAbove sweep yields
/// every pair's estimate (τ = 0 keeps all pairs, estimates are clamped to
/// [0, 1]) — no per-pair sketch reconstruction.
Quality ScoreVosBatch(vos::core::SimilarityIndex& index,
                      const std::vector<UserId>& docs,
                      const vos::exact::ExactStore& exact) {
  index.Rebuild(docs);
  std::vector<std::vector<double>> estimate(kDocs,
                                            std::vector<double>(kDocs, 0.0));
  for (const auto& pair : index.AllPairsAbove(0.0)) {
    estimate[std::min(pair.u, pair.v)][std::max(pair.u, pair.v)] =
        pair.jaccard;
  }
  return ScoreFromEstimates(estimate, exact);
}

}  // namespace

int main() {
  Rng rng(7);

  vos::core::VosConfig vos_config;
  vos_config.k = 8192;
  vos_config.m = uint64_t{1} << 21;
  vos::core::VosMethod vos_method(vos_config, kDocs);

  // Equal-memory MinHash digest: 2^21 bits / 60 docs / 32-bit registers
  // ≈ 1092 registers per document.
  vos::baseline::MinHashConfig mh_config;
  mh_config.k = 1092;
  vos::baseline::MinHash minhash(mh_config, kDocs, /*num_items=*/1u << 31);

  vos::exact::ExactStore exact(kDocs);

  // Phase 1 — ingest: base docs and their near-duplicate variants. Variant
  // v of base b shares 85% of its features with its siblings
  // (true sibling J = 0.85/1.15 ≈ 0.74).
  for (uint32_t base = 0; base < kDocs / 3; ++base) {
    for (uint32_t variant = 0; variant < 3; ++variant) {
      const UserId doc = base * 3 + variant;
      for (uint32_t f = 0; f < kFeaturesPerDoc; ++f) {
        const bool shared = f < kFeaturesPerDoc * 85 / 100;
        const ItemId feature =
            shared ? base * 100000 + f
                   : base * 100000 + 50000 + variant * 10000 + f;
        Apply({doc, feature, Action::kInsert}, vos_method, minhash, exact);
      }
    }
  }
  std::vector<UserId> docs;
  for (UserId doc = 0; doc < kDocs; ++doc) docs.push_back(doc);
  // MakeIndex builds the snapshot with the method's QueryOptions, so
  // factory-style knobs (tile_rows, banding_*) would govern this scan.
  const auto vos_index = vos_method.MakeIndex(docs);

  auto report = [&](const char* phase) {
    const Quality vq = ScoreVosBatch(*vos_index, docs, exact);
    const Quality mq = Score(minhash, exact);
    double true_j = 0;
    for (UserId a = 0; a < kDocs; a += 3) {
      true_j += exact.Jaccard(a, a + 1) + exact.Jaccard(a, a + 2) +
                exact.Jaccard(a + 1, a + 2);
    }
    true_j /= kDocs;
    std::printf("%-14s true sibling J=%.2f | VOS  J=%.2f P=%.2f R=%.2f | "
                "MinHash J=%.2f P=%.2f R=%.2f\n",
                phase, true_j, vq.mean_sibling_j, vq.precision, vq.recall,
                mq.mean_sibling_j, mq.precision, mq.recall);
  };
  report("after ingest:");

  // Phase 2 — expiry: four rounds; in each, 15% of the *globally* live
  // features age out of the store, disappearing from every document that
  // holds them (chunk expiry is a property of the chunk, not the document).
  // Global expiry scales intersection and union of every pair by the same
  // factor, so the true Jaccard stays ~0.74 — the right answer remains
  // "still near-duplicates".
  for (int round = 1; round <= 4; ++round) {
    std::unordered_set<ItemId> live;
    for (UserId doc = 0; doc < kDocs; ++doc) {
      live.insert(exact.Items(doc).begin(), exact.Items(doc).end());
    }
    std::vector<ItemId> features(live.begin(), live.end());
    std::sort(features.begin(), features.end());  // deterministic order
    rng.Shuffle(features);
    features.resize(features.size() * 15 / 100);
    const std::unordered_set<ItemId> expired(features.begin(),
                                             features.end());
    for (UserId doc = 0; doc < kDocs; ++doc) {
      std::vector<ItemId> to_delete;
      for (ItemId f : exact.Items(doc)) {
        if (expired.count(f)) to_delete.push_back(f);
      }
      for (ItemId f : to_delete) {
        Apply({doc, f, Action::kDelete}, vos_method, minhash, exact);
      }
    }
    char phase[32];
    std::snprintf(phase, sizeof(phase), "after expiry %d:", round);
    report(phase);
  }

  std::printf(
      "\nsymmetric expiry keeps the true Jaccard ~constant, but MinHash "
      "registers emptied by deletions stop matching and recall collapses; "
      "VOS absorbs every deletion exactly (one parity flip) and keeps "
      "flagging the near-duplicates.\n");
  return 0;
}

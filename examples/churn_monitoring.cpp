// Churn monitoring with VosDrift: compare two snapshots of one sketch to
// find the users whose subscription sets turned over the most — without
// storing any per-user item state.
//
// The operational pattern: a long-running ingester snapshots its VOS sketch
// (core/vos_io.h) every reporting period; the monitor XORs consecutive
// snapshots (A(t1) ⊕ A(t2) is exactly the VOS array of the in-between
// sub-stream) and ranks users by estimated |S(t1) Δ S(t2)|. Here we build
// the two snapshots in-process from the first and second halves of a
// dynamic stream and verify the top-churn report against exact truth.
//
// Run: ./build/examples/churn_monitoring

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/vos_drift.h"
#include "core/vos_sketch.h"
#include "exact/exact_store.h"
#include "stream/dataset.h"

int main() {
  auto generated = vos::stream::GenerateDatasetByName("toy");
  VOS_CHECK(generated.ok()) << generated.status().ToString();
  const vos::stream::GraphStream& stream = *generated;

  vos::core::VosConfig config;
  config.k = 6400;
  config.m = uint64_t{1} << 22;
  vos::core::VosSketch sketch(config, stream.num_users());

  // Exact stores at the two snapshot times, for verification only.
  vos::exact::ExactStore exact_t1(stream.num_users());
  vos::exact::ExactStore exact_t2(stream.num_users());

  const size_t t1 = stream.size() / 2;
  for (size_t t = 0; t < t1; ++t) {
    sketch.Update(stream[t]);
    exact_t1.Update(stream[t]);
    exact_t2.Update(stream[t]);
  }
  const vos::core::VosSketch snapshot_t1 = sketch;  // periodic snapshot

  for (size_t t = t1; t < stream.size(); ++t) {
    sketch.Update(stream[t]);
    exact_t2.Update(stream[t]);
  }

  const vos::core::VosDrift drift(snapshot_t1, sketch);
  std::printf("delta-array fill beta = %.4f (estimates reliable while "
              "beta << 0.5)\n\n",
              drift.delta_beta());

  // Rank users by estimated churn. One batched extraction over the delta
  // array (contiguous DigestMatrix rows) replaces a per-user
  // reconstruction loop.
  std::vector<vos::stream::UserId> all_users(stream.num_users());
  for (vos::stream::UserId u = 0; u < stream.num_users(); ++u) {
    all_users[u] = u;
  }
  const std::vector<double> drifts = drift.EstimateDriftBatch(all_users);
  struct Row {
    vos::stream::UserId user;
    double estimated;
  };
  std::vector<Row> rows;
  for (vos::stream::UserId u = 0; u < stream.num_users(); ++u) {
    rows.push_back({u, drifts[u]});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.estimated > b.estimated; });

  std::printf("top-10 churners (estimated vs exact |S(t1) delta S(t2)|):\n");
  std::printf("%-6s %-12s %-8s %-11s\n", "user", "estimated", "exact",
              "stability");
  for (size_t r = 0; r < 10 && r < rows.size(); ++r) {
    const vos::stream::UserId u = rows[r].user;
    // Exact symmetric difference between the user's two snapshots.
    size_t exact_churn = 0;
    for (vos::stream::ItemId i : exact_t1.Items(u)) {
      exact_churn += exact_t2.Items(u).count(i) == 0;
    }
    for (vos::stream::ItemId i : exact_t2.Items(u)) {
      exact_churn += exact_t1.Items(u).count(i) == 0;
    }
    std::printf("%-6u %-12.1f %-8zu %-11.3f\n", u, rows[r].estimated,
                exact_churn, drift.EstimateStability(u));
  }
  std::printf(
      "\nno per-user item lists were kept — both columns derive from two "
      "%zu-KiB sketch snapshots.\n",
      sketch.MemoryBits() / 8192);
  return 0;
}

// Distributed ingestion: shard the stream across workers, merge sketches.
//
// VOS sketches are mergeable: both the shared bit array (XOR) and the
// per-user counters (sum) are element-wise reductions of per-element
// contributions, so a fleet of ingest workers can each sketch their
// partition of the stream and a coordinator can combine the results into
// exactly the sketch a single machine would have built — no re-streaming,
// no approximation penalty at the merge step. This example partitions a
// dynamic stream by user across 4 "workers", merges, and verifies the
// merged estimates against a monolithic sketch and the exact truth. It
// also round-trips one worker's sketch through the binary snapshot format
// (core/vos_io.h), the way a real worker would ship its state.
//
// Run: ./build/examples/distributed_ingest

#include <cstdio>
#include <memory>
#include <vector>

#include "common/popcount.h"
#include "core/digest_matrix.h"
#include "core/vos_io.h"
#include "core/vos_sketch.h"
#include "core/vos_estimator.h"
#include "exact/exact_store.h"
#include "stream/dataset.h"

int main() {
  constexpr int kWorkers = 4;

  auto generated = vos::stream::GenerateDatasetByName("toy");
  VOS_CHECK(generated.ok()) << generated.status().ToString();
  const vos::stream::GraphStream& stream = *generated;

  vos::core::VosConfig config;
  config.k = 6400;
  config.m = uint64_t{1} << 22;
  config.seed = 77;  // all shards must share the seed (same ψ, f_j)

  // One sketch per worker plus the single-machine reference.
  std::vector<std::unique_ptr<vos::core::VosSketch>> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.push_back(std::make_unique<vos::core::VosSketch>(
        config, stream.num_users()));
  }
  vos::core::VosSketch monolithic(config, stream.num_users());
  vos::exact::ExactStore exact(stream.num_users());

  // Partition by user so each worker's sub-stream is locally feasible.
  for (const vos::stream::Element& e : stream.elements()) {
    workers[e.user % kWorkers]->Update(e);
    monolithic.Update(e);
    exact.Update(e);
  }

  // Ship worker 0's sketch through the snapshot format (as a real worker
  // would), then merge everything into it.
  const std::string snapshot = "/tmp/vos_worker0.sketch";
  VOS_CHECK(vos::core::VosSketchIo::Save(*workers[0], snapshot).ok());
  auto merged = vos::core::VosSketchIo::Load(snapshot);
  VOS_CHECK(merged.ok()) << merged.status().ToString();
  std::remove(snapshot.c_str());
  for (int w = 1; w < kWorkers; ++w) {
    merged->MergeFrom(*workers[w]);
  }

  std::printf("merged %d worker sketches: array identical to monolithic "
              "ingest: %s\n",
              kWorkers,
              merged->array() == monolithic.array() ? "yes" : "NO (bug!)");

  // Merged estimates equal monolithic estimates and track the truth.
  vos::core::VosEstimator estimator(config.k);
  std::printf("\n%-14s %-10s %-12s %-8s\n", "pair", "exact s", "merged ŝ",
              "mono ŝ");
  int shown = 0;
  for (vos::stream::UserId u = 0; u < 12 && shown < 6; ++u) {
    for (vos::stream::UserId v = u + 1; v < 12 && shown < 6; ++v) {
      const size_t truth = exact.CommonItems(u, v);
      if (truth < 5) continue;
      auto estimate = [&](const vos::core::VosSketch& sketch) {
        // Contiguous batch extraction (one DigestMatrix) instead of two
        // heap BitVectors per pair.
        const vos::core::DigestMatrix digests =
            vos::core::DigestMatrix::Build(sketch, {u, v}, 1);
        const double alpha =
            static_cast<double>(vos::XorPopcount(
                digests.Row(0), digests.Row(1), digests.words_per_row())) /
            config.k;
        return estimator.EstimateCommonItems(
            sketch.Cardinality(u), sketch.Cardinality(v), alpha,
            sketch.beta());
      };
      std::printf("(%3u, %3u)     %-10zu %-12.1f %-8.1f\n", u, v, truth,
                  estimate(*merged), estimate(monolithic));
      ++shown;
    }
  }
  std::printf("\nworkers can ingest independently and merge losslessly — "
              "the XOR/sum algebra of VOS makes the merge exact.\n");
  return 0;
}

// Sharded query planner: end-to-end shard-parallel write path + shard-aware
// read path.
//
// The pipeline this example walks through:
//
//   stream → ShardedVosSketch (dense user remap, per-shard worker threads)
//          → QueryPlanner (one SimilarityIndex per shard)
//          → AllPairsAbove / TopK answered as a scatter–gather with
//            cross-shard pairs estimated under the (1−2β_A)(1−2β_B)
//            correction, then refreshed incrementally after more churn.
//
// It also demonstrates the opt-in LSH banding knobs
// (QueryOptions::banding_bands / banding_rows_per_band): a second
// planner enumerates only bucket-colliding pairs, and the example
// measures its recall against the exact pass — banded pairs always
// carry the exact estimate (precision 1), only coverage can drop.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/sharded_query_planner

#include <cstdio>
#include <vector>

#include "core/query_planner.h"
#include "core/sharded_vos_sketch.h"

int main() {
  using vos::core::QueryOptions;
  using vos::core::QueryPlanner;
  using vos::core::ShardedVosConfig;
  using vos::core::ShardedVosSketch;
  using vos::stream::Action;
  using vos::stream::Element;
  using vos::stream::UserId;

  constexpr UserId kUsers = 2000;

  // Four shards splitting one 2^22-bit budget; two ingest workers drain
  // tagged batches concurrently. The dense remap means each shard's
  // per-user state is sized for the ~500 users it owns, not for all 2000.
  ShardedVosConfig config;
  config.base.k = 4096;
  config.base.m = uint64_t{1} << 22;
  config.base.seed = 7;
  config.num_shards = 4;
  config.ingest_threads = 2;
  ShardedVosSketch sketch(config, kUsers);

  // Communities of 5: members share their first 300 channels and keep 80
  // private ones. Pairs inside a community are similar (J ≈ 0.65);
  // everyone else is noise.
  std::vector<Element> batch;
  for (UserId u = 0; u < kUsers; ++u) {
    const uint32_t community = u / 5;
    for (uint32_t c = 0; c < 300; ++c) {
      batch.push_back({u, community * 100000 + c, Action::kInsert});
    }
    for (uint32_t c = 0; c < 80; ++c) {
      batch.push_back({u, 50000000 + u * 1000 + c, Action::kInsert});
    }
  }
  sketch.UpdateBatch(batch.data(), batch.size());
  // Quiesce the workers before snapshotting; a degraded pipeline would
  // make every number below meaningless.
  VOS_CHECK(sketch.Flush().ok());

  std::printf("ingested %zu elements into %u shards "
              "(%.1f bits/user total memory)\n",
              batch.size(), sketch.num_shards(),
              static_cast<double>(sketch.MemoryBits()) / kUsers);

  // Snapshot every shard index (incremental mode retains refresh state).
  std::vector<UserId> candidates;
  for (UserId u = 0; u < kUsers; ++u) candidates.push_back(u);
  QueryOptions options;
  options.incremental = true;
  QueryPlanner planner(sketch, {}, options);
  planner.Rebuild(candidates);

  const auto pairs = planner.AllPairsAbove(0.5);
  size_t cross_shard = 0;
  for (const auto& pair : pairs) {
    if (sketch.ShardOf(pair.u) != sketch.ShardOf(pair.v)) ++cross_shard;
  }
  std::printf("all-pairs J >= 0.5: %zu pairs (%zu of them cross-shard, "
              "expected ~%u from the planted communities)\n",
              pairs.size(), cross_shard, kUsers / 5 * 10);

  // Opt-in LSH banding: band the leading 32×8 digest bits into bucket
  // tables at Rebuild time and enumerate only bucket-colliding pairs.
  // The banded result is a subset of the exact result with identical
  // per-pair estimates, so recall is simply banded/exact — measure it
  // before trusting a banded configuration on your workload.
  QueryOptions banded_options;
  banded_options.banding_bands = 32;
  banded_options.banding_rows_per_band = 8;
  QueryPlanner banded(sketch, {}, banded_options);
  banded.Rebuild(candidates);
  const auto banded_pairs = banded.AllPairsAbove(0.5);
  const double recall =
      pairs.empty() ? 1.0
                    : static_cast<double>(banded_pairs.size()) /
                          static_cast<double>(pairs.size());
  std::printf("banded all-pairs (bands=%u, rows_per_band=%u): %zu pairs, "
              "recall %.3f vs the exact pass (estimates bit-identical on "
              "every surviving pair)\n",
              banded_options.banding_bands,
              banded_options.banding_rows_per_band, banded_pairs.size(),
              recall);

  const auto top = planner.TopK(0, 4);
  std::printf("top-4 neighbours of user 0 (community 0..4):");
  for (const auto& entry : top) {
    std::printf("  u%u (J=%.2f)", entry.user, entry.jaccard);
  }
  std::printf("\n");

  // Churn a handful of users, then refresh: only their shards' dirty rows
  // are re-extracted — the other shards' snapshots are block-copied.
  for (uint32_t c = 0; c < 200; ++c) {
    sketch.Update({0, 0 * 100000u + c, Action::kDelete});
  }
  VOS_CHECK(sketch.Flush().ok());
  const bool incremental = planner.Refresh();
  const auto top_after = planner.TopK(0, 4);
  std::printf("after user 0 drops 200 shared channels (%s refresh): "
              "best neighbour J %.2f -> %.2f\n",
              incremental ? "incremental" : "fallback-rebuild",
              top.empty() ? 0.0 : top[0].jaccard,
              top_after.empty() ? 0.0 : top_after[0].jaccard);
  return 0;
}

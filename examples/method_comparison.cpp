// Side-by-side accuracy comparison of all implemented methods on one fully
// dynamic stream — a miniature of the paper's Figure 3 plus this library's
// extensions (densified OPH, b-bit minwise, dedicated odd sketch).
//
// Run: ./build/examples/method_comparison [--dataset=toy] [--k=100]

#include <cstdio>

#include "common/flags.h"
#include "common/table_printer.h"
#include "harness/experiment.h"
#include "stream/dataset.h"

int main(int argc, char** argv) {
  auto flags = vos::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return 2;
  }
  auto spec = vos::stream::GetDatasetSpec(
      flags->GetString("dataset", "youtube_s"));
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 2;
  }
  // Default to a 40%-scale YouTube stand-in: large enough degrees for the
  // paper's "users with many subscribed items" regime, small enough to run
  // in seconds. (At very small scales — e.g. --dataset=toy — per-user
  // degrees are so low that the dedicated OddSketch's zero contamination
  // beats VOS's pooling; see EXPERIMENTS.md.)
  const vos::stream::DatasetSpec scaled =
      vos::stream::ScaleSpec(*spec, flags->GetDouble("scale", 0.4));
  const vos::stream::GraphStream stream = vos::stream::GenerateDataset(scaled);
  const auto stats = stream.ComputeStats();
  std::printf("stream %s: %zu elements (%zu+, %zu-), %zu live at end\n\n",
              stream.name().c_str(), stats.num_elements, stats.num_insertions,
              stats.num_deletions, stats.final_edges);

  vos::harness::ExperimentConfig config;
  config.top_users = 100;
  config.max_pairs = 4000;
  config.num_checkpoints = 1;
  config.factory.base_k =
      static_cast<uint32_t>(flags->GetInt("k", 100));
  config.factory.seed = 12345;

  auto result = vos::harness::RunAccuracyExperiment(
      stream, vos::harness::AllMethods(), config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu tracked pairs among the top %zu users; equal memory "
              "budget 32·k·|U| bits, k=%u\n\n",
              result->tracked_pairs, result->tracked_users,
              config.factory.base_k);
  vos::TablePrinter table({"method", "AAPE (common items)", "ARMSE (Jaccard)"});
  for (const auto& mc : result->Final().methods) {
    table.AddRow({mc.method,
                  vos::TablePrinter::FormatDouble(mc.metrics.aape, 4),
                  vos::TablePrinter::FormatDouble(mc.metrics.armse, 4)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\nVOS is the paper's method; lower is better on both.\n");
  return 0;
}

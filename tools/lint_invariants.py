#!/usr/bin/env python3
"""Repo-invariant linter for libvos.

Checks structural invariants that neither the compiler nor clang-tidy
enforces, so they hold by construction instead of by review:

  atomic-order       Every std::atomic operation in src/common and
                     src/core names its std::memory_order explicitly.
                     An implicit seq_cst is indistinguishable from "the
                     author never thought about ordering"; naming the
                     order forces the one-line rationale the code
                     review asks for. Multi-line calls are handled by
                     matching the full argument span.

  raw-sync           No raw std::mutex / std::lock_guard /
                     std::unique_lock / std::scoped_lock /
                     std::condition_variable(_any) / std::shared_mutex
                     (or their <mutex>/<condition_variable>/
                     <shared_mutex> includes) anywhere in src/ or
                     tools/ outside common/thread_annotations.h. All
                     locking goes through vos::Mutex / vos::MutexLock /
                     vos::CondVar so clang's -Wthread-safety analysis
                     sees every acquisition.

  raw-new-delete     No new/delete expressions in src/ or tools/
                     outside the allowlist (the FaultInjector leaky
                     singleton). The library is container/value based;
                     a bare new is either a leak or a std::unique_ptr
                     waiting to happen. `= delete` declarations are
                     not flagged.

  kernel-includes    The per-ISA kernel translation units
                     (src/common/kernels_{avx2,avx512,neon}.cc) may
                     include exactly one project header:
                     common/kernels_internal.h. They are compiled with
                     ISA-specific flags; pulling any other project
                     header into them would instantiate its inline
                     functions with those flags and hand an illegal
                     instruction to a baseline CPU through the ODR.

Usage: lint_invariants.py [--root REPO_ROOT]
Prints one "path:line: [rule] message" per violation; exit 1 if any.
Self-test: tools/lint_invariants_test.py (registered with ctest).
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".cc", ".cpp")

# ------------------------------------------------------------------ masking


def mask_comments_and_strings(text, keep_strings=False):
    """Returns `text` with comment/string contents replaced by spaces.

    Offsets and line numbers are preserved (newlines survive), so rule
    regexes can report positions in the original file while never
    matching inside comments, string literals, char literals, or raw
    strings. With `keep_strings` only comments (and raw strings, whose
    bodies can span lines and fake any token) are blanked — the include
    rules need the "path" inside #include directives intact.
    """
    out = list(text)
    i = 0
    n = len(text)

    def blank(lo, hi):
        for j in range(lo, hi):
            if out[j] != "\n":
                out[j] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            blank(i, end)
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            blank(i, end)
            i = end
        elif c == "R" and text[i + 1:i + 2] == '"':
            open_paren = text.find("(", i + 2)
            if open_paren == -1:
                i += 1
                continue
            delim = text[i + 2:open_paren]
            close = text.find(")" + delim + '"', open_paren)
            end = n if close == -1 else close + len(delim) + 2
            blank(i, end)
            i = end
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            end = min(j + 1, n)
            if not keep_strings:
                blank(i + 1, end - 1)
            i = end
        else:
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def iter_files(root, subdirs, extensions=CXX_EXTENSIONS):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if name.endswith(extensions):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root)


def read(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        return f.read()


# -------------------------------------------------------------------- rules

ATOMIC_OP_RE = re.compile(
    r"(?<=[.>])"
    r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\("
)


def matching_paren_span(text, open_paren):
    """Returns the offset one past the ')' matching text[open_paren]."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return j + 1
    return len(text)


def check_atomic_order(root, violations):
    for rel in iter_files(root, ("src/common", "src/core")):
        masked = mask_comments_and_strings(read(root, rel))
        for m in ATOMIC_OP_RE.finditer(masked):
            open_paren = masked.index("(", m.end() - 1)
            span = masked[open_paren:matching_paren_span(masked, open_paren)]
            if "memory_order" not in span:
                violations.append(
                    (rel, line_of(masked, m.start()), "atomic-order",
                     f"std::atomic {m.group(1)}() without an explicit "
                     "std::memory_order argument"))


RAW_SYNC_RE = re.compile(
    r"std::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?)\b"
)
SYNC_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(mutex|condition_variable|shared_mutex)>"
)
RAW_SYNC_ALLOWLIST = frozenset({"src/common/thread_annotations.h"})


def check_raw_sync(root, violations):
    for rel in iter_files(root, ("src", "tools")):
        if rel in RAW_SYNC_ALLOWLIST:
            continue
        masked = mask_comments_and_strings(read(root, rel))
        for m in RAW_SYNC_RE.finditer(masked):
            violations.append(
                (rel, line_of(masked, m.start()), "raw-sync",
                 f"raw std::{m.group(1)} — use vos::Mutex / vos::MutexLock "
                 "/ vos::CondVar (common/thread_annotations.h) so the "
                 "clang thread-safety analysis sees it"))
        include_text = mask_comments_and_strings(read(root, rel),
                                                 keep_strings=True)
        for m in SYNC_INCLUDE_RE.finditer(include_text):
            violations.append(
                (rel, line_of(masked, m.start()), "raw-sync",
                 f"#include <{m.group(1)}> — include "
                 "common/thread_annotations.h instead"))


NEW_DELETE_RE = re.compile(r"\b(new|delete)\b(\s*\[\s*\])?")
DELETED_FN_RE = re.compile(r"=\s*delete\b")
NEW_DELETE_ALLOWLIST = frozenset({
    # FaultInjector::Global(): intentionally leaky process singleton —
    # never destroyed, so probes in static destructors stay safe.
    "src/common/fault_injector.cc",
})


def check_raw_new_delete(root, violations):
    for rel in iter_files(root, ("src", "tools")):
        if rel in NEW_DELETE_ALLOWLIST:
            continue
        masked = mask_comments_and_strings(read(root, rel))
        deleted_spans = [(m.start(), m.end())
                         for m in DELETED_FN_RE.finditer(masked)]
        for m in NEW_DELETE_RE.finditer(masked):
            if any(lo <= m.start() < hi for lo, hi in deleted_spans):
                continue  # `= delete` declaration, not a delete expression
            violations.append(
                (rel, line_of(masked, m.start()), "raw-new-delete",
                 f"raw {m.group(0).strip()} expression — use containers / "
                 "std::make_unique, or add this file to the linter "
                 "allowlist with a rationale"))


KERNEL_TUS = (
    "src/common/kernels_avx2.cc",
    "src/common/kernels_avx512.cc",
    "src/common/kernels_neon.cc",
)
PROJECT_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
KERNEL_ALLOWED_INCLUDE = "common/kernels_internal.h"


def check_kernel_includes(root, violations):
    for rel in KERNEL_TUS:
        if not os.path.exists(os.path.join(root, rel)):
            continue
        masked = mask_comments_and_strings(read(root, rel),
                                           keep_strings=True)
        for m in PROJECT_INCLUDE_RE.finditer(masked):
            if m.group(1) != KERNEL_ALLOWED_INCLUDE:
                violations.append(
                    (rel, line_of(masked, m.start()), "kernel-includes",
                     f'ISA kernel TU includes project header "{m.group(1)}" '
                     f"— only {KERNEL_ALLOWED_INCLUDE} is allowed (this TU "
                     "is built with ISA-specific flags; other headers' "
                     "inline functions would be miscompiled via the ODR)"))


def run_lint(root):
    """Runs every rule; returns [(relpath, line, rule, message), ...]."""
    violations = []
    check_atomic_order(root, violations)
    check_raw_sync(root, violations)
    check_raw_new_delete(root, violations)
    check_kernel_includes(root, violations)
    violations.sort()
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="libvos repo-invariant linter")
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)")
    args = parser.parse_args(argv)

    violations = run_lint(args.root)
    for rel, line, rule, message in violations:
        print(f"{rel}:{line}: [{rule}] {message}")
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

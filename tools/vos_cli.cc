// vos — command-line front end to the library.
//
// Subcommands:
//   vos datasets
//       List the registered dataset presets.
//   vos generate --dataset=<name> [--scale=X] --out=<path> [--format=text|bin]
//       Generate a preset's fully dynamic stream and write it to a file.
//   vos inspect --in=<path>  (or --dataset=<name>)
//       Print stream statistics and degree distributions.
//   vos run [--dataset=<name> | --in=<path>] [--methods=VOS,MinHash,...]
//           [--k=100] [--lambda=2] [--top-users=300] [--max-pairs=20000]
//           [--checkpoints=5] [--csv=<path>]
//       Run the §V accuracy protocol and print AAPE/ARMSE per checkpoint.
//   vos convert --in=<path> --out=<path> [--format=text|bin]
//       Convert a stream file between the text and binary formats.
//   vos checkpoint [--dataset=<name> | --in=<path>] --ckpt=<path>
//           [--stop-at=0.5] [--shards=4] [--producers=2] [--threads=2]
//           [--k=256] [--m=262144] [--seed=99] [--pin_threads=0|1]
//       Ingest the first stop-at fraction of the stream into a sharded
//       VOS sketch and atomically checkpoint it (shards, dense remap,
//       per-lane watermarks).
//   vos restore [--dataset=<name> | --in=<path>] --ckpt=<path>
//           [--verify-full] [same sizing flags as checkpoint]
//       Restore the checkpoint (typically in a fresh process), replay
//       each producer lane from its watermark to the end of the stream,
//       and print the recovered state. With --verify-full also ingest
//       the whole stream from scratch and fail unless the recovered
//       sketch is bit-identical.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv_writer.h"
#include "common/flags.h"
#include "common/numa.h"
#include "common/table_printer.h"
#include "core/sharded_vos_sketch.h"
#include "harness/experiment.h"
#include "stream/binary_io.h"
#include "stream/dataset.h"
#include "stream/replayer.h"
#include "stream/stream_io.h"
#include "stream/stream_stats.h"

namespace vos::cli {
namespace {

constexpr char kUsage[] =
    "usage: vos <datasets|generate|inspect|run|convert|checkpoint|restore>"
    " [--flags]\n"
    "  vos datasets\n"
    "  vos generate --dataset=youtube_s [--scale=0.5] --out=s.bin "
    "[--format=bin]\n"
    "  vos inspect  --in=s.bin | --dataset=toy\n"
    "  vos run      --dataset=toy [--methods=MinHash,OPH,RP,VOS] [--k=100]\n"
    "  vos convert  --in=s.txt --out=s.bin --format=bin\n"
    "  vos checkpoint --dataset=toy --ckpt=c.vos [--stop-at=0.5] "
    "[--shards=4] [--producers=2]\n"
    "  vos restore  --dataset=toy --ckpt=c.vos [--verify-full]\n";

void PrintError(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
}

/// Loads a stream per --in (format sniffed from the magic) or --dataset
/// (+ --scale).
StatusOr<stream::GraphStream> ResolveStream(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  if (!in.empty()) {
    auto binary = stream::LoadStreamBinary(in);
    if (binary.ok()) return binary;
    // Fall back to the text loader; report its error if both fail.
    auto text = stream::LoadStream(in);
    if (text.ok()) return text;
    return Status::InvalidArgument(in + ": not a stream file (binary: " +
                                   binary.status().ToString() +
                                   "; text: " + text.status().ToString() +
                                   ")");
  }
  const std::string name = flags.GetString("dataset", "");
  if (name.empty()) {
    return Status::InvalidArgument("one of --in or --dataset is required");
  }
  VOS_ASSIGN_OR_RETURN(auto spec, stream::GetDatasetSpec(name));
  const double scale = flags.GetDouble("scale", 1.0);
  if (scale != 1.0) spec = stream::ScaleSpec(spec, scale);
  return stream::GenerateDataset(spec);
}

int CmdDatasets() {
  TablePrinter table({"name", "users", "items", "base_edges",
                      "deletion_period", "deletion_fraction"});
  for (const std::string& name : stream::ListDatasets()) {
    const auto spec = stream::GetDatasetSpec(name);
    VOS_CHECK(spec.ok());
    table.AddRow({name, TablePrinter::FormatInt(spec->graph.num_users),
                  TablePrinter::FormatInt(spec->graph.num_items),
                  TablePrinter::FormatInt(spec->graph.num_edges),
                  TablePrinter::FormatInt(spec->dynamics.deletion_period),
                  TablePrinter::FormatDouble(
                      spec->dynamics.deletion_fraction, 3)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  auto stream = ResolveStream(flags);
  if (!stream.ok()) {
    PrintError(stream.status());
    return 2;
  }
  const std::string format = flags.GetString("format", "bin");
  const Status status = format == "text"
                            ? stream::SaveStream(*stream, out)
                            : stream::SaveStreamBinary(*stream, out);
  if (!status.ok()) {
    PrintError(status);
    return 1;
  }
  std::printf("wrote %zu elements (%s) to %s\n", stream->size(),
              format.c_str(), out.c_str());
  return 0;
}

int CmdInspect(const Flags& flags) {
  auto stream = ResolveStream(flags);
  if (!stream.ok()) {
    PrintError(stream.status());
    return 2;
  }
  const stream::StreamProfile profile = stream::ProfileStream(*stream);
  std::printf("stream   %s  (|U|=%u, |I|=%u)\n", stream->name().c_str(),
              stream->num_users(), stream->num_items());
  std::printf("elements %zu  (+%zu / -%zu), final edges %zu, peak %zu\n\n",
              profile.stats.num_elements, profile.stats.num_insertions,
              profile.stats.num_deletions, profile.stats.final_edges,
              profile.peak_edges);
  TablePrinter table(
      {"degrees", "count", "mean", "median", "p90", "p99", "max"});
  auto add = [&table](const char* label,
                      const stream::DegreeSummary& summary) {
    table.AddRow({label, TablePrinter::FormatInt(summary.count),
                  TablePrinter::FormatDouble(summary.mean, 4),
                  TablePrinter::FormatInt(summary.median),
                  TablePrinter::FormatInt(summary.p90),
                  TablePrinter::FormatInt(summary.p99),
                  TablePrinter::FormatInt(summary.max)});
  };
  add("user |S_u|", profile.user_degrees);
  add("item popularity", profile.item_degrees);
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

int CmdRun(const Flags& flags) {
  auto stream = ResolveStream(flags);
  if (!stream.ok()) {
    PrintError(stream.status());
    return 2;
  }
  harness::ExperimentConfig config;
  config.top_users = static_cast<size_t>(flags.GetInt("top-users", 300));
  config.max_pairs = static_cast<size_t>(flags.GetInt("max-pairs", 20000));
  config.num_checkpoints =
      static_cast<size_t>(flags.GetInt("checkpoints", 5));
  config.factory.base_k = static_cast<uint32_t>(flags.GetInt("k", 100));
  config.factory.lambda = flags.GetDouble("lambda", 2.0);
  config.factory.seed = static_cast<uint64_t>(flags.GetInt("seed", 99));

  const std::vector<std::string> methods = SplitCsv(
      flags.GetString("methods", "MinHash,OPH,RP,VOS"));
  auto result = harness::RunAccuracyExperiment(*stream, methods, config);
  if (!result.ok()) {
    PrintError(result.status());
    return 1;
  }
  std::printf("stream %s: %zu elements; %zu tracked users, %zu pairs; "
              "k=%u lambda=%g\n\n",
              result->stream_name.c_str(), result->stream_elements,
              result->tracked_users, result->tracked_pairs,
              config.factory.base_k, config.factory.lambda);
  std::vector<std::string> header = {"t", "live_edges", "method", "AAPE",
                                     "ARMSE"};
  TablePrinter table(header);
  std::vector<std::vector<std::string>> rows;
  for (const harness::Checkpoint& cp : result->checkpoints) {
    for (const harness::MethodCheckpoint& mc : cp.methods) {
      std::vector<std::string> row = {
          TablePrinter::FormatInt(cp.t),
          TablePrinter::FormatInt(cp.live_edges), mc.method,
          TablePrinter::FormatDouble(mc.metrics.aape, 4),
          TablePrinter::FormatDouble(mc.metrics.armse, 4)};
      table.AddRow(row);
      rows.push_back(std::move(row));
    }
  }
  std::fputs(table.ToString().c_str(), stdout);

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    auto csv = CsvWriter::Open(csv_path, header);
    if (!csv.ok()) {
      PrintError(csv.status());
      return 1;
    }
    for (const auto& row : rows) {
      if (Status s = csv->WriteRow(row); !s.ok()) {
        PrintError(s);
        return 1;
      }
    }
    (void)csv->Close();
    std::printf("\n(csv mirrored to %s)\n", csv_path.c_str());
  }
  return 0;
}

int CmdConvert(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (flags.GetString("in", "").empty() || out.empty()) {
    std::fprintf(stderr, "convert: --in and --out are required\n");
    return 2;
  }
  auto stream = ResolveStream(flags);
  if (!stream.ok()) {
    PrintError(stream.status());
    return 2;
  }
  const std::string format = flags.GetString("format", "bin");
  const Status status = format == "text"
                            ? stream::SaveStream(*stream, out)
                            : stream::SaveStreamBinary(*stream, out);
  if (!status.ok()) {
    PrintError(status);
    return 1;
  }
  std::printf("converted %zu elements to %s (%s)\n", stream->size(),
              out.c_str(), format.c_str());
  return 0;
}

/// Shared sizing flags of the checkpoint/restore pair. Both processes
/// must pass the same values — the checkpoint manifest enforces it.
core::ShardedVosConfig MakeShardedConfig(const Flags& flags) {
  core::ShardedVosConfig config;
  config.base.k = static_cast<uint32_t>(flags.GetInt("k", 256));
  config.base.m = static_cast<uint64_t>(flags.GetInt("m", 1 << 18));
  config.base.seed = static_cast<uint64_t>(flags.GetInt("seed", 99));
  config.num_shards = static_cast<uint32_t>(flags.GetInt("shards", 4));
  config.ingest_threads = static_cast<unsigned>(flags.GetInt("threads", 2));
  config.ingest_producers =
      static_cast<unsigned>(flags.GetInt("producers", 2));
  config.batch_size = 512;
  // Pinning is a performance hint, not part of the sizing contract: the
  // checkpoint manifest ignores it, so checkpoint and restore may differ.
  // Default: VOS_PIN if set, else on only for multi-node machines.
  config.pin_numa_workers =
      flags.GetInt("pin_threads", numa::DefaultPinThreads() ? 1 : 0) != 0;
  return config;
}

/// Feeds each lane's elements from `start[p]` to its end, then flushes.
Status ReplayLanes(core::ShardedVosSketch* sketch,
                   const std::vector<std::vector<stream::Element>>& lanes,
                   const std::vector<uint64_t>& start) {
  for (unsigned p = 0; p < lanes.size(); ++p) {
    stream::StreamReplayer::ReplayBatchedFrom(
        lanes[p].data(), lanes[p].size(), start[p], 512,
        [&](const stream::Element* batch, size_t count) {
          sketch->UpdateBatch(batch, count, p);
        });
  }
  return sketch->Flush();
}

int CmdCheckpoint(const Flags& flags) {
  const std::string ckpt = flags.GetString("ckpt", "");
  if (ckpt.empty()) {
    std::fprintf(stderr, "checkpoint: --ckpt is required\n");
    return 2;
  }
  auto stream = ResolveStream(flags);
  if (!stream.ok()) {
    PrintError(stream.status());
    return 2;
  }
  const double stop_at =
      std::min(1.0, std::max(0.0, flags.GetDouble("stop-at", 0.5)));
  const size_t cut = static_cast<size_t>(
      static_cast<double>(stream->size()) * stop_at);
  const core::ShardedVosConfig config = MakeShardedConfig(flags);
  core::ShardedVosSketch sketch(config, stream->num_users());
  // The canonical lane split (user % lanes) over the stream PREFIX: the
  // split of a prefix is a prefix of each lane, so the restore side can
  // split the full stream with the same rule and resume each lane at its
  // checkpointed watermark.
  const auto lanes = stream::StreamReplayer::SplitByUserLane(
      stream->elements().data(), cut, sketch.num_producers());
  if (Status s = ReplayLanes(&sketch, lanes,
                             std::vector<uint64_t>(lanes.size(), 0));
      !s.ok()) {
    PrintError(s);
    return 1;
  }
  if (Status s = sketch.Checkpoint(ckpt); !s.ok()) {
    PrintError(s);
    return 1;
  }
  std::printf("checkpointed %zu of %zu elements to %s (lanes:", cut,
              stream->size(), ckpt.c_str());
  for (uint64_t w : sketch.ingest_watermarks()) {
    std::printf(" %llu", static_cast<unsigned long long>(w));
  }
  std::printf(")\n");
  return 0;
}

int CmdRestore(const Flags& flags) {
  const std::string ckpt = flags.GetString("ckpt", "");
  if (ckpt.empty()) {
    std::fprintf(stderr, "restore: --ckpt is required\n");
    return 2;
  }
  auto stream = ResolveStream(flags);
  if (!stream.ok()) {
    PrintError(stream.status());
    return 2;
  }
  const core::ShardedVosConfig config = MakeShardedConfig(flags);
  core::ShardedVosSketch sketch(config, stream->num_users());
  if (Status s = sketch.Restore(ckpt); !s.ok()) {
    PrintError(s);
    return 1;
  }
  const std::vector<uint64_t> watermarks = sketch.ingest_watermarks();
  const auto lanes = stream::StreamReplayer::SplitByUserLane(
      stream->elements().data(), stream->size(), sketch.num_producers());
  if (Status s = ReplayLanes(&sketch, lanes, watermarks); !s.ok()) {
    PrintError(s);
    return 1;
  }
  std::printf("restored %s and replayed", ckpt.c_str());
  for (unsigned p = 0; p < lanes.size(); ++p) {
    std::printf(" %zu", lanes[p].size() - static_cast<size_t>(watermarks[p]));
  }
  std::printf(" elements across %u lanes\n", sketch.num_producers());
  for (uint32_t s = 0; s < sketch.num_shards(); ++s) {
    std::printf("shard %u: beta=%.6f users=%u\n", s, sketch.shard(s).beta(),
                sketch.shard(s).num_users());
  }
  if (!flags.GetBool("verify-full", false)) return 0;

  // Reference: the whole stream ingested from scratch in this process.
  core::ShardedVosSketch reference(config, stream->num_users());
  if (Status s = ReplayLanes(&reference, lanes,
                             std::vector<uint64_t>(lanes.size(), 0));
      !s.ok()) {
    PrintError(s);
    return 1;
  }
  for (uint32_t s = 0; s < sketch.num_shards(); ++s) {
    if (sketch.shard(s).array().words() !=
        reference.shard(s).array().words()) {
      std::fprintf(stderr,
                   "verify-full: shard %u array differs from the "
                   "uninterrupted run\n",
                   s);
      return 1;
    }
  }
  for (stream::UserId u = 0; u < stream->num_users(); ++u) {
    if (sketch.Cardinality(u) != reference.Cardinality(u)) {
      std::fprintf(stderr,
                   "verify-full: cardinality of user %u differs from the "
                   "uninterrupted run\n",
                   u);
      return 1;
    }
  }
  std::printf("verify-full: recovered state is bit-identical to the "
              "uninterrupted run\n");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string command = argv[1];
  auto flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    PrintError(flags.status());
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (command == "datasets") return CmdDatasets();
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "inspect") return CmdInspect(*flags);
  if (command == "run") return CmdRun(*flags);
  if (command == "convert") return CmdConvert(*flags);
  if (command == "checkpoint") return CmdCheckpoint(*flags);
  if (command == "restore") return CmdRestore(*flags);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 2;
}

}  // namespace
}  // namespace vos::cli

int main(int argc, char** argv) { return vos::cli::Main(argc, argv); }

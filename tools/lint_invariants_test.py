#!/usr/bin/env python3
"""Self-test for lint_invariants.py.

Builds a throwaway repo tree seeded with one violation per rule (plus
near-miss code that must NOT fire), asserts the linter reports exactly
the seeded set, then runs the linter against the real repository and
asserts it is clean. Plain stdlib — registered with ctest, no pytest.
"""

import importlib.util
import os
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)

spec = importlib.util.spec_from_file_location(
    "lint_invariants", os.path.join(TOOLS_DIR, "lint_invariants.py"))
lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint)


def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def seed_fixture_repo(root):
    """One violation per rule + near-misses that must stay silent."""

    # atomic-order: two implicit-order ops; the multi-line fetch_add and
    # the compare_exchange naming its orders are compliant and must not
    # fire. The commented a.load() must not fire either.
    write(root, "src/common/fixture_atomic.cc", """\
#include <atomic>
void Fixture(std::atomic<int>& a, std::atomic<int>* b) {
  a.load();                              // VIOLATION (line 3)
  b->store(1);                           // VIOLATION (line 4)
  a.fetch_add(1,
              std::memory_order_relaxed);  // ok: multi-line, explicit
  int expected = 0;
  a.compare_exchange_strong(expected, 2, std::memory_order_acq_rel,
                            std::memory_order_acquire);  // ok
  // a.load() in a comment must not fire.
  (void)a.load(std::memory_order_acquire);  // ok
}
""")

    # raw-sync: a raw mutex + lock_guard + the <mutex> include; the
    # string literal and the comment mentioning std::mutex must not
    # fire, and thread_annotations.h itself is allowlisted.
    write(root, "src/core/fixture_mutex.cc", """\
#include <mutex>                         // VIOLATION (line 1)
std::mutex g_mu;                         // VIOLATION (line 2)
void Fixture() {
  std::lock_guard<std::mutex> lock(g_mu);  // VIOLATIONS (line 4, twice)
  const char* s = "std::mutex";          // ok: string literal
  // std::condition_variable in a comment must not fire.
  (void)s;
}
""")
    write(root, "src/common/thread_annotations.h", """\
#include <mutex>
namespace vos { class Mutex { std::mutex mu_; }; }
""")

    # raw-new-delete: a new and a delete expression; `= delete` and the
    # identifier new_count must not fire.
    write(root, "tools/fixture_new.cc", """\
struct NoCopy {
  NoCopy(const NoCopy&) = delete;        // ok: deleted function
};
int Fixture() {
  int new_count = 0;                     // ok: identifier
  int* p = new int{3};                   // VIOLATION (line 6)
  delete p;                              // VIOLATION (line 7)
  return new_count;
}
""")

    # kernel-includes: a second project header in an ISA TU; the
    # internal header and system headers are allowed.
    write(root, "src/common/kernels_avx2.cc", """\
#include "common/kernels_internal.h"
#include "core/vos_sketch.h"             // VIOLATION (line 2)
#include <immintrin.h>
""")
    write(root, "src/common/kernels_neon.cc", """\
#include "common/kernels_internal.h"
#include <arm_neon.h>
""")


def main():
    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)
            print(f"FAIL: {what}")

    with tempfile.TemporaryDirectory(prefix="lint_fixture_") as fixture:
        seed_fixture_repo(fixture)
        got = {(rel, line, rule)
               for rel, line, rule, _ in lint.run_lint(fixture)}
        expected = {
            ("src/common/fixture_atomic.cc", 3, "atomic-order"),
            ("src/common/fixture_atomic.cc", 4, "atomic-order"),
            ("src/core/fixture_mutex.cc", 1, "raw-sync"),
            ("src/core/fixture_mutex.cc", 2, "raw-sync"),
            ("src/core/fixture_mutex.cc", 4, "raw-sync"),
            ("tools/fixture_new.cc", 6, "raw-new-delete"),
            ("tools/fixture_new.cc", 7, "raw-new-delete"),
            ("src/common/kernels_avx2.cc", 2, "kernel-includes"),
        }
        # line 4 of fixture_mutex.cc fires twice (lock_guard + mutex);
        # the set collapses the duplicate, which is what we assert on.
        check(got == expected,
              "fixture violations mismatch:\n"
              f"  unexpected: {sorted(got - expected)}\n"
              f"  missing:    {sorted(expected - got)}")

    real = lint.run_lint(REPO_ROOT)
    check(not real,
          "real repository is not lint-clean:\n  " +
          "\n  ".join(f"{r}:{l}: [{rule}] {msg}" for r, l, rule, msg in real))

    if failures:
        print(f"lint_invariants_test: {len(failures)} failure(s)")
        return 1
    print("lint_invariants_test: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Diff bench JSON rows against a committed baseline.

The bench binaries emit machine-readable rows via --json (one object per
table row; see bench/bench_util.h MaybeEmitJson). CI uploads them as
BENCH_*.json artifacts; this tool closes the loop by comparing a fresh
run against the baseline committed under bench/baselines/, flagging any
row whose throughput regressed by more than --max-regression (default
20%).

Rows are keyed by every identity column (bench, phase, engine, shards,
producers, threads, unit — whichever are present), so a schema change
that adds a column simply widens the key. Metric columns (seconds,
throughput, speedup) never participate in the key.

Exit status: 0 = no regressions, 1 = at least one flagged row, 2 = usage
or file errors. Baseline rows missing from the new run are reported as
warnings (a renamed engine should update the baseline); new rows absent
from the baseline are listed informationally and pass.

Throughput is machine-dependent: regenerate the baseline whenever the
runner hardware changes (run the bench with the CI smoke flags and copy
the JSON over bench/baselines/BENCH_<bench>.json).

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json [--max-regression 0.20]
"""

import argparse
import json
import sys

METRIC_COLUMNS = frozenset({"seconds", "throughput", "speedup"})


def row_key(row):
    """Identity of a row: every non-metric column, sorted for stability."""
    return tuple(
        sorted((k, v) for k, v in row.items() if k not in METRIC_COLUMNS)
    )


def format_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def load_rows(path):
    with open(path, "r", encoding="utf-8") as fp:
        rows = json.load(fp)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of row objects")
    indexed = {}
    for row in rows:
        key = row_key(row)
        if key in indexed:
            raise ValueError(f"{path}: duplicate row key ({format_key(key)})")
        indexed[key] = row
    return indexed


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="flag rows whose throughput dropped by more than this "
        "fraction of the baseline (default: 0.20)",
    )
    args = parser.parse_args()

    try:
        baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    regressions = []
    improvements = 0
    compared = 0
    for key, base_row in sorted(baseline.items()):
        new_row = current.get(key)
        if new_row is None:
            print(f"warning: baseline row missing from current run: "
                  f"{format_key(key)}")
            continue
        base = base_row.get("throughput")
        new = new_row.get("throughput")
        if not isinstance(base, (int, float)) or not isinstance(
                new, (int, float)) or base <= 0:
            continue
        compared += 1
        ratio = new / base
        if ratio < 1.0 - args.max_regression:
            regressions.append((key, base, new, ratio))
        elif ratio > 1.0:
            improvements += 1

    for key in sorted(set(current) - set(baseline)):
        print(f"note: new row not in baseline: {format_key(key)}")

    for key, base, new, ratio in regressions:
        print(f"REGRESSION ({(1.0 - ratio) * 100.0:.1f}% slower): "
              f"{format_key(key)}: {base:.3g} -> {new:.3g}")

    print(f"compared {compared} rows: {len(regressions)} regression(s) "
          f"beyond {args.max_regression * 100.0:.0f}%, "
          f"{improvements} improvement(s)")
    if regressions:
        print("if the regression is expected (or the runner hardware "
              "changed), regenerate the baseline with the CI smoke flags "
              "and commit it over bench/baselines/")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Diff bench JSON rows against a committed baseline — or a trend window.

The bench binaries emit machine-readable rows via --json (one object per
table row; see bench/bench_util.h MaybeEmitJson). CI uploads them as
BENCH_*.json artifacts; this tool closes the loop by comparing a fresh
run against the baseline committed under bench/baselines/, flagging any
row whose throughput — or per-lane producer-scaling efficiency, where a
row carries one — regressed by more than --max-regression (default 20%).

Rows are keyed by every identity column (bench, phase, engine, shards,
producers, threads, pinned, unit — whichever are present), so a schema
change that adds a column simply widens the key. Metric columns (seconds,
throughput, speedup, recall, efficiency, cost) never participate in the
key, and neither does the optimizer's "plan" column: the chosen plan is
an OUTCOME (auto mode may legitimately flip between exact and banded when
the data or the calibrated constants change), so a flip must not make the
row "disappear" from the comparison. Instead, a baseline/current plan
mismatch is reported explicitly as a plan flip and the row's throughput
is NOT compared — exact and banded runs have different cost shapes, so
cross-plan throughput deltas are noise, not regressions. Forced-plan legs
(VOS_PLAN / --plan) pin the plan on both sides and always compare.

Trend mode: pass a DIRECTORY as the baseline to compare against the last
N (--last, default 5) BENCH_*.json files found in it — e.g. a folder of
downloaded CI artifacts — instead of the single committed point. Files
are ordered by modification time; each row's reference throughput is the
MEDIAN across the window, so one noisy artifact cannot flag (or mask) a
regression the way a single committed baseline can. Rows present in only
some window files use the median of the files that have them.

Exit status: 0 = no regressions, 1 = at least one flagged row, 2 = usage
or file errors. Baseline rows missing from the new run are reported as
warnings (a renamed engine should update the baseline); new rows absent
from the baseline are listed informationally and pass.

Throughput is machine-dependent: regenerate the baseline whenever the
runner hardware changes (see bench/baselines/README.md for the exact
smoke flags and steps).

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json [--max-regression 0.20]
  tools/bench_compare.py ARTIFACT_DIR CURRENT.json [--last 5]
"""

import argparse
import glob
import json
import os
import statistics
import sys

METRIC_COLUMNS = frozenset(
    {"seconds", "throughput", "speedup", "recall", "efficiency", "cost"})

# Outcome columns: carried on the row and reported, but neither identity
# nor a compared metric. "plan" is the optimizer's per-row verdict.
OUTCOME_COLUMNS = frozenset({"plan"})

# Metrics where lower-than-baseline means a regression. Efficiency is the
# micro_ingest_path producer-scaling column: throughput(P) divided by
# P times throughput(1) — it catches a scaling collapse (lanes serializing
# on each other) that absolute throughput noise can hide.
COMPARED_METRICS = ("throughput", "efficiency")


def row_key(row):
    """Identity of a row: every non-metric, non-outcome column."""
    return tuple(
        sorted((k, v) for k, v in row.items()
               if k not in METRIC_COLUMNS and k not in OUTCOME_COLUMNS)
    )


def format_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def load_rows(path):
    with open(path, "r", encoding="utf-8") as fp:
        rows = json.load(fp)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of row objects")
    indexed = {}
    for row in rows:
        key = row_key(row)
        if key in indexed:
            raise ValueError(f"{path}: duplicate row key ({format_key(key)})")
        indexed[key] = row
    return indexed


def load_trend_window(directory, bench_name, last):
    """Median-throughput reference rows from the last N artifacts.

    Scans `directory` recursively for files named like the current run's
    artifact (BENCH_<bench>.json — CI artifact folders nest each run), takes
    the `last` most recently modified, and builds one synthetic baseline:
    per row key, the row from the newest file carrying it with its
    throughput replaced by the median across all window files that have it.
    """
    pattern = os.path.join(directory, "**", f"BENCH_{bench_name}*.json")
    files = sorted(glob.glob(pattern, recursive=True), key=os.path.getmtime)
    if not files:
        # Fall back to any bench JSON so a flat artifact dump still works.
        pattern = os.path.join(directory, "**", "BENCH_*.json")
        files = sorted(glob.glob(pattern, recursive=True),
                       key=os.path.getmtime)
    if not files:
        raise ValueError(f"{directory}: no BENCH_*.json files found")
    window = files[-last:]
    print(f"trend window ({len(window)} artifact(s), oldest first):")
    for path in window:
        print(f"  {path}")
    merged = {}
    samples = {}
    for path in window:  # oldest → newest; newest row wins the identity
        for key, row in load_rows(path).items():
            for metric in COMPARED_METRICS:
                value = row.get(metric)
                if isinstance(value, (int, float)) and value > 0:
                    samples.setdefault((key, metric), []).append(value)
            merged[key] = dict(row)
    for (key, metric), values in samples.items():
        merged[key][metric] = statistics.median(values)
    return merged


def bench_name_of(path):
    """BENCH_micro_query_path.json -> micro_query_path."""
    stem = os.path.basename(path)
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    return stem.rsplit(".", 1)[0]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline",
        help="committed BENCH_*.json baseline, or a directory of "
        "downloaded artifacts for trend mode")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="flag rows whose throughput dropped by more than this "
        "fraction of the baseline (default: 0.20)",
    )
    parser.add_argument(
        "--last",
        type=int,
        default=5,
        help="trend mode: number of most recent artifacts to take the "
        "median over (default: 5; ignored for a file baseline)",
    )
    args = parser.parse_args()

    try:
        if os.path.isdir(args.baseline):
            baseline = load_trend_window(args.baseline,
                                         bench_name_of(args.current),
                                         max(1, args.last))
        else:
            baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    regressions = []
    improvements = 0
    compared = 0
    plan_flips = 0
    for key, base_row in sorted(baseline.items()):
        new_row = current.get(key)
        if new_row is None:
            print(f"warning: baseline row missing from current run: "
                  f"{format_key(key)}")
            continue
        base_plan = base_row.get("plan")
        new_plan = new_row.get("plan")
        if base_plan is not None and new_plan is not None \
                and base_plan != new_plan:
            # Auto mode changed its verdict: report it, but do not compare
            # throughput across plans (different cost shapes, not a
            # regression). A recall collapse would still be caught by the
            # bench's own floor check.
            plan_flips += 1
            print(f"PLAN FLIP: {format_key(key)}: "
                  f"{base_plan} -> {new_plan} (throughput not compared)")
            continue
        for metric in COMPARED_METRICS:
            base = base_row.get(metric)
            new = new_row.get(metric)
            if not isinstance(base, (int, float)) or not isinstance(
                    new, (int, float)) or base <= 0:
                continue
            compared += 1
            ratio = new / base
            if ratio < 1.0 - args.max_regression:
                regressions.append((key, metric, base, new, ratio))
            elif ratio > 1.0:
                improvements += 1

    for key in sorted(set(current) - set(baseline)):
        print(f"note: new row not in baseline: {format_key(key)}")

    for key, metric, base, new, ratio in regressions:
        print(f"REGRESSION ({(1.0 - ratio) * 100.0:.1f}% lower {metric}): "
              f"{format_key(key)}: {base:.3g} -> {new:.3g}")

    print(f"compared {compared} row metric(s): {len(regressions)} regression(s) "
          f"beyond {args.max_regression * 100.0:.0f}%, "
          f"{improvements} improvement(s), {plan_flips} plan flip(s)")
    if regressions:
        print("if the regression is expected (or the runner hardware "
              "changed), regenerate the baseline with the CI smoke flags "
              "and commit it over bench/baselines/")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())

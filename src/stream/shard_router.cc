#include "stream/shard_router.h"

#include <algorithm>

#include "common/kernels.h"

namespace vos::stream {
namespace {

/// Chunk size for the SoA staging buffers below: big enough to amortize
/// the kernel dispatch and fill the SIMD lanes, small enough to stay on
/// the stack and L1-resident.
constexpr size_t kRouteChunk = 256;

/// seed → the pre-mixed constant ShardOf folds into every user hash.
constexpr uint64_t RouteSeedMix(uint64_t seed) {
  return seed * 0x9e3779b97f4a7c15ULL;
}

}  // namespace

void ShardRouter::Tag(const Element* elements, size_t count,
                      uint16_t* tags) const {
  // Stage users out of the AoS elements so the routing kernel sees a
  // dense lane-loadable array; shard tags land directly in `tags`.
  const uint64_t seed_mix = RouteSeedMix(seed_);
  const kernels::KernelTable& kernel = kernels::Active();
  uint32_t users[kRouteChunk];
  for (size_t base = 0; base < count; base += kRouteChunk) {
    const size_t len = std::min(kRouteChunk, count - base);
    for (size_t i = 0; i < len; ++i) users[i] = elements[base + i].user;
    kernel.route_batch(users, len, seed_mix, num_shards_, nullptr, tags + base,
                       nullptr);
  }
}

void ShardRouter::Partition(const Element* elements, size_t count,
                            std::vector<std::vector<Element>>* per_shard) const {
  VOS_CHECK(per_shard->size() == num_shards_)
      << "per_shard must have one bucket per shard";
  // Hash routing spreads a batch near-uniformly; reserving the expected
  // bucket size plus slack absorbs almost all growth without a second
  // counting pass over the batch (this is the ingest hot path).
  const size_t expected = count / num_shards_ + count / (4 * num_shards_) + 8;
  for (auto& bucket : *per_shard) {
    bucket.reserve(bucket.size() + expected);
  }
  const uint64_t seed_mix = RouteSeedMix(seed_);
  const kernels::KernelTable& kernel = kernels::Active();
  uint32_t users[kRouteChunk];
  uint16_t shards[kRouteChunk];
  for (size_t base = 0; base < count; base += kRouteChunk) {
    const size_t len = std::min(kRouteChunk, count - base);
    for (size_t i = 0; i < len; ++i) users[i] = elements[base + i].user;
    kernel.route_batch(users, len, seed_mix, num_shards_, nullptr, shards,
                       nullptr);
    for (size_t i = 0; i < len; ++i) {
      (*per_shard)[shards[i]].push_back(elements[base + i]);
    }
  }
}

DenseShardMap::DenseShardMap(const ShardRouter& router, UserId num_users)
    : router_(router),
      local_of_(num_users),
      globals_(router.num_shards()) {
  // Rank-order assignment: walking global ids in order hands each shard
  // its users in increasing global id, so local ids are dense and the
  // inverse table is built in the same pass.
  for (UserId u = 0; u < num_users; ++u) {
    std::vector<UserId>& members = globals_[router_.ShardOf(u)];
    local_of_[u] = static_cast<UserId>(members.size());
    members.push_back(u);
  }
}

void DenseShardMap::Route(Element* elements, size_t count,
                          uint16_t* tags) const {
  const uint64_t seed_mix = RouteSeedMix(router_.seed());
  const kernels::KernelTable& kernel = kernels::Active();
  uint32_t users[kRouteChunk];
  uint32_t locals[kRouteChunk];
  for (size_t base = 0; base < count; base += kRouteChunk) {
    const size_t len = std::min(kRouteChunk, count - base);
    for (size_t i = 0; i < len; ++i) {
      const UserId user = elements[base + i].user;
      // Always-on, and necessarily BEFORE the kernel call: the kernel
      // gathers local_of_[user] unchecked, and a release build reading
      // it out of bounds would route the element to a garbage
      // (shard, local id) — fail loudly instead.
      VOS_CHECK(user < local_of_.size())
          << "user" << user << "out of range (num_users "
          << local_of_.size() << ")";
      users[i] = user;
    }
    kernel.route_batch(users, len, seed_mix, router_.num_shards(),
                       local_of_.data(), tags + base, locals);
    for (size_t i = 0; i < len; ++i) elements[base + i].user = locals[i];
  }
}

void DenseShardMap::Partition(const Element* elements, size_t count,
                              std::vector<std::vector<Element>>* per_shard)
    const {
  VOS_CHECK(per_shard->size() == router_.num_shards())
      << "per_shard must have one bucket per shard";
  // Expected-size reservation with slack, as in ShardRouter::Partition.
  const size_t shards = router_.num_shards();
  const size_t expected = count / shards + count / (4 * shards) + 8;
  for (auto& bucket : *per_shard) {
    bucket.reserve(bucket.size() + expected);
  }
  const uint64_t seed_mix = RouteSeedMix(router_.seed());
  const kernels::KernelTable& kernel = kernels::Active();
  uint32_t users[kRouteChunk];
  uint16_t shard_buf[kRouteChunk];
  uint32_t locals[kRouteChunk];
  for (size_t base = 0; base < count; base += kRouteChunk) {
    const size_t len = std::min(kRouteChunk, count - base);
    for (size_t i = 0; i < len; ++i) {
      const UserId user = elements[base + i].user;
      // Same out-of-range abort as Route, before the unchecked gather.
      VOS_CHECK(user < local_of_.size())
          << "user" << user << "out of range (num_users "
          << local_of_.size() << ")";
      users[i] = user;
    }
    kernel.route_batch(users, len, seed_mix, shards, local_of_.data(),
                       shard_buf, locals);
    for (size_t i = 0; i < len; ++i) {
      Element local = elements[base + i];
      local.user = locals[i];
      (*per_shard)[shard_buf[i]].push_back(local);
    }
  }
}

}  // namespace vos::stream

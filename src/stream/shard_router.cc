#include "stream/shard_router.h"

namespace vos::stream {

void ShardRouter::Tag(const Element* elements, size_t count,
                      uint16_t* tags) const {
  for (size_t i = 0; i < count; ++i) {
    tags[i] = static_cast<uint16_t>(ShardOf(elements[i].user));
  }
}

void ShardRouter::Partition(const Element* elements, size_t count,
                            std::vector<std::vector<Element>>* per_shard) const {
  VOS_CHECK(per_shard->size() == num_shards_)
      << "per_shard must have one bucket per shard";
  for (size_t i = 0; i < count; ++i) {
    (*per_shard)[ShardOf(elements[i].user)].push_back(elements[i]);
  }
}

}  // namespace vos::stream

#include "stream/shard_router.h"

namespace vos::stream {

void ShardRouter::Tag(const Element* elements, size_t count,
                      uint16_t* tags) const {
  for (size_t i = 0; i < count; ++i) {
    tags[i] = static_cast<uint16_t>(ShardOf(elements[i].user));
  }
}

void ShardRouter::Partition(const Element* elements, size_t count,
                            std::vector<std::vector<Element>>* per_shard) const {
  VOS_CHECK(per_shard->size() == num_shards_)
      << "per_shard must have one bucket per shard";
  // Hash routing spreads a batch near-uniformly; reserving the expected
  // bucket size plus slack absorbs almost all growth without a second
  // counting pass over the batch (this is the ingest hot path).
  const size_t expected = count / num_shards_ + count / (4 * num_shards_) + 8;
  for (auto& bucket : *per_shard) {
    bucket.reserve(bucket.size() + expected);
  }
  for (size_t i = 0; i < count; ++i) {
    (*per_shard)[ShardOf(elements[i].user)].push_back(elements[i]);
  }
}

DenseShardMap::DenseShardMap(const ShardRouter& router, UserId num_users)
    : router_(router),
      local_of_(num_users),
      globals_(router.num_shards()) {
  // Rank-order assignment: walking global ids in order hands each shard
  // its users in increasing global id, so local ids are dense and the
  // inverse table is built in the same pass.
  for (UserId u = 0; u < num_users; ++u) {
    std::vector<UserId>& members = globals_[router_.ShardOf(u)];
    local_of_[u] = static_cast<UserId>(members.size());
    members.push_back(u);
  }
}

void DenseShardMap::Route(Element* elements, size_t count,
                          uint16_t* tags) const {
  for (size_t i = 0; i < count; ++i) {
    const UserId user = elements[i].user;
    // Always-on: a release build reading local_of_[user] out of bounds
    // would route the element to a garbage (shard, local id) — fail
    // loudly instead.
    VOS_CHECK(user < local_of_.size())
        << "user" << user << "out of range (num_users "
        << local_of_.size() << ")";
    tags[i] = static_cast<uint16_t>(router_.ShardOf(user));
    elements[i].user = local_of_[user];
  }
}

void DenseShardMap::Partition(const Element* elements, size_t count,
                              std::vector<std::vector<Element>>* per_shard)
    const {
  VOS_CHECK(per_shard->size() == router_.num_shards())
      << "per_shard must have one bucket per shard";
  // Expected-size reservation with slack, as in ShardRouter::Partition.
  const size_t shards = router_.num_shards();
  const size_t expected = count / shards + count / (4 * shards) + 8;
  for (auto& bucket : *per_shard) {
    bucket.reserve(bucket.size() + expected);
  }
  for (size_t i = 0; i < count; ++i) {
    Element local = elements[i];
    VOS_CHECK(local.user < local_of_.size())
        << "user" << local.user << "out of range (num_users "
        << local_of_.size() << ")";
    const uint32_t shard = router_.ShardOf(local.user);
    local.user = local_of_[local.user];
    (*per_shard)[shard].push_back(local);
  }
}

}  // namespace vos::stream

#include "stream/shard_router.h"

namespace vos::stream {

void ShardRouter::Tag(const Element* elements, size_t count,
                      uint16_t* tags) const {
  for (size_t i = 0; i < count; ++i) {
    tags[i] = static_cast<uint16_t>(ShardOf(elements[i].user));
  }
}

void ShardRouter::Partition(const Element* elements, size_t count,
                            std::vector<std::vector<Element>>* per_shard) const {
  VOS_CHECK(per_shard->size() == num_shards_)
      << "per_shard must have one bucket per shard";
  for (size_t i = 0; i < count; ++i) {
    (*per_shard)[ShardOf(elements[i].user)].push_back(elements[i]);
  }
}

DenseShardMap::DenseShardMap(const ShardRouter& router, UserId num_users)
    : router_(router),
      local_of_(num_users),
      globals_(router.num_shards()) {
  // Rank-order assignment: walking global ids in order hands each shard
  // its users in increasing global id, so local ids are dense and the
  // inverse table is built in the same pass.
  for (UserId u = 0; u < num_users; ++u) {
    std::vector<UserId>& members = globals_[router_.ShardOf(u)];
    local_of_[u] = static_cast<UserId>(members.size());
    members.push_back(u);
  }
}

void DenseShardMap::Route(Element* elements, size_t count,
                          uint16_t* tags) const {
  for (size_t i = 0; i < count; ++i) {
    const UserId user = elements[i].user;
    VOS_DCHECK(user < local_of_.size()) << "user" << user << "out of range";
    tags[i] = static_cast<uint16_t>(router_.ShardOf(user));
    elements[i].user = local_of_[user];
  }
}

}  // namespace vos::stream

#include "stream/binary_io.h"

#include <cstring>
#include <fstream>

#include "hashing/hash64.h"

namespace vos::stream {
namespace {

constexpr char kMagic[9] = "VOSTREAM";
constexpr uint32_t kVersion = 1;
constexpr uint32_t kActionBit = 0x80000000u;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

uint64_t ElementChecksum(uint64_t running, uint32_t user,
                         uint32_t item_word) {
  return running ^
         hash::Hash64((static_cast<uint64_t>(user) << 32) | item_word,
                      0xc0deu);
}

}  // namespace

Status SaveStreamBinary(const GraphStream& stream, const std::string& path) {
  for (const Element& e : stream.elements()) {
    if (e.item & kActionBit) {
      return Status::InvalidArgument(
          "binary format holds item ids < 2^31; got " +
          std::to_string(e.item));
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kMagic, 8);
  WritePod(out, kVersion);
  const std::string& name = stream.name();
  WritePod(out, static_cast<uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  WritePod(out, stream.num_users());
  WritePod(out, stream.num_items());
  WritePod(out, static_cast<uint64_t>(stream.size()));
  uint64_t checksum = 0x57a7eULL;
  for (const Element& e : stream.elements()) {
    const uint32_t item_word =
        e.item | (e.action == Action::kDelete ? kActionBit : 0);
    WritePod(out, e.user);
    WritePod(out, item_word);
    checksum = ElementChecksum(checksum, e.user, item_word);
  }
  WritePod(out, checksum);
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<GraphStream> LoadStreamBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[8];
  in.read(magic, 8);
  if (!in.good() || std::memcmp(magic, kMagic, 8) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::Corruption(path + ": unsupported version");
  }
  uint32_t name_len = 0;
  if (!ReadPod(in, &name_len) || name_len > 4096) {
    return Status::Corruption(path + ": bad name length");
  }
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  UserId num_users = 0;
  ItemId num_items = 0;
  uint64_t num_elements = 0;
  if (!in.good() || !ReadPod(in, &num_users) || !ReadPod(in, &num_items) ||
      !ReadPod(in, &num_elements)) {
    return Status::Corruption(path + ": truncated header");
  }

  GraphStream stream(name, num_users, num_items);
  stream.Reserve(num_elements);
  uint64_t checksum = 0x57a7eULL;
  for (uint64_t t = 0; t < num_elements; ++t) {
    uint32_t user = 0, item_word = 0;
    if (!ReadPod(in, &user) || !ReadPod(in, &item_word)) {
      return Status::Corruption(path + ": truncated at element " +
                                std::to_string(t));
    }
    checksum = ElementChecksum(checksum, user, item_word);
    stream.Append(user, item_word & ~kActionBit,
                  (item_word & kActionBit) ? Action::kDelete
                                           : Action::kInsert);
  }
  uint64_t stored_checksum = 0;
  if (!ReadPod(in, &stored_checksum) || stored_checksum != checksum) {
    return Status::Corruption(path + ": checksum mismatch");
  }
  VOS_RETURN_IF_ERROR(stream.Validate());
  return stream;
}

}  // namespace vos::stream

#include "stream/bipartite_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "hashing/feistel_permutation.h"
#include "hashing/seeds.h"

namespace vos::stream {

std::vector<uint32_t> TargetDegrees(const BipartiteGraphConfig& config) {
  VOS_CHECK(config.num_users > 0);
  VOS_CHECK(config.num_items > 0);
  VOS_CHECK(config.max_fill_fraction > 0.0 &&
            config.max_fill_fraction <= 1.0);
  const auto cap = static_cast<uint32_t>(std::max(
      1.0, config.max_fill_fraction * static_cast<double>(config.num_items)));
  VOS_CHECK(static_cast<double>(config.num_edges) <=
            static_cast<double>(cap) * config.num_users)
      << "cannot place" << config.num_edges << "edges with per-user cap"
      << cap;

  // Unnormalized Zipf weights over user ranks.
  std::vector<double> weight(config.num_users);
  double total = 0.0;
  for (UserId u = 0; u < config.num_users; ++u) {
    weight[u] = 1.0 / std::pow(static_cast<double>(u + 1), config.user_zipf);
    total += weight[u];
  }

  // Water-filling under the cap: scale weights to the edge budget, clip at
  // the cap, and redistribute the clipped mass over unclipped users until
  // the floor-sum stabilizes. A handful of rounds suffices in practice.
  std::vector<uint32_t> degree(config.num_users, 0);
  double remaining = static_cast<double>(config.num_edges);
  std::vector<char> clipped(config.num_users, 0);
  double active_weight = total;
  for (int round = 0; round < 64 && remaining > 0; ++round) {
    bool any_clip = false;
    const double scale = remaining / active_weight;
    for (UserId u = 0; u < config.num_users; ++u) {
      if (clipped[u]) continue;
      if (weight[u] * scale >= cap - degree[u]) {
        remaining -= cap - degree[u];
        degree[u] = cap;
        active_weight -= weight[u];
        clipped[u] = 1;
        any_clip = true;
      }
    }
    if (!any_clip) break;
    VOS_CHECK(active_weight > 0 || remaining <= 0)
        << "degree cap saturated before placing all edges";
  }
  // Fractional assignment of what is left, floors first.
  const double scale = active_weight > 0 ? remaining / active_weight : 0.0;
  std::vector<std::pair<double, UserId>> fraction;
  size_t assigned = 0;
  for (UserId u = 0; u < config.num_users; ++u) {
    if (clipped[u]) {
      assigned += degree[u];
      continue;
    }
    const double exact = weight[u] * scale;
    const auto base = static_cast<uint32_t>(exact);
    degree[u] = std::min<uint32_t>(base, cap);
    assigned += degree[u];
    if (degree[u] < cap) fraction.push_back({exact - base, u});
  }
  // Distribute the rounding shortfall to the largest fractional parts.
  VOS_CHECK(assigned <= config.num_edges);
  size_t shortfall = config.num_edges - assigned;
  std::sort(fraction.begin(), fraction.end(), [](const auto& a,
                                                 const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (size_t pass = 0; shortfall > 0; ++pass) {
    VOS_CHECK(pass < 2 * config.num_users + 2) << "degree fill stalled";
    bool progressed = false;
    for (auto& [frac, u] : fraction) {
      if (shortfall == 0) break;
      if (degree[u] < cap) {
        ++degree[u];
        --shortfall;
        progressed = true;
      }
    }
    VOS_CHECK(progressed || shortfall == 0)
        << "cap too tight for requested edges";
  }
  return degree;
}

std::vector<Edge> GenerateBipartiteEdges(const BipartiteGraphConfig& config) {
  const std::vector<uint32_t> degrees = TargetDegrees(config);
  Rng rng(config.seed);
  ZipfSampler item_sampler(config.num_items, config.item_zipf);

  std::vector<Edge> edges;
  edges.reserve(config.num_edges);
  std::unordered_set<ItemId> chosen;
  for (UserId u = 0; u < config.num_users; ++u) {
    const uint32_t d = degrees[u];
    if (d == 0) continue;
    chosen.clear();
    chosen.reserve(d * 2);
    // Rejection sampling from the popularity distribution; heavy users
    // saturate the Zipf head, so bound the attempts.
    const size_t max_attempts = 30ULL * d + 64;
    for (size_t attempt = 0; attempt < max_attempts && chosen.size() < d;
         ++attempt) {
      chosen.insert(static_cast<ItemId>(item_sampler.Sample(rng)));
    }
    if (chosen.size() < d) {
      // Fallback: walk the item domain in a per-user pseudo-random order
      // and take the first unused items. Keeps generation O(items) worst
      // case and deterministic.
      hash::FeistelPermutation walk(hash::DeriveSeed(config.seed, u),
                                    config.num_items);
      for (uint64_t step = 0; step < config.num_items && chosen.size() < d;
           ++step) {
        chosen.insert(static_cast<ItemId>(walk.Apply(step)));
      }
    }
    VOS_CHECK(chosen.size() == d)
        << "user" << u << "wanted" << d << "items, found" << chosen.size();
    // Sort for platform-independent determinism (unordered_set iteration
    // order is implementation-defined).
    std::vector<ItemId> items(chosen.begin(), chosen.end());
    std::sort(items.begin(), items.end());
    for (ItemId item : items) edges.push_back(Edge{u, item});
  }
  VOS_CHECK(edges.size() == config.num_edges)
      << "generated" << edges.size() << "of" << config.num_edges;
  return edges;
}

}  // namespace vos::stream

// Text serialization of graph streams.
//
// Format (line-oriented, '#' comments allowed):
//
//   vos-stream 1 <name> <num_users> <num_items>
//   + <user> <item>
//   - <user> <item>
//   ...
//
// Loading validates feasibility and domain bounds, so corrupted or
// hand-edited files fail with a precise error instead of poisoning an
// experiment.

#pragma once

#include <string>

#include "common/status.h"
#include "stream/graph_stream.h"

namespace vos::stream {

/// Writes `stream` to `path`, overwriting.
Status SaveStream(const GraphStream& stream, const std::string& path);

/// Reads a stream from `path`; validates header, bounds and feasibility.
StatusOr<GraphStream> LoadStream(const std::string& path);

}  // namespace vos::stream

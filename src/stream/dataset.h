// Dataset registry: named, reproducible stand-ins for the paper's datasets.
//
// The paper evaluates on crawled snapshots of YouTube, Flickr, Orkut and
// LiveJournal (Mislove et al., IMC'07). Those crawls are not redistributable
// and are far beyond laptop scale (up to 223M edges). The registry provides
// deterministic synthetic datasets — `youtube_s`, `flickr_s`, `orkut_s`,
// `livejournal_s` — that preserve what the evaluation actually exercises:
// heavy-tailed cardinalities, item overlap among high-cardinality users, and
// the relative size ordering of the four datasets (YouTube < Flickr <
// LiveJournal < Orkut by edges). Deletion periods are scaled so each stream
// experiences ≈2.4 massive deletions, matching 4.9M edges / 2M period on the
// real YouTube graph. See DESIGN.md §2.
//
// `toy` and `unit` presets support examples and fast tests.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/bipartite_generator.h"
#include "stream/dynamic_stream.h"
#include "stream/graph_stream.h"

namespace vos::stream {

/// Full recipe for one named dataset: static graph + dynamic stream model.
struct DatasetSpec {
  std::string name;
  BipartiteGraphConfig graph;
  DynamicStreamConfig dynamics;
};

/// Returns the spec for `name`, or NotFound with the list of valid names.
StatusOr<DatasetSpec> GetDatasetSpec(const std::string& name);

/// All registered dataset names, evaluation-scale first.
std::vector<std::string> ListDatasets();

/// The four paper datasets (in the paper's order).
std::vector<std::string> PaperDatasets();

/// Generates the fully dynamic stream for a spec. Deterministic.
GraphStream GenerateDataset(const DatasetSpec& spec);

/// Convenience: GetDatasetSpec + GenerateDataset.
StatusOr<GraphStream> GenerateDatasetByName(const std::string& name);

/// Applies a uniform scale factor to a spec (scales users, items, edges and
/// deletion period by `factor`, keeping exponents). Used by benches'
/// `--scale` flag to trade runtime for fidelity.
DatasetSpec ScaleSpec(const DatasetSpec& spec, double factor);

}  // namespace vos::stream

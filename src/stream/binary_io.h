// Binary serialization of graph streams — the text format (stream_io.h) is
// human-readable and diffable; this one is ~6× smaller and ~20× faster to
// parse, for checkpointing multi-million-element generated streams between
// bench runs.
//
// Format (little-endian, versioned):
//   magic "VOSTREAM" | u32 version | u32 name_len | name bytes
//   | u32 num_users | u32 num_items | u64 num_elements
//   | elements (u32 user, u32 item with the action packed in the top bit)
//   | u64 xor-checksum
//
// Item ids are restricted to 31 bits in this format (checked at save time);
// the top bit of the item word carries the action.

#pragma once

#include <string>

#include "common/status.h"
#include "stream/graph_stream.h"

namespace vos::stream {

/// Writes `stream` to `path` in the binary format, overwriting.
/// InvalidArgument if any item id exceeds 2^31 − 1.
Status SaveStreamBinary(const GraphStream& stream, const std::string& path);

/// Reads a binary stream from `path`; validates the checksum, domain
/// bounds, and stream feasibility.
StatusOr<GraphStream> LoadStreamBinary(const std::string& path);

}  // namespace vos::stream

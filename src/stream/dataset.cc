#include "stream/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vos::stream {
namespace {

DatasetSpec MakeSpec(std::string name, UserId users, ItemId items,
                     size_t edges, size_t deletion_period, uint64_t seed) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.graph.num_users = users;
  spec.graph.num_items = items;
  spec.graph.num_edges = edges;
  spec.graph.user_zipf = 0.72;
  spec.graph.item_zipf = 0.85;
  spec.graph.seed = seed;
  spec.dynamics.model = DeletionModel::kMassive;
  spec.dynamics.deletion_period = deletion_period;
  spec.dynamics.deletion_fraction = 0.5;
  spec.dynamics.seed = seed ^ 0x5ca1ab1e;
  return spec;
}

/// Registry: sizes keep the original ordering YouTube < Flickr <
/// LiveJournal < Orkut (by edges) at ≈1/20–1/350 scale, and every stream
/// sees ≈2.4 massive deletions (edges / period ≈ 2.4, as 4.9M / 2M in the
/// paper).
const std::vector<DatasetSpec>& Registry() {
  static const std::vector<DatasetSpec> kSpecs = {
      MakeSpec("youtube_s", 30000, 4000, 900000, 375000, 101),
      MakeSpec("flickr_s", 40000, 5000, 1400000, 580000, 102),
      MakeSpec("livejournal_s", 60000, 7000, 1900000, 790000, 103),
      MakeSpec("orkut_s", 50000, 6000, 2400000, 1000000, 104),
      MakeSpec("toy", 400, 1500, 100000, 42000, 105),
      MakeSpec("unit", 60, 200, 6000, 2500, 106),
      // Dedicated preset for update-throughput measurements (Figure 2):
      // few users so the O(k)-per-update baselines fit in memory at very
      // large k (MinHash at k = 10^5 needs ~0.8 KB per user per 1000 k).
      MakeSpec("runtime_s", 2000, 3000, 300000, 125000, 107),
  };
  return kSpecs;
}

}  // namespace

StatusOr<DatasetSpec> GetDatasetSpec(const std::string& name) {
  for (const DatasetSpec& spec : Registry()) {
    if (spec.name == name) return spec;
  }
  std::string known;
  for (const DatasetSpec& spec : Registry()) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  return Status::NotFound("unknown dataset '" + name + "'; known: " + known);
}

std::vector<std::string> ListDatasets() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const DatasetSpec& spec : Registry()) names.push_back(spec.name);
  return names;
}

std::vector<std::string> PaperDatasets() {
  return {"youtube_s", "flickr_s", "orkut_s", "livejournal_s"};
}

GraphStream GenerateDataset(const DatasetSpec& spec) {
  const std::vector<Edge> edges = GenerateBipartiteEdges(spec.graph);
  return BuildDynamicStream(edges, spec.graph.num_users, spec.graph.num_items,
                            spec.dynamics, spec.name);
}

StatusOr<GraphStream> GenerateDatasetByName(const std::string& name) {
  VOS_ASSIGN_OR_RETURN(DatasetSpec spec, GetDatasetSpec(name));
  return GenerateDataset(spec);
}

DatasetSpec ScaleSpec(const DatasetSpec& spec, double factor) {
  VOS_CHECK(factor > 0.0) << "scale factor must be positive";
  DatasetSpec scaled = spec;
  auto scale = [factor](auto v) {
    const double s = std::max(1.0, std::round(static_cast<double>(v) * factor));
    return static_cast<decltype(v)>(s);
  };
  scaled.graph.num_users = scale(spec.graph.num_users);
  scaled.graph.num_items = scale(spec.graph.num_items);
  scaled.graph.num_edges = scale(spec.graph.num_edges);
  scaled.dynamics.deletion_period = scale(spec.dynamics.deletion_period);
  if (factor != 1.0) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "@%.3g", factor);
    scaled.name += suffix;
  }
  return scaled;
}

}  // namespace vos::stream

#include "stream/dynamic_stream.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace vos::stream {
namespace {

/// Emits a massive deletion: each live edge is dropped with probability
/// `fraction`; the deletion elements are appended in shuffled order.
void EmitMassiveDeletion(std::vector<Edge>& alive, double fraction, Rng& rng,
                         GraphStream& out) {
  std::vector<Edge> deleted;
  std::vector<Edge> survivors;
  survivors.reserve(alive.size());
  for (const Edge& e : alive) {
    if (rng.NextBernoulli(fraction)) deleted.push_back(e);
    else survivors.push_back(e);
  }
  rng.Shuffle(deleted);
  for (const Edge& e : deleted) {
    out.Append(e.user, e.item, Action::kDelete);
  }
  alive.swap(survivors);
}

}  // namespace

GraphStream BuildDynamicStream(const std::vector<Edge>& edges,
                               UserId num_users, ItemId num_items,
                               const DynamicStreamConfig& config,
                               std::string name) {
  VOS_CHECK(config.deletion_fraction >= 0.0 &&
            config.deletion_fraction <= 1.0)
      << "deletion_fraction out of [0,1]:" << config.deletion_fraction;
  VOS_CHECK(config.model == DeletionModel::kNone ||
            config.deletion_period > 0)
      << "deletion_period must be positive";

  Rng rng(config.seed);
  std::vector<Edge> base = edges;
  if (config.shuffle_base) rng.Shuffle(base);

  GraphStream out(std::move(name), num_users, num_items);
  out.Reserve(base.size() * 2);

  std::vector<Edge> alive;
  alive.reserve(base.size());
  size_t insertions_since_deletion = 0;

  for (const Edge& e : base) {
    out.Append(e.user, e.item, Action::kInsert);
    alive.push_back(e);
    ++insertions_since_deletion;

    switch (config.model) {
      case DeletionModel::kNone:
        break;
      case DeletionModel::kMassive:
        if (insertions_since_deletion >= config.deletion_period) {
          EmitMassiveDeletion(alive, config.deletion_fraction, rng, out);
          insertions_since_deletion = 0;
        }
        break;
      case DeletionModel::kProbabilistic:
        if (!alive.empty() && rng.NextBernoulli(config.deletion_fraction)) {
          const size_t victim = rng.NextBounded(alive.size());
          const Edge doomed = alive[victim];
          alive[victim] = alive.back();
          alive.pop_back();
          out.Append(doomed.user, doomed.item, Action::kDelete);
        }
        break;
    }
  }
  return out;
}

}  // namespace vos::stream

// Synthetic bipartite graph generation with heavy-tailed degrees.
//
// Stands in for the crawled OSN datasets of Mislove et al. (IMC'07) used in
// the paper's evaluation (see DESIGN.md §2, substitution table). The
// construction is degree-targeted:
//
//   1. User u (rank-ordered) gets a target degree d_u ∝ (u+1)^{−user_zipf},
//      scaled so Σ d_u equals num_edges exactly and capped at
//      max_fill_fraction·num_items.
//   2. Each user samples d_u *distinct* items from a Zipf(item_zipf)
//      popularity distribution (rejection on duplicates, with a
//      permutation-walk fallback so saturated heavy users always finish).
//
// This reproduces the two properties the paper's evaluation rests on:
//   * a head of users with very large item sets (the paper tracks the
//     top-5000 users by cardinality and "mainly focuses on similarity
//     estimation for users with a large number of subscribed items"), and
//   * large item overlaps among those users — popular head items are held
//     by nearly every heavy user, so tracked pairs have common-item counts
//     in the tens to hundreds, as in the crawled graphs.

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "stream/element.h"

namespace vos::stream {

/// Parameters of the synthetic bipartite graph.
struct BipartiteGraphConfig {
  UserId num_users = 1000;
  ItemId num_items = 1000;
  /// Total number of distinct edges to generate (hit exactly).
  size_t num_edges = 10000;
  /// Zipf exponent of the user degree sequence (0 = uniform degrees).
  double user_zipf = 0.75;
  /// Zipf exponent of item popularity (0 = uniform).
  double item_zipf = 0.95;
  /// Cap on any single user's degree, as a fraction of num_items.
  double max_fill_fraction = 0.5;
  uint64_t seed = 1;
};

/// Generates exactly `config.num_edges` distinct user–item edges.
///
/// Deterministic given `config.seed`. Aborts (VOS_CHECK) if the requested
/// edge count cannot be placed under the degree cap.
std::vector<Edge> GenerateBipartiteEdges(const BipartiteGraphConfig& config);

/// The degree sequence the generator will target for `config` (before item
/// sampling). Exposed for tests and capacity planning: Σ = num_edges.
std::vector<uint32_t> TargetDegrees(const BipartiteGraphConfig& config);

}  // namespace vos::stream

// Core vocabulary types of the fully dynamic graph stream model (§II).
//
// A stream Π = e(1) e(2) … consists of elements e = (u, i, a): user u
// subscribes to (a = kInsert) or unsubscribes from (a = kDelete) item i.
// Time is implicit: the t-th element of a stream occurs at time t.

#pragma once

#include <cstdint>
#include <ostream>

namespace vos::stream {

/// User identifier (dense, 0-based). 32 bits suffice for the scaled
/// datasets; widening is a one-line change.
using UserId = uint32_t;

/// Item identifier (dense, 0-based).
using ItemId = uint32_t;

/// Edge action: subscription ("+") or unsubscription ("−").
enum class Action : uint8_t {
  kInsert = 0,
  kDelete = 1,
};

inline char ActionToChar(Action a) { return a == Action::kInsert ? '+' : '-'; }

/// One stream element e = (u, i, a).
struct Element {
  UserId user;
  ItemId item;
  Action action;

  bool operator==(const Element& other) const {
    return user == other.user && item == other.item && action == other.action;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Element& e) {
  return os << '(' << e.user << ", " << e.item << ", " << ActionToChar(e.action)
            << ')';
}

/// An undirected user–item edge (no action), used by generators and the
/// exact store.
struct Edge {
  UserId user;
  ItemId item;

  bool operator==(const Edge& other) const {
    return user == other.user && item == other.item;
  }
};

/// Key packing an edge into 64 bits for hash sets.
inline uint64_t EdgeKey(UserId u, ItemId i) {
  return (static_cast<uint64_t>(u) << 32) | i;
}

}  // namespace vos::stream

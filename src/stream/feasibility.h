// Feasibility enforcement for fully dynamic streams (§II).
//
// The paper restricts attention to "feasible" streams: (u, i, +) may occur
// only when i ∉ S_u, and (u, i, −) only when i ∈ S_u. Generators in this
// library construct feasible streams by design; FeasibilityFilter is the
// defensive wrapper for externally supplied streams (stream_io) and for
// randomized generator tests.

#pragma once

#include <unordered_set>

#include "stream/element.h"

namespace vos::stream {

/// Incremental feasibility oracle: tracks live edges and answers whether the
/// next element is admissible.
class FeasibilityFilter {
 public:
  FeasibilityFilter() = default;

  /// True iff `e` is feasible given the elements accepted so far.
  bool IsFeasible(const Element& e) const {
    const bool live = alive_.count(EdgeKey(e.user, e.item)) > 0;
    return e.action == Action::kInsert ? !live : live;
  }

  /// Accepts `e` if feasible (updating the live-edge set) and returns true;
  /// returns false and changes nothing otherwise.
  bool Accept(const Element& e) {
    const uint64_t key = EdgeKey(e.user, e.item);
    if (e.action == Action::kInsert) {
      return alive_.insert(key).second;
    }
    return alive_.erase(key) > 0;
  }

  /// Number of currently live edges.
  size_t live_edges() const { return alive_.size(); }

  /// True iff edge (u, i) is currently live.
  bool IsLive(UserId u, ItemId i) const {
    return alive_.count(EdgeKey(u, i)) > 0;
  }

  void Clear() { alive_.clear(); }

 private:
  std::unordered_set<uint64_t> alive_;
};

}  // namespace vos::stream

#include "stream/replayer.h"

#include <algorithm>

namespace vos::stream {

std::vector<size_t> StreamReplayer::CheckpointPositions(size_t stream_size,
                                                        size_t count) {
  std::vector<size_t> positions;
  if (stream_size == 0) return positions;
  count = std::max<size_t>(1, std::min(count, stream_size));
  for (size_t c = 1; c <= count; ++c) {
    positions.push_back(stream_size * c / count);
  }
  positions.back() = stream_size;
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  return positions;
}

void StreamReplayer::ReplayBatched(
    const GraphStream& stream, size_t num_checkpoints, size_t batch_size,
    const std::function<void(const Element*, size_t)>& on_batch,
    const std::function<void(size_t)>& on_checkpoint) {
  const std::vector<size_t> checkpoints =
      CheckpointPositions(stream.size(), num_checkpoints);
  const Element* elements = stream.elements().data();
  size_t t = 0;
  for (size_t checkpoint : checkpoints) {
    while (t < checkpoint) {
      const size_t count = batch_size == 0
                               ? checkpoint - t
                               : std::min(batch_size, checkpoint - t);
      if (on_batch) on_batch(elements + t, count);
      t += count;
    }
    if (on_checkpoint) on_checkpoint(t);
  }
}

std::vector<std::vector<Element>> StreamReplayer::SplitByUserLane(
    const Element* elements, size_t count, unsigned num_lanes) {
  VOS_CHECK(num_lanes >= 1) << "need at least one lane";
  std::vector<std::vector<Element>> lanes(num_lanes);
  for (auto& lane : lanes) lane.reserve(count / num_lanes + 1);
  for (size_t t = 0; t < count; ++t) {
    lanes[elements[t].user % num_lanes].push_back(elements[t]);
  }
  return lanes;
}

void StreamReplayer::ReplayBatchedFrom(
    const Element* elements, size_t count, size_t start, size_t batch_size,
    const std::function<void(const Element*, size_t)>& on_batch) {
  VOS_CHECK(start <= count)
      << "watermark" << start << "beyond the lane's stream (" << count
      << "elements) — wrong stream for this checkpoint";
  for (size_t t = start; t < count;) {
    const size_t n =
        batch_size == 0 ? count - t : std::min(batch_size, count - t);
    if (on_batch) on_batch(elements + t, n);
    t += n;
  }
}

void StreamReplayer::Replay(
    const GraphStream& stream, size_t num_checkpoints,
    const std::function<void(const Element&)>& on_element,
    const std::function<void(size_t)>& on_checkpoint) {
  const std::vector<size_t> checkpoints =
      CheckpointPositions(stream.size(), num_checkpoints);
  size_t next = 0;
  for (size_t t = 0; t < stream.size(); ++t) {
    if (on_element) on_element(stream[t]);
    if (next < checkpoints.size() && t + 1 == checkpoints[next]) {
      if (on_checkpoint) on_checkpoint(t + 1);
      ++next;
    }
  }
}

}  // namespace vos::stream

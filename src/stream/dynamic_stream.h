// Fully dynamic stream construction from a static edge set.
//
// Implements the deletion model of the paper's evaluation (§V), which
// follows Trièst [15]: the base edges arrive as insertions in random order,
// and every `deletion_period` insertions a *massive deletion* occurs in
// which each currently live edge is deleted independently with probability
// `deletion_fraction` (paper: q = 2,000,000, d = 0.5 — "a massive deletion
// of expected 50% edges every 2,000,000 edges").
//
// A second, per-element probabilistic deletion model is provided as an
// extension (kProbabilistic): after each insertion, with probability
// `deletion_fraction` a uniformly random live edge is deleted. It produces a
// steadier churn and is used by ablation benches.

#pragma once

#include <cstdint>
#include <vector>

#include "stream/element.h"
#include "stream/graph_stream.h"

namespace vos::stream {

/// Which deletion process interleaves deletions with the base insertions.
enum class DeletionModel : uint8_t {
  /// No deletions: insertion-only stream (the setting MinHash/OPH are
  /// unbiased in; used for sanity baselines).
  kNone = 0,
  /// Trièst-style massive deletions (the paper's evaluation setting).
  kMassive = 1,
  /// Per-insertion random single-edge deletions (extension).
  kProbabilistic = 2,
};

/// Parameters of the dynamic stream construction.
struct DynamicStreamConfig {
  DeletionModel model = DeletionModel::kMassive;
  /// kMassive: a massive deletion fires after every `deletion_period`
  /// insertions (paper: 2,000,000; scaled with the datasets here).
  size_t deletion_period = 2000000;
  /// kMassive: per-edge survival coin — each live edge is deleted with this
  /// probability at a massive-deletion event (paper: d = 0.5).
  /// kProbabilistic: probability that an insertion is followed by one
  /// random deletion.
  double deletion_fraction = 0.5;
  /// Shuffle base edges before streaming (recommended; crawled edge lists
  /// are ordered by crawl time which correlates with degree).
  bool shuffle_base = true;
  uint64_t seed = 7;
};

/// Expands static `edges` into a feasible fully dynamic stream.
///
/// The result always satisfies GraphStream::Validate(): deletions target
/// only live edges, and each base edge is inserted exactly once (a deleted
/// edge is never re-inserted, matching the paper's replay of a finite
/// dataset).
GraphStream BuildDynamicStream(const std::vector<Edge>& edges,
                               UserId num_users, ItemId num_items,
                               const DynamicStreamConfig& config,
                               std::string name = "dynamic");

}  // namespace vos::stream

// StreamReplayer: drive any number of element sinks through a stream with
// evenly spaced checkpoints.
//
// The harness, the CLI and several examples all share the same loop: apply
// every element to a set of consumers, pausing at checkpoint positions to
// evaluate. This class owns that loop (including the corner cases: final
// element always a checkpoint, deduplicated positions on tiny streams), so
// the call sites keep only their domain logic.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "stream/graph_stream.h"

namespace vos::stream {

/// Checkpointed replay driver.
class StreamReplayer {
 public:
  /// Computes `count` checkpoint positions evenly spaced in (0, size],
  /// always including `size`, deduplicated and sorted.
  static std::vector<size_t> CheckpointPositions(size_t stream_size,
                                                 size_t count);

  /// Replays `stream`, invoking `on_element` for every element and
  /// `on_checkpoint(t)` (t = 1-based element count) at each of
  /// `num_checkpoints` positions. Either callback may be empty.
  static void Replay(
      const GraphStream& stream, size_t num_checkpoints,
      const std::function<void(const Element&)>& on_element,
      const std::function<void(size_t t)>& on_checkpoint);

  /// Batched replay: invokes `on_batch(first, count)` over contiguous
  /// sub-ranges of the stream, at most `batch_size` elements each
  /// (batch_size 0 means one maximal batch per checkpoint segment).
  /// Batches never straddle a checkpoint, so every `on_checkpoint(t)`
  /// observes exactly the first t elements applied — the same
  /// element-order and checkpoint semantics as Replay, delivered in
  /// consumer-sized chunks for the batched ingest path
  /// (SimilarityMethod::UpdateBatch, core/sharded_vos_sketch.h).
  static void ReplayBatched(
      const GraphStream& stream, size_t num_checkpoints, size_t batch_size,
      const std::function<void(const Element* first, size_t count)>& on_batch,
      const std::function<void(size_t t)>& on_checkpoint);

  // --- Recovery replay (see core/vos_io.h, ShardedCheckpointIo) ---------

  /// The canonical producer-lane split: lanes[user % num_lanes] ←
  /// element, preserving stream order within each lane. A user's whole
  /// history rides one lane (feasible sub-streams), and the rule depends
  /// on nothing but num_lanes — so a recovering process re-derives the
  /// identical lanes and can resume each one from its checkpointed
  /// watermark. `num_lanes` ≥ 1.
  static std::vector<std::vector<Element>> SplitByUserLane(
      const Element* elements, size_t count, unsigned num_lanes);

  /// Replays elements[start, count) in `batch_size`-sized batches through
  /// `on_batch` (batch_size 0 = one maximal batch). This is the recovery
  /// half of the watermark contract: after Restore, call this per lane
  /// with start = ingest_watermarks()[lane] to re-apply exactly the
  /// elements the checkpoint does not cover. `start` > count aborts —
  /// a watermark beyond the lane's stream means the wrong stream.
  static void ReplayBatchedFrom(
      const Element* elements, size_t count, size_t start, size_t batch_size,
      const std::function<void(const Element* first, size_t count)>& on_batch);
};

}  // namespace vos::stream

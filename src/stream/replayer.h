// StreamReplayer: drive any number of element sinks through a stream with
// evenly spaced checkpoints.
//
// The harness, the CLI and several examples all share the same loop: apply
// every element to a set of consumers, pausing at checkpoint positions to
// evaluate. This class owns that loop (including the corner cases: final
// element always a checkpoint, deduplicated positions on tiny streams), so
// the call sites keep only their domain logic.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "stream/graph_stream.h"

namespace vos::stream {

/// Checkpointed replay driver.
class StreamReplayer {
 public:
  /// Computes `count` checkpoint positions evenly spaced in (0, size],
  /// always including `size`, deduplicated and sorted.
  static std::vector<size_t> CheckpointPositions(size_t stream_size,
                                                 size_t count);

  /// Replays `stream`, invoking `on_element` for every element and
  /// `on_checkpoint(t)` (t = 1-based element count) at each of
  /// `num_checkpoints` positions. Either callback may be empty.
  static void Replay(
      const GraphStream& stream, size_t num_checkpoints,
      const std::function<void(const Element&)>& on_element,
      const std::function<void(size_t t)>& on_checkpoint);
};

}  // namespace vos::stream

// ShardRouter: deterministic user → shard partitioning for sharded
// ingestion.
//
// A fully dynamic graph stream shards naturally by *user*: every element
// (u, i, ±) touches only user u's state, so routing by hash(u) % S gives S
// sub-streams that never share a user. Two consequences make this the
// right partition key (and not, say, the item or the raw element index):
//
//   * Locality — each shard's sub-stream is feasible on its own (a user's
//     deletions follow their insertions within one shard), so a shard can
//     be replayed, checkpointed or re-ingested independently.
//   * Query routing — every user lives in exactly one known shard, so
//     both endpoints of any pair query (u, v) are found by two ShardOf
//     calls; no pair ever needs cross-shard state reconciliation beyond
//     reading two digests (see core/sharded_vos_sketch.h).
//
// Routing is a seeded multiplicative hash, not `u % S`: dense user ids
// would otherwise stripe pathologically (e.g. all even users on shard 0
// for S = 2 after a generator that interleaves). The router is
// deterministic in (seed, num_shards) — ingest and query sides construct
// equal routers from the same sketch config and always agree.

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "hashing/hash64.h"
#include "stream/element.h"

namespace vos::stream {

/// Stateless user → shard map, plus batch partition/tag helpers.
class ShardRouter {
 public:
  /// `num_shards` ≥ 1; `seed` selects the hash (ingest and query sides
  /// must agree on both).
  explicit ShardRouter(uint32_t num_shards, uint64_t seed = 0)
      : num_shards_(num_shards), seed_(seed) {
    VOS_CHECK(num_shards >= 1) << "need at least one shard";
    VOS_CHECK(num_shards <= 0xffff) << "shard ids are tagged as uint16";
  }

  uint32_t num_shards() const { return num_shards_; }
  uint64_t seed() const { return seed_; }

  /// hash(user) % num_shards — the shard owning all of `user`'s state.
  /// One Mix64 + one multiply; cheap enough for the per-element ingest
  /// path.
  uint32_t ShardOf(UserId user) const {
    return static_cast<uint32_t>(hash::ReduceToRange(
        hash::Mix64(user ^ (seed_ * 0x9e3779b97f4a7c15ULL)), num_shards_));
  }

  /// Writes ShardOf(elements[i].user) into tags[0..count). Tags let a
  /// batch be shared read-only across shard workers, each applying only
  /// its own elements (no per-shard copies of the batch).
  void Tag(const Element* elements, size_t count, uint16_t* tags) const;

  /// Appends each element to per_shard[ShardOf(user)]; per_shard must have
  /// num_shards() entries (existing content is kept, so callers can
  /// accumulate across batches).
  void Partition(const Element* elements, size_t count,
                 std::vector<std::vector<Element>>* per_shard) const;

  bool operator==(const ShardRouter& other) const {
    return num_shards_ == other.num_shards_ && seed_ == other.seed_;
  }

 private:
  uint32_t num_shards_;
  uint64_t seed_;
};

/// Dense user remap on top of a ShardRouter: global id → (shard, dense
/// local id), where a user's local id is its global-id rank among the
/// users routed to the same shard.
///
/// Why it exists: a sharded sketch that keeps per-user state (cardinality
/// counters, dirty epochs) in every shard pays ~8·S bytes/user when each
/// shard is sized for the full user universe. Rewriting elements to dense
/// local ids at routing time lets shard s size its state for exactly the
/// users it owns — Σ_s |shard s| = |U|, so the total is ~8 bytes/user
/// regardless of S (plus this map's own 8 bytes/user, counted by
/// MemoryBits()).
///
/// The map is built once at construction from (router, num_users) alone —
/// no stream-order dependence — so ingest pipelines (synchronous or
/// worker-threaded) and query planners always agree on the translation,
/// and shard state is deterministic for a given stream regardless of
/// batching. Immutable after construction; all accessors are const and
/// concurrent-safe.
class DenseShardMap {
 public:
  /// An empty map (num_users() == 0); Route degenerates to tagging.
  DenseShardMap() = default;

  /// Builds the rank-order remap for users 0..num_users over `router`.
  DenseShardMap(const ShardRouter& router, UserId num_users);

  uint32_t num_shards() const { return router_.num_shards(); }
  UserId num_users() const { return static_cast<UserId>(local_of_.size()); }

  uint32_t ShardOf(UserId user) const { return router_.ShardOf(user); }

  /// Dense local id of `user` within its shard. Always-on bounds check:
  /// `user` comes from external stream elements (or query arguments), so
  /// an out-of-range id must abort loudly rather than read past the
  /// table in Release — this closes the synchronous ingest and query
  /// paths the same way Route/Partition close the pipelined one.
  UserId LocalOf(UserId user) const {
    VOS_CHECK(user < local_of_.size())
        << "user" << user << "out of range (num_users " << local_of_.size()
        << ")";
    return local_of_[user];
  }

  /// Inverse map: the global id owning local id `local` of `shard`.
  UserId GlobalOf(uint32_t shard, UserId local) const {
    VOS_DCHECK(shard < globals_.size() && local < globals_[shard].size())
        << "slot (" << shard << "," << local << ") out of range";
    return globals_[shard][local];
  }

  /// Users routed to `shard` (the size of its dense id space).
  UserId shard_size(uint32_t shard) const {
    return static_cast<UserId>(globals_[shard].size());
  }

  /// The partitioning ingest handoff — the one ShardedVosSketch's
  /// pipeline uses: appends each element — rewritten to its dense local
  /// id — to per_shard[ShardOf(user)]. One pass yields S shard-owned
  /// sub-batches, each wholly in shard-local coordinates, so a
  /// multi-producer pipeline can hand every sub-batch to exactly its
  /// shard's queue (no consumer ever scans foreign elements). per_shard
  /// must have num_shards() entries; existing content is kept. Aborts
  /// (VOS_CHECK) on a user id outside [0, num_users()): the remap tables
  /// are sized at construction, so an out-of-range id is stream
  /// corruption, not a case to read past the table silently.
  void Partition(const Element* elements, size_t count,
                 std::vector<std::vector<Element>>* per_shard) const;

  /// In-place variant of the handoff for consumers that share one batch
  /// read-only (external shard replicas; the pre-PR-4 tagged pipeline):
  /// rewrites elements[i].user to its dense local id and writes the
  /// owning shard into tags[0..count). Same out-of-range abort as
  /// Partition.
  void Route(Element* elements, size_t count, uint16_t* tags) const;

  /// Bits held by the map itself (forward + inverse tables): 64·num_users.
  size_t MemoryBits() const {
    return (local_of_.size() + local_of_.size()) * sizeof(UserId) * 8;
  }

 private:
  ShardRouter router_{1, 0};
  /// local_of_[u] = dense local id of u within shard ShardOf(u).
  std::vector<UserId> local_of_;
  /// globals_[s][l] = global id of shard s's local id l.
  std::vector<std::vector<UserId>> globals_;
};

}  // namespace vos::stream

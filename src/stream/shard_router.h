// ShardRouter: deterministic user → shard partitioning for sharded
// ingestion.
//
// A fully dynamic graph stream shards naturally by *user*: every element
// (u, i, ±) touches only user u's state, so routing by hash(u) % S gives S
// sub-streams that never share a user. Two consequences make this the
// right partition key (and not, say, the item or the raw element index):
//
//   * Locality — each shard's sub-stream is feasible on its own (a user's
//     deletions follow their insertions within one shard), so a shard can
//     be replayed, checkpointed or re-ingested independently.
//   * Query routing — every user lives in exactly one known shard, so
//     both endpoints of any pair query (u, v) are found by two ShardOf
//     calls; no pair ever needs cross-shard state reconciliation beyond
//     reading two digests (see core/sharded_vos_sketch.h).
//
// Routing is a seeded multiplicative hash, not `u % S`: dense user ids
// would otherwise stripe pathologically (e.g. all even users on shard 0
// for S = 2 after a generator that interleaves). The router is
// deterministic in (seed, num_shards) — ingest and query sides construct
// equal routers from the same sketch config and always agree.

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "hashing/hash64.h"
#include "stream/element.h"

namespace vos::stream {

/// Stateless user → shard map, plus batch partition/tag helpers.
class ShardRouter {
 public:
  /// `num_shards` ≥ 1; `seed` selects the hash (ingest and query sides
  /// must agree on both).
  explicit ShardRouter(uint32_t num_shards, uint64_t seed = 0)
      : num_shards_(num_shards), seed_(seed) {
    VOS_CHECK(num_shards >= 1) << "need at least one shard";
    VOS_CHECK(num_shards <= 0xffff) << "shard ids are tagged as uint16";
  }

  uint32_t num_shards() const { return num_shards_; }
  uint64_t seed() const { return seed_; }

  /// hash(user) % num_shards — the shard owning all of `user`'s state.
  /// One Mix64 + one multiply; cheap enough for the per-element ingest
  /// path.
  uint32_t ShardOf(UserId user) const {
    return static_cast<uint32_t>(hash::ReduceToRange(
        hash::Mix64(user ^ (seed_ * 0x9e3779b97f4a7c15ULL)), num_shards_));
  }

  /// Writes ShardOf(elements[i].user) into tags[0..count). Tags let a
  /// batch be shared read-only across shard workers, each applying only
  /// its own elements (no per-shard copies of the batch).
  void Tag(const Element* elements, size_t count, uint16_t* tags) const;

  /// Appends each element to per_shard[ShardOf(user)]; per_shard must have
  /// num_shards() entries (existing content is kept, so callers can
  /// accumulate across batches).
  void Partition(const Element* elements, size_t count,
                 std::vector<std::vector<Element>>* per_shard) const;

  bool operator==(const ShardRouter& other) const {
    return num_shards_ == other.num_shards_ && seed_ == other.seed_;
  }

 private:
  uint32_t num_shards_;
  uint64_t seed_;
};

}  // namespace vos::stream

// Degree-distribution and churn statistics of a graph stream.
//
// Used three ways: (1) dataset presets are validated against the
// heavy-tailed shape the evaluation depends on (tests), (2) the CLI's
// `inspect` command prints these for any stream file, and (3) EXPERIMENTS.md
// records them so readers can compare our synthetic stand-ins against the
// crawled originals' published statistics.

#pragma once

#include <cstdint>
#include <vector>

#include "stream/graph_stream.h"

namespace vos::stream {

/// Quantiles and extremes of a degree sequence.
struct DegreeSummary {
  size_t count = 0;   ///< entities with degree ≥ 1
  uint64_t max = 0;
  uint64_t p99 = 0;
  uint64_t p90 = 0;
  uint64_t median = 0;
  double mean = 0.0;

  /// max/mean — a quick heavy-tail indicator (≫1 for Zipf-like sequences).
  double SkewRatio() const { return mean == 0.0 ? 0.0 : max / mean; }
};

/// Full stream profile.
struct StreamProfile {
  StreamStats stats;           ///< element counts (insert/delete/final)
  DegreeSummary user_degrees;  ///< |S_u| at end of stream, over live users
  DegreeSummary item_degrees;  ///< item popularity at end of stream
  /// Largest number of live edges at any prefix of the stream.
  size_t peak_edges = 0;
};

/// Summarizes a degree sequence (zeros excluded).
DegreeSummary SummarizeDegrees(std::vector<uint64_t> degrees);

/// Replays the stream once and profiles it. O(size) time, O(live edges)
/// memory.
StreamProfile ProfileStream(const GraphStream& stream);

}  // namespace vos::stream

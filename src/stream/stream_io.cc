#include "stream/stream_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace vos::stream {

namespace {
constexpr int kFormatVersion = 1;
}

Status SaveStream(const GraphStream& stream, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const std::string name = stream.name().empty() ? "unnamed" : stream.name();
  out << "vos-stream " << kFormatVersion << ' ' << name << ' '
      << stream.num_users() << ' ' << stream.num_items() << '\n';
  for (const Element& e : stream.elements()) {
    out << ActionToChar(e.action) << ' ' << e.user << ' ' << e.item << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<GraphStream> LoadStream(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }

  std::string line;
  size_t line_no = 0;
  // Header (skipping leading comments/blanks).
  std::string magic, name;
  int version = 0;
  uint64_t num_users = 0, num_items = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream header(line);
    if (!(header >> magic >> version >> name >> num_users >> num_items) ||
        magic != "vos-stream") {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": bad header '" + line + "'");
    }
    if (version != kFormatVersion) {
      return Status::Corruption("unsupported vos-stream version " +
                                std::to_string(version));
    }
    break;
  }
  if (magic.empty()) return Status::Corruption(path + ": missing header");

  GraphStream stream(name, static_cast<UserId>(num_users),
                     static_cast<ItemId>(num_items));
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    char action_char = 0;
    uint64_t user = 0, item = 0;
    if (!(row >> action_char >> user >> item) ||
        (action_char != '+' && action_char != '-')) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": bad element '" + line + "'");
    }
    stream.Append(static_cast<UserId>(user), static_cast<ItemId>(item),
                  action_char == '+' ? Action::kInsert : Action::kDelete);
  }

  VOS_RETURN_IF_ERROR(stream.Validate());
  return stream;
}

}  // namespace vos::stream

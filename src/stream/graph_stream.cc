#include "stream/graph_stream.h"

#include <unordered_set>

namespace vos::stream {

StreamStats GraphStream::ComputeStats() const {
  StreamStats stats;
  stats.num_elements = elements_.size();
  std::unordered_set<uint64_t> alive;
  alive.reserve(elements_.size());
  for (const Element& e : elements_) {
    if (e.action == Action::kInsert) {
      ++stats.num_insertions;
      alive.insert(EdgeKey(e.user, e.item));
    } else {
      ++stats.num_deletions;
      alive.erase(EdgeKey(e.user, e.item));
    }
  }
  stats.final_edges = alive.size();
  return stats;
}

Status GraphStream::Validate() const {
  std::unordered_set<uint64_t> alive;
  alive.reserve(elements_.size());
  for (size_t t = 0; t < elements_.size(); ++t) {
    const Element& e = elements_[t];
    if (e.user >= num_users_) {
      return Status::OutOfRange("element " + std::to_string(t) + ": user " +
                                std::to_string(e.user) + " >= |U| = " +
                                std::to_string(num_users_));
    }
    if (e.item >= num_items_) {
      return Status::OutOfRange("element " + std::to_string(t) + ": item " +
                                std::to_string(e.item) + " >= |I| = " +
                                std::to_string(num_items_));
    }
    const uint64_t key = EdgeKey(e.user, e.item);
    if (e.action == Action::kInsert) {
      if (!alive.insert(key).second) {
        return Status::FailedPrecondition(
            "element " + std::to_string(t) +
            ": insertion of already-live edge (" + std::to_string(e.user) +
            ", " + std::to_string(e.item) + ")");
      }
    } else {
      if (alive.erase(key) == 0) {
        return Status::FailedPrecondition(
            "element " + std::to_string(t) + ": deletion of dead edge (" +
            std::to_string(e.user) + ", " + std::to_string(e.item) + ")");
      }
    }
  }
  return Status::OK();
}

}  // namespace vos::stream

#include "stream/stream_stats.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace vos::stream {

DegreeSummary SummarizeDegrees(std::vector<uint64_t> degrees) {
  DegreeSummary summary;
  degrees.erase(std::remove(degrees.begin(), degrees.end(), 0ull),
                degrees.end());
  if (degrees.empty()) return summary;
  std::sort(degrees.begin(), degrees.end());
  summary.count = degrees.size();
  summary.max = degrees.back();
  auto quantile = [&degrees](double q) {
    const size_t index = static_cast<size_t>(q * (degrees.size() - 1));
    return degrees[index];
  };
  summary.p99 = quantile(0.99);
  summary.p90 = quantile(0.90);
  summary.median = quantile(0.50);
  uint64_t total = 0;
  for (uint64_t d : degrees) total += d;
  summary.mean = static_cast<double>(total) / degrees.size();
  return summary;
}

StreamProfile ProfileStream(const GraphStream& stream) {
  StreamProfile profile;
  std::vector<uint64_t> user_degree(stream.num_users(), 0);
  std::unordered_map<ItemId, uint64_t> item_degree;
  std::unordered_set<uint64_t> alive;
  alive.reserve(stream.size());

  for (const Element& e : stream.elements()) {
    ++profile.stats.num_elements;
    if (e.action == Action::kInsert) {
      ++profile.stats.num_insertions;
      alive.insert(EdgeKey(e.user, e.item));
      ++user_degree[e.user];
      ++item_degree[e.item];
    } else {
      ++profile.stats.num_deletions;
      alive.erase(EdgeKey(e.user, e.item));
      --user_degree[e.user];
      --item_degree[e.item];
    }
    profile.peak_edges = std::max(profile.peak_edges, alive.size());
  }
  profile.stats.final_edges = alive.size();

  profile.user_degrees = SummarizeDegrees(user_degree);
  std::vector<uint64_t> items;
  items.reserve(item_degree.size());
  for (const auto& [item, degree] : item_degree) items.push_back(degree);
  profile.item_degrees = SummarizeDegrees(std::move(items));
  return profile;
}

}  // namespace vos::stream

// GraphStream: an in-memory fully dynamic bipartite graph stream.
//
// Holds the element sequence plus the domain sizes |U| and |I| that sketch
// methods need up front (MinHash/OPH permutations are over the item domain;
// VOS sizes its shared array from |U|). Streams are either generated
// (stream/dataset.h) or loaded from disk (stream/stream_io.h).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/element.h"

namespace vos::stream {

/// Aggregate statistics of a stream (used in bench headers and tests).
struct StreamStats {
  size_t num_elements = 0;
  size_t num_insertions = 0;
  size_t num_deletions = 0;
  /// Edges alive after replaying the whole stream.
  size_t final_edges = 0;
};

/// Element sequence with bipartite domain metadata.
class GraphStream {
 public:
  GraphStream() = default;

  /// Creates an empty stream over `num_users` × `num_items` domains.
  GraphStream(std::string name, UserId num_users, ItemId num_items)
      : name_(std::move(name)), num_users_(num_users), num_items_(num_items) {}

  /// Appends one element. The caller is responsible for feasibility (use
  /// FeasibilityChecker when the source is untrusted).
  void Append(Element e) { elements_.push_back(e); }
  void Append(UserId u, ItemId i, Action a) { Append(Element{u, i, a}); }

  const std::vector<Element>& elements() const { return elements_; }
  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const Element& operator[](size_t t) const { return elements_[t]; }

  const std::string& name() const { return name_; }
  UserId num_users() const { return num_users_; }
  ItemId num_items() const { return num_items_; }

  void set_name(std::string name) { name_ = std::move(name); }

  /// Replays the stream to compute aggregate statistics. O(size).
  StreamStats ComputeStats() const;

  /// Verifies the feasibility constraint of §II: no duplicate insertion of
  /// a live edge, no deletion of a dead edge, and all ids within the
  /// declared domains. Returns the first violation found.
  Status Validate() const;

  /// Reserves capacity for `n` elements.
  void Reserve(size_t n) { elements_.reserve(n); }

 private:
  std::string name_;
  UserId num_users_ = 0;
  ItemId num_items_ = 0;
  std::vector<Element> elements_;
};

}  // namespace vos::stream

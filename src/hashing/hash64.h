// 64-bit mixing primitives used across the library.
//
// These are the workhorse hash functions behind VOS's ψ (item → bucket) and
// f_1..f_k (user → cell) maps, and behind the fast (non-permutation) mode of
// the baselines. The finalizers pass standard avalanche tests
// (murmur3/splitmix constants); seeds select independent functions from the
// family.

#pragma once

#include <cstdint>
#include <string_view>

namespace vos::hash {

/// Murmur3's 64-bit finalizer: bijective, strong avalanche.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Stafford's "Mix13" variant of the splitmix64 finalizer; also bijective.
/// Used where two independent mixes of the same key are needed.
inline uint64_t Mix64V2(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hash of `key` under the function selected by `seed`.
///
/// Distinct seeds give (empirically) independent functions: the seed is
/// injected twice around a full mix so related seeds do not produce related
/// functions.
inline uint64_t Hash64(uint64_t key, uint64_t seed) {
  return Mix64V2(Mix64(key ^ (seed * 0x9e3779b97f4a7c15ULL)) + seed);
}

/// Combines two hashes into one (order-dependent), boost::hash_combine style
/// but full-width.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4)));
}

/// FNV-1a for strings, finalized with Mix64 for avalanche; used only for
/// dataset/config names, never on hot paths.
inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

/// Maps a 64-bit hash to [0, n) without modulo bias (fixed-point multiply).
inline uint64_t ReduceToRange(uint64_t hash, uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(hash) * n) >> 64);
}

}  // namespace vos::hash

#include "hashing/tabulation.h"

namespace vos::hash {

TabulationHash::TabulationHash(uint64_t seed) {
  Rng rng(seed);
  for (auto& table : tables_) {
    for (auto& entry : table) entry = rng.NextU64();
  }
}

}  // namespace vos::hash

// Format-preserving random permutations via a balanced Feistel network.
//
// MinHash and OPH are defined over random *permutations* of the item domain
// I = {0, …, p−1} (§III of the paper). Hash functions only approximate a
// permutation (collisions shrink the effective domain); for a faithful
// baseline implementation we construct an actual bijection on [0, p):
//
//   * pick the smallest even bit width 2w with 2^(2w) ≥ p,
//   * run a 4-round Feistel network on the two w-bit halves, with a keyed
//     round function (Hash64 truncated to w bits),
//   * cycle-walk: while the output lands in [p, 2^(2w)), re-encrypt. The
//     expected number of walks is < 4 because 2^(2w) < 4p.
//
// The permutation is invertible, which the tests use to verify bijectivity
// without materializing the whole domain.

#pragma once

#include <cstdint>

#include "common/logging.h"

namespace vos::hash {

/// A keyed bijection on [0, domain_size).
class FeistelPermutation {
 public:
  /// Builds the permutation for `domain_size ≥ 1` keyed by `seed`.
  FeistelPermutation(uint64_t seed, uint64_t domain_size);

  /// π(x); requires x < domain_size().
  uint64_t Apply(uint64_t x) const;

  /// π⁻¹(y); requires y < domain_size(). Apply(Inverse(y)) == y.
  uint64_t Inverse(uint64_t y) const;

  uint64_t domain_size() const { return domain_size_; }

  /// Number of Feistel rounds (fixed; 4 suffices for non-cryptographic
  /// pseudo-randomness per Luby–Rackoff).
  static constexpr int kRounds = 4;

 private:
  uint64_t EncryptOnce(uint64_t x) const;
  uint64_t DecryptOnce(uint64_t y) const;

  uint64_t domain_size_;
  uint64_t half_bits_;   // w: bits per Feistel half
  uint64_t half_mask_;   // 2^w − 1
  uint64_t round_keys_[kRounds];
};

}  // namespace vos::hash

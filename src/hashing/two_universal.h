// Carter–Wegman 2-universal hashing over the Mersenne prime p = 2^61 − 1.
//
// h(x) = ((a·x + b) mod p) mod n  with a ∈ [1, p), b ∈ [0, p).
//
// Provides the pairwise-independence guarantees some estimator analyses
// assume (e.g. the bin assignment ψ of odd sketches in [9], and the tailored
// 2-universal densification of Shrivastava'17). The modular arithmetic uses
// the standard Mersenne folding trick, so no 128-bit division is needed.

#pragma once

#include <cstdint>

#include "common/random.h"

namespace vos::hash {

/// One function drawn from the 2-universal family ((a·x+b) mod p) mod n.
class TwoUniversalHash {
 public:
  static constexpr uint64_t kMersennePrime = (uint64_t{1} << 61) - 1;

  /// Draws (a, b) deterministically from `seed`; hashes into [0, range).
  TwoUniversalHash(uint64_t seed, uint64_t range);

  /// Evaluates the function; `x` may be any 64-bit value (it is first
  /// reduced mod p, which loses nothing for x < p).
  uint64_t operator()(uint64_t x) const {
    const uint64_t xr = ModMersenne(x);
    // a·x + b over 128 bits, then fold mod 2^61−1.
    const __uint128_t prod = static_cast<__uint128_t>(a_) * xr + b_;
    const uint64_t folded =
        ModMersenne(static_cast<uint64_t>(prod & kMersennePrime) +
                    static_cast<uint64_t>(prod >> 61));
    return folded % range_;
  }

  uint64_t range() const { return range_; }
  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

 private:
  static uint64_t ModMersenne(uint64_t x) {
    uint64_t r = (x & kMersennePrime) + (x >> 61);
    if (r >= kMersennePrime) r -= kMersennePrime;
    return r;
  }

  uint64_t a_;
  uint64_t b_;
  uint64_t range_;
};

}  // namespace vos::hash

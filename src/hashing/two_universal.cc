#include "hashing/two_universal.h"

#include "common/logging.h"

namespace vos::hash {

TwoUniversalHash::TwoUniversalHash(uint64_t seed, uint64_t range)
    : range_(range) {
  VOS_CHECK(range >= 1) << "hash range must be positive";
  Rng rng(seed);
  // a ∈ [1, p) — a = 0 would collapse the family to a constant.
  a_ = 1 + rng.NextBounded(kMersennePrime - 1);
  b_ = rng.NextBounded(kMersennePrime);
}

}  // namespace vos::hash

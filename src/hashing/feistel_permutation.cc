#include "hashing/feistel_permutation.h"

#include <bit>

#include "common/random.h"
#include "hashing/hash64.h"

namespace vos::hash {

FeistelPermutation::FeistelPermutation(uint64_t seed, uint64_t domain_size)
    : domain_size_(domain_size) {
  VOS_CHECK(domain_size >= 1) << "permutation domain must be non-empty";
  // Smallest even total width 2w with 2^(2w) ≥ domain_size. The Feistel
  // construction needs at least 1 bit per half.
  int total_bits = 64 - std::countl_zero((domain_size - 1) | 1);
  if (total_bits % 2 != 0) ++total_bits;
  if (total_bits < 2) total_bits = 2;
  VOS_CHECK(total_bits <= 62)
      << "domain too large for cycle-walking Feistel:" << domain_size;
  half_bits_ = static_cast<uint64_t>(total_bits) / 2;
  half_mask_ = (uint64_t{1} << half_bits_) - 1;

  Rng rng(seed);
  for (auto& key : round_keys_) key = rng.NextU64();
}

uint64_t FeistelPermutation::EncryptOnce(uint64_t x) const {
  uint64_t left = (x >> half_bits_) & half_mask_;
  uint64_t right = x & half_mask_;
  for (int round = 0; round < kRounds; ++round) {
    const uint64_t f = Hash64(right, round_keys_[round]) & half_mask_;
    const uint64_t new_right = left ^ f;
    left = right;
    right = new_right;
  }
  return (left << half_bits_) | right;
}

uint64_t FeistelPermutation::DecryptOnce(uint64_t y) const {
  uint64_t left = (y >> half_bits_) & half_mask_;
  uint64_t right = y & half_mask_;
  for (int round = kRounds - 1; round >= 0; --round) {
    const uint64_t f = Hash64(left, round_keys_[round]) & half_mask_;
    const uint64_t new_left = right ^ f;
    right = left;
    left = new_left;
  }
  return (left << half_bits_) | right;
}

uint64_t FeistelPermutation::Apply(uint64_t x) const {
  VOS_DCHECK(x < domain_size_);
  uint64_t y = EncryptOnce(x);
  while (y >= domain_size_) y = EncryptOnce(y);  // cycle-walking
  return y;
}

uint64_t FeistelPermutation::Inverse(uint64_t y) const {
  VOS_DCHECK(y < domain_size_);
  uint64_t x = DecryptOnce(y);
  while (x >= domain_size_) x = DecryptOnce(x);
  return x;
}

}  // namespace vos::hash

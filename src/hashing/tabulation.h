// Simple tabulation hashing (Zobrist / Patrascu–Thorup).
//
// Splits a 64-bit key into 8 bytes and XORs one random 64-bit table entry
// per byte. 3-independent and, by Patrascu–Thorup, behaves like full
// independence for many hashing applications (chaining, linear probing,
// min-wise estimates). Offered as an alternative hash family for users who
// want provable guarantees stronger than the mixer family at the cost of
// 8 table lookups (16 KiB of tables per function).

#pragma once

#include <array>
#include <cstdint>

#include "common/random.h"

namespace vos::hash {

/// One tabulation hash function over 64-bit keys.
class TabulationHash {
 public:
  /// Fills the 8×256 tables deterministically from `seed`.
  explicit TabulationHash(uint64_t seed);

  /// Evaluates the function.
  uint64_t operator()(uint64_t key) const {
    uint64_t h = 0;
    for (int byte = 0; byte < 8; ++byte) {
      h ^= tables_[byte][(key >> (8 * byte)) & 0xff];
    }
    return h;
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace vos::hash

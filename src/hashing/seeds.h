// Deterministic derivation of independent sub-seeds from a master seed.
//
// Every component that needs several independent hash functions (VOS's
// f_1..f_k, MinHash's h_1..h_k, per-slot RP randomness) derives one sub-seed
// per function index from a single experiment-level master seed, keeping
// whole runs reproducible from one number.

#pragma once

#include <cstdint>

#include "hashing/hash64.h"

namespace vos::hash {

/// Sub-seed for component `index` under `master`. Distinct (master, index)
/// pairs give unrelated seeds (full 64-bit mix in between).
inline uint64_t DeriveSeed(uint64_t master, uint64_t index) {
  return Mix64(Mix64(master ^ 0xd6e8feb86659fd93ULL) + index);
}

/// Two-level derivation for nested components (e.g. slot j of user sampler
/// group g).
inline uint64_t DeriveSeed2(uint64_t master, uint64_t index_a,
                            uint64_t index_b) {
  return DeriveSeed(DeriveSeed(master, index_a), index_b);
}

}  // namespace vos::hash

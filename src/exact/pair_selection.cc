#include "exact/pair_selection.h"

#include <algorithm>
#include <unordered_map>

#include "common/random.h"

namespace vos::exact {

std::vector<UserId> TopCardinalityUsers(const ExactStore& store, size_t n) {
  std::vector<UserId> users;
  users.reserve(store.num_users());
  for (UserId u = 0; u < store.num_users(); ++u) {
    if (store.Cardinality(u) > 0) users.push_back(u);
  }
  const size_t take = std::min(n, users.size());
  std::partial_sort(users.begin(), users.begin() + take, users.end(),
                    [&store](UserId a, UserId b) {
                      const size_t ca = store.Cardinality(a);
                      const size_t cb = store.Cardinality(b);
                      return ca != cb ? ca > cb : a < b;
                    });
  users.resize(take);
  return users;
}

std::vector<UserPair> PairsWithCommonItems(const ExactStore& store,
                                           const std::vector<UserId>& users,
                                           size_t max_pairs, uint64_t seed) {
  // Inverted index: item → dense indices (into `users`) subscribing to it.
  std::unordered_map<ItemId, std::vector<uint32_t>> item_to_users;
  for (uint32_t idx = 0; idx < users.size(); ++idx) {
    for (ItemId item : store.Items(users[idx])) {
      item_to_users[item].push_back(idx);
    }
  }

  // Mark co-subscribing pairs in a dense triangular bitmap.
  const size_t n = users.size();
  std::vector<bool> shares(n * n, false);
  for (const auto& [item, subs] : item_to_users) {
    for (size_t a = 0; a < subs.size(); ++a) {
      for (size_t b = a + 1; b < subs.size(); ++b) {
        const uint32_t lo = std::min(subs[a], subs[b]);
        const uint32_t hi = std::max(subs[a], subs[b]);
        shares[static_cast<size_t>(lo) * n + hi] = true;
      }
    }
  }

  std::vector<UserPair> pairs;
  for (size_t lo = 0; lo < n; ++lo) {
    for (size_t hi = lo + 1; hi < n; ++hi) {
      if (shares[lo * n + hi]) {
        const UserId u = users[lo];
        const UserId v = users[hi];
        pairs.push_back(UserPair{std::min(u, v), std::max(u, v)});
      }
    }
  }

  if (max_pairs > 0 && pairs.size() > max_pairs) {
    Rng rng(seed);
    rng.Shuffle(pairs);
    pairs.resize(max_pairs);
    std::sort(pairs.begin(), pairs.end(), [](const UserPair& a,
                                             const UserPair& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
  }
  return pairs;
}

}  // namespace vos::exact

// Tracked-pair selection, mirroring the paper's experimental protocol (§V):
// "we first select 5,000 users with largest cardinalities … and then retain
// the set of user pairs that have at least one common item."
//
// At reproduction scale the harness selects the top-N users (N configurable,
// default a few hundred) and, via an inverted index over their items, all
// pairs among them sharing ≥1 item — optionally subsampled to a cap to bound
// per-checkpoint evaluation cost.

#pragma once

#include <cstdint>
#include <vector>

#include "exact/exact_store.h"

namespace vos::exact {

/// An unordered user pair with u < v.
struct UserPair {
  UserId u;
  UserId v;

  bool operator==(const UserPair& other) const {
    return u == other.u && v == other.v;
  }
};

/// The `n` users with the largest |S_u|, ties broken by smaller id.
/// Users with empty sets are never selected.
std::vector<UserId> TopCardinalityUsers(const ExactStore& store, size_t n);

/// All pairs (u, v) among `users` with |S_u ∩ S_v| ≥ 1, via an inverted
/// index (cost Σ_items d_i² over tracked users, not |users|²·|S|).
/// If `max_pairs > 0` and more pairs qualify, a uniform subsample of
/// `max_pairs` is returned (deterministic in `seed`).
std::vector<UserPair> PairsWithCommonItems(const ExactStore& store,
                                           const std::vector<UserId>& users,
                                           size_t max_pairs, uint64_t seed);

}  // namespace vos::exact

// Batch ground-truth computation for tracked pairs at a checkpoint.
//
// The per-pair exact values (s_uv, Jaccard, cardinalities) are recomputed at
// every evaluation checkpoint; the batch path builds an inverted index over
// the tracked users once instead of intersecting sets pair by pair, which
// turns per-checkpoint cost from O(|pairs| · |S|) into O(Σ_items d_i²).

#pragma once

#include <cstdint>
#include <vector>

#include "exact/exact_store.h"
#include "exact/pair_selection.h"

namespace vos::exact {

/// Exact state of one tracked pair at a checkpoint.
struct PairTruth {
  uint32_t common = 0;     ///< s_uv = |S_u ∩ S_v|
  uint32_t card_u = 0;     ///< |S_u|
  uint32_t card_v = 0;     ///< |S_v|

  /// |S_u ∪ S_v|.
  uint32_t Union() const { return card_u + card_v - common; }

  /// Jaccard coefficient; 0 when both sets are empty.
  double Jaccard() const {
    const uint32_t uni = Union();
    return uni == 0 ? 0.0 : static_cast<double>(common) / uni;
  }

  /// |S_u Δ S_v|.
  uint32_t SymmetricDifference() const { return card_u + card_v - 2 * common; }
};

/// Computes PairTruth for every pair in `pairs` against the current state of
/// `store`, using one shared inverted index over the users in `pairs`.
std::vector<PairTruth> ComputePairTruths(const ExactStore& store,
                                         const std::vector<UserPair>& pairs);

}  // namespace vos::exact

// Exact (non-sketched) maintenance of per-user item sets.
//
// The evaluation harness replays every stream twice conceptually: once into
// the sketch under test and once into this exact store, which supplies the
// ground-truth s_uv and Jaccard values behind the AAPE/ARMSE metrics, as
// well as the top-cardinality user selection of §V. Memory is O(total live
// edges) — affordable at reproduction scale, which is exactly why sketches
// exist for the full-scale problem.

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "stream/element.h"

namespace vos::exact {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

/// Dynamic per-user item sets with exact similarity queries.
class ExactStore {
 public:
  /// Creates a store for users 0..num_users.
  explicit ExactStore(UserId num_users) : sets_(num_users) {}

  /// Applies one stream element. Enforces feasibility (§II) under
  /// VOS_DCHECK: duplicate insertions / dead deletions indicate a broken
  /// stream generator.
  void Update(const Element& e) {
    auto& set = sets_[e.user];
    if (e.action == Action::kInsert) {
      const bool inserted = set.insert(e.item).second;
      VOS_DCHECK(inserted) << "duplicate insertion" << e;
      total_edges_ += inserted ? 1 : 0;
    } else {
      const size_t erased = set.erase(e.item);
      VOS_DCHECK(erased == 1) << "deletion of dead edge" << e;
      total_edges_ -= erased;
    }
  }

  /// |S_u|.
  size_t Cardinality(UserId u) const { return sets_[u].size(); }

  /// The live item set of `u` (valid until the next Update).
  const std::unordered_set<ItemId>& Items(UserId u) const { return sets_[u]; }

  UserId num_users() const { return static_cast<UserId>(sets_.size()); }

  /// Σ_u |S_u| — live edges; maintained incrementally, O(1).
  size_t TotalEdges() const { return total_edges_; }

  /// Exact s_uv = |S_u ∩ S_v|; O(min(|S_u|, |S_v|)).
  size_t CommonItems(UserId u, UserId v) const;

  /// Exact Jaccard |S_u ∩ S_v| / |S_u ∪ S_v|; 0 when both sets are empty
  /// (the convention used by the metrics; such pairs are skipped anyway).
  double Jaccard(UserId u, UserId v) const;

  /// Exact |S_u Δ S_v| (the quantity VOS estimates internally).
  size_t SymmetricDifference(UserId u, UserId v) const;

 private:
  std::vector<std::unordered_set<ItemId>> sets_;
  size_t total_edges_ = 0;
};

}  // namespace vos::exact

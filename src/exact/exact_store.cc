#include "exact/exact_store.h"

namespace vos::exact {

size_t ExactStore::CommonItems(UserId u, UserId v) const {
  const auto& a = sets_[u];
  const auto& b = sets_[v];
  const auto& smaller = a.size() <= b.size() ? a : b;
  const auto& larger = a.size() <= b.size() ? b : a;
  size_t common = 0;
  for (ItemId item : smaller) {
    common += larger.count(item);
  }
  return common;
}

double ExactStore::Jaccard(UserId u, UserId v) const {
  const size_t common = CommonItems(u, v);
  const size_t uni = sets_[u].size() + sets_[v].size() - common;
  return uni == 0 ? 0.0 : static_cast<double>(common) / uni;
}

size_t ExactStore::SymmetricDifference(UserId u, UserId v) const {
  return sets_[u].size() + sets_[v].size() - 2 * CommonItems(u, v);
}

}  // namespace vos::exact

#include "exact/ground_truth.h"

#include <algorithm>
#include <unordered_map>

namespace vos::exact {

std::vector<PairTruth> ComputePairTruths(const ExactStore& store,
                                         const std::vector<UserPair>& pairs) {
  // Dense-index the users that appear in any tracked pair.
  std::unordered_map<UserId, uint32_t> user_index;
  std::vector<UserId> users;
  for (const UserPair& p : pairs) {
    for (UserId u : {p.u, p.v}) {
      if (user_index.emplace(u, static_cast<uint32_t>(users.size())).second) {
        users.push_back(u);
      }
    }
  }

  // Inverted index over tracked users, then triangular co-count matrix.
  const size_t n = users.size();
  std::unordered_map<ItemId, std::vector<uint32_t>> item_to_users;
  for (uint32_t idx = 0; idx < n; ++idx) {
    for (ItemId item : store.Items(users[idx])) {
      item_to_users[item].push_back(idx);
    }
  }
  std::vector<uint32_t> common(n * n, 0);
  for (const auto& [item, subs] : item_to_users) {
    for (size_t a = 0; a < subs.size(); ++a) {
      for (size_t b = a + 1; b < subs.size(); ++b) {
        const uint32_t lo = std::min(subs[a], subs[b]);
        const uint32_t hi = std::max(subs[a], subs[b]);
        ++common[static_cast<size_t>(lo) * n + hi];
      }
    }
  }

  std::vector<PairTruth> truths;
  truths.reserve(pairs.size());
  for (const UserPair& p : pairs) {
    const uint32_t iu = user_index.at(p.u);
    const uint32_t iv = user_index.at(p.v);
    const uint32_t lo = std::min(iu, iv);
    const uint32_t hi = std::max(iu, iv);
    PairTruth truth;
    truth.common = common[static_cast<size_t>(lo) * n + hi];
    truth.card_u = static_cast<uint32_t>(store.Cardinality(p.u));
    truth.card_v = static_cast<uint32_t>(store.Cardinality(p.v));
    truths.push_back(truth);
  }
  return truths;
}

}  // namespace vos::exact

// Odd sketch (Mitzenmacher, Pagh, Pham — WWW'14), built directly over item
// sets.
//
// A k-bit array where bit j stores the parity of |{i ∈ S : ψ(i) = j}|.
// Inserting and deleting an item are the *same* XOR of one bit, so the
// sketch is exactly correct under fully dynamic updates — the property VOS
// inherits (§IV: "any two elements (u,i,+) and (u,i,−) … offset to each
// other"). The symmetric difference |S_a Δ S_b| is estimated from the
// fraction of 1-bits in the XOR of two sketches.
//
// VOS differs from this dedicated sketch by storing the k bits virtually in
// a shared array (core/vos_sketch.h); the dedicated variant is kept both as
// a building block of the analysis and as an ablation baseline.

#pragma once

#include <cstdint>

#include "common/bit_vector.h"
#include "hashing/hash64.h"
#include "stream/element.h"

namespace vos::core {

using stream::ItemId;

/// Dedicated k-bit odd sketch of one item set.
class OddSketch {
 public:
  /// Creates an empty sketch with `k ≥ 1` bits; `seed` keys the item→bit
  /// map ψ (two sketches are comparable iff built with the same seed and k).
  OddSketch(uint32_t k, uint64_t seed);

  /// XORs `item` into the sketch: call once to insert, once more to delete.
  void Toggle(ItemId item) { bits_.Flip(BucketOf(item)); }

  /// ψ(item) — the bit index this item toggles.
  uint32_t BucketOf(ItemId item) const {
    return static_cast<uint32_t>(
        hash::ReduceToRange(hash::Hash64(item, seed_), bits_.size()));
  }

  /// The underlying bits.
  const BitVector& bits() const { return bits_; }

  uint32_t k() const { return static_cast<uint32_t>(bits_.size()); }
  uint64_t seed() const { return seed_; }

  /// Number of 1-bits (odd-parity buckets).
  size_t Ones() const { return bits_.ones(); }

  /// Estimates |S_a Δ S_b| from two sketches with identical (k, seed):
  /// n̂_Δ = −(k/2)·ln(1 − 2·d/k) where d is the Hamming distance between
  /// the sketches. Returns +∞-capped value k·ln(2k)/2 when d ≥ k/2 (the
  /// sketch is saturated).
  static double EstimateSymmetricDifference(const OddSketch& a,
                                            const OddSketch& b);

  /// The same estimator given only the observed 1-bit fraction `alpha` of
  /// the XOR of two k-bit odd sketches.
  static double EstimateSymmetricDifferenceFromAlpha(double alpha, uint32_t k);

  size_t MemoryBits() const { return bits_.MemoryBits(); }

 private:
  uint64_t seed_;
  BitVector bits_;
};

}  // namespace vos::core

#include "core/vos_drift.h"

#include <algorithm>
#include <cmath>

#include "common/popcount.h"
#include "core/digest_matrix.h"

namespace vos::core {

VosDrift::VosDrift(const VosSketch& before, const VosSketch& after,
                   VosEstimatorOptions options)
    : after_(&after),
      estimator_(after.config().k, options),
      before_(&before),
      delta_array_(before.array()) {
  VOS_CHECK(before.IsCompatibleWith(after))
      << "drift requires snapshots of the same sketch";
  delta_array_.XorWith(after.array());
  delta_beta_ = delta_array_.FractionOnes();
}

double VosDrift::DriftFromOnes(uint32_t ones) const {
  const uint32_t k = after_->config().k;
  const double alpha = static_cast<double>(ones) / k;
  // Single-digest contamination model: a reconstructed bit of the delta
  // odd sketch is flipped with probability β_Δ, so
  //   E[α] = (1 − (1−2β_Δ)·e^{−2·nΔ/k}) / 2
  //   n̂Δ  = −(k/2)·(ln|1−2α| − ln|1−2β_Δ|).
  const double floor = estimator_.options().log_arg_floor;
  const double log_alpha =
      std::log(std::max(std::fabs(1.0 - 2.0 * alpha), floor));
  const double log_beta =
      std::log(std::max(std::fabs(1.0 - 2.0 * delta_beta_), floor));
  return std::max(0.0, -0.5 * k * (log_alpha - log_beta));
}

double VosDrift::EstimateDrift(UserId u) const {
  const uint32_t k = after_->config().k;
  uint32_t ones = 0;
  for (uint32_t j = 0; j < k; ++j) {
    ones += delta_array_.Get(after_->CellOf(u, j));
  }
  return DriftFromOnes(ones);
}

double VosDrift::StabilityFromDrift(UserId u, double drift) const {
  const double n1 = before_->Cardinality(u);
  const double n2 = after_->Cardinality(u);
  if (n1 + n2 == 0.0) return 1.0;  // empty before and after: unchanged
  double s = 0.5 * (n1 + n2 - drift);
  if (estimator_.options().clamp_to_feasible) {
    s = std::clamp(s, 0.0, std::min(n1, n2));
  }
  return estimator_.JaccardFromCommon(s, n1, n2);
}

double VosDrift::EstimateStability(UserId u) const {
  const double n1 = before_->Cardinality(u);
  const double n2 = after_->Cardinality(u);
  if (n1 + n2 == 0.0) return 1.0;
  return StabilityFromDrift(u, EstimateDrift(u));
}

std::vector<double> VosDrift::EstimateDriftBatch(
    const std::vector<UserId>& users, unsigned num_threads) const {
  // One contiguous extraction pass over the delta array (the rows ARE the
  // users' reconstructed delta odd sketches), then a word-wise popcount
  // per row — same integers as the scalar per-bit loop.
  const DigestMatrix matrix =
      DigestMatrix::BuildFromArray(delta_array_, *after_, users, num_threads);
  std::vector<double> drifts(users.size());
  const size_t words = matrix.words_per_row();
  for (size_t i = 0; i < users.size(); ++i) {
    drifts[i] = DriftFromOnes(
        static_cast<uint32_t>(PopcountWords(matrix.Row(i), words)));
  }
  return drifts;
}

std::vector<double> VosDrift::EstimateStabilityBatch(
    const std::vector<UserId>& users, unsigned num_threads) const {
  std::vector<double> stabilities = EstimateDriftBatch(users, num_threads);
  for (size_t i = 0; i < users.size(); ++i) {
    stabilities[i] = StabilityFromDrift(users[i], stabilities[i]);
  }
  return stabilities;
}

}  // namespace vos::core

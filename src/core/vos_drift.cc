#include "core/vos_drift.h"

#include <algorithm>
#include <cmath>

namespace vos::core {

VosDrift::VosDrift(const VosSketch& before, const VosSketch& after,
                   VosEstimatorOptions options)
    : after_(&after),
      estimator_(after.config().k, options),
      before_(&before),
      delta_array_(before.array()) {
  VOS_CHECK(before.IsCompatibleWith(after))
      << "drift requires snapshots of the same sketch";
  delta_array_.XorWith(after.array());
  delta_beta_ = delta_array_.FractionOnes();
}

double VosDrift::EstimateDrift(UserId u) const {
  const uint32_t k = after_->config().k;
  uint32_t ones = 0;
  for (uint32_t j = 0; j < k; ++j) {
    ones += delta_array_.Get(after_->CellOf(u, j));
  }
  const double alpha = static_cast<double>(ones) / k;
  // Single-digest contamination model: a reconstructed bit of the delta
  // odd sketch is flipped with probability β_Δ, so
  //   E[α] = (1 − (1−2β_Δ)·e^{−2·nΔ/k}) / 2
  //   n̂Δ  = −(k/2)·(ln|1−2α| − ln|1−2β_Δ|).
  const double floor = estimator_.options().log_arg_floor;
  const double log_alpha =
      std::log(std::max(std::fabs(1.0 - 2.0 * alpha), floor));
  const double log_beta =
      std::log(std::max(std::fabs(1.0 - 2.0 * delta_beta_), floor));
  return std::max(0.0, -0.5 * k * (log_alpha - log_beta));
}

double VosDrift::EstimateStability(UserId u) const {
  const double n1 = before_->Cardinality(u);
  const double n2 = after_->Cardinality(u);
  if (n1 + n2 == 0.0) return 1.0;  // empty before and after: unchanged
  const double drift = EstimateDrift(u);
  double s = 0.5 * (n1 + n2 - drift);
  if (estimator_.options().clamp_to_feasible) {
    s = std::clamp(s, 0.0, std::min(n1, n2));
  }
  return estimator_.JaccardFromCommon(s, n1, n2);
}

}  // namespace vos::core

// DigestMatrix: all candidate digests in one contiguous packed buffer.
//
// The batch query engine's storage layout. Row i holds candidate i's
// reconstructed k-bit virtual odd sketch Ô_u, bit-packed into
// words_per_row() uint64_t words (k padded up to a word boundary; pad bits
// are zero, so XOR+popcount over whole rows is exactly the k-bit Hamming
// distance). Rows are row-major in one allocation: the O(U²) all-pairs
// loop streams memory linearly instead of chasing one heap-allocated
// BitVector per user.
//
// Build() extracts every row with a thread-parallel pass over disjoint row
// ranges. Each row extraction walks the sketch's cached per-j f-seed table
// (VosSketch::f_seed_table()) — one Hash64 per bit, no per-bit
// DeriveSeed — and packs bits 64 at a time with a single store per word.
// The result is bit-identical to VosSketch::ExtractUserSketch for every
// user, regardless of thread count (rows are written by exactly one
// thread).
//
// Thread-safety: immutable after Build(); all accessors are const and safe
// to call concurrently.

#pragma once

#include <cstdint>
#include <vector>

#include "common/bit_vector.h"
#include "core/vos_sketch.h"

namespace vos::core {

class DigestMatrix {
 public:
  /// An empty matrix (rows() == 0).
  DigestMatrix() = default;

  /// An all-zero matrix with `rows` k-bit rows; callers fill rows in
  /// place via MutableRow (the incremental index mixes fresh extractions
  /// with rows copied from the previous snapshot).
  DigestMatrix(uint32_t k, size_t rows)
      : k_(k),
        num_rows_(rows),
        words_per_row_(WordsPerRow(k)),
        words_(rows * WordsPerRow(k), 0) {}

  /// Extracts one row per user in `users`, in order, using `num_threads`
  /// worker threads (0 = std::thread::hardware_concurrency()).
  static DigestMatrix Build(const VosSketch& sketch,
                            const std::vector<UserId>& users,
                            unsigned num_threads = 0);

  /// Like Build, but reads bits from `array` instead of sketch.array();
  /// the geometry (k, m, f seeds) still comes from `sketch`. This serves
  /// any derived array that shares the sketch's cell map — e.g. VosDrift's
  /// XOR-delta array, whose per-user reconstruction is exactly a row
  /// extraction against A(t1) ⊕ A(t2). `array` must have sketch.config().m
  /// bits.
  static DigestMatrix BuildFromArray(const BitVector& array,
                                     const VosSketch& sketch,
                                     const std::vector<UserId>& users,
                                     unsigned num_threads = 0);

  /// Extracts user `user`'s digest into dst[0 .. WordsPerRow(k)), packing
  /// the same bits as sketch.ExtractUserSketch(user); pad bits are zeroed.
  static void ExtractRow(const VosSketch& sketch, UserId user, uint64_t* dst);

  /// ExtractRow against an alternate `array` (see BuildFromArray). When
  /// `cells` is non-null it additionally records the k cell indices
  /// f_j(user) into cells[0..k) — the incremental index captures them at
  /// Rebuild so later refreshes re-read rows with k array lookups and no
  /// hashing (cells depend only on the user, never on the array).
  static void ExtractRowFromArray(const BitVector& array,
                                  const VosSketch& sketch, UserId user,
                                  uint64_t* dst, uint32_t* cells = nullptr);

  /// Words needed for one k-bit row.
  static size_t WordsPerRow(uint32_t k) {
    return (static_cast<size_t>(k) + 63) / 64;
  }

  size_t rows() const { return num_rows_; }
  uint32_t k() const { return k_; }
  size_t words_per_row() const { return words_per_row_; }
  bool empty() const { return num_rows_ == 0; }

  /// Raw words of row i (words_per_row() of them).
  const uint64_t* Row(size_t i) const {
    VOS_DCHECK(i < num_rows_) << "row" << i << "of" << num_rows_;
    return words_.data() + i * words_per_row_;
  }

  /// Writable words of row i (distinct rows may be filled concurrently).
  uint64_t* MutableRow(size_t i) {
    VOS_DCHECK(i < num_rows_) << "row" << i << "of" << num_rows_;
    return words_.data() + i * words_per_row_;
  }

  /// Packs the k bits array[cells[0]], …, array[cells[k-1]] into
  /// dst[0 .. WordsPerRow(k)) — re-extraction from previously captured
  /// cells (see ExtractRowFromArray): k array reads, zero hashing.
  static void ExtractRowFromCells(const BitVector& array,
                                  const uint32_t* cells, uint32_t k,
                                  uint64_t* dst);

  /// Row i as a standalone BitVector (reference/test path; copies).
  BitVector RowAsBitVector(size_t i) const;

  /// Payload bytes (diagnostics).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  void Clear() {
    k_ = 0;
    num_rows_ = 0;
    words_per_row_ = 0;
    words_.clear();
    words_.shrink_to_fit();
  }

 private:
  static DigestMatrix BuildImpl(const BitVector& array,
                                const VosSketch& sketch,
                                const std::vector<UserId>& users,
                                unsigned num_threads);

  uint32_t k_ = 0;
  size_t num_rows_ = 0;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> words_;
};

/// Resolves a thread-count request: 0 means hardware concurrency; the
/// result is clamped to [1, work_items] so empty/small workloads never
/// spawn idle threads.
unsigned ResolveThreadCount(unsigned requested, size_t work_items);

}  // namespace vos::core

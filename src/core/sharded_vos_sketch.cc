#include "core/sharded_vos_sketch.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/fault_injector.h"
#include "common/popcount.h"
#include "core/digest_matrix.h"
#include "core/vos_io.h"
#include "hashing/seeds.h"

namespace vos::core {
namespace {

/// Router and per-shard f seeds branch off the master seed under distinct
/// tags so they are unrelated to ψ's and the base f family's sub-seeds.
constexpr uint64_t kRouterTag = 0x40a7e0;
constexpr uint64_t kShardFTag = 0x5a4d00;

/// Construction-time footprint estimate for the memory-budget validation:
/// shard arrays (word-rounded) plus per-user state (cardinality counter,
/// dirty epoch, dense-remap tables). Matches MemoryBits() up to rounding.
uint64_t StaticFootprintBits(const ShardedVosConfig& config,
                             stream::UserId num_users) {
  uint64_t total = 0;
  const uint64_t shard_m =
      config.num_shards > 1
          ? std::max<uint64_t>(1, config.base.m / config.num_shards)
          : config.base.m;
  total += static_cast<uint64_t>(config.num_shards) * ((shard_m + 63) / 64) *
           64;
  uint64_t per_user = 32;                            // cardinality counter
  if (config.base.track_dirty) per_user += 32;       // dirty epoch
  if (config.num_shards > 1) per_user += 64;         // dense remap tables
  total += static_cast<uint64_t>(num_users) * per_user;
  return total;
}

std::string ShardTag(uint32_t shard) {
  return "shard " + std::to_string(shard);
}

}  // namespace

VosConfig ShardedVosSketch::ShardConfig(const ShardedVosConfig& config,
                                        uint32_t shard) {
  VOS_CHECK(shard < config.num_shards)
      << "shard" << shard << "of" << config.num_shards;
  VosConfig shard_config = config.base;
  if (config.num_shards > 1) {
    shard_config.m =
        std::max<uint64_t>(1, config.base.m / config.num_shards);
    shard_config.f_seed =
        hash::DeriveSeed2(config.base.seed, kShardFTag, shard);
  }
  return shard_config;
}

Status ShardedVosSketch::ValidateConfig(const ShardedVosConfig& config,
                                        UserId num_users) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.num_shards > 0xffff) {
    return Status::InvalidArgument(
        "num_shards must fit the uint16 shard tags (<= 65535)");
  }
  if (config.base.k < 1) {
    return Status::InvalidArgument("base.k must be >= 1");
  }
  if (config.base.m < 1) {
    return Status::InvalidArgument("base.m must be >= 1");
  }
  if (config.queue_capacity < 1) {
    return Status::InvalidArgument(
        "queue_capacity must be >= 1: a zero-capacity (producer, shard) "
        "queue can never accept a sub-batch, so the first back-pressured "
        "enqueue would deadlock");
  }
  if (config.batch_size < 1) {
    return Status::InvalidArgument(
        "batch_size must be >= 1: a zero batch size can never trigger the "
        "Update() auto-enqueue");
  }
  if (config.ingest_producers < 1) {
    return Status::InvalidArgument(
        "ingest_producers must be >= 1: producer ids are validated "
        "against the configured lane count");
  }
  if (config.memory_budget_bits > 0) {
    const uint64_t static_bits = StaticFootprintBits(config, num_users);
    if (static_bits > config.memory_budget_bits) {
      return Status::InvalidArgument(
          "memory_budget_bits (" + std::to_string(config.memory_budget_bits) +
          ") is below the config's own static footprint (" +
          std::to_string(static_bits) +
          " bits: shard arrays + per-user state); no stream could ever be "
          "ingested under it");
    }
  }
  return Status::OK();
}

ShardedVosSketch::ShardedVosSketch(const ShardedVosConfig& config,
                                   UserId num_users,
                                   VosEstimatorOptions estimator_options)
    : config_(config),
      router_(std::max<uint32_t>(1, config.num_shards),
              hash::DeriveSeed(config.base.seed, kRouterTag)),
      num_users_(num_users),
      estimator_(config.base.k, estimator_options) {
  // Degenerate configs fail here, loudly and with the reason — not by
  // deadlocking the first enqueue or striping queues nobody drains.
  const Status valid = ValidateConfig(config, num_users);
  VOS_CHECK(valid.ok()) << valid.ToString();
  shards_.reserve(config.num_shards);
  if (config.num_shards > 1) {
    // Dense remap: shard s is sized for exactly the users it owns and
    // addresses them by dense local id (see file comment).
    dense_map_ = stream::DenseShardMap(router_, num_users);
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      shards_.emplace_back(ShardConfig(config, s), dense_map_.shard_size(s));
    }
  } else {
    shards_.emplace_back(ShardConfig(config, 0), num_users);
  }
  shard_status_.resize(config.num_shards);
  accepted_.assign(config.ingest_producers, 0);
  if (config.ingest_threads > 0) {
    const unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
        {config.ingest_threads, config.num_shards, 256}));
    producers_ = config_.ingest_producers;
    owner_.resize(config.num_shards);
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      owner_[s] = static_cast<uint8_t>(s % workers);
    }
    pending_.resize(producers_);
    pending_size_ = std::vector<std::atomic<size_t>>(producers_);
    // One bounded queue per (producer, shard): producer p publishes shard
    // s's sub-batches to lanes_[p·S + s] and only its owner drains it, so
    // no worker ever touches an element it does not apply.
    lanes_.resize(static_cast<size_t>(producers_) * config.num_shards);
    worker_lanes_.resize(workers);
    for (unsigned p = 0; p < producers_; ++p) {
      for (uint32_t s = 0; s < config.num_shards; ++s) {
        worker_lanes_[owner_[s]].push_back(LaneIndex(p, s));
      }
    }
    worker_dead_.assign(workers, 0);
    worker_threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      worker_threads_.emplace_back(&ShardedVosSketch::WorkerLoop, this, w);
    }
  } else {
    producers_ = 1;  // synchronous ingestion is single-threaded by contract
  }
  static_memory_bits_ = MemoryBits();
}

ShardedVosSketch::~ShardedVosSketch() {
  if (!async()) return;
  (void)Flush();  // drains even when degraded; status irrelevant here
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : worker_threads_) t.join();
}

void ShardedVosSketch::ApplySyncElement(const stream::Element& e) {
  const uint32_t s = router_.ShardOf(e.user);
  if (degraded_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shard_status_[s].ok()) {
      // Poisoned shard: reject instead of corrupting partial state.
      ++dropped_elements_;
      return;
    }
  }
  stream::Element local = e;
  if (dense_remap()) local.user = dense_map_.LocalOf(e.user);
  FaultInjector& injector = FaultInjector::Global();
  try {
    if (injector.armed() &&
        injector.Fire(FaultSite::kUpdateThrow, s, /*producer=*/0)) {
      throw std::runtime_error("injected update fault");
    }
    shards_[s].Update(local);
  } catch (const std::exception& ex) {
    std::lock_guard<std::mutex> lock(mu_);
    PoisonShardLocked(
        s, Status::Internal(ShardTag(s) + " update failed: " + ex.what()));
    ++dropped_elements_;
  }
}

void ShardedVosSketch::Update(const stream::Element& e, unsigned producer) {
  // Validate against the CONFIGURED lane count in both modes, so a
  // miswired lane id fails in the deterministic sync configuration tests
  // run with, not only once the async pipeline is enabled. (Sync mode
  // clamps the live lane count to 1 but stays a faithful stand-in for a
  // multi-lane caller: lane ids are simply applied inline, in order.)
  VOS_CHECK(producer < config_.ingest_producers)
      << "producer" << producer << "of" << config_.ingest_producers;
  ++accepted_[producer];
  if (!async()) {
    ApplySyncElement(e);
    return;
  }
  std::vector<stream::Element>& pending = pending_[producer];
  pending.push_back(e);
  pending_size_[producer].store(pending.size(), std::memory_order_relaxed);
  if (pending.size() >= config_.batch_size) FlushPendingBuffer(producer);
}

void ShardedVosSketch::UpdateBatch(const stream::Element* elements,
                                   size_t count, unsigned producer) {
  if (count == 0) return;
  VOS_CHECK(producer < config_.ingest_producers)
      << "producer" << producer << "of" << config_.ingest_producers;
  accepted_[producer] += count;
  if (!async()) {
    for (size_t i = 0; i < count; ++i) ApplySyncElement(elements[i]);
    return;
  }
  // Keep the lane's per-shard order: anything buffered by Update() on
  // this lane precedes this batch in the lane's stream order.
  FlushPendingBuffer(producer);
  std::vector<std::vector<stream::Element>> per_shard(router_.num_shards());
  RoutePartition(elements, count, &per_shard);
  for (uint32_t s = 0; s < router_.num_shards(); ++s) {
    if (per_shard[s].empty()) continue;
    EnqueueSubBatch(producer, s, std::move(per_shard[s]));
  }
}

void ShardedVosSketch::RoutePartition(
    const stream::Element* elements, size_t count,
    std::vector<std::vector<stream::Element>>* per_shard) const {
  // The handoff to shard-local coordinates: after this, each sub-batch
  // carries dense local ids and belongs wholly to one shard, so workers
  // apply it verbatim.
  if (dense_remap()) {
    dense_map_.Partition(elements, count, per_shard);
  } else {
    router_.Partition(elements, count, per_shard);
  }
}

void ShardedVosSketch::FlushPendingBuffer(unsigned producer) {
  std::vector<stream::Element>& pending = pending_[producer];
  if (pending.empty()) return;
  std::vector<std::vector<stream::Element>> per_shard(router_.num_shards());
  RoutePartition(pending.data(), pending.size(), &per_shard);
  pending.clear();
  // The elements re-appear in the lane enqueued counters below; a
  // cross-thread HasPendingIngest between this store and those enqueues
  // can transiently answer false, which the header's contract allows (a
  // false is only a stable "quiesced" once producers have stopped —
  // this producer is mid-call). Calls from this lane's own thread after
  // the buffer flush always see the enqueued counters.
  pending_size_[producer].store(0, std::memory_order_relaxed);
  for (uint32_t s = 0; s < router_.num_shards(); ++s) {
    if (per_shard[s].empty()) continue;
    EnqueueSubBatch(producer, s, std::move(per_shard[s]));
  }
}

void ShardedVosSketch::PoisonShardLocked(uint32_t shard, Status status) {
  if (shard_status_[shard].ok()) shard_status_[shard] = std::move(status);
  degraded_.store(true, std::memory_order_relaxed);
  if (!lanes_.empty()) {
    // Discard the shard's backlog on every lane: the data is lost either
    // way, and leaving it queued would wedge Flush barriers and
    // back-pressured producers forever.
    for (unsigned p = 0; p < producers_; ++p) {
      LaneQueue& lane = lanes_[LaneIndex(p, shard)];
      for (const std::vector<stream::Element>& batch : lane.batches) {
        dropped_elements_ += batch.size();
        queued_bytes_ -= batch.size() * sizeof(stream::Element);
      }
      lane.completed += lane.batches.size();
      lane.batches.clear();
    }
  }
  cv_.notify_all();
}

void ShardedVosSketch::EnqueueSubBatch(unsigned producer, uint32_t shard,
                                       std::vector<stream::Element> batch) {
  const size_t lane = LaneIndex(producer, shard);
  const size_t batch_bytes = batch.size() * sizeof(stream::Element);
  std::unique_lock<std::mutex> lock(mu_);
  if (!shard_status_[shard].ok()) {
    // Degraded mode: the shard already failed; reject instead of queueing
    // work nobody will ever apply.
    dropped_elements_ += batch.size();
    return;
  }
  if (config_.memory_budget_bits > 0 &&
      (static_memory_bits_ / 8 + queued_bytes_ + batch_bytes) * 8 >
          config_.memory_budget_bits) {
    if (budget_status_.ok()) {
      budget_status_ = Status::ResourceExhausted(
          "ingest backlog would exceed memory_budget_bits (" +
          std::to_string(config_.memory_budget_bits) + "); batch dropped");
    }
    degraded_.store(true, std::memory_order_relaxed);
    dropped_elements_ += batch.size();
    return;
  }
  // Back-pressure on exactly the full queue: only this producer blocks,
  // and only until shard `shard`'s worker drains a sub-batch — other
  // lanes keep flowing. A poison unblocks the wait too (the backlog is
  // discarded, so the queue can only be "full" while healthy).
  const auto room = [&] {
    return lanes_[lane].batches.size() < config_.queue_capacity ||
           !shard_status_[shard].ok();
  };
  if (config_.enqueue_timeout_ms > 0) {
    if (!cv_.wait_for(lock,
                      std::chrono::milliseconds(config_.enqueue_timeout_ms),
                      room)) {
      // The lane is starved: its worker made no room within the
      // deadline. Poison the shard (sticky) so the failure is surfaced
      // at the next Flush instead of silently losing only this batch.
      PoisonShardLocked(
          shard, Status::DeadlineExceeded(
                     ShardTag(shard) + " enqueue timed out after " +
                     std::to_string(config_.enqueue_timeout_ms) +
                     " ms (lane starved)"));
      dropped_elements_ += batch.size();
      return;
    }
  } else {
    cv_.wait(lock, room);
  }
  if (!shard_status_[shard].ok()) {
    dropped_elements_ += batch.size();
    return;
  }
  lanes_[lane].batches.push_back(std::move(batch));
  ++lanes_[lane].enqueued;
  queued_bytes_ += batch_bytes;
  lock.unlock();
  cv_.notify_all();
}

void ShardedVosSketch::WorkerLoop(unsigned worker) {
  const std::vector<size_t>& lanes = worker_lanes_[worker];
  FaultInjector& injector = FaultInjector::Global();
  // Round-robin cursor over the worker's lanes so no producer's queue is
  // starved while another lane stays hot.
  size_t cursor = 0;
  for (;;) {
    std::vector<stream::Element> batch;
    size_t lane = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        if (stopping_) return true;
        for (size_t l : lanes) {
          if (!lanes_[l].batches.empty()) return true;
        }
        return false;
      });
      bool found = false;
      for (size_t i = 0; i < lanes.size(); ++i) {
        const size_t candidate = lanes[(cursor + i) % lanes.size()];
        if (!lanes_[candidate].batches.empty()) {
          lane = candidate;
          cursor = (cursor + i + 1) % lanes.size();
          found = true;
          break;
        }
      }
      if (!found) return;  // stopping_ and every owned lane drained
      batch = std::move(lanes_[lane].batches.front());
      lanes_[lane].batches.pop_front();
    }
    cv_.notify_all();  // queue shrank: unblock a back-pressured producer
    const uint32_t shard = static_cast<uint32_t>(lane % router_.num_shards());
    const unsigned producer =
        static_cast<unsigned>(lane / router_.num_shards());
    const size_t batch_bytes = batch.size() * sizeof(stream::Element);
    if (injector.armed()) {
      const uint32_t stall = injector.StallMs(shard, producer);
      if (stall > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(stall));
      }
      if (injector.Fire(FaultSite::kWorkerKill, shard, producer)) {
        // The worker "crashes" mid-batch: this batch and every queued
        // batch of its shards are lost, its shards are poisoned, and the
        // thread exits. Counters are settled so Flush barriers terminate
        // (degraded) instead of hanging on a dead thread.
        std::lock_guard<std::mutex> lock(mu_);
        worker_dead_[worker] = 1;
        dropped_elements_ += batch.size();
        queued_bytes_ -= batch_bytes;
        ++lanes_[lane].completed;
        for (uint32_t s = 0; s < router_.num_shards(); ++s) {
          if (owner_[s] != worker) continue;
          PoisonShardLocked(
              s, Status::Internal(
                     ShardTag(s) +
                     " worker killed mid-batch (fault injection); queued "
                     "batches lost"));
        }
        cv_.notify_all();
        return;
      }
    }
    // Every element of the sub-batch belongs to this lane's shard and is
    // already in shard-local coordinates — apply verbatim, no scanning.
    // Exceptions are caught at this worker boundary (the library itself
    // never throws; a throw models a worker crash — fault injection or a
    // genuinely broken Update) and poison the shard instead of
    // propagating into std::terminate.
    bool poisoned = false;
    try {
      VosSketch& sketch = shards_[shard];
      for (const stream::Element& e : batch) {
        if (injector.armed() &&
            injector.Fire(FaultSite::kUpdateThrow, shard, producer)) {
          throw std::runtime_error("injected update fault");
        }
        sketch.Update(e);
      }
    } catch (const std::exception& ex) {
      poisoned = true;
      std::lock_guard<std::mutex> lock(mu_);
      PoisonShardLocked(shard, Status::Internal(ShardTag(shard) +
                                                " update failed: " +
                                                ex.what()));
      // The batch is partially applied; count it all as affected — the
      // shard's state is suspect either way and a checkpoint will refuse
      // to cover it.
      dropped_elements_ += batch.size();
    }
    batch.clear();
    batch.shrink_to_fit();  // release before signalling completion
    {
      std::lock_guard<std::mutex> lock(mu_);
      queued_bytes_ -= batch_bytes;
      if (!poisoned) {
        ++lanes_[lane].completed;
      } else if (lanes_[lane].completed < lanes_[lane].enqueued) {
        // PoisonShardLocked settled the queued backlog; settle the
        // in-flight batch it could not see.
        ++lanes_[lane].completed;
      }
    }
    cv_.notify_all();  // Flush() may be waiting on completion counts
  }
}

Status ShardedVosSketch::Flush() {
  if (!async()) {
    std::lock_guard<std::mutex> lock(mu_);
    return IngestStatusLocked();
  }
  for (unsigned p = 0; p < producers_; ++p) FlushPendingBuffer(p);
  std::unique_lock<std::mutex> lock(mu_);
  const auto drained = [&] {
    for (const LaneQueue& lane : lanes_) {
      if (lane.completed != lane.enqueued) return false;
    }
    return true;
  };
  if (config_.flush_timeout_ms > 0) {
    if (!cv_.wait_for(lock,
                      std::chrono::milliseconds(config_.flush_timeout_ms),
                      drained)) {
      size_t pending = 0;
      for (const LaneQueue& lane : lanes_) {
        pending += lane.enqueued - lane.completed;
      }
      return Status::DeadlineExceeded(
          "Flush timed out after " +
          std::to_string(config_.flush_timeout_ms) + " ms with " +
          std::to_string(pending) + " sub-batches unapplied");
    }
  } else {
    cv_.wait(lock, drained);
  }
  return IngestStatusLocked();
}

Status ShardedVosSketch::FlushProducer(unsigned producer) {
  VOS_CHECK(producer < config_.ingest_producers)
      << "producer" << producer << "of" << config_.ingest_producers;
  if (!async()) {
    std::lock_guard<std::mutex> lock(mu_);
    return IngestStatusLocked();
  }
  FlushPendingBuffer(producer);
  const size_t first = LaneIndex(producer, 0);
  const size_t last = first + router_.num_shards();
  std::unique_lock<std::mutex> lock(mu_);
  const auto drained = [&] {
    for (size_t l = first; l < last; ++l) {
      if (lanes_[l].completed != lanes_[l].enqueued) return false;
    }
    return true;
  };
  if (config_.flush_timeout_ms > 0) {
    if (!cv_.wait_for(lock,
                      std::chrono::milliseconds(config_.flush_timeout_ms),
                      drained)) {
      return Status::DeadlineExceeded(
          "FlushProducer(" + std::to_string(producer) +
          ") timed out after " + std::to_string(config_.flush_timeout_ms) +
          " ms");
    }
  } else {
    cv_.wait(lock, drained);
  }
  return IngestStatusLocked();
}

Status ShardedVosSketch::IngestStatusLocked() const {
  for (const Status& status : shard_status_) {
    if (!status.ok()) return status;
  }
  return budget_status_;
}

Status ShardedVosSketch::IngestStatus() const {
  std::lock_guard<std::mutex> lock(mu_);
  return IngestStatusLocked();
}

uint64_t ShardedVosSketch::dropped_elements() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_elements_;
}

Status ShardedVosSketch::Checkpoint(const std::string& path) {
  const Status flushed = Flush();
  if (!flushed.ok()) {
    // A checkpoint must only ever cover state every accepted element
    // reached; a degraded pipeline has dropped data, so its watermarks
    // would lie.
    return Status::FailedPrecondition(
        "cannot checkpoint a degraded pipeline: " + flushed.ToString());
  }
  return ShardedCheckpointIo::Save(*this, path);
}

Status ShardedVosSketch::Restore(const std::string& path) {
  if (async()) {
    // Quiesce and DISCARD: whatever is buffered or queued belongs to the
    // state being thrown away; the restored watermarks say exactly where
    // each lane resumes. (Poisoned shards' backlogs are already gone.)
    for (unsigned p = 0; p < producers_; ++p) {
      pending_[p].clear();
      pending_size_[p].store(0, std::memory_order_relaxed);
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      for (const LaneQueue& lane : lanes_) {
        if (lane.completed != lane.enqueued) return false;
      }
      return true;
    });
  }
  return ShardedCheckpointIo::Restore(this, path);
}

bool ShardedVosSketch::HasPendingIngest() const {
  if (!async()) return false;
  for (const std::atomic<size_t>& size : pending_size_) {
    if (size.load(std::memory_order_relaxed) > 0) return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const LaneQueue& lane : lanes_) {
    if (lane.completed != lane.enqueued) return true;
  }
  return false;
}

PairEstimate ShardedVosSketch::EstimatePair(UserId u, UserId v) const {
  VOS_DCHECK(!HasPendingIngest())
      << "EstimatePair on a non-quiesced pipeline; call Flush() first";
  const VosSketch& sketch_u = shards_[router_.ShardOf(u)];
  const VosSketch& sketch_v = shards_[router_.ShardOf(v)];
  const UserId lu = LocalIdOf(u);
  const UserId lv = LocalIdOf(v);
  const uint32_t k = config_.base.k;
  const size_t words = DigestMatrix::WordsPerRow(k);
  std::vector<uint64_t> row_u(words), row_v(words);
  DigestMatrix::ExtractRow(sketch_u, lu, row_u.data());
  DigestMatrix::ExtractRow(sketch_v, lv, row_v.data());
  const size_t d = XorPopcount(row_u.data(), row_v.data(), words);
  const double alpha = static_cast<double>(d) / k;
  // Each digest carries its own shard's contamination, so the §IV
  // (1−2β)² factor generalizes to (1−2β_u)(1−2β_v): pass the mean of the
  // two log-beta terms where the estimator doubles it. Same-shard pairs
  // reduce to the standalone single-β estimate bit-for-bit.
  const double log_beta_term =
      0.5 * (estimator_.LogBetaTerm(sketch_u.beta()) +
             estimator_.LogBetaTerm(sketch_v.beta()));
  return estimator_.EstimateFromLogTerms(sketch_u.Cardinality(lu),
                                         sketch_v.Cardinality(lv),
                                         estimator_.LogAlphaTerm(alpha),
                                         log_beta_term);
}

size_t ShardedVosSketch::MemoryBits() const {
  // Arrays plus every per-user structure this facade allocates: honest
  // accounting for equal-memory comparisons (see header comment). The
  // dense remap keeps the per-user portion independent of num_shards.
  size_t total = dense_map_.MemoryBits();
  for (const VosSketch& shard : shards_) {
    total += shard.MemoryBits() + shard.PerUserStateBits();
  }
  return total;
}

}  // namespace vos::core

#include "core/sharded_vos_sketch.h"

#include <algorithm>

#include "common/popcount.h"
#include "core/digest_matrix.h"
#include "hashing/seeds.h"

namespace vos::core {
namespace {

/// Router and per-shard f seeds branch off the master seed under distinct
/// tags so they are unrelated to ψ's and the base f family's sub-seeds.
constexpr uint64_t kRouterTag = 0x40a7e0;
constexpr uint64_t kShardFTag = 0x5a4d00;

}  // namespace

VosConfig ShardedVosSketch::ShardConfig(const ShardedVosConfig& config,
                                        uint32_t shard) {
  VOS_CHECK(shard < config.num_shards)
      << "shard" << shard << "of" << config.num_shards;
  VosConfig shard_config = config.base;
  if (config.num_shards > 1) {
    shard_config.m =
        std::max<uint64_t>(1, config.base.m / config.num_shards);
    shard_config.f_seed =
        hash::DeriveSeed2(config.base.seed, kShardFTag, shard);
  }
  return shard_config;
}

ShardedVosSketch::ShardedVosSketch(const ShardedVosConfig& config,
                                   UserId num_users,
                                   VosEstimatorOptions estimator_options)
    : config_(config),
      router_(config.num_shards,
              hash::DeriveSeed(config.base.seed, kRouterTag)),
      num_users_(num_users),
      estimator_(config.base.k, estimator_options) {
  VOS_CHECK(config.num_shards >= 1) << "need at least one shard";
  // A zero capacity would make the back-pressure wait unsatisfiable
  // (permanent producer deadlock); a zero batch size would enqueue
  // per-element batches. Clamp both to sane minima.
  config_.queue_capacity = std::max<size_t>(1, config_.queue_capacity);
  config_.batch_size = std::max<size_t>(1, config_.batch_size);
  shards_.reserve(config.num_shards);
  if (config.num_shards > 1) {
    // Dense remap: shard s is sized for exactly the users it owns and
    // addresses them by dense local id (see file comment).
    dense_map_ = stream::DenseShardMap(router_, num_users);
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      shards_.emplace_back(ShardConfig(config, s), dense_map_.shard_size(s));
    }
  } else {
    shards_.emplace_back(ShardConfig(config, 0), num_users);
  }
  if (config.ingest_threads > 0) {
    const unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
        {config.ingest_threads, config.num_shards, 256}));
    owner_.resize(config.num_shards);
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      owner_[s] = static_cast<uint8_t>(s % workers);
    }
    worker_state_.resize(workers);
    worker_threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      worker_threads_.emplace_back(&ShardedVosSketch::WorkerLoop, this, w);
    }
  }
}

ShardedVosSketch::~ShardedVosSketch() {
  if (!async()) return;
  Flush();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : worker_threads_) t.join();
}

void ShardedVosSketch::Update(const stream::Element& e) {
  if (!async()) {
    const uint32_t s = router_.ShardOf(e.user);
    if (!dense_remap()) {
      shards_[s].Update(e);
    } else {
      stream::Element local = e;
      local.user = dense_map_.LocalOf(e.user);
      shards_[s].Update(local);
    }
    return;
  }
  pending_.push_back(e);
  if (pending_.size() >= config_.batch_size) FlushPendingBuffer();
}

void ShardedVosSketch::UpdateBatch(const stream::Element* elements,
                                   size_t count) {
  if (count == 0) return;
  if (!async()) {
    for (size_t i = 0; i < count; ++i) Update(elements[i]);
    return;
  }
  // Keep per-shard order: anything buffered by Update() precedes this
  // batch in stream order.
  FlushPendingBuffer();
  auto batch = std::make_shared<IngestBatch>();
  batch->elements.assign(elements, elements + count);
  batch->tags.resize(count);
  RouteBatch(batch->elements.data(), count, batch->tags.data());
  EnqueueBatch(std::move(batch));
}

void ShardedVosSketch::RouteBatch(stream::Element* elements, size_t count,
                                  uint16_t* tags) {
  // The handoff to shard-local coordinates: after this, elements carry
  // dense local ids and tags carry the owning shard, so workers apply
  // them verbatim.
  if (dense_remap()) {
    dense_map_.Route(elements, count, tags);
  } else {
    router_.Tag(elements, count, tags);
  }
}

void ShardedVosSketch::FlushPendingBuffer() {
  if (pending_.empty()) return;
  auto batch = std::make_shared<IngestBatch>();
  batch->elements = std::move(pending_);
  pending_.clear();
  batch->tags.resize(batch->elements.size());
  RouteBatch(batch->elements.data(), batch->elements.size(),
             batch->tags.data());
  EnqueueBatch(std::move(batch));
}

void ShardedVosSketch::EnqueueBatch(std::shared_ptr<const IngestBatch> batch) {
  std::unique_lock<std::mutex> lock(mu_);
  // Back-pressure: wait until every worker queue has room, then publish
  // the shared batch to all of them at once (workers skip foreign
  // elements while scanning, so no per-shard copies are made).
  cv_.wait(lock, [&] {
    for (const WorkerState& w : worker_state_) {
      if (w.queue.size() >= config_.queue_capacity) return false;
    }
    return true;
  });
  for (WorkerState& w : worker_state_) {
    w.queue.push_back(batch);
    ++w.enqueued;
  }
  lock.unlock();
  cv_.notify_all();
}

void ShardedVosSketch::WorkerLoop(unsigned worker) {
  WorkerState& state = worker_state_[worker];
  for (;;) {
    std::shared_ptr<const IngestBatch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !state.queue.empty(); });
      if (state.queue.empty()) return;  // stopping_ and drained
      batch = std::move(state.queue.front());
      state.queue.pop_front();
    }
    cv_.notify_all();  // queue shrank: unblock a back-pressured producer
    const stream::Element* elements = batch->elements.data();
    const uint16_t* tags = batch->tags.data();
    const size_t count = batch->elements.size();
    const uint8_t me = static_cast<uint8_t>(worker);
    for (size_t i = 0; i < count; ++i) {
      const uint16_t shard = tags[i];
      if (owner_[shard] == me) shards_[shard].Update(elements[i]);
    }
    batch.reset();  // release before signalling completion
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++state.completed;
    }
    cv_.notify_all();  // Flush() may be waiting on completion counts
  }
}

void ShardedVosSketch::Flush() {
  if (!async()) return;
  FlushPendingBuffer();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    for (const WorkerState& w : worker_state_) {
      if (w.completed != w.enqueued) return false;
    }
    return true;
  });
}

bool ShardedVosSketch::HasPendingIngest() const {
  if (!async()) return false;
  if (!pending_.empty()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  for (const WorkerState& w : worker_state_) {
    if (w.completed != w.enqueued) return true;
  }
  return false;
}

PairEstimate ShardedVosSketch::EstimatePair(UserId u, UserId v) const {
  VOS_DCHECK(!HasPendingIngest())
      << "EstimatePair on a non-quiesced pipeline; call Flush() first";
  const VosSketch& sketch_u = shards_[router_.ShardOf(u)];
  const VosSketch& sketch_v = shards_[router_.ShardOf(v)];
  const UserId lu = LocalIdOf(u);
  const UserId lv = LocalIdOf(v);
  const uint32_t k = config_.base.k;
  const size_t words = DigestMatrix::WordsPerRow(k);
  std::vector<uint64_t> row_u(words), row_v(words);
  DigestMatrix::ExtractRow(sketch_u, lu, row_u.data());
  DigestMatrix::ExtractRow(sketch_v, lv, row_v.data());
  const size_t d = XorPopcount(row_u.data(), row_v.data(), words);
  const double alpha = static_cast<double>(d) / k;
  // Each digest carries its own shard's contamination, so the §IV
  // (1−2β)² factor generalizes to (1−2β_u)(1−2β_v): pass the mean of the
  // two log-beta terms where the estimator doubles it. Same-shard pairs
  // reduce to the standalone single-β estimate bit-for-bit.
  const double log_beta_term =
      0.5 * (estimator_.LogBetaTerm(sketch_u.beta()) +
             estimator_.LogBetaTerm(sketch_v.beta()));
  return estimator_.EstimateFromLogTerms(sketch_u.Cardinality(lu),
                                         sketch_v.Cardinality(lv),
                                         estimator_.LogAlphaTerm(alpha),
                                         log_beta_term);
}

size_t ShardedVosSketch::MemoryBits() const {
  // Arrays plus every per-user structure this facade allocates: honest
  // accounting for equal-memory comparisons (see header comment). The
  // dense remap keeps the per-user portion independent of num_shards.
  size_t total = dense_map_.MemoryBits();
  for (const VosSketch& shard : shards_) {
    total += shard.MemoryBits() + shard.PerUserStateBits();
  }
  return total;
}

}  // namespace vos::core

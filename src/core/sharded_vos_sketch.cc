#include "core/sharded_vos_sketch.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/fault_injector.h"
#include "common/numa.h"
#include "common/popcount.h"
#include "core/digest_matrix.h"
#include "core/vos_io.h"
#include "hashing/seeds.h"

namespace vos::core {
namespace {

/// Router and per-shard f seeds branch off the master seed under distinct
/// tags so they are unrelated to ψ's and the base f family's sub-seeds.
constexpr uint64_t kRouterTag = 0x40a7e0;
constexpr uint64_t kShardFTag = 0x5a4d00;

/// Adaptive spin budgets before parking (producer on a full ring, worker
/// on empty rings). Each round yields: with fewer cores than threads the
/// counterpart NEEDS this core to make progress, and with plenty of
/// cores a yield is still cheaper than a park/unpark round-trip for the
/// common microsecond-scale stall. The budget adapts per lane / worker
/// from measured park rates within [kSpinBudgetMin, kSpinBudgetMax]:
/// when spinning made the park unnecessary it grows ~12%, when the
/// thread parked anyway it halves — long stalls converge on cheap early
/// parks, micro-stalls converge on pure spinning. Purely a performance
/// knob: every park/wake handshake and Flush/poisoning contract is
/// untouched by the budget's value.
constexpr uint32_t kSpinBudgetMin = 16;
constexpr uint32_t kSpinBudgetMax = 512;

uint32_t GrownSpinBudget(uint32_t budget) {
  return std::min(kSpinBudgetMax, budget + budget / 8 + 1);
}

uint32_t ShrunkSpinBudget(uint32_t budget) {
  return std::max(kSpinBudgetMin, budget / 2);
}

/// Construction-time footprint estimate for the memory-budget validation:
/// shard arrays (word-rounded) plus per-user state (cardinality counter,
/// dirty epoch, dense-remap tables). Matches MemoryBits() up to rounding.
uint64_t StaticFootprintBits(const ShardedVosConfig& config,
                             stream::UserId num_users) {
  uint64_t total = 0;
  const uint64_t shard_m =
      config.num_shards > 1
          ? std::max<uint64_t>(1, config.base.m / config.num_shards)
          : config.base.m;
  total += static_cast<uint64_t>(config.num_shards) * ((shard_m + 63) / 64) *
           64;
  uint64_t per_user = 32;                            // cardinality counter
  if (config.base.track_dirty) per_user += 32;       // dirty epoch
  if (config.num_shards > 1) per_user += 64;         // dense remap tables
  total += static_cast<uint64_t>(num_users) * per_user;
  return total;
}

std::string ShardTag(uint32_t shard) {
  return "shard " + std::to_string(shard);
}

}  // namespace

VosConfig ShardedVosSketch::ShardConfig(const ShardedVosConfig& config,
                                        uint32_t shard) {
  VOS_CHECK(shard < config.num_shards)
      << "shard" << shard << "of" << config.num_shards;
  VosConfig shard_config = config.base;
  if (config.num_shards > 1) {
    shard_config.m =
        std::max<uint64_t>(1, config.base.m / config.num_shards);
    shard_config.f_seed =
        hash::DeriveSeed2(config.base.seed, kShardFTag, shard);
  }
  return shard_config;
}

Status ShardedVosSketch::ValidateConfig(const ShardedVosConfig& config,
                                        UserId num_users) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.num_shards > 0xffff) {
    return Status::InvalidArgument(
        "num_shards must fit the uint16 shard tags (<= 65535)");
  }
  if (config.base.k < 1) {
    return Status::InvalidArgument("base.k must be >= 1");
  }
  if (config.base.m < 1) {
    return Status::InvalidArgument("base.m must be >= 1");
  }
  if (config.queue_capacity < 1) {
    return Status::InvalidArgument(
        "queue_capacity must be >= 1: a zero-capacity (producer, shard) "
        "ring can never accept a sub-batch, so the first back-pressured "
        "enqueue would deadlock");
  }
  if (config.batch_size < 1) {
    return Status::InvalidArgument(
        "batch_size must be >= 1: a zero batch size can never trigger the "
        "Update() auto-enqueue");
  }
  if (config.ingest_producers < 1) {
    return Status::InvalidArgument(
        "ingest_producers must be >= 1: producer ids are validated "
        "against the configured lane count");
  }
  if (config.memory_budget_bits > 0) {
    const uint64_t static_bits = StaticFootprintBits(config, num_users);
    if (static_bits > config.memory_budget_bits) {
      return Status::InvalidArgument(
          "memory_budget_bits (" + std::to_string(config.memory_budget_bits) +
          ") is below the config's own static footprint (" +
          std::to_string(static_bits) +
          " bits: shard arrays + per-user state); no stream could ever be "
          "ingested under it");
    }
  }
  return Status::OK();
}

ShardedVosSketch::ShardedVosSketch(const ShardedVosConfig& config,
                                   UserId num_users,
                                   VosEstimatorOptions estimator_options)
    : config_(config),
      router_(std::max<uint32_t>(1, config.num_shards),
              hash::DeriveSeed(config.base.seed, kRouterTag)),
      num_users_(num_users),
      estimator_(config.base.k, estimator_options) {
  // Degenerate configs fail here, loudly and with the reason — not by
  // deadlocking the first enqueue or striping rings nobody drains.
  const Status valid = ValidateConfig(config, num_users);
  VOS_CHECK(valid.ok()) << valid.ToString();
  if (config.num_shards > 1) {
    // Dense remap: shard s is sized for exactly the users it owns and
    // addresses them by dense local id (see file comment).
    dense_map_ = stream::DenseShardMap(router_, num_users);
  }
  shard_status_.resize(config.num_shards);
  accepted_ = std::vector<std::atomic<uint64_t>>(config.ingest_producers);
  dispatched_ = std::vector<std::atomic<uint64_t>>(config.ingest_producers);
  if (config.ingest_threads > 0) {
    const unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
        {config.ingest_threads, config.num_shards, 256}));
    producers_ = config_.ingest_producers;
    owner_.resize(config.num_shards);
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      owner_[s] = static_cast<uint8_t>(s % workers);
    }
    pending_.resize(producers_);
    // One SPSC ring per (producer, shard): producer p publishes shard
    // s's sub-batches to lanes_[p·S + s] and only its owner pops it, so
    // every ring has exactly one writer and one reader.
    lanes_ = std::make_unique<IngestLane[]>(
        static_cast<size_t>(producers_) * config.num_shards);
    worker_lanes_.resize(workers);
    for (unsigned p = 0; p < producers_; ++p) {
      for (uint32_t s = 0; s < config.num_shards; ++s) {
        worker_lanes_[owner_[s]].push_back(LaneIndex(p, s));
      }
    }
    worker_slots_ = std::make_unique<WorkerSlot[]>(workers);
    worker_dead_.assign(workers, 0);
    // Workers construct their own shards and ring slot arrays
    // (WorkerInit): first-touch places each shard's pages on its
    // worker's NUMA node. Construction is deterministic regardless of
    // which thread runs it, so shard state stays bit-identical to the
    // synchronous pipeline's.
    staged_shards_.resize(config.num_shards);
    init_remaining_.store(workers, std::memory_order_relaxed);
    worker_threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      worker_threads_.emplace_back(&ShardedVosSketch::WorkerLoop, this, w);
    }
    {
      MutexLock lock(&init_mu_);
      init_cv_.Wait(init_mu_, [&] {
        return init_remaining_.load(std::memory_order_acquire) == 0;
      });
    }
    shards_.reserve(config.num_shards);
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      shards_.push_back(std::move(*staged_shards_[s]));
    }
    staged_shards_.clear();
    staged_shards_.shrink_to_fit();
    {
      MutexLock lock(&init_mu_);
      start_ = true;
    }
    init_cv_.NotifyAll();
  } else {
    producers_ = 1;  // synchronous ingestion is single-threaded by contract
    shards_.reserve(config.num_shards);
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      shards_.emplace_back(ShardConfig(config, s),
                           config.num_shards > 1 ? dense_map_.shard_size(s)
                                                 : num_users);
    }
  }
  static_memory_bits_ = MemoryBits();
}

ShardedVosSketch::~ShardedVosSketch() {
  if (!async()) return;
  (void)Flush();  // drains even when degraded; status irrelevant here
  stopping_.store(true, std::memory_order_relaxed);
  WakeAllWaiters();
  for (std::thread& t : worker_threads_) t.join();
}

void ShardedVosSketch::WorkerInit(unsigned worker) {
  if (config_.pin_numa_workers) {
    // Best-effort: spread workers round-robin over the detected nodes; a
    // refused affinity call (masked cpuset, non-Linux) just runs
    // unpinned.
    (void)numa::PinCurrentThreadToNode(worker);
  }
  // First-touch: construct this worker's shards and ring slot arrays on
  // the thread (and, when pinned, the node) that will consume them.
  for (uint32_t s = 0; s < router_.num_shards(); ++s) {
    if (owner_[s] != worker) continue;
    staged_shards_[s].emplace(ShardConfig(config_, s),
                              dense_remap() ? dense_map_.shard_size(s)
                                            : num_users_);
  }
  for (size_t l : worker_lanes_[worker]) {
    lanes_[l].ring.Init(config_.queue_capacity);
  }
  if (init_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      MutexLock lock(&init_mu_);
    }
    init_cv_.NotifyAll();
  }
  // The constructor adopts the staged shards into shards_; do not touch
  // shards_ (or pop — producers cannot push before the constructor
  // returns anyway) until it says go.
  MutexLock lock(&init_mu_);
  while (!start_) init_cv_.Wait(init_mu_);
}

void ShardedVosSketch::ApplySyncElement(const stream::Element& e) {
  const uint32_t s = router_.ShardOf(e.user);
  if (degraded_.load(std::memory_order_relaxed)) {
    MutexLock lock(&mu_);
    if (!shard_status_[s].ok()) {
      // Poisoned shard: reject instead of corrupting partial state.
      dropped_elements_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  stream::Element local = e;
  if (dense_remap()) local.user = dense_map_.LocalOf(e.user);
  FaultInjector& injector = FaultInjector::Global();
  try {
    if (injector.armed() &&
        injector.Fire(FaultSite::kUpdateThrow, s, /*producer=*/0)) {
      throw std::runtime_error("injected update fault");
    }
    shards_[s].Update(local);
  } catch (const std::exception& ex) {
    {
      MutexLock lock(&mu_);
      PoisonShardLocked(
          s, Status::Internal(ShardTag(s) + " update failed: " + ex.what()));
    }
    dropped_elements_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedVosSketch::Update(const stream::Element& e, unsigned producer) {
  // Validate against the CONFIGURED lane count in both modes, so a
  // miswired lane id fails in the deterministic sync configuration tests
  // run with, not only once the async pipeline is enabled. (Sync mode
  // clamps the live lane count to 1 but stays a faithful stand-in for a
  // multi-lane caller: lane ids are simply applied inline, in order.)
  VOS_CHECK(producer < config_.ingest_producers)
      << "producer" << producer << "of" << config_.ingest_producers;
  // Single-writer counter: a plain load+store compiles to one increment,
  // where a fetch_add would put an atomic RMW on the per-element path.
  accepted_[producer].store(
      accepted_[producer].load(std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  if (!async()) {
    ApplySyncElement(e);
    return;
  }
  std::vector<stream::Element>& pending = pending_[producer];
  pending.push_back(e);
  if (pending.size() >= config_.batch_size) FlushPendingBuffer(producer);
}

void ShardedVosSketch::UpdateBatch(const stream::Element* elements,
                                   size_t count, unsigned producer) {
  if (count == 0) return;
  VOS_CHECK(producer < config_.ingest_producers)
      << "producer" << producer << "of" << config_.ingest_producers;
  accepted_[producer].store(
      accepted_[producer].load(std::memory_order_relaxed) + count,
      std::memory_order_relaxed);
  if (!async()) {
    for (size_t i = 0; i < count; ++i) ApplySyncElement(elements[i]);
    return;
  }
  // Keep the lane's per-shard order: anything buffered by Update() on
  // this lane precedes this batch in the lane's stream order.
  FlushPendingBuffer(producer);
  std::vector<std::vector<stream::Element>> per_shard(router_.num_shards());
  RoutePartition(elements, count, &per_shard);
  for (uint32_t s = 0; s < router_.num_shards(); ++s) {
    if (per_shard[s].empty()) continue;
    EnqueueSubBatch(producer, s, std::move(per_shard[s]));
  }
  dispatched_[producer].store(
      dispatched_[producer].load(std::memory_order_relaxed) + count,
      std::memory_order_relaxed);
}

void ShardedVosSketch::RoutePartition(
    const stream::Element* elements, size_t count,
    std::vector<std::vector<stream::Element>>* per_shard) const {
  // The handoff to shard-local coordinates: after this, each sub-batch
  // carries dense local ids and belongs wholly to one shard, so workers
  // apply it verbatim.
  if (dense_remap()) {
    dense_map_.Partition(elements, count, per_shard);
  } else {
    router_.Partition(elements, count, per_shard);
  }
}

void ShardedVosSketch::FlushPendingBuffer(unsigned producer) {
  std::vector<stream::Element>& pending = pending_[producer];
  if (pending.empty()) return;
  const size_t count = pending.size();
  std::vector<std::vector<stream::Element>> per_shard(router_.num_shards());
  RoutePartition(pending.data(), count, &per_shard);
  pending.clear();
  for (uint32_t s = 0; s < router_.num_shards(); ++s) {
    if (per_shard[s].empty()) continue;
    EnqueueSubBatch(producer, s, std::move(per_shard[s]));
  }
  // The elements have left the lane's buffer (ringed or dropped); until
  // here HasPendingIngest kept reporting them as buffered — the safe
  // transient for a poller, since the ring counters take over below.
  dispatched_[producer].store(
      dispatched_[producer].load(std::memory_order_relaxed) + count,
      std::memory_order_relaxed);
}

void ShardedVosSketch::PoisonShardLocked(uint32_t shard, Status status) {
  if (shard_status_[shard].ok()) shard_status_[shard] = std::move(status);
  degraded_.store(true, std::memory_order_relaxed);
}

void ShardedVosSketch::WakeAllWaiters() {
  if (worker_slots_ != nullptr) {
    for (size_t w = 0; w < worker_threads_.size(); ++w) {
      {
        MutexLock lock(&worker_slots_[w].mu);
      }
      worker_slots_[w].cv.NotifyAll();
    }
  }
  if (lanes_ != nullptr) {
    const size_t total = static_cast<size_t>(producers_) * router_.num_shards();
    for (size_t l = 0; l < total; ++l) {
      {
        MutexLock lock(&lanes_[l].park_mu);
      }
      lanes_[l].park_cv.NotifyAll();
    }
  }
  {
    MutexLock lock(&flush_mu_);
  }
  flush_cv_.NotifyAll();
}

bool ShardedVosSketch::ShardPoisoned(uint32_t shard) const {
  MutexLock lock(&mu_);
  return !shard_status_[shard].ok();
}

void ShardedVosSketch::ReclaimDeadLane(unsigned producer, uint32_t shard) {
  IngestLane& lane = lanes_[LaneIndex(producer, shard)];
  bool reclaimed = false;
  {
    MutexLock lock(&mu_);
    if (shard_status_[shard].ok() || worker_dead_[owner_[shard]] == 0) {
      // The owner is alive: it discards poisoned backlog on pop itself.
      return;
    }
    // The owner is dead and did its final drain under mu_ before we got
    // here (or we beat it, in which case its drain will see an empty
    // ring) — either way exactly one consumer touches the ring at a
    // time.
    std::vector<stream::Element> discard;
    while (lane.ring.TryPop(&discard)) {
      dropped_elements_.fetch_add(discard.size(), std::memory_order_relaxed);
      queued_bytes_.fetch_sub(discard.size() * sizeof(stream::Element),
                              std::memory_order_relaxed);
      lane.completed.fetch_add(1, std::memory_order_release);
      reclaimed = true;
    }
  }
  if (reclaimed) WakeAllWaiters();
}

bool ShardedVosSketch::PushWithBackPressure(
    IngestLane& lane, uint32_t shard, std::vector<stream::Element>& batch) {
  // Bounded spin: the common full-ring stall is the worker being
  // mid-batch for microseconds. Yield each round — with fewer cores than
  // threads the worker needs this core to make room. The budget is this
  // lane's adaptive one (see kSpinBudget*).
  const uint32_t spin_budget =
      lane.push_spin_budget.load(std::memory_order_relaxed);
  for (uint32_t spin = 0; spin < spin_budget; ++spin) {
    std::this_thread::yield();
    if (lane.ring.TryPush(batch)) {
      lane.push_spin_budget.store(GrownSpinBudget(spin_budget),
                                  std::memory_order_relaxed);
      lane.push_spin_saves.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (degraded_.load(std::memory_order_relaxed) && ShardPoisoned(shard)) {
      return false;
    }
  }
  lane.push_spin_budget.store(ShrunkSpinBudget(spin_budget),
                              std::memory_order_relaxed);
  lane.push_parks.fetch_add(1, std::memory_order_relaxed);
  // Park on the lane's condvar. Flag → fence → recheck pairs with the
  // consumer's pop → fence → flag load: either our recheck sees the
  // room, or the consumer sees the flag and notifies under park_mu.
  const bool use_deadline = config_.enqueue_timeout_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.enqueue_timeout_ms);
  lane.producer_parked.store(1, std::memory_order_relaxed);
  struct ClearFlag {
    std::atomic<uint32_t>& flag;
    ~ClearFlag() { flag.store(0, std::memory_order_relaxed); }
  } clear_on_exit{lane.producer_parked};
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Explicit Lock/Unlock (not MutexLock): the loop drops park_mu around
  // ShardPoisoned/mu_ so park mutexes are never held while taking mu_,
  // and the analysis checks every exit path releases exactly once.
  lane.park_mu.Lock();
  for (;;) {
    if (lane.ring.TryPush(batch)) {
      lane.park_mu.Unlock();
      return true;
    }
    if (degraded_.load(std::memory_order_relaxed)) {
      lane.park_mu.Unlock();
      if (ShardPoisoned(shard)) return false;
      lane.park_mu.Lock();
      // Degraded for someone else's sake; re-test the ring, keep waiting.
      continue;
    }
    if (use_deadline) {
      if (lane.park_cv.WaitUntil(lane.park_mu, deadline) ==
          std::cv_status::timeout) {
        if (lane.ring.TryPush(batch)) {  // room at the wire
          lane.park_mu.Unlock();
          return true;
        }
        // The lane is starved: its worker made no room within the
        // deadline. Poison the shard (sticky) so the failure surfaces
        // at the next Flush instead of silently losing only this batch.
        lane.park_mu.Unlock();  // park mutexes never held while taking mu_
        {
          MutexLock cold(&mu_);
          PoisonShardLocked(
              shard, Status::DeadlineExceeded(
                         ShardTag(shard) + " enqueue timed out after " +
                         std::to_string(config_.enqueue_timeout_ms) +
                         " ms (lane starved)"));
        }
        WakeAllWaiters();
        return false;
      }
    } else {
      lane.park_cv.Wait(lane.park_mu);
    }
  }
}

void ShardedVosSketch::EnqueueSubBatch(unsigned producer, uint32_t shard,
                                       std::vector<stream::Element> batch) {
  IngestLane& lane = lanes_[LaneIndex(producer, shard)];
  const size_t count = batch.size();
  const size_t batch_bytes = count * sizeof(stream::Element);
  // Degraded cold path: reject against a poisoned shard instead of
  // queueing work nobody will ever apply. One relaxed load when healthy.
  if (degraded_.load(std::memory_order_relaxed) && ShardPoisoned(shard)) {
    dropped_elements_.fetch_add(count, std::memory_order_relaxed);
    return;
  }
  // Charge the backlog before pushing so concurrent lanes cannot
  // collectively overshoot the ceiling; the charge is released after the
  // batch is applied, discarded, or rejected right here.
  const size_t prev =
      queued_bytes_.fetch_add(batch_bytes, std::memory_order_relaxed);
  if (config_.memory_budget_bits > 0 &&
      (static_memory_bits_ / 8 + prev + batch_bytes) * 8 >
          config_.memory_budget_bits) {
    queued_bytes_.fetch_sub(batch_bytes, std::memory_order_relaxed);
    {
      MutexLock lock(&mu_);
      if (budget_status_.ok()) {
        budget_status_ = Status::ResourceExhausted(
            "ingest backlog would exceed memory_budget_bits (" +
            std::to_string(config_.memory_budget_bits) + "); batch dropped");
      }
      degraded_.store(true, std::memory_order_relaxed);
    }
    dropped_elements_.fetch_add(count, std::memory_order_relaxed);
    WakeAllWaiters();
    return;
  }
  if (!lane.ring.TryPush(batch)) {
    if (!PushWithBackPressure(lane, shard, batch)) {
      // Not pushed: the shard was (or just got) poisoned; drop.
      queued_bytes_.fetch_sub(batch_bytes, std::memory_order_relaxed);
      dropped_elements_.fetch_add(count, std::memory_order_relaxed);
      return;
    }
  }
  // Published. The seq_cst fence pairs with both consumer-side fences:
  // either the owner (parked, or draining itself to death) observes this
  // push, or we observe its parked/degraded flag here and act.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  WorkerSlot& slot = worker_slots_[owner_[shard]];
  if (slot.parked.load(std::memory_order_relaxed) != 0) {
    {
      MutexLock lock(&slot.mu);
    }
    slot.cv.NotifyOne();
  }
  if (degraded_.load(std::memory_order_relaxed)) {
    // The owner may have died between our health check and the push and
    // missed this batch in its final drain — reclaim our own lane. (The
    // fence pairing makes "drain missed it" imply "we see degraded_".)
    ReclaimDeadLane(producer, shard);
  }
}

bool ShardedVosSketch::PopNextBatch(unsigned worker, size_t* cursor,
                                    size_t* lane_index,
                                    std::vector<stream::Element>* batch) {
  const std::vector<size_t>& my_lanes = worker_lanes_[worker];
  WorkerSlot& slot = worker_slots_[worker];
  uint32_t idle_budget = slot.idle_spin_budget.load(std::memory_order_relaxed);
  uint32_t idle_rounds = 0;
  for (;;) {
    // Round-robin over the worker's lanes so no producer's ring is
    // starved while another lane stays hot.
    for (size_t i = 0; i < my_lanes.size(); ++i) {
      const size_t candidate = my_lanes[(*cursor + i) % my_lanes.size()];
      IngestLane& lane = lanes_[candidate];
      if (lane.ring.TryPop(batch)) {
        if (idle_rounds > 0) {
          // Idle spinning beat a park: spend a little more next stall.
          idle_budget = GrownSpinBudget(idle_budget);
          slot.idle_spin_budget.store(idle_budget,
                                      std::memory_order_relaxed);
          slot.idle_spin_saves.fetch_add(1, std::memory_order_relaxed);
        }
        *cursor = (*cursor + i + 1) % my_lanes.size();
        *lane_index = candidate;
        // Room just opened: unpark the lane's producer NOW, before the
        // batch is applied — with capacity-1 rings the producer would
        // otherwise idle for a whole apply.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (lane.producer_parked.load(std::memory_order_relaxed) != 0) {
          {
            MutexLock lock(&lane.park_mu);
          }
          lane.park_cv.NotifyAll();
        }
        return true;
      }
    }
    if (stopping_.load(std::memory_order_relaxed)) return false;
    if (++idle_rounds <= idle_budget) {
      std::this_thread::yield();
      continue;
    }
    idle_rounds = 0;
    idle_budget = ShrunkSpinBudget(idle_budget);
    slot.idle_spin_budget.store(idle_budget, std::memory_order_relaxed);
    slot.idle_parks.fetch_add(1, std::memory_order_relaxed);
    // Park: publish the flag, then re-check under slot.mu — a producer
    // that pushed before seeing the flag is caught by the predicate's
    // rescan; one that sees it notifies under slot.mu. No lost wakeups.
    slot.parked.store(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    {
      MutexLock lock(&slot.mu);
      slot.cv.Wait(slot.mu, [&] {
        if (stopping_.load(std::memory_order_relaxed)) return true;
        for (size_t l : my_lanes) {
          if (!lanes_[l].ring.Empty()) return true;
        }
        return false;
      });
    }
    slot.parked.store(0, std::memory_order_relaxed);
  }
}

void ShardedVosSketch::CompleteLaneBatch(IngestLane& lane) {
  lane.completed.fetch_add(1, std::memory_order_release);
  // Fence-paired with WaitLanesDrained's waiter registration: either the
  // flusher's predicate sees this epoch, or we see its waiter count and
  // pay for the notify. Idle barriers cost one relaxed load per batch.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (flush_waiters_.load(std::memory_order_relaxed) != 0) {
    {
      MutexLock lock(&flush_mu_);
    }
    flush_cv_.NotifyAll();
  }
}

void ShardedVosSketch::WorkerLoop(unsigned worker) {
  WorkerInit(worker);
  FaultInjector& injector = FaultInjector::Global();
  size_t cursor = 0;
  size_t lane_index = 0;
  std::vector<stream::Element> batch;
  while (PopNextBatch(worker, &cursor, &lane_index, &batch)) {
    IngestLane& lane = lanes_[lane_index];
    const uint32_t shard =
        static_cast<uint32_t>(lane_index % router_.num_shards());
    const unsigned producer =
        static_cast<unsigned>(lane_index / router_.num_shards());
    const size_t batch_bytes = batch.size() * sizeof(stream::Element);
    // Poisoned shard: its backlog is discarded on pop, without the stall
    // probe, so degraded flushes terminate promptly (the pre-ring design
    // discarded the backlog at poison time; on-pop discard is the SPSC
    // equivalent — only the consumer may remove values).
    if (degraded_.load(std::memory_order_relaxed) && ShardPoisoned(shard)) {
      dropped_elements_.fetch_add(batch.size(), std::memory_order_relaxed);
      queued_bytes_.fetch_sub(batch_bytes, std::memory_order_relaxed);
      batch.clear();
      CompleteLaneBatch(lane);
      continue;
    }
    if (injector.armed()) {
      const uint32_t stall = injector.StallMs(shard, producer);
      if (stall > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(stall));
      }
      if (injector.Fire(FaultSite::kWorkerKill, shard, producer)) {
        // The worker "crashes" mid-batch: this batch and every queued
        // batch of its shards are lost, its shards are poisoned, and
        // the thread exits. Counters are settled so Flush barriers
        // terminate (degraded) instead of hanging on a dead thread.
        dropped_elements_.fetch_add(batch.size(), std::memory_order_relaxed);
        queued_bytes_.fetch_sub(batch_bytes, std::memory_order_relaxed);
        lane.completed.fetch_add(1, std::memory_order_release);
        {
          MutexLock lock(&mu_);
          worker_dead_[worker] = 1;
          for (uint32_t s = 0; s < router_.num_shards(); ++s) {
            if (owner_[s] != worker) continue;
            PoisonShardLocked(
                s, Status::Internal(
                       ShardTag(s) +
                       " worker killed mid-batch (fault injection); queued "
                       "batches lost"));
          }
          // Publish the poison BEFORE the final drains (fence pairs with
          // EnqueueSubBatch): a producer whose push these drains miss is
          // guaranteed to observe degraded_ and reclaim its own lane.
          // Draining under mu_ keeps the single-consumer invariant —
          // reclaims serialize on mu_ and this thread never pops again.
          std::atomic_thread_fence(std::memory_order_seq_cst);
          for (size_t l : worker_lanes_[worker]) {
            IngestLane& dead = lanes_[l];
            std::vector<stream::Element> discard;
            while (dead.ring.TryPop(&discard)) {
              dropped_elements_.fetch_add(discard.size(),
                                          std::memory_order_relaxed);
              queued_bytes_.fetch_sub(
                  discard.size() * sizeof(stream::Element),
                  std::memory_order_relaxed);
              dead.completed.fetch_add(1, std::memory_order_release);
            }
          }
        }
        WakeAllWaiters();
        return;
      }
    }
    // Every element of the sub-batch belongs to this lane's shard and is
    // already in shard-local coordinates — apply verbatim, no scanning.
    // Exceptions are caught at this worker boundary (the library itself
    // never throws; a throw models a worker crash — fault injection or a
    // genuinely broken Update) and poison the shard instead of
    // propagating into std::terminate.
    try {
      VosSketch& sketch = shards_[shard];
      for (const stream::Element& e : batch) {
        if (injector.armed() &&
            injector.Fire(FaultSite::kUpdateThrow, shard, producer)) {
          throw std::runtime_error("injected update fault");
        }
        sketch.Update(e);
      }
    } catch (const std::exception& ex) {
      {
        MutexLock lock(&mu_);
        PoisonShardLocked(shard, Status::Internal(ShardTag(shard) +
                                                  " update failed: " +
                                                  ex.what()));
      }
      // The batch is partially applied; count it all as affected — the
      // shard's state is suspect either way and a checkpoint will refuse
      // to cover it.
      dropped_elements_.fetch_add(batch.size(), std::memory_order_relaxed);
      WakeAllWaiters();
    }
    batch.clear();
    batch.shrink_to_fit();  // release before signalling completion
    queued_bytes_.fetch_sub(batch_bytes, std::memory_order_relaxed);
    CompleteLaneBatch(lane);
  }
}

Status ShardedVosSketch::WaitLanesDrained(size_t first, size_t last,
                                          bool use_timeout,
                                          const char* what) {
  const auto drained = [&] {
    for (size_t l = first; l < last; ++l) {
      if (lanes_[l].completed.load(std::memory_order_acquire) !=
          lanes_[l].ring.pushed()) {
        return false;
      }
    }
    return true;
  };
  if (drained()) return Status::OK();
  // Register as a waiter BEFORE re-checking (fence pairs with
  // CompleteLaneBatch): either we see the final epoch, or the completing
  // worker sees our registration and notifies under flush_mu_.
  flush_waiters_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Status result = Status::OK();
  {
    MutexLock lock(&flush_mu_);
    if (use_timeout && config_.flush_timeout_ms > 0) {
      if (!flush_cv_.WaitFor(
              flush_mu_, std::chrono::milliseconds(config_.flush_timeout_ms),
              drained)) {
        uint64_t pending = 0;
        for (size_t l = first; l < last; ++l) {
          pending += lanes_[l].ring.pushed() -
                     lanes_[l].completed.load(std::memory_order_acquire);
        }
        result = Status::DeadlineExceeded(
            std::string(what) + " timed out after " +
            std::to_string(config_.flush_timeout_ms) + " ms with " +
            std::to_string(pending) + " sub-batches unapplied");
      }
    } else {
      flush_cv_.Wait(flush_mu_, drained);
    }
  }
  flush_waiters_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

Status ShardedVosSketch::Flush() {
  if (!async()) {
    MutexLock lock(&mu_);
    return IngestStatusLocked();
  }
  for (unsigned p = 0; p < producers_; ++p) FlushPendingBuffer(p);
  const Status drained = WaitLanesDrained(
      0, static_cast<size_t>(producers_) * router_.num_shards(),
      /*use_timeout=*/true, "Flush");
  if (!drained.ok()) return drained;
  return IngestStatus();
}

Status ShardedVosSketch::FlushProducer(unsigned producer) {
  VOS_CHECK(producer < config_.ingest_producers)
      << "producer" << producer << "of" << config_.ingest_producers;
  if (!async()) {
    MutexLock lock(&mu_);
    return IngestStatusLocked();
  }
  FlushPendingBuffer(producer);
  const std::string what = "FlushProducer(" + std::to_string(producer) + ")";
  const size_t first = LaneIndex(producer, 0);
  const Status drained = WaitLanesDrained(first, first + router_.num_shards(),
                                          /*use_timeout=*/true, what.c_str());
  if (!drained.ok()) return drained;
  return IngestStatus();
}

Status ShardedVosSketch::IngestStatusLocked() const {
  for (const Status& status : shard_status_) {
    if (!status.ok()) return status;
  }
  return budget_status_;
}

Status ShardedVosSketch::IngestStatus() const {
  MutexLock lock(&mu_);
  return IngestStatusLocked();
}

uint64_t ShardedVosSketch::dropped_elements() const {
  return dropped_elements_.load(std::memory_order_relaxed);
}

ShardedVosSketch::SpinStats ShardedVosSketch::IngestSpinStats() const {
  SpinStats stats;
  if (!async()) return stats;  // no lanes, no budgets
  const size_t lane_count =
      static_cast<size_t>(producers_) * router_.num_shards();
  for (size_t l = 0; l < lane_count; ++l) {
    stats.push_parks += lanes_[l].push_parks.load(std::memory_order_relaxed);
    stats.push_spin_saves +=
        lanes_[l].push_spin_saves.load(std::memory_order_relaxed);
    const uint32_t budget =
        lanes_[l].push_spin_budget.load(std::memory_order_relaxed);
    stats.min_push_spin_budget =
        l == 0 ? budget : std::min(stats.min_push_spin_budget, budget);
    stats.max_push_spin_budget = std::max(stats.max_push_spin_budget, budget);
  }
  for (size_t w = 0; w < worker_threads_.size(); ++w) {
    stats.idle_parks +=
        worker_slots_[w].idle_parks.load(std::memory_order_relaxed);
    stats.idle_spin_saves +=
        worker_slots_[w].idle_spin_saves.load(std::memory_order_relaxed);
    const uint32_t budget =
        worker_slots_[w].idle_spin_budget.load(std::memory_order_relaxed);
    stats.min_idle_spin_budget =
        w == 0 ? budget : std::min(stats.min_idle_spin_budget, budget);
    stats.max_idle_spin_budget = std::max(stats.max_idle_spin_budget, budget);
  }
  return stats;
}

Status ShardedVosSketch::Checkpoint(const std::string& path) {
  const Status flushed = Flush();
  if (!flushed.ok()) {
    // A checkpoint must only ever cover state every accepted element
    // reached; a degraded pipeline has dropped data, so its watermarks
    // would lie.
    return Status::FailedPrecondition(
        "cannot checkpoint a degraded pipeline: " + flushed.ToString());
  }
  return ShardedCheckpointIo::Save(*this, path);
}

Status ShardedVosSketch::Restore(const std::string& path) {
  if (async()) {
    // Quiesce and DISCARD: whatever is buffered or queued belongs to the
    // state being thrown away; the restored watermarks say exactly where
    // each lane resumes.
    for (unsigned p = 0; p < producers_; ++p) {
      if (!pending_[p].empty()) {
        dispatched_[p].store(
            dispatched_[p].load(std::memory_order_relaxed) +
                pending_[p].size(),
            std::memory_order_relaxed);
        pending_[p].clear();
      }
    }
    // Dead workers' rings were drained at kill time (or reclaimed by
    // their producers); live workers drain or discard the rest, so the
    // barrier terminates even degraded.
    const Status drained = WaitLanesDrained(
        0, static_cast<size_t>(producers_) * router_.num_shards(),
        /*use_timeout=*/false, "Restore");
    (void)drained;  // no timeout in use: OK by construction
  }
  return ShardedCheckpointIo::Restore(this, path);
}

bool ShardedVosSketch::HasPendingIngest() const {
  if (!async()) return false;
  for (unsigned p = 0; p < producers_; ++p) {
    if (accepted_[p].load(std::memory_order_relaxed) !=
        dispatched_[p].load(std::memory_order_relaxed)) {
      return true;
    }
  }
  const size_t total = static_cast<size_t>(producers_) * router_.num_shards();
  for (size_t l = 0; l < total; ++l) {
    if (lanes_[l].completed.load(std::memory_order_acquire) !=
        lanes_[l].ring.pushed()) {
      return true;
    }
  }
  return false;
}

PairEstimate ShardedVosSketch::EstimatePair(UserId u, UserId v) const {
  VOS_DCHECK(!HasPendingIngest())
      << "EstimatePair on a non-quiesced pipeline; call Flush() first";
  const VosSketch& sketch_u = shards_[router_.ShardOf(u)];
  const VosSketch& sketch_v = shards_[router_.ShardOf(v)];
  const UserId lu = LocalIdOf(u);
  const UserId lv = LocalIdOf(v);
  const uint32_t k = config_.base.k;
  const size_t words = DigestMatrix::WordsPerRow(k);
  std::vector<uint64_t> row_u(words), row_v(words);
  DigestMatrix::ExtractRow(sketch_u, lu, row_u.data());
  DigestMatrix::ExtractRow(sketch_v, lv, row_v.data());
  const size_t d = XorPopcount(row_u.data(), row_v.data(), words);
  const double alpha = static_cast<double>(d) / k;
  // Each digest carries its own shard's contamination, so the §IV
  // (1−2β)² factor generalizes to (1−2β_u)(1−2β_v): pass the mean of the
  // two log-beta terms where the estimator doubles it. Same-shard pairs
  // reduce to the standalone single-β estimate bit-for-bit.
  const double log_beta_term =
      0.5 * (estimator_.LogBetaTerm(sketch_u.beta()) +
             estimator_.LogBetaTerm(sketch_v.beta()));
  return estimator_.EstimateFromLogTerms(sketch_u.Cardinality(lu),
                                         sketch_v.Cardinality(lv),
                                         estimator_.LogAlphaTerm(alpha),
                                         log_beta_term);
}

size_t ShardedVosSketch::MemoryBits() const {
  // Arrays plus every per-user structure this facade allocates: honest
  // accounting for equal-memory comparisons (see header comment). The
  // dense remap keeps the per-user portion independent of num_shards.
  size_t total = dense_map_.MemoryBits();
  for (const VosSketch& shard : shards_) {
    total += shard.MemoryBits() + shard.PerUserStateBits();
  }
  return total;
}

}  // namespace vos::core

#include "core/sharded_vos_sketch.h"

#include <algorithm>

#include "common/popcount.h"
#include "core/digest_matrix.h"
#include "hashing/seeds.h"

namespace vos::core {
namespace {

/// Router and per-shard f seeds branch off the master seed under distinct
/// tags so they are unrelated to ψ's and the base f family's sub-seeds.
constexpr uint64_t kRouterTag = 0x40a7e0;
constexpr uint64_t kShardFTag = 0x5a4d00;

}  // namespace

VosConfig ShardedVosSketch::ShardConfig(const ShardedVosConfig& config,
                                        uint32_t shard) {
  VOS_CHECK(shard < config.num_shards)
      << "shard" << shard << "of" << config.num_shards;
  VosConfig shard_config = config.base;
  if (config.num_shards > 1) {
    shard_config.m =
        std::max<uint64_t>(1, config.base.m / config.num_shards);
    shard_config.f_seed =
        hash::DeriveSeed2(config.base.seed, kShardFTag, shard);
  }
  return shard_config;
}

ShardedVosSketch::ShardedVosSketch(const ShardedVosConfig& config,
                                   UserId num_users,
                                   VosEstimatorOptions estimator_options)
    : config_(config),
      router_(config.num_shards,
              hash::DeriveSeed(config.base.seed, kRouterTag)),
      num_users_(num_users),
      estimator_(config.base.k, estimator_options) {
  VOS_CHECK(config.num_shards >= 1) << "need at least one shard";
  // A zero capacity would make the back-pressure wait unsatisfiable
  // (permanent producer deadlock); a zero batch size would enqueue
  // per-element batches. Clamp both to sane minima.
  config_.queue_capacity = std::max<size_t>(1, config_.queue_capacity);
  config_.batch_size = std::max<size_t>(1, config_.batch_size);
  config_.ingest_producers = std::max<unsigned>(1, config_.ingest_producers);
  shards_.reserve(config.num_shards);
  if (config.num_shards > 1) {
    // Dense remap: shard s is sized for exactly the users it owns and
    // addresses them by dense local id (see file comment).
    dense_map_ = stream::DenseShardMap(router_, num_users);
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      shards_.emplace_back(ShardConfig(config, s), dense_map_.shard_size(s));
    }
  } else {
    shards_.emplace_back(ShardConfig(config, 0), num_users);
  }
  if (config.ingest_threads > 0) {
    const unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
        {config.ingest_threads, config.num_shards, 256}));
    producers_ = config_.ingest_producers;
    owner_.resize(config.num_shards);
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      owner_[s] = static_cast<uint8_t>(s % workers);
    }
    pending_.resize(producers_);
    pending_size_ = std::vector<std::atomic<size_t>>(producers_);
    // One bounded queue per (producer, shard): producer p publishes shard
    // s's sub-batches to lanes_[p·S + s] and only its owner drains it, so
    // no worker ever touches an element it does not apply.
    lanes_.resize(static_cast<size_t>(producers_) * config.num_shards);
    worker_lanes_.resize(workers);
    for (unsigned p = 0; p < producers_; ++p) {
      for (uint32_t s = 0; s < config.num_shards; ++s) {
        worker_lanes_[owner_[s]].push_back(LaneIndex(p, s));
      }
    }
    worker_threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      worker_threads_.emplace_back(&ShardedVosSketch::WorkerLoop, this, w);
    }
  } else {
    producers_ = 1;  // synchronous ingestion is single-threaded by contract
  }
}

ShardedVosSketch::~ShardedVosSketch() {
  if (!async()) return;
  Flush();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : worker_threads_) t.join();
}

void ShardedVosSketch::Update(const stream::Element& e, unsigned producer) {
  // Validate against the CONFIGURED lane count in both modes, so a
  // miswired lane id fails in the deterministic sync configuration tests
  // run with, not only once the async pipeline is enabled. (Sync mode
  // clamps the live lane count to 1 but stays a faithful stand-in for a
  // multi-lane caller: lane ids are simply applied inline, in order.)
  VOS_CHECK(producer < config_.ingest_producers)
      << "producer" << producer << "of" << config_.ingest_producers;
  if (!async()) {
    const uint32_t s = router_.ShardOf(e.user);
    if (!dense_remap()) {
      shards_[s].Update(e);
    } else {
      stream::Element local = e;
      local.user = dense_map_.LocalOf(e.user);
      shards_[s].Update(local);
    }
    return;
  }
  std::vector<stream::Element>& pending = pending_[producer];
  pending.push_back(e);
  pending_size_[producer].store(pending.size(), std::memory_order_relaxed);
  if (pending.size() >= config_.batch_size) FlushPendingBuffer(producer);
}

void ShardedVosSketch::UpdateBatch(const stream::Element* elements,
                                   size_t count, unsigned producer) {
  if (count == 0) return;
  VOS_CHECK(producer < config_.ingest_producers)
      << "producer" << producer << "of" << config_.ingest_producers;
  if (!async()) {
    for (size_t i = 0; i < count; ++i) Update(elements[i]);
    return;
  }
  // Keep the lane's per-shard order: anything buffered by Update() on
  // this lane precedes this batch in the lane's stream order.
  FlushPendingBuffer(producer);
  std::vector<std::vector<stream::Element>> per_shard(router_.num_shards());
  RoutePartition(elements, count, &per_shard);
  for (uint32_t s = 0; s < router_.num_shards(); ++s) {
    if (per_shard[s].empty()) continue;
    EnqueueSubBatch(producer, s, std::move(per_shard[s]));
  }
}

void ShardedVosSketch::RoutePartition(
    const stream::Element* elements, size_t count,
    std::vector<std::vector<stream::Element>>* per_shard) const {
  // The handoff to shard-local coordinates: after this, each sub-batch
  // carries dense local ids and belongs wholly to one shard, so workers
  // apply it verbatim.
  if (dense_remap()) {
    dense_map_.Partition(elements, count, per_shard);
  } else {
    router_.Partition(elements, count, per_shard);
  }
}

void ShardedVosSketch::FlushPendingBuffer(unsigned producer) {
  std::vector<stream::Element>& pending = pending_[producer];
  if (pending.empty()) return;
  std::vector<std::vector<stream::Element>> per_shard(router_.num_shards());
  RoutePartition(pending.data(), pending.size(), &per_shard);
  pending.clear();
  // The elements re-appear in the lane enqueued counters below; a
  // cross-thread HasPendingIngest between this store and those enqueues
  // can transiently answer false, which the header's contract allows (a
  // false is only a stable "quiesced" once producers have stopped —
  // this producer is mid-call). Calls from this lane's own thread after
  // the buffer flush always see the enqueued counters.
  pending_size_[producer].store(0, std::memory_order_relaxed);
  for (uint32_t s = 0; s < router_.num_shards(); ++s) {
    if (per_shard[s].empty()) continue;
    EnqueueSubBatch(producer, s, std::move(per_shard[s]));
  }
}

void ShardedVosSketch::EnqueueSubBatch(unsigned producer, uint32_t shard,
                                       std::vector<stream::Element> batch) {
  const size_t lane = LaneIndex(producer, shard);
  std::unique_lock<std::mutex> lock(mu_);
  // Back-pressure on exactly the full queue: only this producer blocks,
  // and only until shard `shard`'s worker drains a sub-batch — other
  // lanes keep flowing.
  cv_.wait(lock,
           [&] { return lanes_[lane].batches.size() < config_.queue_capacity; });
  lanes_[lane].batches.push_back(std::move(batch));
  ++lanes_[lane].enqueued;
  lock.unlock();
  cv_.notify_all();
}

void ShardedVosSketch::WorkerLoop(unsigned worker) {
  const std::vector<size_t>& lanes = worker_lanes_[worker];
  // Round-robin cursor over the worker's lanes so no producer's queue is
  // starved while another lane stays hot.
  size_t cursor = 0;
  for (;;) {
    std::vector<stream::Element> batch;
    size_t lane = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        if (stopping_) return true;
        for (size_t l : lanes) {
          if (!lanes_[l].batches.empty()) return true;
        }
        return false;
      });
      bool found = false;
      for (size_t i = 0; i < lanes.size(); ++i) {
        const size_t candidate = lanes[(cursor + i) % lanes.size()];
        if (!lanes_[candidate].batches.empty()) {
          lane = candidate;
          cursor = (cursor + i + 1) % lanes.size();
          found = true;
          break;
        }
      }
      if (!found) return;  // stopping_ and every owned lane drained
      batch = std::move(lanes_[lane].batches.front());
      lanes_[lane].batches.pop_front();
    }
    cv_.notify_all();  // queue shrank: unblock a back-pressured producer
    // Every element of the sub-batch belongs to this lane's shard and is
    // already in shard-local coordinates — apply verbatim, no scanning.
    VosSketch& sketch = shards_[lane % router_.num_shards()];
    for (const stream::Element& e : batch) sketch.Update(e);
    batch.clear();
    batch.shrink_to_fit();  // release before signalling completion
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++lanes_[lane].completed;
    }
    cv_.notify_all();  // Flush() may be waiting on completion counts
  }
}

void ShardedVosSketch::Flush() {
  if (!async()) return;
  for (unsigned p = 0; p < producers_; ++p) FlushPendingBuffer(p);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    for (const LaneQueue& lane : lanes_) {
      if (lane.completed != lane.enqueued) return false;
    }
    return true;
  });
}

void ShardedVosSketch::FlushProducer(unsigned producer) {
  VOS_CHECK(producer < config_.ingest_producers)
      << "producer" << producer << "of" << config_.ingest_producers;
  if (!async()) return;
  FlushPendingBuffer(producer);
  const size_t first = LaneIndex(producer, 0);
  const size_t last = first + router_.num_shards();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    for (size_t l = first; l < last; ++l) {
      if (lanes_[l].completed != lanes_[l].enqueued) return false;
    }
    return true;
  });
}

bool ShardedVosSketch::HasPendingIngest() const {
  if (!async()) return false;
  for (const std::atomic<size_t>& size : pending_size_) {
    if (size.load(std::memory_order_relaxed) > 0) return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const LaneQueue& lane : lanes_) {
    if (lane.completed != lane.enqueued) return true;
  }
  return false;
}

PairEstimate ShardedVosSketch::EstimatePair(UserId u, UserId v) const {
  VOS_DCHECK(!HasPendingIngest())
      << "EstimatePair on a non-quiesced pipeline; call Flush() first";
  const VosSketch& sketch_u = shards_[router_.ShardOf(u)];
  const VosSketch& sketch_v = shards_[router_.ShardOf(v)];
  const UserId lu = LocalIdOf(u);
  const UserId lv = LocalIdOf(v);
  const uint32_t k = config_.base.k;
  const size_t words = DigestMatrix::WordsPerRow(k);
  std::vector<uint64_t> row_u(words), row_v(words);
  DigestMatrix::ExtractRow(sketch_u, lu, row_u.data());
  DigestMatrix::ExtractRow(sketch_v, lv, row_v.data());
  const size_t d = XorPopcount(row_u.data(), row_v.data(), words);
  const double alpha = static_cast<double>(d) / k;
  // Each digest carries its own shard's contamination, so the §IV
  // (1−2β)² factor generalizes to (1−2β_u)(1−2β_v): pass the mean of the
  // two log-beta terms where the estimator doubles it. Same-shard pairs
  // reduce to the standalone single-β estimate bit-for-bit.
  const double log_beta_term =
      0.5 * (estimator_.LogBetaTerm(sketch_u.beta()) +
             estimator_.LogBetaTerm(sketch_v.beta()));
  return estimator_.EstimateFromLogTerms(sketch_u.Cardinality(lu),
                                         sketch_v.Cardinality(lv),
                                         estimator_.LogAlphaTerm(alpha),
                                         log_beta_term);
}

size_t ShardedVosSketch::MemoryBits() const {
  // Arrays plus every per-user structure this facade allocates: honest
  // accounting for equal-memory comparisons (see header comment). The
  // dense remap keeps the per-user portion independent of num_shards.
  size_t total = dense_map_.MemoryBits();
  for (const VosSketch& shard : shards_) {
    total += shard.MemoryBits() + shard.PerUserStateBits();
  }
  return total;
}

}  // namespace vos::core

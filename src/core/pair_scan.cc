#include "core/pair_scan.h"

#include <algorithm>
#include <cmath>

#include "common/kernels.h"
#include "common/logging.h"
#include "common/popcount.h"

namespace vos::core::pair_scan {
namespace {

using scan::Pair;

void UnpackSortedUnique(std::vector<uint64_t>* packed,
                        std::vector<std::pair<uint32_t, uint32_t>>* out) {
  std::sort(packed->begin(), packed->end());
  packed->erase(std::unique(packed->begin(), packed->end()), packed->end());
  out->reserve(packed->size());
  for (const uint64_t v : *packed) {
    out->push_back({static_cast<uint32_t>(v >> 32),
                    static_cast<uint32_t>(v & 0xffffffffu)});
  }
}

/// One unit of RunPasses work: an exact tile of a pass, or a chunk of a
/// banded pass's candidate list.
struct ScanUnit {
  size_t pass = 0;
  size_t a_begin = 0, a_end = 0;
  size_t b_begin = 0, b_end = 0;
  bool banded = false;
  size_t cand_begin = 0, cand_end = 0;
};

/// Candidate-pair chunks per banded work unit: large enough to amortize
/// dispatch, small enough that a pass with many survivors still spreads
/// across the pool.
constexpr size_t kBandedChunkPairs = 4096;

/// Exact scan of one triangle tile: pairs {(p, q) : p ∈ [a_begin, a_end),
/// q ∈ [max(p+1, b_begin), b_end)} of the pass's (single) sorted matrix.
/// This is the pre-tier SimilarityIndex::ScanSortedBlock sweep with the
/// partner range clamped to the tile — the per-row admissible window is
/// the global partition point intersected with [b_begin, b_end), so the
/// tiles of one pass enumerate exactly the pre-tier pair set, each pair
/// once, with the identical phase-split/confinement/exact-screen math.
void ScanTriangleTile(const Pass& pass, const ScanParams& params,
                      size_t a_begin, size_t a_end, size_t b_begin,
                      size_t b_end, std::vector<Pair>* out) {
  const DigestMatrix& m = *pass.a.matrix;
  const uint32_t* cards = pass.a.cards;
  const size_t words = m.words_per_row();
  const uint32_t k = m.k();
  const std::vector<double>& table = *params.log_alpha_table;
  const VosEstimator& estimator = *params.estimator;
  const double tau = params.jaccard_threshold;
  const double log_beta = pass.log_beta_pair;

  if (!params.prefilter) {
    for (size_t p = a_begin; p < a_end; ++p) {
      const uint64_t* row_i = m.Row(p);
      const double card_i = cards[p];
      for (size_t q = std::max(p + 1, b_begin); q < b_end; ++q) {
        const size_t d = XorPopcount(row_i, m.Row(q), words);
        const PairEstimate est = estimator.EstimateFromLogTerms(
            card_i, cards[q], table[d], log_beta);
        if (est.jaccard >= tau) pass.emit(p, q, est, *out);
      }
    }
    return;
  }

  const double tau_frac = tau / (1.0 + tau);
  const size_t phase1_words = scan::Phase1Words(words);
  const bool split = phase1_words != words;
  const size_t phase1_bits = std::min<size_t>(phase1_words * 64, k);
  const double cut_scale = scan::CutScale(tau_frac, k);

  // Admissible window of row p, clamped to the tile's partner range. In
  // sorted order card_p is the pair's min throughout the window, so the
  // fail test is scan::CardinalityFail on card_p and the window end is a
  // partition point (see scan_common.h).
  const auto window_end = [&](size_t p, double card_i) {
    const size_t search_begin = std::max(p + 1, b_begin);
    if (search_begin >= b_end) return search_begin;
    const uint32_t* it = std::partition_point(
        cards + search_begin, cards + b_end, [&](uint32_t card_j) {
          return !scan::CardinalityFail(card_i, card_i + card_j, tau_frac);
        });
    return static_cast<size_t>(it - cards);
  };

  // Finishes pair (p, q) given the pair's phase-1 distance: confinement
  // test against the slacked log-alpha cut, tail popcount for survivors,
  // exact table screen, then the estimator.
  const auto finish = [&](size_t p, const uint64_t* row_i, double card_i,
                          size_t q, size_t d) {
    const double card_j = cards[q];
    const double cut =
        scan::SlackedCut(cut_scale * (card_i + card_j) + 2.0 * log_beta);
    if (scan::ConfinedFail(table, k, d, phase1_bits, cut)) return;
    if (split) {
      d += XorPopcount(row_i + phase1_words, m.Row(q) + phase1_words,
                       words - phase1_words);
    }
    if (table[d] < cut) return;
    const PairEstimate est =
        estimator.EstimateFromLogTerms(card_i, card_j, table[d], log_beta);
    if (est.jaccard >= tau) pass.emit(p, q, est, *out);
  };

  const auto scan_1x8 = [&](size_t p, const uint64_t* row_i, double card_i,
                            size_t q, size_t q_end) {
    size_t d8[8];
    for (; q + 8 <= q_end; q += 8) {
      XorPopcount8(row_i, m.Row(q), words, phase1_words, d8);
      for (size_t t = 0; t < 8; ++t) finish(p, row_i, card_i, q + t, d8[t]);
    }
    for (; q < q_end; ++q) {
      finish(p, row_i, card_i, q,
             XorPopcount(row_i, m.Row(q), phase1_words));
    }
  };

  // Pair up adjacent p-rows: their windows are nested (cards are sorted,
  // so row p+1 admits every partner row p does), letting the shared range
  // run on the 2×4 micro-kernel — each partner row load feeds two pairs.
  size_t p = a_begin;
  for (; p + 2 <= a_end; p += 2) {
    const uint64_t* row_a = m.Row(p);
    const uint64_t* row_b = m.Row(p + 1);
    const double card_a = cards[p];
    const double card_b = cards[p + 1];
    const size_t q_end_a = window_end(p, card_a);
    const size_t q_end_b = window_end(p + 1, card_b);
    // Pair (p, p+1) belongs to this tile only when p+1 is inside the
    // partner range (diagonal tiles).
    if (p + 1 >= b_begin && p + 1 < q_end_a) {
      finish(p, row_a, card_a, p + 1,
             XorPopcount(row_a, row_b, phase1_words));
    }
    size_t q = std::max(p + 2, b_begin);
    const size_t shared_begin = q;
    size_t d8[8];
    for (; q + 4 <= q_end_a; q += 4) {
      XorPopcount2x4(row_a, row_b, m.Row(q), words, phase1_words, d8);
      for (size_t t = 0; t < 4; ++t) {
        finish(p, row_a, card_a, q + t, d8[t]);
        finish(p + 1, row_b, card_b, q + t, d8[4 + t]);
      }
    }
    for (; q < q_end_a; ++q) {
      finish(p, row_a, card_a, q,
             XorPopcount(row_a, m.Row(q), phase1_words));
      finish(p + 1, row_b, card_b, q,
             XorPopcount(row_b, m.Row(q), phase1_words));
    }
    scan_1x8(p + 1, row_b, card_b, std::max(q_end_a, shared_begin), q_end_b);
  }
  for (; p < a_end; ++p) {
    scan_1x8(p, m.Row(p), cards[p], std::max(p + 1, b_begin),
             window_end(p, cards[p]));
  }
}

/// Exact scan of one rectangle tile: rows [a_begin, a_end) of side a
/// against rows [b_begin, b_end) of side b. The pre-tier
/// QueryPlanner::ScanCrossShardBlock sweep with both ends of the
/// two-sided cardinality window clamped to the tile's partner range.
void ScanRectTile(const Pass& pass, const ScanParams& params, size_t a_begin,
                  size_t a_end, size_t b_begin, size_t b_end,
                  std::vector<Pair>* out) {
  const DigestMatrix& ma = *pass.a.matrix;
  const DigestMatrix& mb = *pass.b.matrix;
  const uint32_t* cards_a = pass.a.cards;
  const uint32_t* cards_b = pass.b.cards;
  const size_t words = ma.words_per_row();
  const uint32_t k = ma.k();
  const std::vector<double>& table = *params.log_alpha_table;
  const VosEstimator& estimator = *params.estimator;
  const double tau = params.jaccard_threshold;
  const double log_beta = pass.log_beta_pair;

  if (!params.prefilter) {
    for (size_t p = a_begin; p < a_end; ++p) {
      const uint64_t* row_a = ma.Row(p);
      const double card_a = cards_a[p];
      for (size_t q = b_begin; q < b_end; ++q) {
        const size_t d = XorPopcount(row_a, mb.Row(q), words);
        const PairEstimate est = estimator.EstimateFromLogTerms(
            card_a, cards_b[q], table[d], log_beta);
        if (est.jaccard >= tau) pass.emit(p, q, est, *out);
      }
    }
    return;
  }

  const double tau_frac = tau / (1.0 + tau);
  const size_t phase1_words = scan::Phase1Words(words);
  const bool split = phase1_words != words;
  const size_t phase1_bits = std::min<size_t>(phase1_words * 64, k);
  const double cut_scale = scan::CutScale(tau_frac, k);

  for (size_t p = a_begin; p < a_end; ++p) {
    const uint64_t* row_a = ma.Row(p);
    const double card_a = cards_a[p];
    // Two-sided admissible window over b's cardinality-sorted rows,
    // clamped to the tile: below the window the partner is the min and
    // too small, above it card_a is the min and too small; both fail
    // predicates are monotone in the partner's cardinality, so both ends
    // are partition points and out-of-window pairs are never enumerated.
    const uint32_t* lo_it = std::partition_point(
        cards_b + b_begin, cards_b + b_end, [&](uint32_t card_j) {
          return scan::CardinalityFail(card_j, card_a + card_j, tau_frac);
        });
    const uint32_t* hi_it =
        std::partition_point(lo_it, cards_b + b_end, [&](uint32_t card_j) {
          return !scan::CardinalityFail(card_a, card_a + card_j, tau_frac);
        });
    size_t q = static_cast<size_t>(lo_it - cards_b);
    const size_t q_end = static_cast<size_t>(hi_it - cards_b);

    const auto finish = [&](size_t qq, size_t d) {
      const double card_b = cards_b[qq];
      const double cut =
          scan::SlackedCut(cut_scale * (card_a + card_b) + 2.0 * log_beta);
      if (scan::ConfinedFail(table, k, d, phase1_bits, cut)) return;
      size_t d_full = d;
      if (split) {
        d_full += XorPopcount(row_a + phase1_words, mb.Row(qq) + phase1_words,
                              words - phase1_words);
      }
      if (table[d_full] < cut) return;
      const PairEstimate est = estimator.EstimateFromLogTerms(
          card_a, card_b, table[d_full], log_beta);
      if (est.jaccard >= tau) pass.emit(p, qq, est, *out);
    };

    size_t d8[8];
    for (; q + 8 <= q_end; q += 8) {
      XorPopcount8(row_a, mb.Row(q), words, phase1_words, d8);
      for (size_t i = 0; i < 8; ++i) finish(q + i, d8[i]);
    }
    for (; q < q_end; ++q) {
      finish(q, XorPopcount(row_a, mb.Row(q), phase1_words));
    }
  }
}

/// Banded scan of one candidate-list chunk: every bucket-colliding pair
/// gets the full-row Hamming distance and the exact estimator call — the
/// identical estimate the exact path would produce — then the τ filter.
void ScanBandedChunk(const Pass& pass, const ScanParams& params,
                     const std::vector<std::pair<uint32_t, uint32_t>>& cands,
                     size_t begin, size_t end, std::vector<Pair>* out) {
  const DigestMatrix& ma = *pass.a.matrix;
  const DigestMatrix& mb = pass.triangle ? ma : *pass.b.matrix;
  const uint32_t* cards_a = pass.a.cards;
  const uint32_t* cards_b = pass.triangle ? cards_a : pass.b.cards;
  const size_t words = ma.words_per_row();
  const std::vector<double>& table = *params.log_alpha_table;
  const VosEstimator& estimator = *params.estimator;
  for (size_t i = begin; i < end; ++i) {
    const size_t p = cands[i].first;
    const size_t q = cands[i].second;
    const size_t d = XorPopcount(ma.Row(p), mb.Row(q), words);
    const PairEstimate est = estimator.EstimateFromLogTerms(
        cards_a[p], cards_b[q], table[d], pass.log_beta_pair);
    if (est.jaccard >= params.jaccard_threshold) pass.emit(p, q, est, *out);
  }
}

}  // namespace

BandingTable::BandingTable(const DigestMatrix& matrix, uint32_t bands,
                           uint32_t rows_per_band)
    : BandingTable(matrix, bands, rows_per_band, nullptr, 0) {}

BandingTable::BandingTable(const DigestMatrix& matrix, uint32_t bands,
                           uint32_t rows_per_band,
                           const uint32_t* stable_of_row,
                           uint32_t max_bucket) {
  VOS_CHECK(rows_per_band >= 1 && rows_per_band <= 64)
      << "banding_rows_per_band must be in [1, 64], got" << rows_per_band;
  VOS_CHECK(matrix.rows() <= uint64_t{0xffffffff})
      << "banding rows are uint32";
  rows_ = matrix.rows();
  rows_per_band_ = rows_per_band;
  max_bucket_ = max_bucket;
  // Bands must fit the digest: clamp instead of failing so an
  // over-ambitious request degrades to fewer bands (lower recall), never
  // to out-of-range reads.
  bands_ = std::min(bands, matrix.k() / rows_per_band);
  if (bands_ == 0 || rows_ == 0) return;
  row_of_stable_.resize(rows_);
  entries_.resize(static_cast<size_t>(bands_) * rows_);
  // Rows-outer: one band_keys kernel call derives all of a row's keys
  // (vectorized multi-band gather over the packed bits; bands_ ·
  // rows_per_band_ ≤ k ≤ words·64 by the clamp above, which is the
  // kernel's bounds contract), scattered into the per-band segments.
  const kernels::KernelTable& kernel = kernels::Active();
  std::vector<uint64_t> keys(bands_);
  for (size_t r = 0; r < rows_; ++r) {
    const uint32_t stable =
        stable_of_row == nullptr ? static_cast<uint32_t>(r) : stable_of_row[r];
    row_of_stable_[stable] = static_cast<uint32_t>(r);
    kernel.band_keys(matrix.Row(r), matrix.words_per_row(), bands_,
                     rows_per_band_, keys.data());
    for (uint32_t b = 0; b < bands_; ++b) {
      entries_[static_cast<size_t>(b) * rows_ + r] = {keys[b], stable};
    }
  }
  for (uint32_t b = 0; b < bands_; ++b) {
    std::pair<uint64_t, uint32_t>* seg =
        entries_.data() + static_cast<size_t>(b) * rows_;
    std::sort(seg, seg + rows_);
  }
}

void BandingTable::Patch(const DigestMatrix& matrix,
                         const uint32_t* stable_of_row,
                         const std::vector<uint8_t>& affected_by_stable) {
  VOS_CHECK(matrix.rows() == rows_) << "Patch cannot change the row set";
  VOS_CHECK(affected_by_stable.size() == rows_)
      << "affected flags must cover every stable id";
  if (empty()) return;
  // The cardinality re-sort permutes rows even for clean digests; only
  // the translation changes for them, never their (key, stable) entries.
  for (size_t p = 0; p < rows_; ++p) {
    const uint32_t stable =
        stable_of_row == nullptr ? static_cast<uint32_t>(p) : stable_of_row[p];
    row_of_stable_[stable] = static_cast<uint32_t>(p);
  }
  std::vector<uint32_t> affected_stables;
  for (size_t s = 0; s < rows_; ++s) {
    if (affected_by_stable[s] != 0) affected_stables.push_back(
        static_cast<uint32_t>(s));
  }
  if (affected_stables.empty()) return;
  // Re-key the affected rows only (one band_keys call each), band-major
  // so each band's fresh entries sort as one contiguous run.
  const kernels::KernelTable& kernel = kernels::Active();
  const size_t a_count = affected_stables.size();
  std::vector<uint64_t> keys(bands_);
  std::vector<std::pair<uint64_t, uint32_t>> fresh(
      static_cast<size_t>(bands_) * a_count);
  for (size_t i = 0; i < a_count; ++i) {
    const uint32_t stable = affected_stables[i];
    kernel.band_keys(matrix.Row(row_of_stable_[stable]),
                     matrix.words_per_row(), bands_, rows_per_band_,
                     keys.data());
    for (uint32_t b = 0; b < bands_; ++b) {
      fresh[static_cast<size_t>(b) * a_count + i] = {keys[b], stable};
    }
  }
  // Per band: drop the affected entries (order-preserving), sort the A
  // fresh ones, merge. Survivor keys are unchanged (their digest bytes
  // are unchanged by contract), so the merged segment is the exact
  // (key, stable) order a full re-sort would produce.
  std::vector<std::pair<uint64_t, uint32_t>> merged(rows_);
  for (uint32_t b = 0; b < bands_; ++b) {
    std::pair<uint64_t, uint32_t>* seg =
        entries_.data() + static_cast<size_t>(b) * rows_;
    std::pair<uint64_t, uint32_t>* fresh_seg =
        fresh.data() + static_cast<size_t>(b) * a_count;
    std::sort(fresh_seg, fresh_seg + a_count);
    std::pair<uint64_t, uint32_t>* keep_end = std::remove_if(
        seg, seg + rows_, [&](const std::pair<uint64_t, uint32_t>& e) {
          return affected_by_stable[e.second] != 0;
        });
    std::merge(seg, keep_end, fresh_seg, fresh_seg + a_count, merged.begin());
    std::copy(merged.begin(), merged.end(), seg);
  }
}

std::vector<std::pair<uint32_t, uint32_t>> BandingTable::TriangleCandidates()
    const {
  std::vector<uint64_t> packed;
  for (uint32_t b = 0; b < bands_; ++b) {
    const std::pair<uint64_t, uint32_t>* seg =
        entries_.data() + static_cast<size_t>(b) * rows_;
    size_t i = 0;
    while (i < rows_) {
      size_t j = i + 1;
      while (j < rows_ && seg[j].first == seg[i].first) ++j;
      // Degenerate-bucket guard: enumerate within max_bucket-sized
      // cohorts of the run only, so one giant bucket (all-zero digests)
      // stays O(run · cap) instead of O(run²).
      const size_t cap = max_bucket_ == 0 ? j - i : max_bucket_;
      for (size_t c = i; c < j; c += cap) {
        const size_t ce = std::min(j, c + cap);
        for (size_t x = c; x < ce; ++x) {
          const uint32_t rx = row_of_stable_[seg[x].second];
          for (size_t y = x + 1; y < ce; ++y) {
            // Stable order inside a bucket is not row order: canonicalize
            // to (p < q) so dedup and the triangle contract hold.
            const uint32_t ry = row_of_stable_[seg[y].second];
            packed.push_back((uint64_t{std::min(rx, ry)} << 32) |
                             std::max(rx, ry));
          }
        }
      }
      i = j;
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> out;
  UnpackSortedUnique(&packed, &out);
  return out;
}

size_t BandingTable::TriangleCandidateBound() const {
  size_t total = 0;
  for (uint32_t b = 0; b < bands_; ++b) {
    const std::pair<uint64_t, uint32_t>* seg =
        entries_.data() + static_cast<size_t>(b) * rows_;
    size_t i = 0;
    while (i < rows_) {
      size_t j = i + 1;
      while (j < rows_ && seg[j].first == seg[i].first) ++j;
      const size_t len = j - i;
      const size_t cap = max_bucket_ == 0 ? len : max_bucket_;
      const size_t full = len / cap;
      const size_t rem = len % cap;
      total += full * (cap * (cap - 1) / 2) + rem * (rem - 1) / 2;
      i = j;
    }
  }
  return total;
}

size_t BandingTable::MaxBucketRun() const {
  size_t longest = 0;
  for (uint32_t b = 0; b < bands_; ++b) {
    const std::pair<uint64_t, uint32_t>* seg =
        entries_.data() + static_cast<size_t>(b) * rows_;
    size_t i = 0;
    while (i < rows_) {
      size_t j = i + 1;
      while (j < rows_ && seg[j].first == seg[i].first) ++j;
      longest = std::max(longest, j - i);
      i = j;
    }
  }
  return longest;
}

namespace {

/// Shared shape of the capped rectangle enumeration: visits the aligned
/// guard-cohort pairs of one equal-key run pair and hands each cohort
/// cross product to `emit(x_begin, x_end, y_begin, y_end)`. With both
/// caps off this is the single full cross product.
template <typename Emit>
void ForEachRectCohortPair(size_t i, size_t i2, size_t cap_a, size_t j,
                           size_t j2, size_t cap_b, const Emit& emit) {
  const size_t len_a = i2 - i;
  const size_t len_b = j2 - j;
  const size_t eff_a = cap_a == 0 ? len_a : cap_a;
  const size_t eff_b = cap_b == 0 ? len_b : cap_b;
  const size_t chunks_a = (len_a + eff_a - 1) / eff_a;
  const size_t chunks_b = (len_b + eff_b - 1) / eff_b;
  const size_t chunks = std::max(chunks_a, chunks_b);
  for (size_t t = 0; t < chunks; ++t) {
    const size_t ca = std::min(t, chunks_a - 1);
    const size_t cb = std::min(t, chunks_b - 1);
    emit(i + ca * eff_a, std::min(i2, i + (ca + 1) * eff_a), j + cb * eff_b,
         std::min(j2, j + (cb + 1) * eff_b));
  }
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> BandingTable::RectangleCandidates(
    const BandingTable& a, const BandingTable& b) {
  VOS_CHECK(a.bands_ == b.bands_ && a.rows_per_band_ == b.rows_per_band_)
      << "banded rectangle needs identically banded sides";
  std::vector<uint64_t> packed;
  for (uint32_t band = 0; band < a.bands_; ++band) {
    const std::pair<uint64_t, uint32_t>* sa =
        a.entries_.data() + static_cast<size_t>(band) * a.rows_;
    const std::pair<uint64_t, uint32_t>* sb =
        b.entries_.data() + static_cast<size_t>(band) * b.rows_;
    size_t i = 0, j = 0;
    while (i < a.rows_ && j < b.rows_) {
      if (sa[i].first < sb[j].first) {
        ++i;
      } else if (sb[j].first < sa[i].first) {
        ++j;
      } else {
        size_t i2 = i + 1;
        while (i2 < a.rows_ && sa[i2].first == sa[i].first) ++i2;
        size_t j2 = j + 1;
        while (j2 < b.rows_ && sb[j2].first == sb[j].first) ++j2;
        ForEachRectCohortPair(
            i, i2, a.max_bucket_, j, j2, b.max_bucket_,
            [&](size_t xb, size_t xe, size_t yb, size_t ye) {
              for (size_t x = xb; x < xe; ++x) {
                const uint64_t row_a = a.row_of_stable_[sa[x].second];
                for (size_t y = yb; y < ye; ++y) {
                  packed.push_back((row_a << 32) |
                                   b.row_of_stable_[sb[y].second]);
                }
              }
            });
        i = i2;
        j = j2;
      }
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> out;
  UnpackSortedUnique(&packed, &out);
  return out;
}

size_t BandingTable::RectangleCandidateBound(const BandingTable& a,
                                             const BandingTable& b) {
  VOS_CHECK(a.bands_ == b.bands_ && a.rows_per_band_ == b.rows_per_band_)
      << "banded rectangle needs identically banded sides";
  size_t total = 0;
  for (uint32_t band = 0; band < a.bands_; ++band) {
    const std::pair<uint64_t, uint32_t>* sa =
        a.entries_.data() + static_cast<size_t>(band) * a.rows_;
    const std::pair<uint64_t, uint32_t>* sb =
        b.entries_.data() + static_cast<size_t>(band) * b.rows_;
    size_t i = 0, j = 0;
    while (i < a.rows_ && j < b.rows_) {
      if (sa[i].first < sb[j].first) {
        ++i;
      } else if (sb[j].first < sa[i].first) {
        ++j;
      } else {
        size_t i2 = i + 1;
        while (i2 < a.rows_ && sa[i2].first == sa[i].first) ++i2;
        size_t j2 = j + 1;
        while (j2 < b.rows_ && sb[j2].first == sb[j].first) ++j2;
        ForEachRectCohortPair(i, i2, a.max_bucket_, j, j2, b.max_bucket_,
                              [&](size_t xb, size_t xe, size_t yb, size_t ye) {
                                total += (xe - xb) * (ye - yb);
                              });
        i = i2;
        j = j2;
      }
    }
  }
  return total;
}

void BandingTable::AppendRowCandidates(const uint64_t* row, size_t words,
                                       std::vector<uint32_t>* out) const {
  if (empty()) return;
  const kernels::KernelTable& kernel = kernels::Active();
  std::vector<uint64_t> keys(bands_);
  kernel.band_keys(row, words, bands_, rows_per_band_, keys.data());
  for (uint32_t b = 0; b < bands_; ++b) {
    const std::pair<uint64_t, uint32_t>* seg =
        entries_.data() + static_cast<size_t>(b) * rows_;
    const std::pair<uint64_t, uint32_t>* lo = std::lower_bound(
        seg, seg + rows_, std::pair<uint64_t, uint32_t>{keys[b], 0});
    const std::pair<uint64_t, uint32_t>* hi = std::upper_bound(
        lo, seg + rows_,
        std::pair<uint64_t, uint32_t>{keys[b], uint32_t{0xffffffff}});
    const size_t run = static_cast<size_t>(hi - lo);
    const size_t take =
        max_bucket_ == 0 ? run : std::min<size_t>(run, max_bucket_);
    for (size_t t = 0; t < take; ++t) {
      out->push_back(row_of_stable_[lo[t].second]);
    }
  }
}

std::vector<scan::Pair> RunPasses(const std::vector<Pass>& passes,
                                  const ScanParams& params, size_t tile_rows,
                                  unsigned num_threads) {
  const size_t tile = ResolveTileRows(tile_rows);
  const double tau_frac =
      params.jaccard_threshold / (1.0 + params.jaccard_threshold);
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> candidates(
      passes.size());
  std::vector<ScanUnit> units;
  for (size_t pi = 0; pi < passes.size(); ++pi) {
    const Pass& pass = passes[pi];
    const size_t n_a = pass.a.rows();
    const size_t n_b = pass.triangle ? n_a : pass.b.rows();
    if (n_a == 0 || n_b == 0 || (pass.triangle && n_a < 2)) continue;
    const bool banded = pass.banding_a != nullptr &&
                        (pass.triangle || pass.banding_b != nullptr);
    if (banded) {
      candidates[pi] =
          pass.triangle
              ? pass.banding_a->TriangleCandidates()
              : BandingTable::RectangleCandidates(*pass.banding_a,
                                                  *pass.banding_b);
      for (size_t c = 0; c < candidates[pi].size(); c += kBandedChunkPairs) {
        ScanUnit unit;
        unit.pass = pi;
        unit.banded = true;
        unit.cand_begin = c;
        unit.cand_end = std::min(candidates[pi].size(), c + kBandedChunkPairs);
        units.push_back(unit);
      }
      continue;
    }
    if (pass.triangle) {
      for (size_t a0 = 0; a0 < n_a; a0 += tile) {
        const size_t a1 = std::min(n_a, a0 + tile);
        for (size_t b0 = a0; b0 < n_a; b0 += tile) {
          const size_t b1 = std::min(n_a, b0 + tile);
          if (params.prefilter && b0 > a0) {
            // Tile-level window prune: the most admissible pair of an
            // off-diagonal tile is the largest a-row against the
            // smallest b-row (CardinalityFail is monotone both ways);
            // if even that pair fails, no pair in the tile can pass.
            const double card_p = pass.a.cards[a1 - 1];
            if (scan::CardinalityFail(card_p, card_p + pass.a.cards[b0],
                                      tau_frac)) {
              break;  // later b-blocks only grow the partner cardinality
            }
          }
          ScanUnit unit;
          unit.pass = pi;
          unit.a_begin = a0;
          unit.a_end = a1;
          unit.b_begin = b0;
          unit.b_end = b1;
          units.push_back(unit);
        }
      }
    } else {
      for (size_t a0 = 0; a0 < n_a; a0 += tile) {
        const size_t a1 = std::min(n_a, a0 + tile);
        size_t lo = 0, hi = n_b;
        if (params.prefilter) {
          // Block-level window: lo/hi are non-decreasing in the a-row,
          // so the union of the block's per-row windows is
          // [lo(first row), hi(last row)) — tiles outside it hold only
          // provably failing pairs.
          const double card_first = pass.a.cards[a0];
          const double card_last = pass.a.cards[a1 - 1];
          const uint32_t* lo_it = std::partition_point(
              pass.b.cards, pass.b.cards + n_b, [&](uint32_t card_j) {
                return scan::CardinalityFail(card_j, card_first + card_j,
                                             tau_frac);
              });
          const uint32_t* hi_it = std::partition_point(
              lo_it, pass.b.cards + n_b, [&](uint32_t card_j) {
                return !scan::CardinalityFail(card_last, card_last + card_j,
                                              tau_frac);
              });
          lo = static_cast<size_t>(lo_it - pass.b.cards);
          hi = static_cast<size_t>(hi_it - pass.b.cards);
        }
        for (size_t b0 = 0; b0 < n_b; b0 += tile) {
          const size_t b1 = std::min(n_b, b0 + tile);
          if (params.prefilter && (b1 <= lo || b0 >= hi)) continue;
          ScanUnit unit;
          unit.pass = pi;
          unit.a_begin = a0;
          unit.a_end = a1;
          unit.b_begin = b0;
          unit.b_end = b1;
          units.push_back(unit);
        }
      }
    }
  }
  std::vector<scan::Pair> merged;
  if (units.empty()) return merged;

  const auto run_unit = [&](size_t i, std::vector<scan::Pair>* out) {
    const ScanUnit& unit = units[i];
    const Pass& pass = passes[unit.pass];
    if (unit.banded) {
      ScanBandedChunk(pass, params, candidates[unit.pass], unit.cand_begin,
                      unit.cand_end, out);
    } else if (pass.triangle) {
      ScanTriangleTile(pass, params, unit.a_begin, unit.a_end, unit.b_begin,
                       unit.b_end, out);
    } else {
      ScanRectTile(pass, params, unit.a_begin, unit.a_end, unit.b_begin,
                   unit.b_end, out);
    }
  };

  const unsigned threads = ResolveThreadCount(num_threads, units.size());
  if (threads <= 1) {
    // Sequential unit order — identical to the concatenation below.
    for (size_t i = 0; i < units.size(); ++i) run_unit(i, &merged);
    return merged;
  }
  std::vector<std::vector<scan::Pair>> per_unit(units.size());
  scan::RunIndexed(threads, units.size(),
                   [&](size_t i) { run_unit(i, &per_unit[i]); });
  size_t total = 0;
  for (const auto& chunk : per_unit) total += chunk.size();
  merged.reserve(total);
  for (const auto& chunk : per_unit) {
    merged.insert(merged.end(), chunk.begin(), chunk.end());
  }
  return merged;
}

}  // namespace vos::core::pair_scan

// The shared pair-scan tier: tiled enumeration of triangle and rectangle
// pair spaces over cardinality-sorted DigestMatrix snapshots.
//
// Before this tier existed the all-pairs scan lived twice — once in
// SimilarityIndex::AllPairsAbove (the same-shard/global triangle) and
// once in QueryPlanner's cross-shard passes (the rectangle) — so every
// scan improvement had to be implemented and verified twice. Both call
// sites now describe their work as `Pass`es and hand them to RunPasses,
// which
//
//   * decomposes every pass into cache-sized row×row tiles
//     (`QueryOptions::tile_rows` per edge): a tile's two row ranges stay
//     resident while its pairs are popcounted, so candidate sets larger
//     than the LLC stop thrashing, and a skewed ("hot") shard's triangle
//     becomes many independent work units instead of one serialized pass;
//   * runs the conservative prefilters per tile — the τ cardinality
//     window (one-sided over a triangle, two-sided over a rectangle,
//     both partition points over the sorted rows), the ~3/4-row
//     confinement check, and the exact log-alpha screen, all against the
//     pass's combined log-beta cut (core/scan_common.h) — and skips
//     whole tiles that no row's window reaches;
//   * dispatches the tiles of ALL passes to one dynamic worker pool
//     (scan::RunIndexed), merging per-unit outputs in unit order so the
//     result is independent of thread count and schedule (callers sort
//     with scan::PairBefore, a total order on unique pairs).
//
// The exact tiled path is bit-identical to the pre-tier scans for every
// tile size, thread count and prefilter setting: tiles partition exactly
// the same pair set, every surviving pair's Hamming distance is the same
// integer, and the estimate is the same EstimateFromLogTerms call
// (tests/pair_scan_test.cc asserts this across the full matrix).
//
// On top of the same pass plumbing sits opt-in LSH banding
// (`QueryOptions::banding_bands` > 0): BandingTable slices the leading
// banding_bands × banding_rows_per_band digest bits into per-band keys
// at snapshot time, and a banded pass enumerates only bucket-colliding
// pairs instead of tiles. Banding trades recall for enumeration — a pair
// that collides in no band is never estimated — but never precision:
// every reported pair carries the exact estimate the full scan would
// have produced, so the banded result is a subset of the exact result
// and recall is measurable against it (the banding recall contract,
// src/core/README.md).
//
// Internal to core/; not part of the public query API.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/digest_matrix.h"
#include "core/scan_common.h"
#include "core/vos_estimator.h"

namespace vos::core::pair_scan {

/// Default tile edge: 256 rows ≈ 200 KiB per side at k = 6400, so a
/// tile's working set stays L2-resident on common parts.
inline constexpr size_t kDefaultTileRows = 256;

/// Resolves a QueryOptions::tile_rows request (0 = the default above).
inline size_t ResolveTileRows(size_t requested) {
  return requested == 0 ? kDefaultTileRows : requested;
}

/// One side of a pass: a cardinality-sorted digest snapshot. `cards`
/// must hold matrix->rows() non-decreasing values aligned with the rows.
struct MatrixView {
  const DigestMatrix* matrix = nullptr;
  const uint32_t* cards = nullptr;
  size_t rows() const { return matrix == nullptr ? 0 : matrix->rows(); }
};

/// LSH banding index over one digest snapshot: band b's key is bits
/// [b·rows_per_band, (b+1)·rows_per_band) of each row ("rows per band"
/// in the classic LSH sense — each digest bit is one parity row, agreed
/// on by a pair with probability 1−α). Keys are compared raw, so tables
/// built over different shards' snapshots are join-compatible (the
/// digest bit domain Ô_u is shared across shards). Built at
/// Rebuild/Refresh time by SimilarityIndex when banding is enabled.
///
/// Entries are keyed by STABLE row id, not by matrix row: the caller may
/// supply a `stable_of_row` permutation (SimilarityIndex passes its
/// candidate indexes) and the table keeps a stable→row translation.
/// Because a stable id's key depends only on its digest content, a
/// cardinality re-sort that merely permutes rows leaves every entry of an
/// unchanged digest byte-identical — which is what lets Patch() update
/// the table incrementally after RefreshDirty instead of re-sorting
/// O(bands · n log n) from scratch.
///
/// Degenerate-bucket guard: sparse snapshots (many all-zero digests) can
/// put ~n rows in one bucket and make candidate generation quadratic.
/// With `max_bucket` > 0 every key run is split into consecutive
/// max_bucket-sized cohorts and pairs are enumerated within (triangle) /
/// across aligned (rectangle) cohorts only, bounding candidates by
/// O(run · max_bucket) per run. The cap trades recall (pairs straddling
/// a cohort boundary are missed) for the subquadratic bound; 0 disables
/// it (the raw constructor's default, so brute-force reference tests see
/// the uncapped semantics).
class BandingTable {
 public:
  BandingTable() = default;

  /// Indexes every row of `matrix` with identity stable ids and no
  /// bucket cap. `rows_per_band` ∈ [1, 64]; `bands` is clamped so
  /// bands · rows_per_band ≤ k (at least one band fits because
  /// rows_per_band ≤ 64 ≤ k for any real sketch).
  BandingTable(const DigestMatrix& matrix, uint32_t bands,
               uint32_t rows_per_band);

  /// Full form: `stable_of_row` (may be null = identity) maps matrix row
  /// p to its stable id — a permutation of [0, rows); `max_bucket` is
  /// the degenerate-bucket guard (0 = uncapped).
  BandingTable(const DigestMatrix& matrix, uint32_t bands,
               uint32_t rows_per_band, const uint32_t* stable_of_row,
               uint32_t max_bucket);

  /// Incremental maintenance after RefreshDirty: re-keys only the rows
  /// whose STABLE id is flagged in `affected_by_stable` (size rows) and
  /// re-translates stable→row from the new `stable_of_row` permutation.
  /// O(bands · (n + A log A)) for A affected rows, vs O(bands · n log n)
  /// for a rebuild — and bit-identical to one: unaffected digests keep
  /// their exact (key, stable) entries, and merging the re-keyed rows
  /// back restores the same total (key, stable) order a full sort would
  /// produce (asserted in tests/query_optimizer_test.cc).
  void Patch(const DigestMatrix& matrix, const uint32_t* stable_of_row,
             const std::vector<uint8_t>& affected_by_stable);

  uint32_t bands() const { return bands_; }
  uint32_t rows_per_band() const { return rows_per_band_; }
  size_t rows() const { return rows_; }
  uint32_t max_bucket() const { return max_bucket_; }
  bool empty() const { return bands_ == 0 || rows_ == 0; }

  /// All unordered row pairs (p < q) colliding in at least one band —
  /// within one guard cohort when max_bucket > 0 — sorted ascending and
  /// deduplicated: the triangle pass's candidate list. Complexity
  /// O(bands · rows + candidates) given the sorted segments.
  std::vector<std::pair<uint32_t, uint32_t>> TriangleCandidates() const;

  /// All (row of a, row of b) pairs colliding in at least one band —
  /// the rectangle pass's candidate list (merge-join per band; the two
  /// tables must share bands()/rows_per_band()). Either side's
  /// max_bucket caps its cohorts.
  static std::vector<std::pair<uint32_t, uint32_t>> RectangleCandidates(
      const BandingTable& a, const BandingTable& b);

  /// Candidate-pair count TriangleCandidates() would enumerate before
  /// dedup — the optimizer's bucket-skew statistic, O(bands · runs)
  /// closed-form arithmetic, no materialization.
  size_t TriangleCandidateBound() const;

  /// Rectangle twin of TriangleCandidateBound (pre-dedup count).
  static size_t RectangleCandidateBound(const BandingTable& a,
                                        const BandingTable& b);

  /// Largest bucket (key run) across all bands — the raw skew statistic
  /// the guard exists for.
  size_t MaxBucketRun() const;

  /// bands · rows: the entries a bucket walk / merge-join touches.
  size_t entry_count() const { return entries_.size(); }

  /// Appends the matrix rows sharing at least one band bucket with the
  /// query digest `row` (`words` packed words, same geometry as the
  /// indexed matrix) — the banded-TopK point lookup: per band one binary
  /// search plus the bucket run, capped at max_bucket entries per run.
  /// May contain duplicates and the query's own row; callers sort/unique
  /// and filter.
  void AppendRowCandidates(const uint64_t* row, size_t words,
                           std::vector<uint32_t>* out) const;

  /// Raw per-band segments of (key, stable id), band b owning
  /// entries()[b·rows .. (b+1)·rows) sorted by (key, stable id) — the
  /// patch-equivalence tests compare these against a fresh build.
  const std::vector<std::pair<uint64_t, uint32_t>>& entries() const {
    return entries_;
  }

 private:
  uint32_t bands_ = 0;
  uint32_t rows_per_band_ = 0;
  size_t rows_ = 0;
  /// Degenerate-bucket guard: cohort size cap per key run (0 = off).
  uint32_t max_bucket_ = 0;
  /// Per-band segments of (key, stable id), each segment sorted by
  /// (key, stable id): band b owns entries_[b·rows_ .. (b+1)·rows_).
  std::vector<std::pair<uint64_t, uint32_t>> entries_;
  /// row_of_stable_[stable id] = current matrix row (updated by Patch).
  std::vector<uint32_t> row_of_stable_;
};

/// Everything the estimate/prefilter math shares across the passes of
/// one query (the per-pass β term lives on the Pass).
struct ScanParams {
  double jaccard_threshold = 0.0;
  /// Pre-resolved via scan::PrefilterApplies — the tier never second-
  /// guesses the clamp gating.
  bool prefilter = false;
  const VosEstimator* estimator = nullptr;
  /// ln|1−2·d/k| per Hamming distance d ∈ [0, k].
  const std::vector<double>* log_alpha_table = nullptr;
};

/// One unit of query work: a triangle scan over a (same-shard / global
/// all-pairs, pairs p < q) or a rectangle scan a × b (cross-shard).
/// `emit` translates surviving (row p of a, row q of b, estimate) into a
/// caller-oriented scan::Pair; it is called only for pairs at or above
/// the threshold, under no lock (each work unit owns its output buffer).
struct Pass {
  MatrixView a;
  MatrixView b;  ///< == a for triangle passes
  bool triangle = false;
  /// The log-beta term handed to EstimateFromLogTerms: the snapshot's
  /// own term for a triangle, the mean of the two shards' terms for a
  /// cross-shard rectangle.
  double log_beta_pair = 0.0;
  /// Banding tables of the two sides (null = exact enumeration). Both
  /// must be set, with equal geometry, for a banded rectangle.
  const BandingTable* banding_a = nullptr;
  const BandingTable* banding_b = nullptr;
  std::function<void(size_t p, size_t q, const PairEstimate& est,
                     std::vector<scan::Pair>& out)>
      emit;
};

/// Runs every pass — tiled when exact, bucket-driven when banded — over
/// one dynamic worker pool of `num_threads` (0 = hardware concurrency,
/// clamped to the unit count). Returns all emitted pairs concatenated in
/// deterministic (pass, unit) order; callers sort with scan::PairBefore.
std::vector<scan::Pair> RunPasses(const std::vector<Pass>& passes,
                                  const ScanParams& params, size_t tile_rows,
                                  unsigned num_threads);

}  // namespace vos::core::pair_scan

// The shared pair-scan tier: tiled enumeration of triangle and rectangle
// pair spaces over cardinality-sorted DigestMatrix snapshots.
//
// Before this tier existed the all-pairs scan lived twice — once in
// SimilarityIndex::AllPairsAbove (the same-shard/global triangle) and
// once in QueryPlanner's cross-shard passes (the rectangle) — so every
// scan improvement had to be implemented and verified twice. Both call
// sites now describe their work as `Pass`es and hand them to RunPasses,
// which
//
//   * decomposes every pass into cache-sized row×row tiles
//     (`QueryOptions::tile_rows` per edge): a tile's two row ranges stay
//     resident while its pairs are popcounted, so candidate sets larger
//     than the LLC stop thrashing, and a skewed ("hot") shard's triangle
//     becomes many independent work units instead of one serialized pass;
//   * runs the conservative prefilters per tile — the τ cardinality
//     window (one-sided over a triangle, two-sided over a rectangle,
//     both partition points over the sorted rows), the ~3/4-row
//     confinement check, and the exact log-alpha screen, all against the
//     pass's combined log-beta cut (core/scan_common.h) — and skips
//     whole tiles that no row's window reaches;
//   * dispatches the tiles of ALL passes to one dynamic worker pool
//     (scan::RunIndexed), merging per-unit outputs in unit order so the
//     result is independent of thread count and schedule (callers sort
//     with scan::PairBefore, a total order on unique pairs).
//
// The exact tiled path is bit-identical to the pre-tier scans for every
// tile size, thread count and prefilter setting: tiles partition exactly
// the same pair set, every surviving pair's Hamming distance is the same
// integer, and the estimate is the same EstimateFromLogTerms call
// (tests/pair_scan_test.cc asserts this across the full matrix).
//
// On top of the same pass plumbing sits opt-in LSH banding
// (`QueryOptions::banding_bands` > 0): BandingTable slices the leading
// banding_bands × banding_rows_per_band digest bits into per-band keys
// at snapshot time, and a banded pass enumerates only bucket-colliding
// pairs instead of tiles. Banding trades recall for enumeration — a pair
// that collides in no band is never estimated — but never precision:
// every reported pair carries the exact estimate the full scan would
// have produced, so the banded result is a subset of the exact result
// and recall is measurable against it (the banding recall contract,
// src/core/README.md).
//
// Internal to core/; not part of the public query API.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/digest_matrix.h"
#include "core/scan_common.h"
#include "core/vos_estimator.h"

namespace vos::core::pair_scan {

/// Default tile edge: 256 rows ≈ 200 KiB per side at k = 6400, so a
/// tile's working set stays L2-resident on common parts.
inline constexpr size_t kDefaultTileRows = 256;

/// Resolves a QueryOptions::tile_rows request (0 = the default above).
inline size_t ResolveTileRows(size_t requested) {
  return requested == 0 ? kDefaultTileRows : requested;
}

/// One side of a pass: a cardinality-sorted digest snapshot. `cards`
/// must hold matrix->rows() non-decreasing values aligned with the rows.
struct MatrixView {
  const DigestMatrix* matrix = nullptr;
  const uint32_t* cards = nullptr;
  size_t rows() const { return matrix == nullptr ? 0 : matrix->rows(); }
};

/// LSH banding index over one digest snapshot: band b's key is bits
/// [b·rows_per_band, (b+1)·rows_per_band) of each row ("rows per band"
/// in the classic LSH sense — each digest bit is one parity row, agreed
/// on by a pair with probability 1−α). Keys are compared raw, so tables
/// built over different shards' snapshots are join-compatible (the
/// digest bit domain Ô_u is shared across shards). Built at
/// Rebuild/Refresh time by SimilarityIndex when banding is enabled.
class BandingTable {
 public:
  BandingTable() = default;

  /// Indexes every row of `matrix`. `rows_per_band` ∈ [1, 64]; `bands`
  /// is clamped so bands · rows_per_band ≤ k (at least one band fits
  /// because rows_per_band ≤ 64 ≤ k for any real sketch).
  BandingTable(const DigestMatrix& matrix, uint32_t bands,
               uint32_t rows_per_band);

  uint32_t bands() const { return bands_; }
  uint32_t rows_per_band() const { return rows_per_band_; }
  size_t rows() const { return rows_; }
  bool empty() const { return bands_ == 0 || rows_ == 0; }

  /// All unordered row pairs (p < q) colliding in at least one band,
  /// sorted ascending and deduplicated — the triangle pass's candidate
  /// list. Complexity O(bands · rows log rows + candidates); identical
  /// digests all land in one bucket, so degenerate snapshots (many
  /// all-zero rows) can produce quadratically many candidates.
  std::vector<std::pair<uint32_t, uint32_t>> TriangleCandidates() const;

  /// All (row of a, row of b) pairs colliding in at least one band —
  /// the rectangle pass's candidate list (merge-join per band; the two
  /// tables must share bands()/rows_per_band()).
  static std::vector<std::pair<uint32_t, uint32_t>> RectangleCandidates(
      const BandingTable& a, const BandingTable& b);

 private:
  uint32_t bands_ = 0;
  uint32_t rows_per_band_ = 0;
  size_t rows_ = 0;
  /// Per-band segments of (key, row), each segment sorted by (key, row):
  /// band b owns entries_[b·rows_ .. (b+1)·rows_).
  std::vector<std::pair<uint64_t, uint32_t>> entries_;
};

/// Everything the estimate/prefilter math shares across the passes of
/// one query (the per-pass β term lives on the Pass).
struct ScanParams {
  double jaccard_threshold = 0.0;
  /// Pre-resolved via scan::PrefilterApplies — the tier never second-
  /// guesses the clamp gating.
  bool prefilter = false;
  const VosEstimator* estimator = nullptr;
  /// ln|1−2·d/k| per Hamming distance d ∈ [0, k].
  const std::vector<double>* log_alpha_table = nullptr;
};

/// One unit of query work: a triangle scan over a (same-shard / global
/// all-pairs, pairs p < q) or a rectangle scan a × b (cross-shard).
/// `emit` translates surviving (row p of a, row q of b, estimate) into a
/// caller-oriented scan::Pair; it is called only for pairs at or above
/// the threshold, under no lock (each work unit owns its output buffer).
struct Pass {
  MatrixView a;
  MatrixView b;  ///< == a for triangle passes
  bool triangle = false;
  /// The log-beta term handed to EstimateFromLogTerms: the snapshot's
  /// own term for a triangle, the mean of the two shards' terms for a
  /// cross-shard rectangle.
  double log_beta_pair = 0.0;
  /// Banding tables of the two sides (null = exact enumeration). Both
  /// must be set, with equal geometry, for a banded rectangle.
  const BandingTable* banding_a = nullptr;
  const BandingTable* banding_b = nullptr;
  std::function<void(size_t p, size_t q, const PairEstimate& est,
                     std::vector<scan::Pair>& out)>
      emit;
};

/// Runs every pass — tiled when exact, bucket-driven when banded — over
/// one dynamic worker pool of `num_threads` (0 = hardware concurrency,
/// clamped to the unit count). Returns all emitted pairs concatenated in
/// deterministic (pass, unit) order; callers sort with scan::PairBefore.
std::vector<scan::Pair> RunPasses(const std::vector<Pass>& passes,
                                  const ScanParams& params, size_t tile_rows,
                                  unsigned num_threads);

}  // namespace vos::core::pair_scan

// SimilarityIndex: batch similarity queries over a VOS sketch.
//
// The sketch answers one pair in O(k); applications usually want "who is
// most similar to u?" or "all pairs above J ≥ τ" over a candidate set
// (e.g. the currently active users). The index snapshots each candidate's
// reconstructed digest once (O(k) hashes per candidate), after which every
// pair costs a single word-parallel Hamming distance — the same
// amortization the evaluation harness uses, packaged as a public API.
//
// The index is a *snapshot*: estimates reflect the sketch state at the
// last Rebuild(). Rebuild after ingesting more stream (cheap relative to
// re-scanning pairs).

#pragma once

#include <vector>

#include "common/bit_vector.h"
#include "core/vos_estimator.h"
#include "core/vos_sketch.h"

namespace vos::core {

/// Snapshot index over a candidate set of users.
class SimilarityIndex {
 public:
  /// One query answer.
  struct Entry {
    UserId user = 0;       ///< the matched candidate
    double common = 0.0;   ///< ŝ (estimated common items with the query)
    double jaccard = 0.0;  ///< Ĵ
  };

  /// One thresholded pair (AllPairsAbove).
  struct Pair {
    UserId u = 0;
    UserId v = 0;
    double common = 0.0;
    double jaccard = 0.0;
  };

  /// Binds to `sketch` (not owned; must outlive the index).
  explicit SimilarityIndex(const VosSketch& sketch,
                           VosEstimatorOptions options = {});

  /// Snapshots digests, cardinalities and β for `candidates`.
  void Rebuild(std::vector<UserId> candidates);

  /// The `k` candidates most similar to `query` (by Ĵ, descending;
  /// excluding the query itself if present among candidates). `query` need
  /// not be a candidate — its digest is extracted on the fly.
  std::vector<Entry> TopK(UserId query, size_t k) const;

  /// All unordered candidate pairs with Ĵ ≥ `jaccard_threshold`,
  /// descending by Ĵ. O(candidates²) Hamming scans.
  std::vector<Pair> AllPairsAbove(double jaccard_threshold) const;

  size_t candidate_count() const { return candidates_.size(); }

  /// β captured at the last Rebuild (exposed for diagnostics).
  double snapshot_beta() const { return beta_; }

 private:
  PairEstimate EstimateFromDigests(const BitVector& a, uint32_t card_a,
                                   const BitVector& b, uint32_t card_b) const;

  const VosSketch* sketch_;
  VosEstimator estimator_;
  std::vector<UserId> candidates_;
  std::vector<BitVector> digests_;
  std::vector<uint32_t> cardinalities_;
  double beta_ = 0.0;
};

}  // namespace vos::core

// SimilarityIndex: batched, parallel similarity queries over a VOS sketch.
//
// The sketch answers one pair in O(k); applications usually want "who is
// most similar to u?" or "all pairs above J ≥ τ" over a candidate set
// (e.g. the currently active users). Rebuild() snapshots every candidate's
// reconstructed digest into a DigestMatrix — one contiguous packed buffer,
// filled by a thread-parallel extraction pass over the sketch's cached
// f-seed table — after which a pair estimate is one word-wise XOR+popcount
// row kernel (common/popcount.h) plus a table lookup:
//
//   * ŝ depends on the Hamming distance d only through ln|1−2·d/k|, which
//     takes k+1 values; Rebuild-time tabulation removes every log/divide
//     from the O(U²) loop (bit-identical by construction — see
//     VosEstimator::EstimateFromLogTerms).
//   * AllPairsAbove runs on the shared tiled pair-scan tier
//     (core/pair_scan.h): the triangle is decomposed into cache-sized
//     row×row tiles, each an independent work unit with its own result
//     buffer, merged and canonically sorted at the end; results are
//     bit-identical for every thread count and tile size.
//   * A conservative prefilter converts the Jaccard threshold into
//     cardinality and alpha (log-term) bounds. Because Ĵ ≥ τ forces
//     min(n_u,n_v) ≥ τ/(1+τ)·(n_u+n_v), the all-pairs sweep runs in
//     cardinality-sorted order: the admissible partners of each row form a
//     contiguous window, and the inner loop breaks at its end — hopeless
//     pairs are never enumerated, let alone popcounted. Pairs inside the
//     window whose Hamming distance rules τ out are skipped before the
//     estimator. All slacks are chosen so the filter never drops a pair
//     the full estimator would keep; prefilter on/off is asserted
//     identical in tests.
//
// TopKReference / AllPairsAboveReference keep the original scalar
// implementation (per-user BitVector digests, one estimator call per
// pair). They are the ground truth the batch engine is asserted
// bit-identical against, and the baseline bench/micro_query_path.cc
// measures speedups over.
//
// The index is a *snapshot*: estimates reflect the sketch state at the
// last Rebuild(). This includes the TopK query user whenever it is among
// the candidates — its stored row and cardinality are reused instead of
// re-extracting per call. Rebuild after ingesting more stream (cheap
// relative to re-scanning pairs).
//
// Thread-safety contract: Rebuild() and RefreshDirty() mutate the index
// and must not run concurrently with queries (or each other). Between
// snapshots the index is immutable; TopK, AllPairsAbove and their
// *Reference twins are const and safe to call concurrently from any
// number of threads (each call may itself spawn
// QueryOptions::num_threads workers). Snapshot calls additionally read —
// and, under QueryOptions::incremental, consume — the bound sketch's
// dirty set, so they must not race with sketch Updates either; quiesce
// the ingest pipeline (ShardedVosSketch::Flush) before snapshotting.

#pragma once

#include <atomic>
#include <unordered_map>
#include <vector>

#include "common/bit_vector.h"
#include "core/digest_matrix.h"
#include "core/pair_scan.h"
#include "core/query_optimizer.h"
#include "core/scan_common.h"
#include "core/vos_estimator.h"
#include "core/vos_sketch.h"

namespace vos::core {

/// Tunables of the batch query engine.
struct QueryOptions {
  /// Worker threads per query / Rebuild extraction pass
  /// (0 = std::thread::hardware_concurrency()).
  unsigned num_threads = 0;
  /// Rows per parallel work unit in the TopK candidate loop. Small
  /// blocks balance mixed-cost workloads; large blocks cut scheduling
  /// overhead. (The all-pairs loop is governed by `tile_rows` below.)
  size_t block_size = 128;
  /// Rows per tile edge of the all-pairs pair scan (core/pair_scan.h):
  /// every triangle/rectangle pass is decomposed into tile_rows ×
  /// tile_rows row tiles, each one work unit on the pool, so a hot
  /// shard's triangle parallelizes and candidate sets beyond the LLC
  /// stay cache-resident per tile. 0 = the tier default (256); any
  /// value ≥ the candidate count degenerates to one tile per pass.
  /// Results are bit-identical for every value.
  size_t tile_rows = 0;
  /// Opt-in LSH banding for AllPairsAbove (0 = exact enumeration, the
  /// default). When > 0, Rebuild/RefreshDirty additionally index the
  /// leading banding_bands × banding_rows_per_band digest bits into
  /// per-band bucket tables (pair_scan::BandingTable) and AllPairsAbove
  /// estimates only bucket-colliding pairs: every reported pair carries
  /// the exact estimate (the banded result is a strict subset of the
  /// exact result — precision 1), but pairs colliding in no band are
  /// missed, so recall < 1 is possible and should be measured against
  /// the exact path (see the banding recall contract in
  /// src/core/README.md). Requests are clamped so bands ·
  /// rows_per_band ≤ k. Cost note: the table is re-keyed and re-sorted
  /// wholesale at every Rebuild AND RefreshDirty (the cardinality
  /// re-sort permutes row indices even for clean rows, so there is no
  /// incremental update today — O(bands · n log n) per refresh); with a
  /// high refresh cadence measure that cost before enabling banding on
  /// an incremental index.
  uint32_t banding_bands = 0;
  /// Digest bits per band ("rows" in the classic LSH sense — each digest
  /// bit is one parity row). Must be in [1, 64]. More bits per band cut
  /// candidates harder but lower per-band collision probability.
  uint32_t banding_rows_per_band = 8;
  /// Degenerate-bucket guard (pair_scan::BandingTable): key runs longer
  /// than this are split into max_bucket-sized cohorts and banded
  /// candidates are enumerated within cohorts only, bounding candidate
  /// generation by O(run · max_bucket) per bucket even when sparse
  /// digests collapse ~n rows into one all-zero bucket. Costs recall on
  /// pairs straddling a cohort boundary; 0 disables the guard.
  uint32_t banding_max_bucket = 1024;
  /// Recall floor for the optimizer's feedback loop: when a banded
  /// AllPairsAbove's measured recall (reported via ReportMeasuredRecall)
  /// falls below this, the NEXT snapshot (Rebuild/RefreshDirty) plans
  /// this index's passes exact until a snapshot completes without an
  /// undershoot. 0 (the default) disables the feedback.
  double banding_recall_floor = 0.0;
  /// Per-pass plan selection for AllPairsAbove/TopK
  /// (core/query_optimizer.h): kAuto prices the exact vs banded plan
  /// with calibrated kernel costs per pass; the force modes pin it
  /// (kForceBanded degrades to exact where no banding table exists).
  /// The VOS_PLAN env var overrides this per query when set.
  optimizer::PlanMode plan = optimizer::PlanMode::kAuto;
  /// Optimistic warm seed for QueryPlanner::TopK's shared raise-only
  /// threshold bound (≤ 0 = cold start, the default). Any value is
  /// safe: the result is verified to dominate the seed and the scan
  /// reruns cold when it does not, so results are always bit-identical
  /// to a cold start — a good seed (the previous checkpoint's k-th best
  /// Ĵ) just skips most of the popcounts.
  double topk_warm_threshold = -1.0;
  /// Planner-held warm start: QueryPlanner remembers each completed
  /// TopK's k-th best Ĵ per (query, k) and seeds the next call for that
  /// same query with it (same verification + cold fallback as
  /// topk_warm_threshold; per-query keying keeps a mixed query set from
  /// cross-polluting bounds). Off by default; intended for the
  /// checkpoint loop's repeated same-query-set TopK calls.
  bool topk_warm_start = false;
  /// Enable the cardinality + Hamming-distance prescreen in
  /// AllPairsAbove. Only applied when the estimator clamps to the
  /// feasible range (the default); results are identical either way.
  bool prefilter = true;
  /// Retain incremental-maintenance state at Rebuild so RefreshDirty()
  /// can run: a copy of the sketch array (m bits), every candidate row's
  /// k cell indices, and a cell-word → candidate inverse index (≈ 8 bytes
  /// per candidate-bit — e.g. 2,000 candidates × k=6400 ≈ 100 MiB).
  /// Costs one extra pass at Rebuild; leave off for rebuild-only indexes.
  bool incremental = false;
  /// Adaptive refresh: RefreshDirty() falls back to a full Rebuild() when
  /// more than this fraction of the candidates is affected — past the
  /// measured break-even (~50% dirty, bench/micro_ingest_path.cc) the
  /// refresh bookkeeping costs more than re-extracting everything.
  /// Results are bit-identical either way; only the time differs. Set
  /// > 1 to force the incremental path always, ≤ 0 to always rebuild.
  double refresh_fallback_fraction = 0.5;
};

/// Snapshot index over a candidate set of users.
class SimilarityIndex {
 public:
  /// One query answer (record shared with the scan tier,
  /// core/scan_common.h: user / common / jaccard).
  using Entry = scan::Entry;

  /// One thresholded pair from AllPairsAbove (u / v / common / jaccard).
  using Pair = scan::Pair;

  /// Binds to `sketch` (not owned; must outlive the index).
  explicit SimilarityIndex(const VosSketch& sketch,
                           VosEstimatorOptions options = {},
                           QueryOptions query_options = {});

  /// Snapshots digests, cardinalities and β for `candidates` (extraction
  /// runs on QueryOptions::num_threads workers). With
  /// QueryOptions::incremental it additionally captures the refresh
  /// state (snapshot array, per-row cells, inverse index) and consumes
  /// the sketch's dirty set.
  void Rebuild(std::vector<UserId> candidates);

  /// Incrementally re-snapshots the SAME candidate set, re-extracting
  /// only rows that may have changed since the last Rebuild()/
  /// RefreshDirty(): rows of users in the sketch's dirty set (covers
  /// every cardinality change) plus rows owning an array cell whose bit
  /// changed (covers every digest change, including shared-cell
  /// contamination flips caused by OTHER users' updates). Refreshed rows are
  /// re-read from their captured cells (k array lookups, no hashing),
  /// clean rows are block-copied into the new cardinality-sorted order,
  /// and β is recaptured — the result is asserted bit-identical to a full
  /// Rebuild(candidates) in tests for every dirty fraction and thread
  /// count. The log-alpha table depends only on k and is never rebuilt
  /// (k is fixed for the sketch's lifetime). Requires
  /// QueryOptions::incremental and a prior Rebuild(); consumes the
  /// sketch's dirty set (at most one incremental consumer per sketch —
  /// see VosSketch's dirty-tracking contract).
  ///
  /// Cost: O(m/64) for the word delta + O(k) per affected row + one
  /// row-copy pass, vs. Rebuild's O(k) hashes per candidate — ≥5× faster
  /// when ≤10% of candidates are affected (bench/micro_ingest_path.cc).
  ///
  /// Adaptive fallback: when the affected fraction exceeds
  /// QueryOptions::refresh_fallback_fraction the call delegates to a full
  /// Rebuild() of the same candidates (bit-identical result, cheaper past
  /// the break-even). Returns true when the incremental path ran, false
  /// when it fell back.
  bool RefreshDirty();

  /// True once Rebuild() has captured incremental state (i.e.
  /// RefreshDirty() may be called).
  bool CanRefresh() const {
    return query_options_.incremental && !snapshot_words_.empty();
  }

  /// The `k` candidates most similar to `query` (by Ĵ, descending;
  /// excluding the query itself if present among candidates). When the
  /// query is a candidate its snapshot row is reused; otherwise its digest
  /// is extracted from the live sketch.
  std::vector<Entry> TopK(UserId query, size_t k) const;

  /// All unordered candidate pairs with Ĵ ≥ `jaccard_threshold`,
  /// descending by Ĵ (ties by (u, v)). Runs on the tiled pair-scan tier
  /// (core/pair_scan.h): exact by default, bucket-driven when
  /// QueryOptions::banding_bands > 0 (subset of the exact result with
  /// identical per-pair estimates; recall measured against the exact
  /// path).
  std::vector<Pair> AllPairsAbove(double jaccard_threshold) const;

  /// Scalar reference implementation of TopK: single-threaded, per-user
  /// BitVector digests, one estimator (log) call per pair. Kept as the
  /// ground truth for bit-identity tests and as the bench baseline.
  std::vector<Entry> TopKReference(UserId query, size_t k) const;

  /// Scalar reference implementation of AllPairsAbove (see TopKReference).
  std::vector<Pair> AllPairsAboveReference(double jaccard_threshold) const;

  size_t candidate_count() const { return candidates_.size(); }

  /// The candidate set of the last Rebuild, in the caller's order.
  const std::vector<UserId>& candidates() const { return candidates_; }

  /// β captured at the last Rebuild (exposed for diagnostics).
  double snapshot_beta() const { return beta_; }

  /// VosEstimator::LogBetaTerm(snapshot_beta()) — the β log term every
  /// estimate from this snapshot uses. The cross-shard query planner
  /// combines two of these (core/query_planner.h).
  double log_beta_term() const { return log_beta_term_; }

  /// Matrix row of `user` (first occurrence among candidates), or npos.
  /// The planner reads snapshot rows by user through this.
  size_t RowIndexOf(UserId user) const { return RowOf(user); }

  /// Cardinality snapshot of matrix row p (rows are cardinality-sorted).
  uint32_t row_cardinality(size_t p) const { return cards_by_row_[p]; }

  /// All row cardinalities in matrix-row order (non-decreasing); the
  /// planner's cross-shard window search binary-searches this directly.
  const std::vector<uint32_t>& row_cardinalities() const {
    return cards_by_row_;
  }

  static constexpr size_t npos = static_cast<size_t>(-1);

  /// The packed digest snapshot (exposed for tests and diagnostics).
  /// Rows are stored in cardinality-sorted order — row p belongs to
  /// candidate sorted_to_candidate(p) — so the all-pairs sweep streams
  /// contiguous memory.
  const DigestMatrix& matrix() const { return matrix_; }

  /// The candidate-list index owning matrix row p.
  size_t sorted_to_candidate(size_t p) const { return sorted_rows_[p]; }

  /// The LSH banding table of the current snapshot, or nullptr when
  /// banding is off (QueryOptions::banding_bands == 0). Rebuilt with
  /// every Rebuild()/RefreshDirty(); the planner joins two shards'
  /// tables for banded cross-shard passes.
  const pair_scan::BandingTable* banding_table() const {
    return banding_.empty() ? nullptr : &banding_;
  }

  const QueryOptions& query_options() const { return query_options_; }
  void set_query_options(const QueryOptions& options) {
    query_options_ = options;
  }

  /// The optimizer's verdict for this snapshot's all-pairs triangle at
  /// `jaccard_threshold`: the same statistics → cost → plan decision
  /// AllPairsAbove(jaccard_threshold) would execute (shared code path),
  /// exposed for diagnostics, benches and tests.
  optimizer::PassReport PlanAllPairs(double jaccard_threshold) const;

  /// Feedback input of the optimizer's recall loop: callers that measure
  /// a banded query's recall against the exact path report it here. When
  /// it undercuts QueryOptions::banding_recall_floor the NEXT snapshot
  /// re-plans this index exact (auto mode only; forced modes are never
  /// overridden). Thread-safe and const — queries are const and
  /// concurrent; the flag is latched into planning state only at the
  /// next Rebuild/RefreshDirty, which the snapshot contract already
  /// serializes against queries.
  void ReportMeasuredRecall(double recall) const;

  /// True when recall feedback has forced this snapshot's plans exact.
  bool banding_feedback_force_exact() const {
    return banding_feedback_force_exact_;
  }

  /// Affected-candidate fraction of the last snapshot (1.0 after a full
  /// Rebuild) — the optimizer's banding-upkeep statistic.
  double last_refresh_dirty_fraction() const {
    return last_refresh_dirty_fraction_;
  }

  /// Plan the most recent TopK executed with (diagnostic; relaxed, so
  /// only meaningful once the call that set it returned).
  optimizer::PlanKind last_topk_plan() const {
    return last_topk_plan_.load(std::memory_order_relaxed);
  }

 private:
  /// Recomputes the cardinality-sorted order and every row map from
  /// candidates_/cardinalities_ (shared by Rebuild and RefreshDirty, so
  /// both produce the identical deterministic order).
  void SortRowsAndMaps();

  /// (Re)builds banding_ from the current matrix_ when banding is on;
  /// clears it otherwise. Called at the end of Rebuild and RefreshDirty.
  void RebuildBanding();

  /// Latches pending recall feedback into banding_feedback_force_exact_
  /// (called at every snapshot boundary, where queries are quiescent).
  void AbsorbRecallFeedback();

  /// The shared stats → plan decision for this snapshot's triangle pass
  /// (used verbatim by PlanAllPairs and AllPairsAbove, so the report
  /// always predicts the execution).
  optimizer::PassReport PlanTrianglePass(double jaccard_threshold,
                                         bool prefilter) const;

  /// Reference-path estimate from two BitVector digests.
  PairEstimate EstimateFromDigests(const BitVector& a, uint32_t card_a,
                                   const BitVector& b, uint32_t card_b) const;

  /// Batch-path estimate from two packed rows.
  PairEstimate EstimateRows(const uint64_t* a, uint32_t card_a,
                            const uint64_t* b, uint32_t card_b) const;

  /// TopK core over an explicit query row + cardinality.
  std::vector<Entry> TopKFromRow(UserId query, const uint64_t* query_row,
                                 uint32_t query_card, size_t k) const;

  /// Row index of `user` among the candidates, or npos.
  size_t RowOf(UserId user) const;

  static constexpr size_t kNpos = npos;

  const VosSketch* sketch_;
  VosEstimator estimator_;
  QueryOptions query_options_;
  std::vector<UserId> candidates_;
  /// Digest rows in cardinality-sorted order (ties by candidate index):
  /// the sweep order that turns the τ cardinality bound into a loop break
  /// while streaming the matrix contiguously.
  DigestMatrix matrix_;
  /// Cardinalities in candidate order (reference paths, diagnostics).
  std::vector<uint32_t> cardinalities_;
  /// Cardinalities aligned with matrix rows (non-decreasing).
  std::vector<uint32_t> cards_by_row_;
  /// sorted_rows_[p] = candidate index owning matrix row p.
  std::vector<uint32_t> sorted_rows_;
  /// row_of_orig_[i] = matrix row of candidate index i.
  std::vector<uint32_t> row_of_orig_;
  /// user → matrix row (first occurrence among candidates).
  std::unordered_map<UserId, size_t> row_of_;
  /// log_alpha_table_[d] = VosEstimator::LogAlphaTerm(d / k) for every
  /// Hamming distance d in [0, k]; built once in the constructor (it
  /// depends only on k, so neither Rebuild nor RefreshDirty touches it).
  std::vector<double> log_alpha_table_;
  double beta_ = 0.0;
  /// VosEstimator::LogBetaTerm(beta_), captured at Rebuild.
  double log_beta_term_ = 0.0;
  /// LSH banding table over matrix_ (empty unless
  /// QueryOptions::banding_bands > 0); see banding_table().
  pair_scan::BandingTable banding_;
  /// Affected fraction of the last snapshot (1.0 for a full Rebuild) —
  /// feeds PassStats::dirty_fraction.
  double last_refresh_dirty_fraction_ = 1.0;
  /// Recall-feedback latch: queries set the pending flag (const +
  /// concurrent, hence atomic); snapshots exchange it into the plain
  /// planning bit below, which queries then read race-free under the
  /// snapshot immutability contract.
  mutable std::atomic<bool> pending_recall_force_exact_{false};
  bool banding_feedback_force_exact_ = false;
  /// Diagnostic: plan of the most recent TopK (see last_topk_plan()).
  mutable std::atomic<optimizer::PlanKind> last_topk_plan_{
      optimizer::PlanKind::kExact};

  // --- Incremental-maintenance state (QueryOptions::incremental) -------
  /// The sketch array words as of the last snapshot; XOR against the live
  /// words localizes every changed cell. RefreshDirty re-syncs only the
  /// words it finds changed, so no full copy is ever repeated.
  std::vector<uint64_t> snapshot_words_;
  /// cells_[i·k + j] = f_j(candidates_[i]) — captured once at Rebuild
  /// (cells depend only on the user, never on the array, so refreshes
  /// re-read rows without hashing).
  std::vector<uint32_t> cells_;
  /// Counting-sorted inverse index over cell words: the candidates owning
  /// a cell in array word w are bucket_entries_[bucket_offsets_[w] ..
  /// bucket_offsets_[w+1]), each entry packed as
  /// (candidate_index << 6) | (cell & 63) so detection tests the exact
  /// changed bit — a flip affects only true cell owners (expected
  /// n·k/m candidates), not every row sharing the 64-bit word.
  std::vector<uint32_t> bucket_offsets_;
  std::vector<uint32_t> bucket_entries_;
};

}  // namespace vos::core

// VOS — Virtual Odd Sketch (the paper's contribution, §IV).
//
// One shared bit array A of m bits serves all users. User u's k-bit odd
// sketch is *virtual*: its bit j lives at cell f_j(u) of A, where f_1..f_k
// are independent user hashes. Processing element (u, i, a) flips the single
// bit A[f_ψ(i)(u)] — insertion and deletion are the same XOR — giving O(1)
// update time regardless of k. Because cells are shared across users, a
// reconstructed bit Ô_u[j] = A[f_j(u)] differs from the true odd-sketch bit
// with probability β (the fraction of 1-bits in A); the estimator
// (core/vos_estimator.h) removes this contamination in closed form.
//
// Deviation from the paper (DESIGN.md §2): β is maintained as an exact
// integer 1-bit counter rather than the paper's floating-point running
// update, which is equivalent but exact.

#pragma once

#include <cstdint>
#include <vector>

#include <memory>

#include "common/bit_vector.h"
#include "common/logging.h"
#include "hashing/hash64.h"
#include "hashing/seeds.h"
#include "hashing/tabulation.h"
#include "hashing/two_universal.h"
#include "stream/element.h"

namespace vos::core {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

/// Which hash family implements ψ (item → virtual bit).
///
/// The odd-sketch analysis ([9], and §IV's P(O_uv[j] = 1) derivation)
/// assumes ψ is drawn from a 2-universal family; kMixer is the fast
/// default with empirically equivalent behaviour, kTwoUniversal gives the
/// provable guarantee (Carter–Wegman over 2^61−1), and kTabulation gives
/// 3-independence with Patrascu–Thorup's stronger-than-pairwise behaviour.
/// All three are deterministic in the sketch seed; accuracy is
/// indistinguishable in the test-suite sweeps.
enum class PsiKind : uint8_t {
  kMixer = 0,
  kTwoUniversal = 1,
  kTabulation = 2,
};

/// Sizing and seeding of a VOS sketch.
struct VosConfig {
  /// k — bits in each user's virtual odd sketch. The paper sets this λ
  /// times the per-user bit budget of the baselines (λ = 2 in §V); see
  /// harness/memory_budget.h for the translation.
  uint32_t k = 6400;
  /// m — bits in the shared array A. Under the paper's equal-memory rule
  /// this is the whole budget: m = 32·k_base·|U| bits.
  uint64_t m = 1 << 22;
  /// Master seed; ψ and f_1..f_k are derived from it.
  uint64_t seed = 42;
  /// Hash family for ψ (see PsiKind).
  PsiKind psi_kind = PsiKind::kMixer;
  /// Optional override for the f-family master seed (0 = derive from
  /// `seed` as usual). Sharded deployments (core/sharded_vos_sketch.h)
  /// give each shard its own f family while sharing `seed` — and hence ψ —
  /// so digests extracted from different shards remain XOR-comparable
  /// (common items still cancel) while the shards' cell maps stay
  /// independent.
  uint64_t f_seed = 0;
  /// Maintain the per-user dirty set (see dirty_users()). Costs one extra
  /// epoch load+compare per Update; turn off for sketches that will never
  /// be consumed incrementally (the harness does, so the Figure-2 update
  /// measurement stays at the paper's bare O(1) cost).
  bool track_dirty = true;
};

/// The VOS sketch: shared array + per-user cardinality counters.
class VosSketch {
 public:
  /// Creates an empty sketch for users 0..num_users.
  VosSketch(const VosConfig& config, UserId num_users);

  /// Processes one stream element in O(1): flips A[f_ψ(i)(u)] and adjusts
  /// n_u by ±1. Under VosConfig::track_dirty it also marks the user dirty
  /// (see dirty_users()) in O(1) amortized — one epoch compare, plus a
  /// push the first time a user is touched after a snapshot.
  void Update(const Element& e) {
    array_.Flip(CellOf(e.user, BucketOf(e.item)));
    if (e.action == Action::kInsert) {
      ++cardinality_[e.user];
    } else {
      VOS_DCHECK(cardinality_[e.user] > 0) << "deletion below zero" << e;
      --cardinality_[e.user];
    }
    MarkDirty(e.user);
  }

  /// ψ(item) ∈ [0, k) — which virtual bit of its user an item toggles.
  uint32_t BucketOf(ItemId item) const {
    switch (config_.psi_kind) {
      case PsiKind::kTwoUniversal:
        return static_cast<uint32_t>((*psi_two_universal_)(item));
      case PsiKind::kTabulation:
        return static_cast<uint32_t>(
            hash::ReduceToRange((*psi_tabulation_)(item), config_.k));
      case PsiKind::kMixer:
        break;
    }
    return static_cast<uint32_t>(
        hash::ReduceToRange(hash::Hash64(item, psi_seed_), config_.k));
  }

  /// f_j(user) ∈ [0, m) — the shared-array cell backing virtual bit j.
  ///
  /// The per-j sub-seed DeriveSeed(f_seed_, j) is precomputed once in the
  /// constructor (see f_seed_table()), so every CellOf costs a single
  /// Hash64 instead of two chained mixes — this is on the O(1) update path
  /// *and* the O(k) digest-extraction path.
  uint64_t CellOf(UserId user, uint32_t j) const {
    return hash::ReduceToRange(hash::Hash64(user, (*f_seeds_)[j]),
                               config_.m);
  }

  /// The cached per-j f-seeds: f_seed_table()[j] == DeriveSeed(f_seed, j).
  /// Batch extraction (core/digest_matrix.h) iterates this directly.
  const std::vector<uint64_t>& f_seed_table() const { return *f_seeds_; }

  /// Reconstructed bit Ô_u[j] = A[f_j(u)].
  bool GetUserBit(UserId user, uint32_t j) const {
    return array_.Get(CellOf(user, j));
  }

  /// Materializes the full reconstructed sketch Ô_u (k bits). O(k); used by
  /// the batch query path so pair estimates cost one Hamming distance.
  BitVector ExtractUserSketch(UserId user) const;

  /// β — exact fraction of 1-bits in A.
  double beta() const { return array_.FractionOnes(); }

  /// n_u — the user's current number of subscribed items.
  uint32_t Cardinality(UserId user) const { return cardinality_[user]; }

  /// The shared array (tests inspect it; production code should not).
  const BitVector& array() const { return array_; }

  const VosConfig& config() const { return config_; }
  UserId num_users() const {
    return static_cast<UserId>(cardinality_.size());
  }

  /// Sketch memory: the shared array. Cardinality counters are excluded —
  /// every compared method keeps the identical counters (see
  /// SimilarityMethod::MemoryBits).
  size_t MemoryBits() const { return array_.MemoryBits(); }

  /// Per-user bookkeeping bits: cardinality counters plus (when tracked)
  /// dirty epochs. Excluded from MemoryBits() by the SimilarityMethod
  /// convention above, but counted by sharded facades — whether this
  /// state is allocated once per user or once per (user, shard) is real
  /// memory the facade is accountable for
  /// (see ShardedVosSketch::MemoryBits).
  size_t PerUserStateBits() const {
    return (cardinality_.size() + dirty_epoch_.size()) * sizeof(uint32_t) * 8;
  }

  /// Merges another shard's sketch into this one (distributed ingestion).
  ///
  /// If the stream is partitioned across shards — every element processed
  /// by exactly one shard — then XOR-ing the arrays and summing the
  /// cardinality counters yields exactly the sketch of the whole stream,
  /// because both are element-wise sums (mod 2 / over ℤ) of per-element
  /// contributions. Partition by *user* (e.g. hash(u) % shards) so each
  /// shard's sub-stream stays locally feasible; splitting one user across
  /// shards still merges correctly but trips the debug-build feasibility
  /// check on deletion-before-insertion shards. Both sketches must have
  /// identical configs (same k, m and seed ⇒ same ψ and f_j) and user
  /// counts; aborts otherwise.
  void MergeFrom(const VosSketch& other);

  /// True iff `other` was built with an identical configuration (and is
  /// therefore mergeable/comparable).
  bool IsCompatibleWith(const VosSketch& other) const {
    return config_.k == other.config_.k && config_.m == other.config_.m &&
           config_.seed == other.config_.seed &&
           config_.psi_kind == other.config_.psi_kind &&
           f_seed_ == other.f_seed_ &&
           cardinality_.size() == other.cardinality_.size();
  }

  // --- Dirty tracking (incremental index maintenance) -------------------
  //
  // The sketch records which users received updates since the last
  // ClearDirtyUsers(), so a snapshot consumer (SimilarityIndex) can
  // refresh only the rows that may have changed instead of re-extracting
  // every candidate. Maintenance is O(1) amortized per Update: an epoch
  // compare, plus one push_back the first time a user is touched in the
  // current epoch.
  //
  // Contract: the dirty set covers *which users were updated* — because
  // array cells are shared, an update for user v can still flip a bit of
  // a clean user u's reconstructed digest. Incremental consumers must
  // therefore pair the dirty set with an array-delta check (see
  // SimilarityIndex::RefreshDirty); the dirty set alone is exact for
  // cardinality changes, which never appear in the array delta.
  //
  // Thread-safety: Update/MarkDirty follow the sketch's single-writer
  // model. ClearDirtyUsers is logically const (snapshot-consumer
  // bookkeeping over mutable members) and must not race with Update;
  // with multiple consumers of one sketch, only one may clear.

  /// True iff this sketch maintains the dirty set
  /// (VosConfig::track_dirty).
  bool tracks_dirty() const { return !dirty_epoch_.empty(); }

  /// Users touched by Update() since the last ClearDirtyUsers(),
  /// deduplicated, in first-touch order; MergeFrom additionally marks
  /// users whose merged cardinality changed (a merge CAN flip a user's
  /// array bits without a net cardinality change — such users are not
  /// listed here, by design: digest-level changes are only detectable
  /// via an array delta, which is exactly how RefreshDirty pairs with
  /// this set). Always empty when tracking is off.
  const std::vector<UserId>& dirty_users() const { return dirty_users_; }

  /// True iff `user` is in dirty_users().
  bool IsDirty(UserId user) const {
    return tracks_dirty() && dirty_epoch_[user] == dirty_current_epoch_;
  }

  /// Empties the dirty set (O(1): bumps the epoch). Called by snapshot
  /// consumers once they have captured the set.
  void ClearDirtyUsers() const;

 private:
  friend class VosSketchIo;  // serialization needs raw state access

  void MarkDirty(UserId user) const {
    if (dirty_epoch_.empty()) return;  // tracking off
    uint32_t& epoch = dirty_epoch_[user];
    if (epoch != dirty_current_epoch_) {
      epoch = dirty_current_epoch_;
      dirty_users_.push_back(user);
    }
  }

  VosConfig config_;
  uint64_t psi_seed_;
  uint64_t f_seed_;
  // Engaged per config_.psi_kind; shared_ptr so sketches stay copyable
  // (snapshots!) without duplicating the 16 KiB tabulation tables.
  std::shared_ptr<const hash::TwoUniversalHash> psi_two_universal_;
  std::shared_ptr<const hash::TabulationHash> psi_tabulation_;
  // Cached f_seeds_[j] = DeriveSeed(f_seed_, j); immutable after
  // construction and shared across snapshot copies (k entries, 8k bytes).
  std::shared_ptr<const std::vector<uint64_t>> f_seeds_;
  BitVector array_;
  std::vector<uint32_t> cardinality_;
  // Dirty-set state (see the contract above). dirty_epoch_[u] equals
  // dirty_current_epoch_ iff u is dirty; clearing bumps the epoch instead
  // of touching the per-user array. Mutable: the set is snapshot-consumer
  // bookkeeping, not sketch state — a cleared sketch is the same sketch.
  mutable std::vector<uint32_t> dirty_epoch_;
  mutable std::vector<UserId> dirty_users_;
  mutable uint32_t dirty_current_epoch_ = 1;
};

}  // namespace vos::core

// VOS — Virtual Odd Sketch (the paper's contribution, §IV).
//
// One shared bit array A of m bits serves all users. User u's k-bit odd
// sketch is *virtual*: its bit j lives at cell f_j(u) of A, where f_1..f_k
// are independent user hashes. Processing element (u, i, a) flips the single
// bit A[f_ψ(i)(u)] — insertion and deletion are the same XOR — giving O(1)
// update time regardless of k. Because cells are shared across users, a
// reconstructed bit Ô_u[j] = A[f_j(u)] differs from the true odd-sketch bit
// with probability β (the fraction of 1-bits in A); the estimator
// (core/vos_estimator.h) removes this contamination in closed form.
//
// Deviation from the paper (DESIGN.md §2): β is maintained as an exact
// integer 1-bit counter rather than the paper's floating-point running
// update, which is equivalent but exact.

#pragma once

#include <cstdint>
#include <vector>

#include <memory>

#include "common/bit_vector.h"
#include "common/logging.h"
#include "hashing/hash64.h"
#include "hashing/seeds.h"
#include "hashing/tabulation.h"
#include "hashing/two_universal.h"
#include "stream/element.h"

namespace vos::core {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

/// Which hash family implements ψ (item → virtual bit).
///
/// The odd-sketch analysis ([9], and §IV's P(O_uv[j] = 1) derivation)
/// assumes ψ is drawn from a 2-universal family; kMixer is the fast
/// default with empirically equivalent behaviour, kTwoUniversal gives the
/// provable guarantee (Carter–Wegman over 2^61−1), and kTabulation gives
/// 3-independence with Patrascu–Thorup's stronger-than-pairwise behaviour.
/// All three are deterministic in the sketch seed; accuracy is
/// indistinguishable in the test-suite sweeps.
enum class PsiKind : uint8_t {
  kMixer = 0,
  kTwoUniversal = 1,
  kTabulation = 2,
};

/// Sizing and seeding of a VOS sketch.
struct VosConfig {
  /// k — bits in each user's virtual odd sketch. The paper sets this λ
  /// times the per-user bit budget of the baselines (λ = 2 in §V); see
  /// harness/memory_budget.h for the translation.
  uint32_t k = 6400;
  /// m — bits in the shared array A. Under the paper's equal-memory rule
  /// this is the whole budget: m = 32·k_base·|U| bits.
  uint64_t m = 1 << 22;
  /// Master seed; ψ and f_1..f_k are derived from it.
  uint64_t seed = 42;
  /// Hash family for ψ (see PsiKind).
  PsiKind psi_kind = PsiKind::kMixer;
};

/// The VOS sketch: shared array + per-user cardinality counters.
class VosSketch {
 public:
  /// Creates an empty sketch for users 0..num_users.
  VosSketch(const VosConfig& config, UserId num_users);

  /// Processes one stream element in O(1): flips A[f_ψ(i)(u)] and adjusts
  /// n_u by ±1.
  void Update(const Element& e) {
    array_.Flip(CellOf(e.user, BucketOf(e.item)));
    if (e.action == Action::kInsert) {
      ++cardinality_[e.user];
    } else {
      VOS_DCHECK(cardinality_[e.user] > 0) << "deletion below zero" << e;
      --cardinality_[e.user];
    }
  }

  /// ψ(item) ∈ [0, k) — which virtual bit of its user an item toggles.
  uint32_t BucketOf(ItemId item) const {
    switch (config_.psi_kind) {
      case PsiKind::kTwoUniversal:
        return static_cast<uint32_t>((*psi_two_universal_)(item));
      case PsiKind::kTabulation:
        return static_cast<uint32_t>(
            hash::ReduceToRange((*psi_tabulation_)(item), config_.k));
      case PsiKind::kMixer:
        break;
    }
    return static_cast<uint32_t>(
        hash::ReduceToRange(hash::Hash64(item, psi_seed_), config_.k));
  }

  /// f_j(user) ∈ [0, m) — the shared-array cell backing virtual bit j.
  ///
  /// The per-j sub-seed DeriveSeed(f_seed_, j) is precomputed once in the
  /// constructor (see f_seed_table()), so every CellOf costs a single
  /// Hash64 instead of two chained mixes — this is on the O(1) update path
  /// *and* the O(k) digest-extraction path.
  uint64_t CellOf(UserId user, uint32_t j) const {
    return hash::ReduceToRange(hash::Hash64(user, (*f_seeds_)[j]),
                               config_.m);
  }

  /// The cached per-j f-seeds: f_seed_table()[j] == DeriveSeed(f_seed, j).
  /// Batch extraction (core/digest_matrix.h) iterates this directly.
  const std::vector<uint64_t>& f_seed_table() const { return *f_seeds_; }

  /// Reconstructed bit Ô_u[j] = A[f_j(u)].
  bool GetUserBit(UserId user, uint32_t j) const {
    return array_.Get(CellOf(user, j));
  }

  /// Materializes the full reconstructed sketch Ô_u (k bits). O(k); used by
  /// the batch query path so pair estimates cost one Hamming distance.
  BitVector ExtractUserSketch(UserId user) const;

  /// β — exact fraction of 1-bits in A.
  double beta() const { return array_.FractionOnes(); }

  /// n_u — the user's current number of subscribed items.
  uint32_t Cardinality(UserId user) const { return cardinality_[user]; }

  /// The shared array (tests inspect it; production code should not).
  const BitVector& array() const { return array_; }

  const VosConfig& config() const { return config_; }
  UserId num_users() const {
    return static_cast<UserId>(cardinality_.size());
  }

  /// Sketch memory: the shared array. Cardinality counters are excluded —
  /// every compared method keeps the identical counters (see
  /// SimilarityMethod::MemoryBits).
  size_t MemoryBits() const { return array_.MemoryBits(); }

  /// Merges another shard's sketch into this one (distributed ingestion).
  ///
  /// If the stream is partitioned across shards — every element processed
  /// by exactly one shard — then XOR-ing the arrays and summing the
  /// cardinality counters yields exactly the sketch of the whole stream,
  /// because both are element-wise sums (mod 2 / over ℤ) of per-element
  /// contributions. Partition by *user* (e.g. hash(u) % shards) so each
  /// shard's sub-stream stays locally feasible; splitting one user across
  /// shards still merges correctly but trips the debug-build feasibility
  /// check on deletion-before-insertion shards. Both sketches must have
  /// identical configs (same k, m and seed ⇒ same ψ and f_j) and user
  /// counts; aborts otherwise.
  void MergeFrom(const VosSketch& other);

  /// True iff `other` was built with an identical configuration (and is
  /// therefore mergeable/comparable).
  bool IsCompatibleWith(const VosSketch& other) const {
    return config_.k == other.config_.k && config_.m == other.config_.m &&
           config_.seed == other.config_.seed &&
           config_.psi_kind == other.config_.psi_kind &&
           cardinality_.size() == other.cardinality_.size();
  }

 private:
  friend class VosSketchIo;  // serialization needs raw state access

  VosConfig config_;
  uint64_t psi_seed_;
  uint64_t f_seed_;
  // Engaged per config_.psi_kind; shared_ptr so sketches stay copyable
  // (snapshots!) without duplicating the 16 KiB tabulation tables.
  std::shared_ptr<const hash::TwoUniversalHash> psi_two_universal_;
  std::shared_ptr<const hash::TabulationHash> psi_tabulation_;
  // Cached f_seeds_[j] = DeriveSeed(f_seed_, j); immutable after
  // construction and shared across snapshot copies (k entries, 8k bytes).
  std::shared_ptr<const std::vector<uint64_t>> f_seeds_;
  BitVector array_;
  std::vector<uint32_t> cardinality_;
};

}  // namespace vos::core

#include "core/vos_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vos::core {

double VosEstimator::SafeLogAbs(double x) const {
  return std::log(std::max(std::fabs(x), options_.log_arg_floor));
}

double VosEstimator::EstimateSymmetricDifference(double alpha,
                                                 double beta) const {
  // n̂Δ = −k·(ln|1−2α| − 2·ln|1−2β|)/2, clamped to ≥ 0: sampling noise can
  // push α below its β-only baseline, which would read as negative nΔ.
  const double raw = -0.5 * k_ *
                     (SafeLogAbs(1.0 - 2.0 * alpha) -
                      2.0 * SafeLogAbs(1.0 - 2.0 * beta));
  return std::max(0.0, raw);
}

double VosEstimator::LogAlphaTerm(double alpha) const {
  return SafeLogAbs(1.0 - 2.0 * alpha);
}

double VosEstimator::LogBetaTerm(double beta) const {
  return SafeLogAbs(1.0 - 2.0 * beta);
}

std::vector<double> VosEstimator::BuildLogAlphaTable() const {
  std::vector<double> table(static_cast<size_t>(k_) + 1);
  for (size_t d = 0; d <= k_; ++d) {
    // Exactly the alpha = d / k conversion of the live estimator paths,
    // so table lookups are bit-identical to direct LogAlphaTerm calls.
    table[d] = LogAlphaTerm(static_cast<double>(d) / k_);
  }
  return table;
}

double VosEstimator::EstimateCommonItemsFromLogTerms(
    double n_u, double n_v, double log_alpha_term,
    double log_beta_term) const {
  // ŝ = (n_u+n_v)/2 + k·(ln|1−2α| − 2·ln|1−2β|)/4
  //   = (n_u+n_v)/2 − n̂Δ/2 (without the ≥0 clamp on n̂Δ).
  double s = 0.5 * (n_u + n_v) +
             0.25 * k_ * (log_alpha_term - 2.0 * log_beta_term);
  if (options_.clamp_to_feasible) {
    s = std::clamp(s, 0.0, std::min(n_u, n_v));
  }
  return s;
}

double VosEstimator::EstimateCommonItems(double n_u, double n_v, double alpha,
                                         double beta) const {
  return EstimateCommonItemsFromLogTerms(n_u, n_v, LogAlphaTerm(alpha),
                                         LogBetaTerm(beta));
}

PairEstimate VosEstimator::EstimateFromLogTerms(double n_u, double n_v,
                                                double log_alpha_term,
                                                double log_beta_term) const {
  PairEstimate est;
  est.common = EstimateCommonItemsFromLogTerms(n_u, n_v, log_alpha_term,
                                               log_beta_term);
  est.jaccard = JaccardFromCommon(est.common, n_u, n_v);
  return est;
}

double VosEstimator::JaccardFromCommon(double common, double n_u,
                                       double n_v) const {
  const double denom = n_u + n_v - common;
  double j;
  if (denom <= 0.0) {
    // Union estimated empty: identical (or both-empty) sets.
    j = common > 0.0 ? 1.0 : 0.0;
  } else {
    j = common / denom;
  }
  if (options_.clamp_to_feasible) j = std::clamp(j, 0.0, 1.0);
  return j;
}

double VosEstimator::ContainmentFromCommon(double common, double n_u) const {
  if (n_u <= 0.0) return 0.0;
  const double c = common / n_u;
  return options_.clamp_to_feasible ? std::clamp(c, 0.0, 1.0) : c;
}

double VosEstimator::OverlapFromCommon(double common, double n_u,
                                       double n_v) const {
  const double denom = std::min(n_u, n_v);
  if (denom <= 0.0) return 0.0;
  const double overlap = common / denom;
  return options_.clamp_to_feasible ? std::clamp(overlap, 0.0, 1.0)
                                    : overlap;
}

PairEstimate VosEstimator::Estimate(double n_u, double n_v, double alpha,
                                    double beta) const {
  PairEstimate est;
  est.common = EstimateCommonItems(n_u, n_v, alpha, beta);
  est.jaccard = JaccardFromCommon(est.common, n_u, n_v);
  return est;
}

double VosEstimator::DeltaMethodVariance(double alpha) const {
  // ŝ = C − (k/4)·ln(1−2α): dŝ/dα = (k/2)/(1−2α); Var[α] ≈ α(1−α)/k.
  const double denom =
      std::max(std::fabs(1.0 - 2.0 * alpha), options_.log_arg_floor);
  const double a = std::clamp(alpha, 0.0, 1.0);
  return k_ * a * (1.0 - a) / (4.0 * denom * denom);
}

VosEstimator::IntervalEstimate VosEstimator::EstimateWithConfidence(
    double n_u, double n_v, double alpha, double beta, double z) const {
  IntervalEstimate interval;
  interval.common = EstimateCommonItems(n_u, n_v, alpha, beta);
  interval.sigma = std::sqrt(DeltaMethodVariance(alpha));
  interval.lo = interval.common - z * interval.sigma;
  interval.hi = interval.common + z * interval.sigma;
  if (options_.clamp_to_feasible) {
    const double cap = std::min(n_u, n_v);
    interval.lo = std::clamp(interval.lo, 0.0, cap);
    interval.hi = std::clamp(interval.hi, 0.0, cap);
  }
  return interval;
}

double VosEstimator::ExpectedAlpha(double n_delta, double beta) const {
  VOS_DCHECK(n_delta >= 0.0);
  const double b = 1.0 - 2.0 * beta;
  return 0.5 * (1.0 - b * b * std::exp(-2.0 * n_delta / k_));
}

double VosEstimator::ExpectedCommonEstimate(double s, double n_delta,
                                            double beta) const {
  // E[ŝ] ≈ s + 1/8 − k·β·e^{2nΔ/k}/(1−2β)² − e^{4nΔ/k}/(8(1−2β)⁴)
  const double b = 1.0 - 2.0 * beta;
  const double e2 = std::exp(2.0 * n_delta / k_);
  return s + 0.125 - (k_ * beta * e2) / (b * b) -
         (e2 * e2) / (8.0 * b * b * b * b);
}

double VosEstimator::VarianceCommonEstimate(double n_delta,
                                            double beta) const {
  // Var[ŝ] ≈ −k/16 + k²·β·e^{2nΔ/k}/(2(1−2β)²) + k·e^{4nΔ/k}/(16(1−2β)⁴)
  const double b = 1.0 - 2.0 * beta;
  const double e2 = std::exp(2.0 * n_delta / k_);
  return -static_cast<double>(k_) / 16.0 +
         (static_cast<double>(k_) * k_ * beta * e2) / (2.0 * b * b) +
         (k_ * e2 * e2) / (16.0 * b * b * b * b);
}

}  // namespace vos::core

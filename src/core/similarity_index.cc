#include "core/similarity_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/popcount.h"
#include "core/pair_scan.h"
#include "core/scan_common.h"

namespace vos::core {
namespace {

// Result orders and the dynamic worker pool are shared with the planner
// (core/scan_common.h) — both paths must sort and schedule identically.
using scan::EntryBefore;
using scan::PairBefore;

template <typename Work>
void RunBlocks(unsigned threads, size_t num_blocks, const Work& work) {
  scan::RunIndexed(threads, num_blocks, work);
}

}  // namespace

SimilarityIndex::SimilarityIndex(const VosSketch& sketch,
                                 VosEstimatorOptions options,
                                 QueryOptions query_options)
    : sketch_(&sketch),
      estimator_(sketch.config().k, options),
      query_options_(query_options),
      log_alpha_table_(estimator_.BuildLogAlphaTable()) {}

void SimilarityIndex::SortRowsAndMaps() {
  const size_t n = candidates_.size();
  sorted_rows_.resize(n);
  for (size_t i = 0; i < n; ++i) sorted_rows_[i] = static_cast<uint32_t>(i);
  std::sort(sorted_rows_.begin(), sorted_rows_.end(),
            [this](uint32_t a, uint32_t b) {
              return cardinalities_[a] != cardinalities_[b]
                         ? cardinalities_[a] < cardinalities_[b]
                         : a < b;
            });
  row_of_orig_.assign(n, 0);
  cards_by_row_.resize(n);
  for (size_t p = 0; p < n; ++p) {
    const uint32_t i = sorted_rows_[p];
    row_of_orig_[i] = static_cast<uint32_t>(p);
    cards_by_row_[p] = cardinalities_[i];
  }
  row_of_.clear();
  row_of_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    row_of_.emplace(candidates_[i], row_of_orig_[i]);  // first occurrence
  }
}

void SimilarityIndex::Rebuild(std::vector<UserId> candidates) {
  candidates_ = std::move(candidates);
  const size_t n = candidates_.size();
  cardinalities_.clear();
  cardinalities_.reserve(n);
  for (UserId u : candidates_) {
    cardinalities_.push_back(sketch_->Cardinality(u));
  }
  SortRowsAndMaps();
  const uint32_t k = sketch_->config().k;
  if (!query_options_.incremental) {
    std::vector<UserId> ordered_users(n);
    for (size_t p = 0; p < n; ++p) {
      ordered_users[p] = candidates_[sorted_rows_[p]];
    }
    matrix_ = DigestMatrix::Build(*sketch_, ordered_users,
                                  query_options_.num_threads);
    snapshot_words_.clear();
    cells_.clear();
    cells_.shrink_to_fit();
    bucket_offsets_.clear();
    bucket_entries_.clear();
  } else {
    // Incremental snapshot: extract as usual but capture every row's
    // cells (keyed by stable candidate index, not by sorted position —
    // the sorted order changes across refreshes, the cells never do).
    const uint64_t m = sketch_->config().m;
    VOS_CHECK(sketch_->tracks_dirty())
        << "incremental index needs a sketch with VosConfig::track_dirty";
    VOS_CHECK(m <= uint64_t{0xffffffff})
        << "incremental index stores cells as uint32; m too large";
    VOS_CHECK(n < (size_t{1} << 26))
        << "incremental index packs candidate ids into 26 bits";
    VOS_CHECK(n * static_cast<size_t>(k) <= uint64_t{0xffffffff})
        << "incremental index offsets are uint32; candidates*k too large";
    cells_.resize(n * static_cast<size_t>(k));
    matrix_ = DigestMatrix(k, n);
    const size_t block = 64;
    const size_t num_blocks = (n + block - 1) / block;
    const unsigned threads =
        ResolveThreadCount(query_options_.num_threads, num_blocks);
    RunBlocks(threads, num_blocks, [&](size_t b) {
      const size_t end = std::min(n, (b + 1) * block);
      for (size_t p = b * block; p < end; ++p) {
        const uint32_t i = sorted_rows_[p];
        DigestMatrix::ExtractRowFromArray(
            sketch_->array(), *sketch_, candidates_[i], matrix_.MutableRow(p),
            cells_.data() + static_cast<size_t>(i) * k);
      }
    });
    // Counting-sorted inverse index, bucketed by cell *word* (so the
    // refresh scan can jump from a changed word straight to its owners)
    // with the exact bit-in-word packed into each entry (so only true
    // owners of a *changed bit* are marked — expected n·k/m rows per
    // flip, independent of word sharing).
    const size_t num_words = (m + 63) / 64;
    bucket_offsets_.assign(num_words + 1, 0);
    for (uint32_t cell : cells_) ++bucket_offsets_[(cell >> 6) + 1];
    for (size_t w = 0; w < num_words; ++w) {
      bucket_offsets_[w + 1] += bucket_offsets_[w];
    }
    bucket_entries_.resize(cells_.size());
    std::vector<uint32_t> cursor(bucket_offsets_.begin(),
                                 bucket_offsets_.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t* row_cells = cells_.data() + i * static_cast<size_t>(k);
      for (uint32_t j = 0; j < k; ++j) {
        const uint32_t cell = row_cells[j];
        bucket_entries_[cursor[cell >> 6]++] =
            (static_cast<uint32_t>(i) << 6) | (cell & 63);
      }
    }
    snapshot_words_ = sketch_->array().words();
    sketch_->ClearDirtyUsers();
  }
  beta_ = sketch_->beta();
  log_beta_term_ = estimator_.LogBetaTerm(beta_);
  last_refresh_dirty_fraction_ = 1.0;
  AbsorbRecallFeedback();
  RebuildBanding();
}

void SimilarityIndex::RebuildBanding() {
  banding_ =
      query_options_.banding_bands > 0
          ? pair_scan::BandingTable(matrix_, query_options_.banding_bands,
                                    query_options_.banding_rows_per_band,
                                    sorted_rows_.data(),
                                    query_options_.banding_max_bucket)
          : pair_scan::BandingTable();
}

void SimilarityIndex::AbsorbRecallFeedback() {
  banding_feedback_force_exact_ =
      pending_recall_force_exact_.exchange(false, std::memory_order_relaxed);
}

bool SimilarityIndex::RefreshDirty() {
  VOS_CHECK(query_options_.incremental)
      << "RefreshDirty needs QueryOptions::incremental";
  VOS_CHECK(snapshot_words_.size() == sketch_->array().words().size())
      << "RefreshDirty before the first incremental Rebuild";
  const size_t n = candidates_.size();
  const uint32_t k = sketch_->config().k;

  // Affected candidates = dirty users (covers cardinality changes — those
  // never show in the array delta) ∪ owners of any cell whose bit changed
  // (covers every possible digest change, including shared-cell flips
  // from other users' updates). Each changed word's XOR mask is tested
  // against the exact bit recorded in the bucket entry, and the snapshot
  // word is re-synced in place — scanned-but-unchanged words cost one
  // compare, changed words are never re-scanned on the next refresh.
  std::vector<uint8_t> affected(n, 0);
  if (!sketch_->dirty_users().empty()) {
    for (size_t i = 0; i < n; ++i) {
      if (sketch_->IsDirty(candidates_[i])) affected[i] = 1;
    }
  }
  const std::vector<uint64_t>& live_words = sketch_->array().words();
  for (size_t w = 0; w < live_words.size(); ++w) {
    const uint64_t mask = live_words[w] ^ snapshot_words_[w];
    if (mask == 0) continue;
    for (size_t idx = bucket_offsets_[w]; idx < bucket_offsets_[w + 1];
         ++idx) {
      const uint32_t entry = bucket_entries_[idx];
      if ((mask >> (entry & 63)) & 1) affected[entry >> 6] = 1;
    }
    snapshot_words_[w] = live_words[w];
  }

  // Adaptive fallback: past the break-even fraction, re-extracting
  // everything is cheaper than refresh bookkeeping. Deciding here costs
  // only the delta scan above; Rebuild re-captures the snapshot anyway,
  // so the in-place word re-sync is harmless.
  size_t affected_count = 0;
  for (const uint8_t a : affected) affected_count += a;
  if (static_cast<double>(affected_count) >
      query_options_.refresh_fallback_fraction * static_cast<double>(n)) {
    Rebuild(std::move(candidates_));
    return false;
  }

  for (size_t i = 0; i < n; ++i) {
    if (affected[i]) cardinalities_[i] = sketch_->Cardinality(candidates_[i]);
  }
  const std::vector<uint32_t> old_row_of_orig = row_of_orig_;
  SortRowsAndMaps();

  // New matrix in the new sorted order: clean rows are block-copied from
  // their old position (bit-identical — none of their cells changed),
  // affected rows re-read from captured cells (k lookups, no hashing).
  DigestMatrix next(k, n);
  const size_t words = next.words_per_row();
  const BitVector& array = sketch_->array();
  const size_t block = 64;
  const size_t num_blocks = (n + block - 1) / block;
  const unsigned threads =
      ResolveThreadCount(query_options_.num_threads, num_blocks);
  RunBlocks(threads, num_blocks, [&](size_t b) {
    const size_t end = std::min(n, (b + 1) * block);
    for (size_t p = b * block; p < end; ++p) {
      const uint32_t i = sorted_rows_[p];
      if (affected[i]) {
        DigestMatrix::ExtractRowFromCells(
            array, cells_.data() + static_cast<size_t>(i) * k, k,
            next.MutableRow(p));
      } else {
        std::memcpy(next.MutableRow(p), matrix_.Row(old_row_of_orig[i]),
                    words * sizeof(uint64_t));
      }
    }
  });
  matrix_ = std::move(next);
  sketch_->ClearDirtyUsers();
  beta_ = sketch_->beta();
  log_beta_term_ = estimator_.LogBetaTerm(beta_);
  last_refresh_dirty_fraction_ =
      n == 0 ? 0.0
             : static_cast<double>(affected_count) / static_cast<double>(n);
  AbsorbRecallFeedback();
  if (query_options_.banding_bands > 0 && !banding_.empty()) {
    // Incremental banding upkeep: `affected` is indexed by candidate
    // index, which IS the table's stable id, so the patch re-keys exactly
    // the re-extracted rows and re-translates the permuted clean ones —
    // bit-identical to RebuildBanding() (asserted in tests), minus the
    // O(bands · n log n) re-sort.
    banding_.Patch(matrix_, sorted_rows_.data(), affected);
  } else {
    RebuildBanding();
  }
  return true;
}

size_t SimilarityIndex::RowOf(UserId user) const {
  const auto it = row_of_.find(user);
  return it == row_of_.end() ? kNpos : it->second;
}

PairEstimate SimilarityIndex::EstimateFromDigests(const BitVector& a,
                                                  uint32_t card_a,
                                                  const BitVector& b,
                                                  uint32_t card_b) const {
  const double alpha = static_cast<double>(a.HammingDistance(b)) /
                       sketch_->config().k;
  return estimator_.Estimate(card_a, card_b, alpha, beta_);
}

PairEstimate SimilarityIndex::EstimateRows(const uint64_t* a, uint32_t card_a,
                                           const uint64_t* b,
                                           uint32_t card_b) const {
  const size_t d = XorPopcount(a, b, matrix_.words_per_row());
  return estimator_.EstimateFromLogTerms(card_a, card_b, log_alpha_table_[d],
                                         log_beta_term_);
}

// ----------------------------------------------------------------- TopK

std::vector<SimilarityIndex::Entry> SimilarityIndex::TopKFromRow(
    UserId query, const uint64_t* query_row, uint32_t query_card,
    size_t k) const {
  const size_t n = matrix_.rows();
  const auto scan = [&](size_t begin, size_t end, std::vector<Entry>* out) {
    for (size_t p = begin; p < end; ++p) {
      const UserId candidate = candidates_[sorted_rows_[p]];
      if (candidate == query) continue;
      const PairEstimate est = EstimateRows(
          query_row, query_card, matrix_.Row(p), cards_by_row_[p]);
      out->push_back({candidate, est.common, est.jaccard});
    }
  };

  // Banded TopK: per-band point lookups on the banding table instead of
  // scanning every row. Candidate rows ⊆ all rows and every estimate is
  // the exact one, so the banded result ranks a subset of the exact
  // ranking (recall < 1 possible, precision 1 — the banding contract).
  optimizer::PlanMode mode = optimizer::EffectivePlanMode(query_options_.plan);
  if (mode == optimizer::PlanMode::kAuto && banding_feedback_force_exact_) {
    mode = optimizer::PlanMode::kForceExact;
  }
  const pair_scan::BandingTable* table = banding_table();
  if (table != nullptr && mode != optimizer::PlanMode::kForceExact) {
    std::vector<uint32_t> cand_rows;
    table->AppendRowCandidates(query_row, matrix_.words_per_row(), &cand_rows);
    std::sort(cand_rows.begin(), cand_rows.end());
    cand_rows.erase(std::unique(cand_rows.begin(), cand_rows.end()),
                    cand_rows.end());
    bool use_banded = mode == optimizer::PlanMode::kForceBanded;
    if (!use_banded) {
      // Auto: price the full-row scan against estimating only the
      // gathered candidates (the lookup itself is already paid; it is
      // O(bands · log n + out), noise next to either plan).
      optimizer::PassStats stats;
      stats.triangle = false;
      stats.rows_a = 1;
      stats.rows_b = n;
      stats.words_per_row = matrix_.words_per_row();
      stats.exact_pairs = n;
      stats.banded_entries = cand_rows.size();
      stats.banded_candidates = cand_rows.size();
      stats.banded_available = true;
      stats.dirty_fraction = 0.0;
      use_banded = optimizer::ChoosePassPlan(stats,
                                             optimizer::CalibratedCosts(),
                                             optimizer::PlanMode::kAuto)
                       .kind == optimizer::PlanKind::kBanded;
    }
    if (use_banded) {
      last_topk_plan_.store(optimizer::PlanKind::kBanded,
                            std::memory_order_relaxed);
      std::vector<Entry> entries;
      entries.reserve(cand_rows.size());
      for (const uint32_t p : cand_rows) {
        // Rows ascending, same estimate calls as the full scan: the
        // surviving entries are bit-identical to their full-scan twins
        // and the sort below is deterministic.
        scan(p, p + 1, &entries);
      }
      const size_t take = std::min(k, entries.size());
      std::partial_sort(entries.begin(), entries.begin() + take,
                        entries.end(), EntryBefore);
      entries.resize(take);
      return entries;
    }
  }
  last_topk_plan_.store(optimizer::PlanKind::kExact,
                        std::memory_order_relaxed);

  std::vector<Entry> entries;
  entries.reserve(n);
  const size_t block = std::max<size_t>(query_options_.block_size, 1);
  const size_t num_blocks = (n + block - 1) / block;
  const unsigned threads =
      ResolveThreadCount(query_options_.num_threads, num_blocks);
  if (threads <= 1) {
    scan(0, n, &entries);
  } else {
    std::vector<std::vector<Entry>> per_block(num_blocks);
    RunBlocks(threads, num_blocks, [&](size_t b) {
      const size_t begin = b * block;
      scan(begin, std::min(n, begin + block), &per_block[b]);
    });
    for (const auto& chunk : per_block) {
      entries.insert(entries.end(), chunk.begin(), chunk.end());
    }
  }
  const size_t take = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + take, entries.end(),
                    EntryBefore);
  entries.resize(take);
  return entries;
}

std::vector<SimilarityIndex::Entry> SimilarityIndex::TopK(UserId query,
                                                          size_t k) const {
  if (candidates_.empty()) return {};
  const size_t row = RowOf(query);
  if (row != kNpos) {
    // Snapshot reuse: the query's digest and cardinality were captured at
    // Rebuild; no per-call re-extraction.
    return TopKFromRow(query, matrix_.Row(row), cards_by_row_[row], k);
  }
  std::vector<uint64_t> query_row(matrix_.words_per_row());
  DigestMatrix::ExtractRow(*sketch_, query, query_row.data());
  return TopKFromRow(query, query_row.data(), sketch_->Cardinality(query), k);
}

std::vector<SimilarityIndex::Entry> SimilarityIndex::TopKReference(
    UserId query, size_t k) const {
  if (candidates_.empty()) return {};
  BitVector query_digest;
  uint32_t query_card = 0;
  const size_t row = RowOf(query);
  if (row != kNpos) {
    query_digest = matrix_.RowAsBitVector(row);
    query_card = cards_by_row_[row];
  } else {
    query_digest = sketch_->ExtractUserSketch(query);
    query_card = sketch_->Cardinality(query);
  }
  std::vector<Entry> entries;
  entries.reserve(candidates_.size());
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i] == query) continue;
    const PairEstimate est = EstimateFromDigests(
        query_digest, query_card, matrix_.RowAsBitVector(row_of_orig_[i]),
        cardinalities_[i]);
    entries.push_back({candidates_[i], est.common, est.jaccard});
  }
  const size_t take = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + take, entries.end(),
                    EntryBefore);
  entries.resize(take);
  return entries;
}

// ----------------------------------------------------------- AllPairsAbove

optimizer::PassReport SimilarityIndex::PlanTrianglePass(
    double jaccard_threshold, bool prefilter) const {
  optimizer::PassReport report;
  optimizer::PassStats& s = report.stats;
  const size_t n = matrix_.rows();
  s.triangle = true;
  s.rows_a = s.rows_b = n;
  s.words_per_row = matrix_.words_per_row();
  s.exact_pairs = optimizer::TriangleWindowPairs(
      cards_by_row_.data(), n, jaccard_threshold, prefilter);
  const pair_scan::BandingTable* table = banding_table();
  s.banded_available = table != nullptr;
  if (table != nullptr) {
    s.banded_entries = table->entry_count();
    s.banded_candidates = table->TriangleCandidateBound();
  }
  s.dirty_fraction = last_refresh_dirty_fraction_;
  optimizer::PlanMode mode = optimizer::EffectivePlanMode(query_options_.plan);
  if (mode == optimizer::PlanMode::kAuto && banding_feedback_force_exact_) {
    // Recall feedback (see ReportMeasuredRecall): this snapshot's banded
    // recall undercut the floor, so auto re-plans exact until a snapshot
    // passes without an undershoot. Explicit force modes win over it.
    mode = optimizer::PlanMode::kForceExact;
  }
  report.plan =
      optimizer::ChoosePassPlan(s, optimizer::CalibratedCosts(), mode);
  return report;
}

optimizer::PassReport SimilarityIndex::PlanAllPairs(
    double jaccard_threshold) const {
  return PlanTrianglePass(
      jaccard_threshold,
      scan::PrefilterApplies(query_options_.prefilter,
                             estimator_.options().clamp_to_feasible,
                             jaccard_threshold));
}

void SimilarityIndex::ReportMeasuredRecall(double recall) const {
  if (query_options_.banding_recall_floor <= 0.0) return;
  if (recall + 1e-12 < query_options_.banding_recall_floor) {
    pending_recall_force_exact_.store(true, std::memory_order_relaxed);
  }
}

std::vector<SimilarityIndex::Pair> SimilarityIndex::AllPairsAbove(
    double jaccard_threshold) const {
  std::vector<Pair> pairs;
  if (matrix_.rows() < 2) return pairs;
  // One triangle pass on the shared tiled scan tier; the prefilter is
  // sound only where Ĵ is monotone in ŝ over the clamped feasible range,
  // so the gate resolves here (scan::PrefilterApplies) exactly as the
  // planner resolves it.
  pair_scan::ScanParams params;
  params.jaccard_threshold = jaccard_threshold;
  params.prefilter =
      scan::PrefilterApplies(query_options_.prefilter,
                             estimator_.options().clamp_to_feasible,
                             jaccard_threshold);
  params.estimator = &estimator_;
  params.log_alpha_table = &log_alpha_table_;

  // The optimizer prices this pass with calibrated kernel costs (or a
  // force mode pins it); PlanAllPairs shares this call, so the reported
  // plan is by construction the executed one.
  const optimizer::PassReport report =
      PlanTrianglePass(jaccard_threshold, params.prefilter);

  pair_scan::Pass pass;
  pass.a = pass.b = pair_scan::MatrixView{&matrix_, cards_by_row_.data()};
  pass.triangle = true;
  pass.log_beta_pair = log_beta_term_;
  pass.banding_a = pass.banding_b =
      report.plan.kind == optimizer::PlanKind::kBanded ? banding_table()
                                                       : nullptr;
  pass.emit = [this](size_t p, size_t q, const PairEstimate& est,
                     std::vector<Pair>& out) {
    // Canonical orientation: smaller candidate index first, as the
    // reference loop emits.
    const uint32_t oi = sorted_rows_[p];
    const uint32_t oj = sorted_rows_[q];
    const uint32_t u = std::min(oi, oj);
    const uint32_t v = std::max(oi, oj);
    out.push_back({candidates_[u], candidates_[v], est.common, est.jaccard});
  };

  // tile_rows == 0 now resolves adaptively from the digest row width and
  // the detected cache hierarchy instead of the fixed tier default (tile
  // size never changes results, only locality).
  const size_t tile_rows =
      query_options_.tile_rows == 0
          ? optimizer::AdaptiveTileRows(matrix_.words_per_row())
          : query_options_.tile_rows;
  pairs = pair_scan::RunPasses({pass}, params, tile_rows,
                               query_options_.num_threads);
  std::sort(pairs.begin(), pairs.end(), PairBefore);
  return pairs;
}

std::vector<SimilarityIndex::Pair> SimilarityIndex::AllPairsAboveReference(
    double jaccard_threshold) const {
  const size_t n = matrix_.rows();
  std::vector<BitVector> digests;
  digests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    digests.push_back(matrix_.RowAsBitVector(row_of_orig_[i]));
  }
  std::vector<Pair> pairs;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const PairEstimate est = EstimateFromDigests(
          digests[i], cardinalities_[i], digests[j], cardinalities_[j]);
      if (est.jaccard >= jaccard_threshold) {
        pairs.push_back({candidates_[i], candidates_[j], est.common,
                         est.jaccard});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), PairBefore);
  return pairs;
}

}  // namespace vos::core

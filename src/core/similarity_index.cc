#include "core/similarity_index.h"

#include <algorithm>

namespace vos::core {

SimilarityIndex::SimilarityIndex(const VosSketch& sketch,
                                 VosEstimatorOptions options)
    : sketch_(&sketch), estimator_(sketch.config().k, options) {}

void SimilarityIndex::Rebuild(std::vector<UserId> candidates) {
  candidates_ = std::move(candidates);
  digests_.clear();
  digests_.reserve(candidates_.size());
  cardinalities_.clear();
  cardinalities_.reserve(candidates_.size());
  for (UserId u : candidates_) {
    digests_.push_back(sketch_->ExtractUserSketch(u));
    cardinalities_.push_back(sketch_->Cardinality(u));
  }
  beta_ = sketch_->beta();
}

PairEstimate SimilarityIndex::EstimateFromDigests(const BitVector& a,
                                                  uint32_t card_a,
                                                  const BitVector& b,
                                                  uint32_t card_b) const {
  const double alpha = static_cast<double>(a.HammingDistance(b)) /
                       sketch_->config().k;
  return estimator_.Estimate(card_a, card_b, alpha, beta_);
}

std::vector<SimilarityIndex::Entry> SimilarityIndex::TopK(UserId query,
                                                          size_t k) const {
  const BitVector query_digest = sketch_->ExtractUserSketch(query);
  const uint32_t query_card = sketch_->Cardinality(query);

  std::vector<Entry> entries;
  entries.reserve(candidates_.size());
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i] == query) continue;
    const PairEstimate est = EstimateFromDigests(
        query_digest, query_card, digests_[i], cardinalities_[i]);
    entries.push_back({candidates_[i], est.common, est.jaccard});
  }
  const size_t take = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + take, entries.end(),
                    [](const Entry& a, const Entry& b) {
                      return a.jaccard != b.jaccard ? a.jaccard > b.jaccard
                                                    : a.user < b.user;
                    });
  entries.resize(take);
  return entries;
}

std::vector<SimilarityIndex::Pair> SimilarityIndex::AllPairsAbove(
    double jaccard_threshold) const {
  std::vector<Pair> pairs;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    for (size_t j = i + 1; j < candidates_.size(); ++j) {
      const PairEstimate est = EstimateFromDigests(
          digests_[i], cardinalities_[i], digests_[j], cardinalities_[j]);
      if (est.jaccard >= jaccard_threshold) {
        pairs.push_back({candidates_[i], candidates_[j], est.common,
                         est.jaccard});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.jaccard != b.jaccard) return a.jaccard > b.jaccard;
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return pairs;
}

}  // namespace vos::core

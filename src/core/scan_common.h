// Shared building blocks of the pair-scan engines: SimilarityIndex's
// same-shard sorted sweep and QueryPlanner's cross-shard passes, both of
// which now run on the tiled scan tier in core/pair_scan.h.
//
// The planner's output is asserted bit-identical to the single-index
// path, so everything both sweeps must agree on lives here exactly once:
// the result record types and their total orders, the dynamic worker
// pool, and the conservative prefilter math (slack regime, phase-split
// policy, confinement test). Tuning any of these in one sweep but not
// the other would silently diverge results under specific cardinality
// distributions — keeping them in one header makes the lockstep
// structural.
//
// Internal to core/; not part of the public query API (callers see the
// records as SimilarityIndex::Entry / SimilarityIndex::Pair aliases).

#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "stream/element.h"

namespace vos::core::scan {

/// One TopK answer (aliased as SimilarityIndex::Entry).
struct Entry {
  stream::UserId user = 0;  ///< the matched candidate
  double common = 0.0;      ///< ŝ (estimated common items with the query)
  double jaccard = 0.0;     ///< Ĵ
};

/// One thresholded pair (aliased as SimilarityIndex::Pair).
struct Pair {
  stream::UserId u = 0;
  stream::UserId v = 0;
  double common = 0.0;
  double jaccard = 0.0;
};

/// Total order on TopK entries: Ĵ descending, then user ascending —
/// batch, planner and scalar-reference results all sort to this.
inline bool EntryBefore(const Entry& a, const Entry& b) {
  return a.jaccard != b.jaccard ? a.jaccard > b.jaccard : a.user < b.user;
}

/// Total order on thresholded pairs: Ĵ descending, then (u, v) ascending.
inline bool PairBefore(const Pair& a, const Pair& b) {
  if (a.jaccard != b.jaccard) return a.jaccard > b.jaccard;
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

/// Runs `work(i)` for every i in [0, count) across `threads` workers
/// pulling ids from a shared counter (dynamic balancing for triangular /
/// mixed-cost workloads). `threads` is clamped to ≥ 1 here — callers
/// normally pass ResolveThreadCount output, but an unclamped 0 would
/// underflow the unsigned pool reservation below to ~4e9. Callers merge
/// per-unit outputs in unit order, so results are independent of the
/// schedule.
template <typename Work>
void RunIndexed(unsigned threads, size_t count, const Work& work) {
  if (threads == 0) threads = 1;
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      work(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

// --- Conservative prefilter math (see pair_scan.cc ScanTriangleTile for
// the full derivation; every slack is orders above FP rounding so no
// boundary pair the estimator would keep is ever dropped) --------------

/// The prefilter's gating condition, resolved identically by every scan
/// engine: the cardinality/alpha bounds are sound only where Ĵ is
/// monotone in the clamped ŝ (clamp_to_feasible) and τ is meaningfully
/// positive.
inline bool PrefilterApplies(bool prefilter_requested, bool clamped,
                             double jaccard_threshold) {
  return prefilter_requested && clamped && jaccard_threshold > 1e-5;
}

/// The cardinality-bound fail test: a pair whose smaller (clamp-limited)
/// cardinality is `min_card` cannot reach Ĵ ≥ τ when
/// min_card < τ/(1+τ)·(n_u+n_v) − slack. `tau_frac` = τ/(1+τ); `sum` =
/// n_u + n_v. Monotone in either cardinality with the other fixed, so
/// window ends over sorted rows are partition points.
inline bool CardinalityFail(double min_card, double sum, double tau_frac) {
  return min_card < tau_frac * sum - 1e-6 * (sum + 1.0);
}

/// ŝ_raw ≥ τ/(1+τ)·sum ⟺ L(d) ≥ CutScale(τ,k)·sum + [2·ln|1−2β| term];
/// the scale of the cardinality sum in that log-alpha cut.
inline double CutScale(double tau_frac, uint32_t k) {
  return (tau_frac - 0.5) * (4.0 / k);
}

/// The cut with its conservative slack applied.
inline double SlackedCut(double la_cut) {
  return la_cut - 1e-6 * (std::fabs(la_cut) + 1.0);
}

/// Early-exit split policy: the micro-kernels popcount the first ~3/4 of
/// each row (rounded down to the 4-word unroll), then the confinement
/// check decides whether the tail can still matter; short rows skip the
/// split. The position only decides where the (always sound) check runs,
/// never the result.
inline size_t Phase1Words(size_t words) {
  return words >= 16 ? (words * 3 / 4) & ~size_t{3} : words;
}

/// Confinement test: a partial distance d over `seen_bits` bits confines
/// the final distance to [d, d + (k − seen_bits)]. The pass set on d is
/// [0, lo_end) ∪ [hi_begin, k] (`table` = ln|1−2·d/k| is non-increasing
/// up to k/2 and non-decreasing after), so the pair provably fails when
/// the interval misses both pass regions.
inline bool ConfinedFail(const std::vector<double>& table, uint32_t k,
                         size_t d, size_t seen_bits, double cut) {
  const size_t mid = k / 2;
  const size_t d_max = std::min<size_t>(d + (k - seen_bits), k);
  return (d > mid || table[d] < cut) && (d_max < mid || table[d_max] < cut);
}

}  // namespace vos::core::scan

#include "core/vos_method.h"

namespace vos::core {

BitVector VosMethod::DigestFor(UserId user) const {
  auto it = digest_cache_.find(user);
  if (it != digest_cache_.end()) return it->second;
  return sketch_.ExtractUserSketch(user);
}

void VosMethod::PrepareQuery(const std::vector<UserId>& users) {
  digest_cache_.clear();
  digest_cache_.reserve(users.size());
  for (UserId u : users) {
    digest_cache_.emplace(u, sketch_.ExtractUserSketch(u));
  }
}

PairEstimate VosMethod::EstimatePair(UserId u, UserId v) const {
  const BitVector du = DigestFor(u);
  const BitVector dv = DigestFor(v);
  const double alpha =
      static_cast<double>(du.HammingDistance(dv)) / sketch_.config().k;
  return estimator_.Estimate(sketch_.Cardinality(u), sketch_.Cardinality(v),
                             alpha, sketch_.beta());
}

DedicatedOddSketchMethod::DedicatedOddSketchMethod(uint32_t bits_per_user,
                                                   UserId num_users,
                                                   uint64_t seed,
                                                   VosEstimatorOptions options)
    : bits_per_user_(bits_per_user),
      psi_seed_(hash::DeriveSeed(seed, 0x0dd)),
      estimator_(bits_per_user, options),
      sketches_(num_users, BitVector(bits_per_user)),
      cardinality_(num_users, 0) {
  VOS_CHECK(bits_per_user >= 1);
}

void DedicatedOddSketchMethod::Update(const Element& e) {
  const uint32_t bucket = static_cast<uint32_t>(
      hash::ReduceToRange(hash::Hash64(e.item, psi_seed_), bits_per_user_));
  sketches_[e.user].Flip(bucket);
  if (e.action == Action::kInsert) {
    ++cardinality_[e.user];
  } else {
    VOS_DCHECK(cardinality_[e.user] > 0) << "deletion below zero" << e;
    --cardinality_[e.user];
  }
}

PairEstimate DedicatedOddSketchMethod::EstimatePair(UserId u,
                                                    UserId v) const {
  const double alpha =
      static_cast<double>(sketches_[u].HammingDistance(sketches_[v])) /
      bits_per_user_;
  // Dedicated storage has no cross-user contamination: β = 0.
  return estimator_.Estimate(cardinality_[u], cardinality_[v], alpha,
                             /*beta=*/0.0);
}

size_t DedicatedOddSketchMethod::MemoryBits() const {
  size_t total = 0;
  for (const BitVector& sketch : sketches_) total += sketch.MemoryBits();
  return total;
}

}  // namespace vos::core

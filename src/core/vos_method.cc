#include "core/vos_method.h"

#include "common/popcount.h"

namespace vos::core {

VosMethod::VosMethod(const VosConfig& config, UserId num_users,
                     VosEstimatorOptions options, QueryOptions query_options)
    : sketch_(config, num_users),
      estimator_(config.k, options),
      query_options_(query_options),
      log_alpha_table_(estimator_.BuildLogAlphaTable()) {}

std::unique_ptr<SimilarityIndex> VosMethod::MakeIndex(
    std::vector<UserId> candidates) const {
  QueryOptions options = query_options_;
  if (query_threads_ != 0) options.num_threads = query_threads_;
  auto index = std::make_unique<SimilarityIndex>(sketch_, estimator_.options(),
                                                 options);
  index->Rebuild(std::move(candidates));
  return index;
}

BitVector VosMethod::DigestFor(UserId user) const {
  const auto it = cache_rows_.find(user);
  if (it != cache_rows_.end()) return cache_.RowAsBitVector(it->second);
  return sketch_.ExtractUserSketch(user);
}

void VosMethod::PrepareQuery(const std::vector<UserId>& users) {
  cache_ = DigestMatrix::Build(sketch_, users, query_threads_);
  cache_rows_.clear();
  cache_rows_.reserve(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    cache_rows_.emplace(users[i], i);
  }
  cached_beta_ = sketch_.beta();
  cached_log_beta_term_ = estimator_.LogBetaTerm(cached_beta_);
}

PairEstimate VosMethod::EstimatePair(UserId u, UserId v) const {
  const auto iu = cache_rows_.find(u);
  const auto iv = cache_rows_.find(v);
  if (iu != cache_rows_.end() && iv != cache_rows_.end()) {
    // Fast path: both digests cached — row kernel + log-table lookup,
    // bit-identical to the BitVector path below by construction. The
    // memoized log-beta term is used only while β is unchanged since
    // PrepareQuery, so live-β semantics are preserved exactly.
    const size_t d = XorPopcount(cache_.Row(iu->second),
                                 cache_.Row(iv->second),
                                 cache_.words_per_row());
    const double beta = sketch_.beta();
    const double log_beta_term = beta == cached_beta_
                                     ? cached_log_beta_term_
                                     : estimator_.LogBetaTerm(beta);
    return estimator_.EstimateFromLogTerms(
        sketch_.Cardinality(u), sketch_.Cardinality(v), log_alpha_table_[d],
        log_beta_term);
  }
  const BitVector du = DigestFor(u);
  const BitVector dv = DigestFor(v);
  const double alpha =
      static_cast<double>(du.HammingDistance(dv)) / sketch_.config().k;
  return estimator_.Estimate(sketch_.Cardinality(u), sketch_.Cardinality(v),
                             alpha, sketch_.beta());
}

DedicatedOddSketchMethod::DedicatedOddSketchMethod(uint32_t bits_per_user,
                                                   UserId num_users,
                                                   uint64_t seed,
                                                   VosEstimatorOptions options)
    : bits_per_user_(bits_per_user),
      psi_seed_(hash::DeriveSeed(seed, 0x0dd)),
      estimator_(bits_per_user, options),
      sketches_(num_users, BitVector(bits_per_user)),
      cardinality_(num_users, 0) {
  VOS_CHECK(bits_per_user >= 1);
}

void DedicatedOddSketchMethod::Update(const Element& e) {
  const uint32_t bucket = static_cast<uint32_t>(
      hash::ReduceToRange(hash::Hash64(e.item, psi_seed_), bits_per_user_));
  sketches_[e.user].Flip(bucket);
  if (e.action == Action::kInsert) {
    ++cardinality_[e.user];
  } else {
    VOS_DCHECK(cardinality_[e.user] > 0) << "deletion below zero" << e;
    --cardinality_[e.user];
  }
}

PairEstimate DedicatedOddSketchMethod::EstimatePair(UserId u,
                                                    UserId v) const {
  const double alpha =
      static_cast<double>(sketches_[u].HammingDistance(sketches_[v])) /
      bits_per_user_;
  // Dedicated storage has no cross-user contamination: β = 0.
  return estimator_.Estimate(cardinality_[u], cardinality_[v], alpha,
                             /*beta=*/0.0);
}

size_t DedicatedOddSketchMethod::MemoryBits() const {
  size_t total = 0;
  for (const BitVector& sketch : sketches_) total += sketch.MemoryBits();
  return total;
}

}  // namespace vos::core

// Cost-based query optimizer over the pair-scan tier.
//
// PR 5 left three ways to answer any all-pairs or TopK query — the exact
// tiled scan, the precision-1 LSH-banded scan, and the warm-started TopK
// — all chosen by hand-set knobs that applied to the whole process. This
// header promotes the choice to a per-pass decision: for every
// same-shard triangle and cross-shard rectangle the caller builds a
// PassStats from statistics the index already holds (row counts, the
// cardinality histogram via exact window-pair counting, BandingTable
// bucket-size skew via post-guard candidate bounds, the last refresh's
// dirty fraction) and ChoosePassPlan converts it to seconds with
// CALIBRATED per-ISA kernel throughput constants:
//
//   exact  ≈ window_pairs · (words · c_pair_word + c_pair)
//   banded ≈ entries · c_entry                 (bucket walk / merge-join)
//          + candidates · (words · c_pair_word + c_pair + c_candidate)
//          + dirty_fraction · entries · c_entry  (table upkeep amortized)
//
// The constants come from a one-shot microprobe over the PR 7 dispatch
// table (common/kernels.h), run at first use and cached per process PER
// DISPATCH LEVEL — an AVX-512 machine and a scalar fallback see their own
// real throughput, so the break-even between "popcount every window pair"
// and "walk buckets, popcount survivors" lands where this CPU actually
// puts it. The probe costs single-digit milliseconds once.
//
// Plan resolution order (EffectivePlanMode + the caller's feedback bit):
//   1. VOS_PLAN env var ("exact" | "banded" | "auto") — forces every pass,
//      re-read per query so test matrices can flip it without rebuilds;
//   2. QueryOptions::plan (--plan flag plumbing) when not kAuto;
//   3. the caller's measured-recall feedback (a banded pass whose
//      measured recall undercut the configured floor is re-planned exact
//      on the next refresh — see SimilarityIndex::ReportMeasuredRecall);
//   4. the cost model above.
// A forced banded plan degrades to exact when no BandingTable exists
// (banding_bands == 0), so VOS_PLAN=banded is safe over the full suite.
//
// Everything here is PURE (stats in, plan out) and deterministic within a
// process: the calibration is cached, so every pass of every query on
// every thread prices with the same constants — plan choice is
// reproducible across threads, shards and repeated calls, which the
// bit-identity tests rely on (tests/query_optimizer_test.cc).
//
// AdaptiveTileRows replaces the fixed 256-row tile default with one
// derived from the digest row width and the detected cache hierarchy
// (per-core L2 / LLC share): a tile's two row ranges should stay resident
// while its pairs are popcounted. Tile size never changes results, only
// locality, so the adaptive value inherits the tier's bit-identity
// contract for free.
//
// Internal to core/; not part of the public query API.

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/kernels.h"

namespace vos::core::optimizer {

/// How the caller wants plans chosen. kAuto prices every pass with the
/// calibrated cost model; the force modes pin every pass (kForceBanded
/// degrades to exact where no banding table exists).
enum class PlanMode : uint8_t {
  kAuto = 0,
  kForceExact = 1,
  kForceBanded = 2,
};

/// What a pass actually runs as.
enum class PlanKind : uint8_t {
  kExact = 0,
  kBanded = 1,
};

const char* PlanModeName(PlanMode mode);
const char* PlanKindName(PlanKind kind);

/// Parses "auto" | "exact" | "banded" (the --plan flag / VOS_PLAN values).
bool ParsePlanMode(const char* s, PlanMode* out);

/// Resolves the mode for one query: the VOS_PLAN env override when set
/// and valid (unknown values warn to stderr once and fall through), else
/// `configured`. Re-read per call — cheap next to any scan — so forced-
/// plan test legs need no rebuild hooks.
PlanMode EffectivePlanMode(PlanMode configured);

/// Calibrated per-ISA kernel throughput constants, all in seconds.
struct KernelCostModel {
  /// Per pair per digest word of XOR+popcount (the 1×8 kernel's
  /// marginal word cost at the active dispatch level).
  double seconds_per_pair_word = 0.0;
  /// Fixed per-pair overhead: estimator lookup, emit, loop control.
  double seconds_per_pair = 0.0;
  /// Extra per banded candidate: pack/sort/dedup of the candidate list.
  double seconds_per_candidate = 0.0;
  /// Per banding-table entry walked (bucket run detection / merge-join).
  double seconds_per_entry = 0.0;
  /// The dispatch level the constants were measured at.
  kernels::DispatchLevel level = kernels::DispatchLevel::kScalar;
};

/// The constants for the ACTIVE dispatch level: microprobed on first use
/// at that level, cached per process (per level, so a test that flips
/// SetDispatchLevel re-prices honestly). Thread-safe.
const KernelCostModel& CalibratedCosts();

/// Test hook: overrides CalibratedCosts() with fixed constants (nullptr
/// restores the probe). Not for production use.
void SetCalibratedCostsForTest(const KernelCostModel* costs);

/// Statistics of one pass, gathered from what the index already holds.
struct PassStats {
  bool triangle = true;
  size_t rows_a = 0;
  size_t rows_b = 0;  ///< == rows_a for triangles
  size_t words_per_row = 0;
  /// Exact plan work: pairs inside the conservative cardinality windows
  /// (Triangle/RectangleWindowPairs below — the histogram statistic).
  size_t exact_pairs = 0;
  /// Banded plan work: banding-table entries walked (bands · rows).
  size_t banded_entries = 0;
  /// Banded plan work: post-guard candidate-pair bound (bucket skew
  /// statistic; BandingTable::TriangleCandidateBound / RectangleCandidateBound).
  size_t banded_candidates = 0;
  /// Whether the pass has banding table(s) at all.
  bool banded_available = false;
  /// Affected fraction of the last RefreshDirty (1.0 after a full
  /// Rebuild): amortized upkeep the banded plan pays per refresh cycle.
  double dirty_fraction = 1.0;
};

/// The optimizer's verdict for one pass.
struct PassPlan {
  PlanKind kind = PlanKind::kExact;
  double exact_cost = 0.0;   ///< estimated seconds for the exact plan
  double banded_cost = 0.0;  ///< estimated seconds (+inf when unavailable)
  bool forced = false;       ///< a force mode (env/flag/feedback) decided
};

/// Prices both plans for `stats` and picks per `mode` (see the file
/// header for the formulas and resolution order). Pure and deterministic.
PassPlan ChoosePassPlan(const PassStats& stats, const KernelCostModel& costs,
                        PlanMode mode);

/// One pass's stats + verdict, as reported by
/// SimilarityIndex::PlanAllPairs / QueryPlanner::PlanAllPairs. The
/// reporting path shares the decision code with the executing path, so a
/// report always predicts what AllPairsAbove would run.
struct PassReport {
  PassStats stats;
  PassPlan plan;
};

/// Exact count of pairs the exact triangle plan would enumerate: the sum
/// over rows p of the conservative cardinality window [p+1, end_p) over
/// the non-decreasing `cards` (the same scan::CardinalityFail predicate
/// the scan uses, so the count is the scan's work, not a bound). The
/// window ends are monotone in p, so one two-pointer sweep suffices:
/// O(n), no popcounts. With `prefilter` false this is n·(n−1)/2.
size_t TriangleWindowPairs(const uint32_t* cards, size_t n, double tau,
                           bool prefilter);

/// Rectangle twin: sum over a-rows of the two-sided window over b's
/// sorted cards. O(n_a + n_b).
size_t RectangleWindowPairs(const uint32_t* cards_a, size_t n_a,
                            const uint32_t* cards_b, size_t n_b, double tau,
                            bool prefilter);

/// Tile edge for QueryOptions::tile_rows == 0: sized so a tile's two row
/// ranges (2 · tile · words · 8 bytes) fit in about half the per-core
/// cache budget — min(L2, LLC / cores), detected once from sysfs (the
/// tier default 256 when detection fails). Clamped to [64, 2048] and
/// rounded down to a multiple of 8. Deterministic per process.
size_t AdaptiveTileRows(size_t words_per_row);

}  // namespace vos::core::optimizer

// Binary serialization of VOS sketches: snapshot a live sketch to disk and
// restore it later (checkpoint/restore, shipping shard sketches to a
// merger, offline analysis of an online sketch).
//
// Format (little-endian, versioned):
//   magic "VOSSKTCH" | u32 version | u32 k | u64 m | u64 seed
//   | u8 psi_kind | u64 f_seed (v2+ only: resolved f-family seed; see
//   VosConfig::f_seed) | u32 num_users | u64 num_array_words | array words
//   | cardinalities (u32 × num_users) | u64 xor-checksum
//
// Save always writes the current version (v2). Load accepts every version
// in [kMinVersion, kVersion]: v1 files predate the f_seed field, and were
// therefore necessarily written with the legacy default f family — Load
// restores them with f_seed = 0, which makes VosSketch re-derive exactly
// that family from `seed`.
//
// The checksum covers the payload words and catches truncation and
// bit-rot; Load re-derives the 1-bit count from the payload, so a loaded
// sketch is indistinguishable from the original (tested bit-for-bit).

#pragma once

#include <string>

#include "common/status.h"
#include "core/vos_sketch.h"

namespace vos::core {

/// Stateless serializer for VosSketch (friend of the class).
class VosSketchIo {
 public:
  /// Writes `sketch` to `path`, overwriting. IoError on filesystem
  /// problems.
  static Status Save(const VosSketch& sketch, const std::string& path);

  /// Reads a sketch from `path`. Corruption on malformed/damaged files.
  static StatusOr<VosSketch> Load(const std::string& path);

  static constexpr char kMagic[9] = "VOSSKTCH";
  /// The version Save writes.
  static constexpr uint32_t kVersion = 2;
  /// The oldest version Load still reads (v1: no f_seed field).
  static constexpr uint32_t kMinVersion = 1;
};

}  // namespace vos::core

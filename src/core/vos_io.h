// Binary serialization of VOS sketches: snapshot a live sketch to disk and
// restore it later (checkpoint/restore, shipping shard sketches to a
// merger, offline analysis of an online sketch).
//
// Single-sketch format (little-endian, versioned):
//   magic "VOSSKTCH" | u32 version | u32 k | u64 m | u64 seed
//   | u8 psi_kind | u64 f_seed (v2+ only: resolved f-family seed; see
//   VosConfig::f_seed) | u32 num_users | u64 num_array_words | array words
//   | cardinalities (u32 × num_users) | u64 xor-checksum
//
// VosSketchIo::Save always writes the current single-sketch version (v2).
// Load accepts every version in [kMinVersion, kVersion]: v1 files predate
// the f_seed field, and were therefore necessarily written with the legacy
// default f family — Load restores them with f_seed = 0, which makes
// VosSketch re-derive exactly that family from `seed`. Every read is
// bounds-checked against the actual file size BEFORE anything is
// allocated: a truncated, oversized or size-lying file fails with a
// Corruption status naming what was expected, never with a wild
// allocation or a silent short read.
//
// Sharded checkpoint container (v3, ShardedCheckpointIo): the crash-safe
// snapshot of a whole ShardedVosSketch — every shard's sketch, the dense
// user remap and the per-lane ingest watermarks — in one sectioned file:
//
//   magic "VOSSKTCH" | u32 version = 3 | u32 section_count
//   section := u32 type | u32 id | u64 payload_bytes | payload | u32 crc32
//
// The CRC32 (IEEE, common/crc32.h) of each section covers its header AND
// payload, so a flipped bit anywhere in a section is pinned to that
// section by name in the error. The manifest (first section, always)
// records the geometry the checkpoint was taken under; Restore refuses a
// mismatched live instance instead of guessing. Writing is atomic:
// everything is serialized to memory, written to `path + ".tmp"`, fsynced,
// renamed over `path`, and the parent directory fsynced — a crash at any
// point leaves either the old checkpoint or the new one, never a blend.
// Restore is all-or-nothing: every section is CRC-verified and staged
// before one byte of live state changes.

#pragma once

#include <string>

#include "common/status.h"
#include "core/vos_sketch.h"

namespace vos::core {

class ShardedVosSketch;

/// Stateless serializer for VosSketch (friend of the class).
class VosSketchIo {
 public:
  /// Writes `sketch` to `path`, overwriting. IoError on filesystem
  /// problems.
  static Status Save(const VosSketch& sketch, const std::string& path);

  /// Reads a sketch from `path`. Corruption on malformed/damaged files;
  /// every size field is validated against the bytes actually present
  /// before any allocation.
  static StatusOr<VosSketch> Load(const std::string& path);

  /// Appends the versioned field layout (everything between the version
  /// field and the trailing checksum of a v2 file) to `out`. Shared by
  /// Save and the v3 shard sections.
  static void SerializeFields(const VosSketch& sketch, std::string* out);

  /// Bounds-checked inverse of SerializeFields over [data, data + size):
  /// parses one sketch in `version` (1 or 2) layout. `context` prefixes
  /// error messages; `*consumed` receives the bytes read on success.
  static StatusOr<VosSketch> ParseFields(const uint8_t* data, size_t size,
                                         uint32_t version,
                                         const std::string& context,
                                         size_t* consumed);

  static constexpr char kMagic[9] = "VOSSKTCH";
  /// The version Save writes.
  static constexpr uint32_t kVersion = 2;
  /// The oldest version Load still reads (v1: no f_seed field).
  static constexpr uint32_t kMinVersion = 1;
};

/// Atomic, CRC-checked whole-pipeline checkpoints of a ShardedVosSketch
/// (the v3 sectioned container; see file comment). Friend of
/// ShardedVosSketch — use ShardedVosSketch::Checkpoint()/Restore(), which
/// add the flush barrier and degraded-pipeline refusal on top.
class ShardedCheckpointIo {
 public:
  /// Serializes the (quiesced) sketch and atomically commits it to
  /// `path`: temp file + fsync + rename + parent fsync. IoError on
  /// filesystem problems. Honors the checkpoint fault-injection sites
  /// (common/fault_injector.h): tear/corrupt produce a damaged file that
  /// still "succeeds" (silent corruption for Restore to catch), crash
  /// leaves only the temp file and returns IoError.
  static Status Save(const ShardedVosSketch& sketch,
                     const std::string& path);

  /// Restores `path` into `sketch`. All-or-nothing: parses and verifies
  /// every section (structure, CRC, manifest-vs-live-config match, shard
  /// completeness) into staged state first; any failure — named by
  /// section — leaves `sketch` untouched. On success shard state,
  /// watermarks and sticky statuses are replaced under the pipeline lock.
  static Status Restore(ShardedVosSketch* sketch, const std::string& path);

  /// The container version this writer produces.
  static constexpr uint32_t kVersion = 3;

  // Section types of the v3 container.
  static constexpr uint32_t kSectionManifest = 1;
  static constexpr uint32_t kSectionDenseMap = 2;
  static constexpr uint32_t kSectionWatermarks = 3;
  static constexpr uint32_t kSectionShard = 4;

  /// Stable name of a section type ("manifest", "shard", ...), used in
  /// every Restore error so a damaged file names its damaged section.
  static const char* SectionName(uint32_t type);
};

}  // namespace vos::core

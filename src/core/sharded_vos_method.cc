#include "core/sharded_vos_method.h"

#include <algorithm>

#include "common/popcount.h"

namespace vos::core {

ShardedVosMethod::ShardedVosMethod(const ShardedVosConfig& config,
                                   UserId num_users,
                                   VosEstimatorOptions options)
    : sketch_(config, num_users, options),
      log_alpha_table_(sketch_.estimator().BuildLogAlphaTable()),
      cache_(config.num_shards),
      cached_beta_(config.num_shards, -1.0),
      cached_log_beta_term_(config.num_shards, 0.0) {}

void ShardedVosMethod::PrepareQuery(const std::vector<UserId>& users) {
  sketch_.Flush();
  const uint32_t shards = sketch_.num_shards();
  std::vector<std::vector<UserId>> per_shard(shards);
  for (UserId user : users) {
    per_shard[sketch_.ShardOf(user)].push_back(user);
  }
  cache_slots_.clear();
  cache_slots_.reserve(users.size());
  for (uint32_t s = 0; s < shards; ++s) {
    cache_[s] =
        DigestMatrix::Build(sketch_.shard(s), per_shard[s], query_threads_);
    for (size_t row = 0; row < per_shard[s].size(); ++row) {
      cache_slots_.emplace(per_shard[s][row],
                           CacheSlot{s, static_cast<uint32_t>(row)});
    }
    cached_beta_[s] = sketch_.shard(s).beta();
    cached_log_beta_term_[s] =
        sketch_.estimator().LogBetaTerm(cached_beta_[s]);
  }
}

void ShardedVosMethod::InvalidateQueryCache() {
  cache_slots_.clear();
  for (DigestMatrix& matrix : cache_) matrix.Clear();
  std::fill(cached_beta_.begin(), cached_beta_.end(), -1.0);
}

PairEstimate ShardedVosMethod::EstimatePair(UserId u, UserId v) const {
  const auto iu = cache_slots_.find(u);
  const auto iv = cache_slots_.find(v);
  if (iu != cache_slots_.end() && iv != cache_slots_.end()) {
    const CacheSlot& su = iu->second;
    const CacheSlot& sv = iv->second;
    const size_t d =
        XorPopcount(cache_[su.shard].Row(su.row), cache_[sv.shard].Row(sv.row),
                    cache_[su.shard].words_per_row());
    const VosEstimator& estimator = sketch_.estimator();
    // Memoized per-shard log-beta terms, revalidated against the live β
    // so estimates always reflect the current fill (as VosMethod does).
    const auto log_beta = [&](uint32_t shard) {
      const double beta = sketch_.shard(shard).beta();
      return beta == cached_beta_[shard] ? cached_log_beta_term_[shard]
                                         : estimator.LogBetaTerm(beta);
    };
    const double log_beta_term =
        0.5 * (log_beta(su.shard) + log_beta(sv.shard));
    return estimator.EstimateFromLogTerms(
        sketch_.shard(su.shard).Cardinality(u),
        sketch_.shard(sv.shard).Cardinality(v), log_alpha_table_[d],
        log_beta_term);
  }
  return sketch_.EstimatePair(u, v);
}

}  // namespace vos::core

#include "core/sharded_vos_method.h"

#include <algorithm>

#include "common/popcount.h"

namespace vos::core {

ShardedVosConfig ShardedVosMethod::WithQueryConfig(
    ShardedVosConfig config, const ShardedQueryConfig& query) {
  // Incremental per-shard indexes consume the shards' dirty sets.
  if (query.shards_local) config.base.track_dirty = true;
  return config;
}

ShardedVosMethod::ShardedVosMethod(const ShardedVosConfig& config,
                                   UserId num_users,
                                   VosEstimatorOptions options,
                                   ShardedQueryConfig query_config)
    : config_(WithQueryConfig(config, query_config)),
      query_config_(query_config),
      sketch_(config_, num_users, options),
      log_alpha_table_(sketch_.estimator().BuildLogAlphaTable()),
      cache_(config.num_shards),
      cached_beta_(config.num_shards, -1.0),
      cached_log_beta_term_(config.num_shards, 0.0),
      query_threads_(query_config.planner_threads) {}

Status ShardedVosMethod::Restore(const std::string& path) {
  VOS_RETURN_IF_ERROR(sketch_.Restore(path));
  // The restored shards are a different history than the one the
  // incremental planner snapshots and digest caches were built against —
  // drop them; the next PrepareQuery rebuilds from the restored state.
  planner_.reset();
  planner_candidates_.clear();
  planner_ready_ = false;
  InvalidateQueryCache();
  return Status::OK();
}

void ShardedVosMethod::PrepareQuery(const std::vector<UserId>& users) {
  if (!sketch_.Flush().ok()) {
    // Degraded pipeline: refuse to rebuild the cache over suspect state
    // and keep serving the last snapshot (graceful degradation — the
    // caller sees the failure from FlushIngest, queries keep answering).
    return;
  }
  if (query_config_.shards_local) {
    // Planner cache: first call (or a changed tracked set) snapshots
    // every shard index; repeat calls over the same set refresh
    // incrementally, draining each shard's dirty set shard-locally.
    if (planner_ == nullptr) {
      QueryOptions planner_options;
      planner_options.num_threads = query_threads_;
      planner_options.incremental = true;
      planner_options.tile_rows = query_config_.tile_rows;
      planner_options.banding_bands = query_config_.banding_bands;
      planner_options.banding_rows_per_band =
          query_config_.banding_rows_per_band;
      planner_options.banding_max_bucket = query_config_.banding_max_bucket;
      planner_options.banding_recall_floor =
          query_config_.banding_recall_floor;
      planner_options.plan = query_config_.plan;
      planner_ = std::make_unique<QueryPlanner>(
          sketch_, sketch_.estimator().options(), planner_options);
    } else {
      // Honour a SetQueryThreads issued after the planner was built.
      planner_->set_num_threads(query_threads_);
    }
    if (planner_candidates_ == users && planner_->candidate_count() > 0) {
      planner_->Refresh();
    } else {
      planner_candidates_ = users;
      planner_->Rebuild(users);
    }
    planner_ready_ = true;
    return;
  }
  const uint32_t shards = sketch_.num_shards();
  std::vector<std::vector<UserId>> per_shard_locals(shards);
  std::vector<std::vector<UserId>> per_shard_globals(shards);
  for (UserId user : users) {
    const uint32_t s = sketch_.ShardOf(user);
    per_shard_locals[s].push_back(sketch_.LocalIdOf(user));
    per_shard_globals[s].push_back(user);
  }
  cache_slots_.clear();
  cache_slots_.reserve(users.size());
  for (uint32_t s = 0; s < shards; ++s) {
    cache_[s] = DigestMatrix::Build(sketch_.shard(s), per_shard_locals[s],
                                    query_threads_);
    for (size_t row = 0; row < per_shard_globals[s].size(); ++row) {
      cache_slots_.emplace(per_shard_globals[s][row],
                           CacheSlot{s, static_cast<uint32_t>(row)});
    }
    cached_beta_[s] = sketch_.shard(s).beta();
    cached_log_beta_term_[s] =
        sketch_.estimator().LogBetaTerm(cached_beta_[s]);
  }
}

void ShardedVosMethod::InvalidateQueryCache() {
  cache_slots_.clear();
  for (DigestMatrix& matrix : cache_) matrix.Clear();
  std::fill(cached_beta_.begin(), cached_beta_.end(), -1.0);
  // The planner's incremental state is the point of the shards_local
  // mode — keep it, just stop serving estimates from it until the next
  // PrepareQuery re-validates the snapshot.
  planner_ready_ = false;
}

PairEstimate ShardedVosMethod::EstimateFromPlanner(UserId u, UserId v) const {
  const uint32_t su = sketch_.ShardOf(u);
  const uint32_t sv = sketch_.ShardOf(v);
  const SimilarityIndex& iu = planner_->shard_index(su);
  const SimilarityIndex& iv = planner_->shard_index(sv);
  const size_t pu = iu.RowIndexOf(sketch_.LocalIdOf(u));
  const size_t pv = iv.RowIndexOf(sketch_.LocalIdOf(v));
  if (pu == SimilarityIndex::npos || pv == SimilarityIndex::npos) {
    return sketch_.EstimatePair(u, v);
  }
  const size_t d = XorPopcount(iu.matrix().Row(pu), iv.matrix().Row(pv),
                               iu.matrix().words_per_row());
  const double log_beta_term =
      0.5 * (iu.log_beta_term() + iv.log_beta_term());
  return sketch_.estimator().EstimateFromLogTerms(
      iu.row_cardinality(pu), iv.row_cardinality(pv), log_alpha_table_[d],
      log_beta_term);
}

PairEstimate ShardedVosMethod::EstimatePair(UserId u, UserId v) const {
  if (planner_ready_ && planner_ != nullptr) {
    return EstimateFromPlanner(u, v);
  }
  const auto iu = cache_slots_.find(u);
  const auto iv = cache_slots_.find(v);
  if (iu != cache_slots_.end() && iv != cache_slots_.end()) {
    const CacheSlot& su = iu->second;
    const CacheSlot& sv = iv->second;
    const size_t d =
        XorPopcount(cache_[su.shard].Row(su.row), cache_[sv.shard].Row(sv.row),
                    cache_[su.shard].words_per_row());
    const VosEstimator& estimator = sketch_.estimator();
    // Memoized per-shard log-beta terms, revalidated against the live β
    // so estimates always reflect the current fill (as VosMethod does).
    const auto log_beta = [&](uint32_t shard) {
      const double beta = sketch_.shard(shard).beta();
      return beta == cached_beta_[shard] ? cached_log_beta_term_[shard]
                                         : estimator.LogBetaTerm(beta);
    };
    const double log_beta_term =
        0.5 * (log_beta(su.shard) + log_beta(sv.shard));
    return estimator.EstimateFromLogTerms(sketch_.Cardinality(u),
                                          sketch_.Cardinality(v),
                                          log_alpha_table_[d],
                                          log_beta_term);
  }
  return sketch_.EstimatePair(u, v);
}

}  // namespace vos::core

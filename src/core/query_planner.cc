#include "core/query_planner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/popcount.h"
#include "core/pair_scan.h"
#include "core/scan_common.h"

namespace vos::core {
namespace {

// Result orders, worker pool and prefilter math are shared with
// SimilarityIndex (core/scan_common.h) — the planner is asserted
// bit-identical to the single-index path, so none of it may diverge.
using scan::EntryBefore;
using scan::PairBefore;

template <typename Work>
void RunTasks(unsigned threads, size_t num_tasks, const Work& work) {
  scan::RunIndexed(threads, num_tasks, work);
}

/// Raise-only publish of a shared lower bound (TopK's gathered k-th best
/// Ĵ). Relaxed ordering is enough: the bound is a monotone hint — any
/// stale read only prunes less.
void PublishBound(std::atomic<double>* bound, double candidate) {
  double current = bound->load(std::memory_order_relaxed);
  while (candidate > current &&
         !bound->compare_exchange_weak(current, candidate,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

QueryPlanner::QueryPlanner(const ShardedVosSketch& sketch,
                           VosEstimatorOptions estimator_options,
                           QueryOptions query_options)
    : sketch_(&sketch),
      estimator_(sketch.config().base.k, estimator_options),
      query_options_(query_options),
      log_alpha_table_(estimator_.BuildLogAlphaTable()) {
  // One index per shard, bound to the shard's VosSketch (local id
  // space). Planner parallelism is across tasks, so each index runs
  // single-threaded inside — no nested oversubscription.
  QueryOptions per_index = query_options_;
  per_index.num_threads = 1;
  indexes_.reserve(sketch.num_shards());
  for (uint32_t s = 0; s < sketch.num_shards(); ++s) {
    indexes_.push_back(std::make_unique<SimilarityIndex>(
        sketch.shard(s), estimator_options, per_index));
  }
}

void QueryPlanner::Rebuild(std::vector<UserId> candidates) {
  VOS_DCHECK(!sketch_->HasPendingIngest())
      << "Rebuild on a non-quiesced pipeline; call Flush() first";
  candidates_ = std::move(candidates);
  const uint32_t num_shards = sketch_->num_shards();
  std::vector<std::vector<UserId>> locals(num_shards);
  for (const UserId user : candidates_) {
    locals[sketch_->ShardOf(user)].push_back(sketch_->LocalIdOf(user));
  }
  RunTasks(ResolveThreadCount(query_options_.num_threads, num_shards),
           num_shards,
           [&](size_t s) { indexes_[s]->Rebuild(std::move(locals[s])); });
}

bool QueryPlanner::Refresh() {
  VOS_CHECK(query_options_.incremental)
      << "Refresh needs QueryOptions::incremental";
  VOS_DCHECK(!sketch_->HasPendingIngest())
      << "Refresh on a non-quiesced pipeline; call Flush() first";
  const uint32_t num_shards = sketch_->num_shards();
  std::vector<uint8_t> incremental(num_shards, 0);
  RunTasks(ResolveThreadCount(query_options_.num_threads, num_shards),
           num_shards, [&](size_t s) {
             incremental[s] = indexes_[s]->RefreshDirty() ? 1 : 0;
           });
  return std::all_of(incremental.begin(), incremental.end(),
                     [](uint8_t i) { return i != 0; });
}

UserId QueryPlanner::GlobalOfRow(uint32_t s, size_t p) const {
  const SimilarityIndex& index = *indexes_[s];
  const UserId local = index.candidates()[index.sorted_to_candidate(p)];
  return sketch_->GlobalUserOf(s, local);
}

optimizer::PassReport QueryPlanner::PlanRectanglePass(
    uint32_t s, uint32_t t, double jaccard_threshold, bool prefilter) const {
  const SimilarityIndex& ia = *indexes_[s];
  const SimilarityIndex& ib = *indexes_[t];
  optimizer::PassReport report;
  optimizer::PassStats& st = report.stats;
  st.triangle = false;
  st.rows_a = ia.matrix().rows();
  st.rows_b = ib.matrix().rows();
  st.words_per_row = ia.matrix().words_per_row();
  st.exact_pairs = optimizer::RectangleWindowPairs(
      ia.row_cardinalities().data(), st.rows_a, ib.row_cardinalities().data(),
      st.rows_b, jaccard_threshold, prefilter);
  const pair_scan::BandingTable* ta = ia.banding_table();
  const pair_scan::BandingTable* tb = ib.banding_table();
  st.banded_available = ta != nullptr && tb != nullptr;
  if (st.banded_available) {
    st.banded_entries = ta->entry_count() + tb->entry_count();
    st.banded_candidates =
        pair_scan::BandingTable::RectangleCandidateBound(*ta, *tb);
  }
  st.dirty_fraction = std::max(ia.last_refresh_dirty_fraction(),
                               ib.last_refresh_dirty_fraction());
  optimizer::PlanMode mode = optimizer::EffectivePlanMode(query_options_.plan);
  if (mode == optimizer::PlanMode::kAuto &&
      (ia.banding_feedback_force_exact() || ib.banding_feedback_force_exact())) {
    // Either side's recall undershoot taints the rectangle: re-plan exact
    // until both sides' snapshots pass their floor again.
    mode = optimizer::PlanMode::kForceExact;
  }
  report.plan =
      optimizer::ChoosePassPlan(st, optimizer::CalibratedCosts(), mode);
  return report;
}

std::vector<optimizer::PassReport> QueryPlanner::PlanAllPairs(
    double jaccard_threshold) const {
  const bool prefilter =
      scan::PrefilterApplies(query_options_.prefilter,
                             estimator_.options().clamp_to_feasible,
                             jaccard_threshold);
  std::vector<optimizer::PassReport> reports;
  const uint32_t num_shards = sketch_->num_shards();
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (indexes_[s]->matrix().rows() < 2) continue;
    reports.push_back(indexes_[s]->PlanAllPairs(jaccard_threshold));
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (indexes_[s]->matrix().rows() == 0) continue;
    for (uint32_t t = s + 1; t < num_shards; ++t) {
      if (indexes_[t]->matrix().rows() == 0) continue;
      reports.push_back(
          PlanRectanglePass(s, t, jaccard_threshold, prefilter));
    }
  }
  return reports;
}

void QueryPlanner::ReportMeasuredRecall(double recall) const {
  for (const auto& index : indexes_) index->ReportMeasuredRecall(recall);
}

std::vector<QueryPlanner::Pair> QueryPlanner::AllPairsAbove(
    double jaccard_threshold) const {
  std::vector<Pair> pairs;
  const uint32_t num_shards = sketch_->num_shards();
  // Describe the whole pair space as pair_scan passes: one triangle per
  // shard plus one rectangle per shard pair. The tier decomposes every
  // pass into tiles and dispatches them to ONE pool, so a hot shard's
  // triangle runs as many units instead of one serialized task.
  pair_scan::ScanParams params;
  params.jaccard_threshold = jaccard_threshold;
  params.prefilter =
      scan::PrefilterApplies(query_options_.prefilter,
                             estimator_.options().clamp_to_feasible,
                             jaccard_threshold);
  params.estimator = &estimator_;
  params.log_alpha_table = &log_alpha_table_;

  std::vector<pair_scan::Pass> passes;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const SimilarityIndex& index = *indexes_[s];
    if (index.matrix().rows() < 2) continue;
    pair_scan::Pass pass;
    pass.a = pass.b = pair_scan::MatrixView{&index.matrix(),
                                            index.row_cardinalities().data()};
    pass.triangle = true;
    pass.log_beta_pair = index.log_beta_term();
    // Per-pass plan: the index prices its own triangle (the same call
    // PlanAllPairs reports), and only a banded verdict wires the tables.
    pass.banding_a = pass.banding_b =
        index.PlanAllPairs(jaccard_threshold).plan.kind ==
                optimizer::PlanKind::kBanded
            ? index.banding_table()
            : nullptr;
    pass.emit = [this, s](size_t p, size_t q, const PairEstimate& est,
                          std::vector<Pair>& out) {
      const UserId gu = GlobalOfRow(s, p);
      const UserId gv = GlobalOfRow(s, q);
      out.push_back({std::min(gu, gv), std::max(gu, gv), est.common,
                     est.jaccard});
    };
    passes.push_back(std::move(pass));
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    const SimilarityIndex& ia = *indexes_[s];
    if (ia.matrix().rows() == 0) continue;
    for (uint32_t t = s + 1; t < num_shards; ++t) {
      const SimilarityIndex& ib = *indexes_[t];
      if (ib.matrix().rows() == 0) continue;
      pair_scan::Pass pass;
      pass.a = pair_scan::MatrixView{&ia.matrix(),
                                     ia.row_cardinalities().data()};
      pass.b = pair_scan::MatrixView{&ib.matrix(),
                                     ib.row_cardinalities().data()};
      pass.triangle = false;
      // Cross-shard β correction: each digest carries its own shard's
      // contamination, so the estimator takes the mean of the two
      // log-beta terms — identical to ShardedVosSketch::EstimatePair.
      pass.log_beta_pair = 0.5 * (ia.log_beta_term() + ib.log_beta_term());
      const bool banded =
          PlanRectanglePass(s, t, jaccard_threshold, params.prefilter)
              .plan.kind == optimizer::PlanKind::kBanded;
      pass.banding_a = banded ? ia.banding_table() : nullptr;
      pass.banding_b = banded ? ib.banding_table() : nullptr;
      pass.emit = [this, s, t](size_t p, size_t q, const PairEstimate& est,
                               std::vector<Pair>& out) {
        const UserId gu = GlobalOfRow(s, p);
        const UserId gv = GlobalOfRow(t, q);
        out.push_back({std::min(gu, gv), std::max(gu, gv), est.common,
                       est.jaccard});
      };
      passes.push_back(std::move(pass));
    }
  }
  if (passes.empty()) return pairs;

  const size_t tile_rows =
      query_options_.tile_rows == 0
          ? optimizer::AdaptiveTileRows(
                DigestMatrix::WordsPerRow(sketch_->config().base.k))
          : query_options_.tile_rows;
  pairs = pair_scan::RunPasses(passes, params, tile_rows,
                               query_options_.num_threads);
  std::sort(pairs.begin(), pairs.end(), PairBefore);
  return pairs;
}

std::vector<QueryPlanner::Entry> QueryPlanner::TopK(UserId query,
                                                    size_t k) const {
  if (k == 0 || candidates_.empty()) return {};
  // Warm seed: the explicit knob and/or the planner-remembered previous
  // k-th best. Only meaningful where pruning runs at all (clamped path).
  double seed = -1.0;
  if (estimator_.options().clamp_to_feasible) {
    if (query_options_.topk_warm_threshold > 0.0) {
      seed = query_options_.topk_warm_threshold;
    }
    if (query_options_.topk_warm_start) {
      MutexLock lock(&warm_mutex_);
      const auto it = warm_topk_bounds_.find(WarmKey(query, k));
      if (it != warm_topk_bounds_.end()) seed = std::max(seed, it->second);
    }
  }
  std::vector<Entry> result = TopKImpl(query, k, seed);
  if (seed > 0.0 && !(result.size() == k && result.back().jaccard >= seed)) {
    // The optimistic seed over-pruned (data drifted below the previous
    // checkpoint's k-th best, or the caller guessed high): rerun cold.
    // Every seed-driven prune dropped only entries with Ĵ strictly below
    // the seed, so when the verification above passes the warm result is
    // bit-identical to this cold scan.
    result = TopKImpl(query, k, -1.0);
  }
  if (query_options_.topk_warm_start && result.size() == k) {
    MutexLock lock(&warm_mutex_);
    warm_topk_bounds_[WarmKey(query, k)] = result.back().jaccard;
  }
  return result;
}

std::vector<QueryPlanner::Entry> QueryPlanner::TopKImpl(
    UserId query, size_t k, double warm_seed) const {
  const uint32_t query_shard = sketch_->ShardOf(query);
  const UserId query_local = sketch_->LocalIdOf(query);
  const SimilarityIndex& query_index = *indexes_[query_shard];
  const size_t words = DigestMatrix::WordsPerRow(sketch_->config().base.k);

  // Query digest: snapshot row when the query is a candidate, live
  // extraction from its owning shard otherwise.
  std::vector<uint64_t> extracted;
  const uint64_t* query_row = nullptr;
  uint32_t query_card = 0;
  const size_t query_pos = query_index.RowIndexOf(query_local);
  if (query_pos != SimilarityIndex::npos) {
    query_row = query_index.matrix().Row(query_pos);
    query_card = query_index.row_cardinality(query_pos);
  } else {
    extracted.resize(words);
    DigestMatrix::ExtractRow(sketch_->shard(query_shard), query_local,
                             extracted.data());
    query_row = extracted.data();
    query_card = sketch_->shard(query_shard).Cardinality(query_local);
  }
  const double log_beta_query = query_index.log_beta_term();

  // Scatter: one task per shard index. Gather under a shared global
  // threshold bound: each task publishes its current k-th best Ĵ (a
  // lower bound on the final k-th best — the merged top-k can only be
  // better than any one task's) and prunes rows whose clamped Ĵ provably
  // falls below a published bound before popcounting. Strict-inequality
  // conservative ⇒ bit-identical to the unpruned scan for any schedule.
  const bool prune = estimator_.options().clamp_to_feasible;
  std::atomic<double> bound{warm_seed > 0.0 ? warm_seed : -1.0};
  const uint32_t num_shards = sketch_->num_shards();
  std::vector<std::vector<Entry>> per_shard(num_shards);
  RunTasks(
      ResolveThreadCount(query_options_.num_threads, num_shards), num_shards,
      [&](size_t s) {
        const SimilarityIndex& index = *indexes_[s];
        const DigestMatrix& matrix = index.matrix();
        const size_t rows = matrix.rows();
        if (rows == 0) return;
        const double log_beta_pair =
            0.5 * (log_beta_query + index.log_beta_term());
        // Banded TopK: per-band point lookups on this shard's banding
        // table gather the candidate rows; auto mode prices estimating
        // only those against the full shard scan. Candidate estimates
        // are the exact ones, so the banded gather ranks a subset of
        // the exact ranking (the banding contract).
        std::vector<uint32_t> cand_rows;
        bool banded = false;
        optimizer::PlanMode mode =
            optimizer::EffectivePlanMode(query_options_.plan);
        if (mode == optimizer::PlanMode::kAuto &&
            index.banding_feedback_force_exact()) {
          mode = optimizer::PlanMode::kForceExact;
        }
        const pair_scan::BandingTable* table = index.banding_table();
        if (table != nullptr && mode != optimizer::PlanMode::kForceExact) {
          table->AppendRowCandidates(query_row, words, &cand_rows);
          std::sort(cand_rows.begin(), cand_rows.end());
          cand_rows.erase(std::unique(cand_rows.begin(), cand_rows.end()),
                          cand_rows.end());
          if (mode == optimizer::PlanMode::kForceBanded) {
            banded = true;
          } else {
            optimizer::PassStats stats;
            stats.triangle = false;
            stats.rows_a = 1;
            stats.rows_b = rows;
            stats.words_per_row = words;
            stats.exact_pairs = rows;
            stats.banded_entries = cand_rows.size();
            stats.banded_candidates = cand_rows.size();
            stats.banded_available = true;
            stats.dirty_fraction = 0.0;
            banded = optimizer::ChoosePassPlan(
                         stats, optimizer::CalibratedCosts(),
                         optimizer::PlanMode::kAuto)
                         .kind == optimizer::PlanKind::kBanded;
          }
        }
        std::vector<Entry>& kept = per_shard[s];
        const size_t trim_at = std::max<size_t>(2 * k, 256);
        double local_bound = bound.load(std::memory_order_relaxed);
        const auto trim = [&] {
          if (kept.size() <= k) return;
          std::partial_sort(kept.begin(),
                            kept.begin() + static_cast<ptrdiff_t>(k),
                            kept.end(), EntryBefore);
          kept.resize(k);
          PublishBound(&bound, kept.back().jaccard);
          local_bound = bound.load(std::memory_order_relaxed);
        };
        const size_t scan_count = banded ? cand_rows.size() : rows;
        for (size_t i = 0; i < scan_count; ++i) {
          const size_t p = banded ? cand_rows[i] : i;
          const UserId global = GlobalOfRow(static_cast<uint32_t>(s), p);
          if (global == query) continue;
          const double card_v = index.row_cardinality(p);
          if (prune && local_bound > 0.0) {
            // Ĵ ≤ min/(sum−min) under clamping; prune when even that
            // ceiling is strictly below the bound (same slack regime as
            // the all-pairs prefilter).
            const double bound_frac = local_bound / (1.0 + local_bound);
            if (scan::CardinalityFail(std::min<double>(query_card, card_v),
                                      query_card + card_v, bound_frac)) {
              continue;
            }
          }
          const size_t d = XorPopcount(query_row, matrix.Row(p), words);
          const PairEstimate est = estimator_.EstimateFromLogTerms(
              query_card, card_v, log_alpha_table_[d], log_beta_pair);
          kept.push_back({global, est.common, est.jaccard});
          if (kept.size() >= trim_at) trim();
        }
        trim();
      });

  std::vector<Entry> entries;
  size_t total = 0;
  for (const auto& chunk : per_shard) total += chunk.size();
  entries.reserve(total);
  for (const auto& chunk : per_shard) {
    entries.insert(entries.end(), chunk.begin(), chunk.end());
  }
  const size_t take = std::min(k, entries.size());
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<ptrdiff_t>(take),
                    entries.end(), EntryBefore);
  entries.resize(take);
  return entries;
}

std::vector<QueryPlanner::Pair> QueryPlanner::AllPairsAboveReference(
    double jaccard_threshold) const {
  std::vector<Pair> pairs;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    for (size_t j = i + 1; j < candidates_.size(); ++j) {
      const PairEstimate est =
          sketch_->EstimatePair(candidates_[i], candidates_[j]);
      if (est.jaccard >= jaccard_threshold) {
        const UserId u = std::min(candidates_[i], candidates_[j]);
        const UserId v = std::max(candidates_[i], candidates_[j]);
        pairs.push_back({u, v, est.common, est.jaccard});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), PairBefore);
  return pairs;
}

std::vector<QueryPlanner::Entry> QueryPlanner::TopKReference(
    UserId query, size_t k) const {
  std::vector<Entry> entries;
  entries.reserve(candidates_.size());
  for (const UserId candidate : candidates_) {
    if (candidate == query) continue;
    const PairEstimate est = sketch_->EstimatePair(query, candidate);
    entries.push_back({candidate, est.common, est.jaccard});
  }
  const size_t take = std::min(k, entries.size());
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<ptrdiff_t>(take),
                    entries.end(), EntryBefore);
  entries.resize(take);
  return entries;
}

}  // namespace vos::core

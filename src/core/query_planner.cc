#include "core/query_planner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/popcount.h"
#include "core/scan_common.h"

namespace vos::core {
namespace {

// Result orders, worker pool and prefilter math are shared with
// SimilarityIndex (core/scan_common.h) — the planner is asserted
// bit-identical to the single-index path, so none of it may diverge.
using scan::EntryBefore;
using scan::PairBefore;

template <typename Work>
void RunTasks(unsigned threads, size_t num_tasks, const Work& work) {
  scan::RunIndexed(threads, num_tasks, work);
}

/// Raise-only publish of a shared lower bound (TopK's gathered k-th best
/// Ĵ). Relaxed ordering is enough: the bound is a monotone hint — any
/// stale read only prunes less.
void PublishBound(std::atomic<double>* bound, double candidate) {
  double current = bound->load(std::memory_order_relaxed);
  while (candidate > current &&
         !bound->compare_exchange_weak(current, candidate,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

QueryPlanner::QueryPlanner(const ShardedVosSketch& sketch,
                           VosEstimatorOptions estimator_options,
                           QueryOptions query_options)
    : sketch_(&sketch),
      estimator_(sketch.config().base.k, estimator_options),
      query_options_(query_options),
      log_alpha_table_(estimator_.BuildLogAlphaTable()) {
  // One index per shard, bound to the shard's VosSketch (local id
  // space). Planner parallelism is across tasks, so each index runs
  // single-threaded inside — no nested oversubscription.
  QueryOptions per_index = query_options_;
  per_index.num_threads = 1;
  indexes_.reserve(sketch.num_shards());
  for (uint32_t s = 0; s < sketch.num_shards(); ++s) {
    indexes_.push_back(std::make_unique<SimilarityIndex>(
        sketch.shard(s), estimator_options, per_index));
  }
}

void QueryPlanner::Rebuild(std::vector<UserId> candidates) {
  VOS_DCHECK(!sketch_->HasPendingIngest())
      << "Rebuild on a non-quiesced pipeline; call Flush() first";
  candidates_ = std::move(candidates);
  const uint32_t num_shards = sketch_->num_shards();
  std::vector<std::vector<UserId>> locals(num_shards);
  for (const UserId user : candidates_) {
    locals[sketch_->ShardOf(user)].push_back(sketch_->LocalIdOf(user));
  }
  RunTasks(ResolveThreadCount(query_options_.num_threads, num_shards),
           num_shards,
           [&](size_t s) { indexes_[s]->Rebuild(std::move(locals[s])); });
}

bool QueryPlanner::Refresh() {
  VOS_CHECK(query_options_.incremental)
      << "Refresh needs QueryOptions::incremental";
  VOS_DCHECK(!sketch_->HasPendingIngest())
      << "Refresh on a non-quiesced pipeline; call Flush() first";
  const uint32_t num_shards = sketch_->num_shards();
  std::vector<uint8_t> incremental(num_shards, 0);
  RunTasks(ResolveThreadCount(query_options_.num_threads, num_shards),
           num_shards, [&](size_t s) {
             incremental[s] = indexes_[s]->RefreshDirty() ? 1 : 0;
           });
  return std::all_of(incremental.begin(), incremental.end(),
                     [](uint8_t i) { return i != 0; });
}

UserId QueryPlanner::GlobalOfRow(uint32_t s, size_t p) const {
  const SimilarityIndex& index = *indexes_[s];
  const UserId local = index.candidates()[index.sorted_to_candidate(p)];
  return sketch_->GlobalUserOf(s, local);
}

void QueryPlanner::AppendSameShardPairs(uint32_t s,
                                        std::vector<Pair> local_pairs,
                                        std::vector<Pair>* out) const {
  out->reserve(out->size() + local_pairs.size());
  for (const Pair& pair : local_pairs) {
    const UserId gu = sketch_->GlobalUserOf(s, pair.u);
    const UserId gv = sketch_->GlobalUserOf(s, pair.v);
    out->push_back({std::min(gu, gv), std::max(gu, gv), pair.common,
                    pair.jaccard});
  }
}

void QueryPlanner::ScanCrossShardBlock(uint32_t s, uint32_t t, size_t begin,
                                       size_t end, double jaccard_threshold,
                                       std::vector<Pair>* out) const {
  const SimilarityIndex& ia = *indexes_[s];
  const SimilarityIndex& ib = *indexes_[t];
  const DigestMatrix& ma = ia.matrix();
  const DigestMatrix& mb = ib.matrix();
  const size_t nb = mb.rows();
  if (nb == 0 || begin >= end) return;
  const size_t words = ma.words_per_row();
  const uint32_t k = ma.k();
  const std::vector<uint32_t>& cards_b = ib.row_cardinalities();
  // Cross-shard β correction: each digest carries its own shard's
  // contamination, so the estimator takes the mean of the two log-beta
  // terms — identical to ShardedVosSketch::EstimatePair.
  const double log_beta_pair =
      0.5 * (ia.log_beta_term() + ib.log_beta_term());

  const auto emit = [&](size_t p, size_t q, const PairEstimate& est) {
    const UserId gu = GlobalOfRow(s, p);
    const UserId gv = GlobalOfRow(t, q);
    out->push_back({std::min(gu, gv), std::max(gu, gv), est.common,
                    est.jaccard});
  };

  // Same gating and slack regime as SimilarityIndex::ScanSortedBlock: the
  // prefilter is sound only on the clamped estimator path.
  const bool prefilter = query_options_.prefilter &&
                         estimator_.options().clamp_to_feasible &&
                         jaccard_threshold > 1e-5;
  if (!prefilter) {
    for (size_t p = begin; p < end; ++p) {
      const uint64_t* row_a = ma.Row(p);
      const double card_a = ia.row_cardinality(p);
      for (size_t q = 0; q < nb; ++q) {
        const size_t d = XorPopcount(row_a, mb.Row(q), words);
        const PairEstimate est = estimator_.EstimateFromLogTerms(
            card_a, cards_b[q], log_alpha_table_[d], log_beta_pair);
        if (est.jaccard >= jaccard_threshold) emit(p, q, est);
      }
    }
    return;
  }

  const double tau_frac = jaccard_threshold / (1.0 + jaccard_threshold);
  const size_t phase1_words = scan::Phase1Words(words);
  const bool split = phase1_words != words;
  const size_t phase1_bits = std::min<size_t>(phase1_words * 64, k);
  const double cut_scale = scan::CutScale(tau_frac, k);

  for (size_t p = begin; p < end; ++p) {
    const uint64_t* row_a = ma.Row(p);
    const double card_a = ia.row_cardinality(p);
    // Two-sided admissible window over B's cardinality-sorted rows. The
    // same conservative min-bound as the same-shard sweep
    // (scan::CardinalityFail), applied from both ends: below the window
    // the partner is the min and too small, above it card_a is the min
    // and too small; both fail predicates are monotone in the partner's
    // cardinality, so both ends are partition points and out-of-window
    // pairs are never enumerated.
    const auto lo_it = std::partition_point(
        cards_b.begin(), cards_b.end(), [&](uint32_t card_j) {
          return scan::CardinalityFail(card_j, card_a + card_j, tau_frac);
        });
    const auto hi_it =
        std::partition_point(lo_it, cards_b.end(), [&](uint32_t card_j) {
          return !scan::CardinalityFail(card_a, card_a + card_j, tau_frac);
        });
    size_t q = static_cast<size_t>(lo_it - cards_b.begin());
    const size_t q_end = static_cast<size_t>(hi_it - cards_b.begin());

    // Identical finish to the same-shard sweep, with the combined
    // ln|1−2β_A| + ln|1−2β_B| cut standing in for 2·ln|1−2β|.
    const auto finish = [&](size_t qq, size_t d) {
      const double card_b = cards_b[qq];
      const double cut = scan::SlackedCut(cut_scale * (card_a + card_b) +
                                          2.0 * log_beta_pair);
      if (scan::ConfinedFail(log_alpha_table_, k, d, phase1_bits, cut)) {
        return;
      }
      size_t d_full = d;
      if (split) {
        d_full += XorPopcount(row_a + phase1_words,
                              mb.Row(qq) + phase1_words,
                              words - phase1_words);
      }
      if (log_alpha_table_[d_full] < cut) return;
      const PairEstimate est = estimator_.EstimateFromLogTerms(
          card_a, card_b, log_alpha_table_[d_full], log_beta_pair);
      if (est.jaccard >= jaccard_threshold) emit(p, qq, est);
    };

    size_t d8[8];
    for (; q + 8 <= q_end; q += 8) {
      XorPopcount8(row_a, mb.Row(q), words, phase1_words, d8);
      for (size_t i = 0; i < 8; ++i) finish(q + i, d8[i]);
    }
    for (; q < q_end; ++q) {
      finish(q, XorPopcount(row_a, mb.Row(q), phase1_words));
    }
  }
}

std::vector<QueryPlanner::Pair> QueryPlanner::AllPairsAbove(
    double jaccard_threshold) const {
  std::vector<Pair> pairs;
  const uint32_t num_shards = sketch_->num_shards();
  // Task list: one same-shard pass per shard (the index's own sweep,
  // single-threaded) plus cross-shard (s, t) passes split into row
  // blocks of shard s for balance.
  std::vector<PairTask> tasks;
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (indexes_[s]->candidate_count() >= 2) {
      tasks.push_back({s, s, 0, 0, true});
    }
  }
  const size_t block = std::max<size_t>(query_options_.block_size, 1);
  for (uint32_t s = 0; s < num_shards; ++s) {
    const size_t rows_s = indexes_[s]->matrix().rows();
    if (rows_s == 0) continue;
    for (uint32_t t = s + 1; t < num_shards; ++t) {
      if (indexes_[t]->matrix().rows() == 0) continue;
      for (size_t b = 0; b < rows_s; b += block) {
        tasks.push_back({s, t, b, std::min(rows_s, b + block), false});
      }
    }
  }
  if (tasks.empty()) return pairs;

  std::vector<std::vector<Pair>> per_task(tasks.size());
  RunTasks(ResolveThreadCount(query_options_.num_threads, tasks.size()),
           tasks.size(), [&](size_t i) {
             const PairTask& task = tasks[i];
             if (task.same_shard) {
               AppendSameShardPairs(
                   task.s, indexes_[task.s]->AllPairsAbove(jaccard_threshold),
                   &per_task[i]);
             } else {
               ScanCrossShardBlock(task.s, task.t, task.row_begin,
                                   task.row_end, jaccard_threshold,
                                   &per_task[i]);
             }
           });
  size_t total = 0;
  for (const auto& chunk : per_task) total += chunk.size();
  pairs.reserve(total);
  for (const auto& chunk : per_task) {
    pairs.insert(pairs.end(), chunk.begin(), chunk.end());
  }
  std::sort(pairs.begin(), pairs.end(), PairBefore);
  return pairs;
}

std::vector<QueryPlanner::Entry> QueryPlanner::TopK(UserId query,
                                                    size_t k) const {
  if (k == 0 || candidates_.empty()) return {};
  const uint32_t query_shard = sketch_->ShardOf(query);
  const UserId query_local = sketch_->LocalIdOf(query);
  const SimilarityIndex& query_index = *indexes_[query_shard];
  const size_t words = DigestMatrix::WordsPerRow(sketch_->config().base.k);

  // Query digest: snapshot row when the query is a candidate, live
  // extraction from its owning shard otherwise.
  std::vector<uint64_t> extracted;
  const uint64_t* query_row = nullptr;
  uint32_t query_card = 0;
  const size_t query_pos = query_index.RowIndexOf(query_local);
  if (query_pos != SimilarityIndex::npos) {
    query_row = query_index.matrix().Row(query_pos);
    query_card = query_index.row_cardinality(query_pos);
  } else {
    extracted.resize(words);
    DigestMatrix::ExtractRow(sketch_->shard(query_shard), query_local,
                             extracted.data());
    query_row = extracted.data();
    query_card = sketch_->shard(query_shard).Cardinality(query_local);
  }
  const double log_beta_query = query_index.log_beta_term();

  // Scatter: one task per shard index. Gather under a shared global
  // threshold bound: each task publishes its current k-th best Ĵ (a
  // lower bound on the final k-th best — the merged top-k can only be
  // better than any one task's) and prunes rows whose clamped Ĵ provably
  // falls below a published bound before popcounting. Strict-inequality
  // conservative ⇒ bit-identical to the unpruned scan for any schedule.
  const bool prune = estimator_.options().clamp_to_feasible;
  std::atomic<double> bound{-1.0};
  const uint32_t num_shards = sketch_->num_shards();
  std::vector<std::vector<Entry>> per_shard(num_shards);
  RunTasks(
      ResolveThreadCount(query_options_.num_threads, num_shards), num_shards,
      [&](size_t s) {
        const SimilarityIndex& index = *indexes_[s];
        const DigestMatrix& matrix = index.matrix();
        const size_t rows = matrix.rows();
        if (rows == 0) return;
        const double log_beta_pair =
            0.5 * (log_beta_query + index.log_beta_term());
        std::vector<Entry>& kept = per_shard[s];
        const size_t trim_at = std::max<size_t>(2 * k, 256);
        double local_bound = bound.load(std::memory_order_relaxed);
        const auto trim = [&] {
          if (kept.size() <= k) return;
          std::partial_sort(kept.begin(),
                            kept.begin() + static_cast<ptrdiff_t>(k),
                            kept.end(), EntryBefore);
          kept.resize(k);
          PublishBound(&bound, kept.back().jaccard);
          local_bound = bound.load(std::memory_order_relaxed);
        };
        for (size_t p = 0; p < rows; ++p) {
          const UserId global = GlobalOfRow(static_cast<uint32_t>(s), p);
          if (global == query) continue;
          const double card_v = index.row_cardinality(p);
          if (prune && local_bound > 0.0) {
            // Ĵ ≤ min/(sum−min) under clamping; prune when even that
            // ceiling is strictly below the bound (same slack regime as
            // the all-pairs prefilter).
            const double bound_frac = local_bound / (1.0 + local_bound);
            if (scan::CardinalityFail(std::min<double>(query_card, card_v),
                                      query_card + card_v, bound_frac)) {
              continue;
            }
          }
          const size_t d = XorPopcount(query_row, matrix.Row(p), words);
          const PairEstimate est = estimator_.EstimateFromLogTerms(
              query_card, card_v, log_alpha_table_[d], log_beta_pair);
          kept.push_back({global, est.common, est.jaccard});
          if (kept.size() >= trim_at) trim();
        }
        trim();
      });

  std::vector<Entry> entries;
  size_t total = 0;
  for (const auto& chunk : per_shard) total += chunk.size();
  entries.reserve(total);
  for (const auto& chunk : per_shard) {
    entries.insert(entries.end(), chunk.begin(), chunk.end());
  }
  const size_t take = std::min(k, entries.size());
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<ptrdiff_t>(take),
                    entries.end(), EntryBefore);
  entries.resize(take);
  return entries;
}

std::vector<QueryPlanner::Pair> QueryPlanner::AllPairsAboveReference(
    double jaccard_threshold) const {
  std::vector<Pair> pairs;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    for (size_t j = i + 1; j < candidates_.size(); ++j) {
      const PairEstimate est =
          sketch_->EstimatePair(candidates_[i], candidates_[j]);
      if (est.jaccard >= jaccard_threshold) {
        const UserId u = std::min(candidates_[i], candidates_[j]);
        const UserId v = std::max(candidates_[i], candidates_[j]);
        pairs.push_back({u, v, est.common, est.jaccard});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), PairBefore);
  return pairs;
}

std::vector<QueryPlanner::Entry> QueryPlanner::TopKReference(
    UserId query, size_t k) const {
  std::vector<Entry> entries;
  entries.reserve(candidates_.size());
  for (const UserId candidate : candidates_) {
    if (candidate == query) continue;
    const PairEstimate est = sketch_->EstimatePair(query, candidate);
    entries.push_back({candidate, est.common, est.jaccard});
  }
  const size_t take = std::min(k, entries.size());
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<ptrdiff_t>(take),
                    entries.end(), EntryBefore);
  entries.resize(take);
  return entries;
}

}  // namespace vos::core

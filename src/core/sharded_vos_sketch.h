// ShardedVosSketch: the concurrent, shard-aware write path of VOS.
//
// The paper's O(1) update (§IV) leaves a serial `for (e : stream)
// Update(e)` loop as the only ingestion bottleneck. This class removes it
// by partitioning the stream *by user* across S fully independent
// VosSketch shards: shard s owns every user with ShardOf(u) == s and
// nothing else — its own bit array (m/S bits of the total budget), its own
// exact β counter, its own f-cell family (per-shard derived f seed), its
// own dirty set. Shards never share mutable state, so S ingest workers
// proceed without any synchronization on the hot path.
//
// Shard-routing invariant: a user's entire element history lands on
// exactly one shard (stream/shard_router.h), which keeps every shard's
// sub-stream locally feasible and makes every pair query answerable —
// both endpoints of (u, v) live in shards known from two ShardOf calls,
// and their digests remain XOR-comparable because ψ (item → virtual bit)
// is shared across shards; only the f families (virtual bit → cell)
// differ. Same-shard pairs estimate exactly as a standalone VosSketch on
// that shard's sub-stream would; cross-shard pairs generalize the §IV
// contamination correction from (1−2β)² to (1−2β_A)(1−2β_B), i.e. the
// 2·ln|1−2β| term becomes ln|1−2β_A| + ln|1−2β_B|.
//
// Ingestion pipeline (ingest_threads ≥ 1): P producer lanes
// (ingest_producers) feed W shard workers through P·S bounded SPSC rings
// (common/spsc_ring.h), one per (producer, shard). A producer's
// UpdateBatch runs ONE routing pass over its batch
// (DenseShardMap::Partition — rewrite to dense local ids and split into
// per-shard sub-batches), then pushes each non-empty sub-batch onto its
// own (producer, shard) ring. Every ring has exactly one writer (its
// producer) and one reader (its shard's worker), so the healthy hot path
// takes NO lock anywhere: push and pop are single release stores,
// back-pressure is a bounded spin that parks on a per-lane condvar only
// when the ring stays full, idle workers park on a per-worker condvar
// only when every owned ring stays empty, and Flush barriers wait on
// per-lane epoch counters (ring.pushed() vs lane.completed) instead of a
// global notify_all. Worker w owns shards {s : s mod W == w} and drains
// their rings round-robin across producers, applying every element of a
// sub-batch verbatim — no worker ever scans elements it does not own, so
// ingest bandwidth scales with the producer count instead of being
// capped by a per-worker whole-batch scan, and with the worker count on
// the apply side.
//
// NUMA placement (pin_numa_workers): shard construction and ring
// allocation happen ON the owning worker thread, so first-touch places
// each shard's bit array and each lane's slot array on the worker's
// node; with pinning enabled each worker additionally sets its affinity
// to node (w mod num_nodes) (common/numa.h — best-effort, a refused
// affinity call just runs unpinned, and single-node machines are a
// no-op).
//
// Determinism: each (producer, shard) queue is FIFO and each shard is
// applied by exactly one worker, so shard s sees producer p's elements in
// p's order. Interleaving BETWEEN producers is scheduling-dependent, but
// the final sketch state is not: array updates are XOR flips and
// cardinality updates are ±1 — both commutative — so the flushed state is
// bit-identical to synchronously routing each producer's stream in any
// order (asserted in tests/sharded_ingest_test.cc across producers ×
// shards × queue capacities). Per-producer in-shard FIFO order is what
// keeps each producer's feasible sub-stream feasible at the shard (a
// user's deletes never overtake their inserts when each user's history
// lives in one producer lane).
//
// With ingest_threads == 0 the pipeline is synchronous: UpdateBatch
// routes and applies inline (single-threaded, deterministic) — the
// reference the equivalence tests compare against.
//
// Dense user remap (num_shards > 1): shard s's VosSketch lives entirely
// in shard-local id space. A construction-time DenseShardMap
// (stream/shard_router.h) assigns every global id a dense local id — its
// global-id rank within its shard — and routing rewrites each element's
// user to that local id before the shard sees it. Shard s is therefore
// sized for exactly the users it owns: per-user state (cardinality
// counters, dirty epochs) totals ~8 bytes/user across ALL shards instead
// of ~8·S bytes/user, the remap itself costs a fixed 8 bytes/user, and
// MemoryBits() counts all of it (see below). Because the map depends
// only on (seed, num_shards, num_users) — never on stream order — shard
// state stays deterministic across pipelines, and the query tier
// translates with two O(1) table lookups (LocalIdOf / GlobalUserOf).
// With num_shards == 1 the remap is the identity and is skipped
// entirely, keeping the single shard bit-identical to a standalone
// VosSketch(base) fed the raw stream.
//
// Thread-safety contract: producer lane p (Update / UpdateBatch /
// FlushProducer with producer == p) must be driven by one thread at a
// time, but DISTINCT lanes may run concurrently — that is the point.
// Flush() quiesces every lane and requires that no producer is feeding
// concurrently. Queries (EstimatePair, shard(), Cardinality) require a
// quiesced pipeline — call Flush() first; they are then const and
// concurrent-safe. The destructor flushes and joins the workers. In
// synchronous mode all ingest calls mutate shards inline and must come
// from one thread at a time regardless of the producer id.

// Failure semantics (PR 6): shard workers are no longer infallible. A
// worker exception (or an injected fault — common/fault_injector.h)
// poisons its shard: the shard's sticky non-OK Status is returned from
// Flush()/IngestStatus(), its queued and future sub-batches are dropped
// (counted in dropped_elements()), and the rest of the pipeline keeps
// flowing — degraded, not dead. Queries keep serving whatever state the
// shards hold; the method layer keeps serving its last snapshot. Enqueue
// and Flush accept deadlines (ShardedVosConfig::*_timeout_ms) so a
// starved lane surfaces as Status::DeadlineExceeded instead of a silent
// hang. Recovery is Checkpoint()/Restore(): an atomic, CRC-checked v3
// container (core/vos_io.h) holding every shard's state, the dense remap
// and the per-lane ingest watermarks recorded at the Flush barrier —
// replaying each lane's stream from its watermark reproduces the
// uninterrupted state bit-for-bit (tests/checkpoint_recovery_test.cc).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/vos_estimator.h"
#include "core/vos_sketch.h"
#include "stream/shard_router.h"

namespace vos::core {

/// Sizing and pipeline tunables of a sharded VOS sketch.
struct ShardedVosConfig {
  /// Total-budget sketch config: `base.m` is the bit budget across ALL
  /// shards (each shard gets m / num_shards), `base.seed` seeds ψ (shared
  /// by every shard) and the router; per-shard f seeds are derived from
  /// it. With num_shards == 1 the shard is configured exactly as a
  /// standalone VosSketch(base).
  VosConfig base;
  /// Number of independent shards (≥ 1).
  uint32_t num_shards = 1;
  /// Ingest worker threads: 0 = synchronous inline ingestion (no worker
  /// threads, deterministic); otherwise min(ingest_threads, num_shards)
  /// workers are spawned and each owns a fixed subset of the shards.
  unsigned ingest_threads = 0;
  /// Producer lanes (asynchronous mode only): each lane has its own
  /// pending buffer and its own bounded queue per shard, and may be
  /// driven by its own thread concurrently with the other lanes. Clamped
  /// to ≥ 1; forced to 1 in synchronous mode (inline ingestion is
  /// single-threaded by contract).
  unsigned ingest_producers = 1;
  /// Elements buffered by Update() before auto-enqueueing one batch
  /// (asynchronous mode only; UpdateBatch enqueues the caller's batch
  /// as-is).
  size_t batch_size = 4096;
  /// Bounded queue depth, in sub-batches per (producer, shard) queue; a
  /// full queue blocks that producer (back-pressure instead of unbounded
  /// memory).
  size_t queue_capacity = 64;
  /// Deadline for a back-pressured enqueue, in milliseconds (0 = block
  /// indefinitely, the pre-PR-6 behaviour). On expiry the sub-batch is
  /// dropped, the destination shard's sticky status becomes
  /// DeadlineExceeded (lane starved), and the producer keeps running.
  uint64_t enqueue_timeout_ms = 0;
  /// Deadline for Flush()/FlushProducer(), in milliseconds (0 = wait
  /// indefinitely). On expiry Flush returns DeadlineExceeded without
  /// poisoning anything — the wait was abandoned, not the data.
  uint64_t flush_timeout_ms = 0;
  /// Optional memory ceiling in bits over the sketch's static footprint
  /// plus queued-but-unapplied sub-batches (0 = unbounded). A config
  /// whose static footprint alone exceeds the budget is rejected at
  /// construction (ValidateConfig); at runtime an enqueue that would
  /// cross the ceiling is dropped and the sticky ingest status becomes
  /// ResourceExhausted — graceful degradation instead of OOM.
  uint64_t memory_budget_bits = 0;
  /// Pin each shard worker to NUMA node (w mod num_nodes) so it applies
  /// updates next to the shard arrays and ring slots it first-touched
  /// (see file comment). Best-effort and a no-op on single-node
  /// machines; defaults off so tests and single-socket runs are
  /// unaffected. Tools and the harness default it from
  /// numa::DefaultPinThreads() (--pin_threads / VOS_PIN).
  bool pin_numa_workers = false;
};

/// S independent VosSketch shards behind one ingest/query facade.
class ShardedVosSketch {
 public:
  /// Aborts (VOS_CHECK) with ValidateConfig's message on a degenerate
  /// config — a zero queue capacity must fail here, loudly, not deadlock
  /// the first back-pressured enqueue.
  ShardedVosSketch(const ShardedVosConfig& config, UserId num_users,
                   VosEstimatorOptions estimator_options = {});
  ~ShardedVosSketch();

  /// Rejects degenerate configurations with a clear InvalidArgument:
  /// zero shards/queue capacity/batch size/producer lanes, zero k or m,
  /// and a memory_budget_bits smaller than the config's own static
  /// footprint. The constructor enforces this; callers that would rather
  /// handle the error than abort can pre-validate.
  static Status ValidateConfig(const ShardedVosConfig& config,
                               UserId num_users);

  ShardedVosSketch(const ShardedVosSketch&) = delete;
  ShardedVosSketch& operator=(const ShardedVosSketch&) = delete;

  /// The VosConfig shard `shard` runs: base with m divided by num_shards
  /// and (for num_shards > 1) a per-shard derived f seed. Exposed so
  /// tests and external shard replicas can construct bit-identical
  /// standalone references.
  static VosConfig ShardConfig(const ShardedVosConfig& config,
                               uint32_t shard);

  /// Processes one element on producer lane `producer`. Synchronous mode
  /// applies it inline; asynchronous mode buffers it in the lane's
  /// pending buffer and enqueues a sub-batch run every `batch_size`
  /// elements.
  void Update(const stream::Element& e, unsigned producer = 0);

  /// Processes a contiguous batch on producer lane `producer`, preserving
  /// the lane's per-shard element order. Asynchronous mode partitions the
  /// batch into per-shard sub-batches in one routing pass and enqueues
  /// them onto the lane's per-shard queues.
  void UpdateBatch(const stream::Element* elements, size_t count,
                   unsigned producer = 0);

  /// Blocks until every element accepted on ANY lane is applied to its
  /// shard (including all Update() buffers) or dropped against a
  /// poisoned shard, then returns IngestStatus(). Requires that no
  /// producer is feeding concurrently. With flush_timeout_ms set, an
  /// expired wait returns DeadlineExceeded (and applies no state
  /// change). In synchronous mode returns IngestStatus() immediately.
  Status Flush() VOS_EXCLUDES(mu_);

  /// Blocks until every element accepted on lane `producer` is applied
  /// (or dropped), then returns IngestStatus(). Safe to call from the
  /// lane's own thread while OTHER lanes are still feeding.
  Status FlushProducer(unsigned producer) VOS_EXCLUDES(mu_);

  /// The sticky health of the ingest fabric: OK while every shard is
  /// healthy and no batch has been rejected; otherwise the first
  /// poisoned shard's status (worker exception / kill / starvation) or
  /// the budget-rejection status. Sticky until Restore().
  Status IngestStatus() const VOS_EXCLUDES(mu_);

  /// Elements dropped because their destination shard was poisoned, a
  /// back-pressured enqueue timed out, or the memory budget was hit.
  /// Zero on a healthy pipeline.
  uint64_t dropped_elements() const;

  /// Observability of the adaptive SPSC spin budgets: counters are sums
  /// over every producer lane / worker slot since construction, budgets
  /// are the current per-lane / per-worker values (min/max across them;
  /// all zero in synchronous mode, which has no lanes). A park/save
  /// ratio near zero means the budgets have converged on spinning;
  /// near one means the stalls are long and parking is right.
  struct SpinStats {
    uint64_t push_parks = 0;       ///< producer parks on full rings
    uint64_t push_spin_saves = 0;  ///< pushes that landed within the budget
    uint64_t idle_parks = 0;       ///< worker parks on empty rings
    uint64_t idle_spin_saves = 0;  ///< pops that landed after ≥ 1 idle round
    uint32_t min_push_spin_budget = 0;
    uint32_t max_push_spin_budget = 0;
    uint32_t min_idle_spin_budget = 0;
    uint32_t max_idle_spin_budget = 0;
  };
  SpinStats IngestSpinStats() const;

  // --- Durability (see file comment and core/vos_io.h) ------------------

  /// Per-lane ingest watermarks: watermark[p] = elements accepted on
  /// lane p since construction (or the last Restore). At a successful
  /// Flush barrier every accepted element is applied, so the watermarks
  /// name the exact per-lane stream positions a checkpoint covers. Only
  /// stable once the pipeline is quiesced.
  std::vector<uint64_t> ingest_watermarks() const {
    std::vector<uint64_t> watermarks(accepted_.size());
    for (size_t p = 0; p < accepted_.size(); ++p) {
      watermarks[p] = accepted_[p].load(std::memory_order_relaxed);
    }
    return watermarks;
  }

  /// Atomically checkpoints the flushed state (every shard's sketch, the
  /// dense remap, the per-lane watermarks) to `path`: written to a temp
  /// file, fsynced, then renamed — a crash mid-checkpoint leaves any
  /// previous checkpoint at `path` intact. Flushes first (same
  /// no-concurrent-producer contract as Flush); refuses with the sticky
  /// status if the pipeline is degraded — a checkpoint must never cover
  /// dropped data.
  Status Checkpoint(const std::string& path) VOS_EXCLUDES(mu_);

  /// Restores a checkpoint written by Checkpoint() with a matching
  /// configuration (manifest-checked). All-or-nothing: every section is
  /// CRC-verified and staged before any live state changes, so a torn or
  /// corrupt file leaves this sketch exactly as it was. On success the
  /// shard sketches, watermarks and dense remap match the checkpointed
  /// state bit-for-bit, sticky ingest statuses are cleared (recovery
  /// heals poisoning), and ingestion may resume — resume each lane's
  /// stream from ingest_watermarks()[lane]. Shards whose worker thread
  /// was killed stay rejected (FailedPrecondition): a dead thread cannot
  /// be resurrected in-process; restore into a fresh instance instead.
  Status Restore(const std::string& path) VOS_EXCLUDES(mu_);

  /// True while elements are buffered or queued but not yet applied.
  /// Lock-free: reads each lane's own atomics — the per-producer
  /// accepted/dispatched element counters (Update() buffer occupancy)
  /// and each ring's pushed counter vs its completed epoch — so any
  /// thread can poll while producer lanes are feeding. A false answer is
  /// only a stable "quiesced" statement once producers have stopped.
  bool HasPendingIngest() const;

  /// (ŝ, Ĵ) for a pair at the current (flushed) state. Same-shard pairs
  /// match a standalone VosSketch fed the shard's (locally re-id'd)
  /// sub-stream bit-for-bit; cross-shard pairs use the two-β
  /// contamination correction (see file comment).
  PairEstimate EstimatePair(UserId u, UserId v) const;

  uint32_t ShardOf(UserId user) const { return router_.ShardOf(user); }
  uint32_t num_shards() const { return router_.num_shards(); }
  const stream::ShardRouter& router() const { return router_; }

  /// Producer lanes that may ingest concurrently: config.ingest_producers
  /// in asynchronous mode, 1 in synchronous mode.
  unsigned num_producers() const { return producers_; }

  /// True when the dense remap is engaged (num_shards > 1); with one
  /// shard local ids equal global ids.
  bool dense_remap() const { return router_.num_shards() > 1; }

  /// Dense local id of `user` within shard ShardOf(user) — the id its
  /// owning shard's VosSketch knows it by.
  UserId LocalIdOf(UserId user) const {
    return dense_remap() ? dense_map_.LocalOf(user) : user;
  }

  /// Inverse of LocalIdOf: the global id behind (shard, local).
  UserId GlobalUserOf(uint32_t shard, UserId local) const {
    return dense_remap() ? dense_map_.GlobalOf(shard, local) : local;
  }

  /// Users owned by `shard` (the size of its dense local id space).
  UserId ShardUserCount(uint32_t shard) const {
    return shards_[shard].num_users();
  }

  const VosSketch& shard(uint32_t s) const { return shards_[s]; }
  VosSketch& mutable_shard(uint32_t s) { return shards_[s]; }

  /// n_u, read from the user's owning shard.
  uint32_t Cardinality(UserId user) const {
    return shards_[ShardOf(user)].Cardinality(LocalIdOf(user));
  }

  /// Honest total memory: the shard arrays (≈ base.m bits by
  /// construction) PLUS every per-user structure the sharded facade
  /// allocates — per-shard cardinality counters and dirty epochs
  /// (VosSketch::PerUserStateBits) and the dense remap's forward/inverse
  /// tables. Thanks to the dense remap the per-user portion is
  /// independent of num_shards (~8–16 bytes/user total, vs. ~8·S
  /// bytes/user without it), and — unlike plain VosSketch::MemoryBits(),
  /// which excludes the one cardinality counter per user every compared
  /// method keeps — nothing here is silently dropped: duplicated or
  /// facade-specific per-user state is exactly the overhead a
  /// Figure-2-style equal-memory comparison must see.
  size_t MemoryBits() const;

  const ShardedVosConfig& config() const { return config_; }
  const VosEstimator& estimator() const { return estimator_; }
  UserId num_users() const { return num_users_; }

 private:
  friend class ShardedCheckpointIo;  // serialization needs raw state

  /// One SPSC channel from producer p to shard s's worker, plus the
  /// lane's flush epoch and the producer-side parking spot for
  /// back-pressure. Elements are already in shard-local coordinates, so
  /// the owning worker applies them verbatim. alignas keeps one lane's
  /// traffic off its neighbours' cache lines.
  struct alignas(64) IngestLane {
    SpscRing<std::vector<stream::Element>> ring;
    /// Sub-batches applied or discarded by the consumer side. The Flush
    /// barrier for a lane is completed == ring.pushed(): every pushed
    /// sub-batch is eventually popped by its worker (applied, or
    /// discarded against a poisoned shard) or reclaimed from a dead
    /// worker's ring under mu_, and each of those paths increments this.
    std::atomic<uint64_t> completed{0};
    /// 1 while the lane's producer is parked on a full ring. Consumers
    /// load it after a pop (behind a seq_cst fence) and notify under
    /// park_mu, pairing with the producer's set-flag → recheck → wait.
    std::atomic<uint32_t> producer_parked{0};
    /// Park-path leaf lock: never held while acquiring mu_ (see mu_'s
    /// ordering note; array members cannot carry VOS_ACQUIRED_BEFORE, so
    /// the order is enforced by VOS_EXCLUDES(mu_) on every acquirer).
    Mutex park_mu;
    CondVar park_cv;
    /// Adaptive spin budget on a full ring before parking (bounds in the
    /// .cc): grown when spinning made the park unnecessary, halved when
    /// the producer parked anyway. Written only by the lane's producer;
    /// atomic so IngestSpinStats() may read it from any thread.
    std::atomic<uint32_t> push_spin_budget{64};
    std::atomic<uint64_t> push_parks{0};
    std::atomic<uint64_t> push_spin_saves{0};
  };

  /// Per-worker parking spot for idle workers: the worker sets `parked`,
  /// re-scans its rings, and only then waits; producers load `parked`
  /// after a push (behind a seq_cst fence) and notify under mu — the
  /// Dekker-style handshake that makes lost wakeups impossible without
  /// any lock on the non-parked path.
  struct alignas(64) WorkerSlot {
    std::atomic<uint32_t> parked{0};
    /// Park-path leaf lock, same ordering rule as IngestLane::park_mu.
    Mutex mu;
    CondVar cv;
    /// Adaptive spin budget on empty rings before parking (twin of
    /// IngestLane::push_spin_budget; written only by the owning worker).
    std::atomic<uint32_t> idle_spin_budget{64};
    std::atomic<uint64_t> idle_parks{0};
    std::atomic<uint64_t> idle_spin_saves{0};
  };

  bool async() const { return !worker_threads_.empty(); }
  size_t LaneIndex(unsigned producer, uint32_t shard) const {
    return static_cast<size_t>(producer) * router_.num_shards() + shard;
  }
  /// Applies one element inline (synchronous mode), routing through the
  /// dense remap. Catches worker-model exceptions and poisons the shard,
  /// exactly like the async apply loop.
  void ApplySyncElement(const stream::Element& e) VOS_EXCLUDES(mu_);
  /// Marks `shard` failed (first error wins, sticky) and flips the
  /// degraded flag. Does NOT touch rings (the consumer side discards a
  /// poisoned shard's backlog on pop, or the kill / reclaim paths drain
  /// it) and does NOT wake waiters — call WakeAllWaiters() after
  /// releasing mu_.
  void PoisonShardLocked(uint32_t shard, Status status) VOS_REQUIRES(mu_);
  /// Wakes every parked producer, every parked worker and every flush
  /// waiter (cold paths only: poison, budget, stop). Must be called
  /// WITHOUT mu_ held — park mutexes are never nested inside mu_.
  void WakeAllWaiters() VOS_EXCLUDES(mu_);
  /// True iff `shard` is poisoned (locks mu_; call only behind a
  /// degraded_ fast-path check).
  bool ShardPoisoned(uint32_t shard) const VOS_EXCLUDES(mu_);
  /// Reclaims lane (producer, shard)'s ring after its owning worker died:
  /// a push can race a dying worker's final drain, and the seq_cst fence
  /// pairing guarantees the racing producer then observes degraded_ and
  /// calls this. Drains under mu_ (the dead worker no longer touches the
  /// ring; mu_ serializes against Restore and other reclaims).
  void ReclaimDeadLane(unsigned producer, uint32_t shard) VOS_EXCLUDES(mu_);
  Status IngestStatusLocked() const VOS_REQUIRES(mu_);
  /// The one routing pass: splits [elements, elements+count) into
  /// per-shard sub-batches rewritten to shard-local coordinates.
  /// `per_shard` must hold num_shards() empty buckets.
  void RoutePartition(const stream::Element* elements, size_t count,
                      std::vector<std::vector<stream::Element>>* per_shard)
      const;
  void EnqueueSubBatch(unsigned producer, uint32_t shard,
                       std::vector<stream::Element> batch) VOS_EXCLUDES(mu_);
  /// Spin-then-park push: bounded spin on the full ring, then park on the
  /// lane's condvar until the worker pops, the shard is poisoned, or the
  /// enqueue deadline expires. Returns false when the batch was NOT
  /// pushed (caller drops it; on deadline the shard has been poisoned).
  bool PushWithBackPressure(IngestLane& lane, uint32_t shard,
                            std::vector<stream::Element>& batch)
      VOS_EXCLUDES(mu_);
  void FlushPendingBuffer(unsigned producer) VOS_EXCLUDES(mu_);
  /// Waits until lanes [first, last) are drained (completed ==
  /// ring.pushed()), with the config flush deadline when `use_timeout`.
  Status WaitLanesDrained(size_t first, size_t last, bool use_timeout,
                          const char* what) VOS_EXCLUDES(mu_);
  /// Signals lane completion: bumps the lane epoch and wakes any flush
  /// waiter (fence-paired, notify only when someone waits).
  void CompleteLaneBatch(IngestLane& lane) VOS_EXCLUDES(mu_);
  void WorkerLoop(unsigned worker);
  /// Worker-thread prologue: optional NUMA pinning, then first-touch
  /// construction of the worker's own shards and ring slot arrays.
  void WorkerInit(unsigned worker) VOS_EXCLUDES(mu_);
  /// Pops one batch from the worker's lanes (round-robin), parking when
  /// every owned ring is empty. False = stopping and fully drained.
  bool PopNextBatch(unsigned worker, size_t* cursor, size_t* lane_index,
                    std::vector<stream::Element>* batch) VOS_EXCLUDES(mu_);

  ShardedVosConfig config_;
  stream::ShardRouter router_;
  /// Global id → (shard, dense local id); empty when num_shards == 1
  /// (identity remap). Immutable after construction.
  stream::DenseShardMap dense_map_;
  UserId num_users_ = 0;
  unsigned producers_ = 1;
  VosEstimator estimator_;
  std::vector<VosSketch> shards_;
  /// owner_[s] = worker that applies shard s's elements.
  std::vector<uint8_t> owner_;

  /// Producer-side Update() buffers, one per lane (async mode); each is
  /// touched only by its lane's thread (plus Flush on a quiesced
  /// pipeline).
  std::vector<std::vector<stream::Element>> pending_;

  /// accepted_[p] = elements accepted on lane p since construction (or
  /// the last Restore): the per-lane ingest watermarks. Written only by
  /// lane p's thread (single-writer by construction); relaxed loads give
  /// HasPendingIngest an advisory view, stable reads require a quiesced
  /// pipeline. Ordering: relaxed everywhere — the single writer needs no
  /// RMW, and every read that must be exact (watermarks at checkpoint)
  /// is specified only after the Flush barrier, whose seq_cst epoch
  /// fences already publish these counters.
  std::vector<std::atomic<uint64_t>> accepted_;
  /// dispatched_[p] = elements that LEFT lane p's pending buffer
  /// (pushed to rings, applied inline, or dropped). Single-writer like
  /// accepted_; accepted − dispatched = the lane's buffered backlog, so
  /// HasPendingIngest needs no mirror counters and no lock. Ordering:
  /// relaxed for the same reason as accepted_ — a stale read can only
  /// make HasPendingIngest report a transient "pending", never hide one
  /// from a quiesced reader.
  std::vector<std::atomic<uint64_t>> dispatched_;

  /// Producer-major: lanes_[LaneIndex(p, s)] is lane p's shard-s ring.
  /// unique_ptr<[]> (not vector): IngestLane holds a mutex and never
  /// moves.
  std::unique_ptr<IngestLane[]> lanes_;
  /// worker_lanes_[w] = indexes into lanes_ of every ring worker w
  /// drains (its owned shards × all producers). Immutable after
  /// construction.
  std::vector<std::vector<size_t>> worker_lanes_;
  std::unique_ptr<WorkerSlot[]> worker_slots_;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> worker_threads_;

  // --- Worker-side construction hand-off (first-touch; see WorkerInit) --
  /// Slots the workers construct their owned shards into; drained into
  /// shards_ by the constructor once every worker finished WorkerInit.
  std::vector<std::optional<VosSketch>> staged_shards_;
  std::atomic<unsigned> init_remaining_{0};
  Mutex init_mu_;
  bool start_ VOS_GUARDED_BY(init_mu_) = false;
  CondVar init_cv_;

  // --- Flush barrier ----------------------------------------------------
  /// Number of threads inside WaitLanesDrained. Workers check it after
  /// bumping a lane epoch (behind a seq_cst fence) and only then pay for
  /// a notify — the per-batch cost of an idle barrier is one relaxed
  /// load.
  std::atomic<uint32_t> flush_waiters_{0};
  Mutex flush_mu_;
  CondVar flush_cv_;

  // --- Failure state ----------------------------------------------------
  /// Sticky per-shard health; non-OK = poisoned (worker exception, kill,
  /// lane starvation). First error wins.
  std::vector<Status> shard_status_ VOS_GUARDED_BY(mu_);
  /// Sticky memory-budget rejection (ResourceExhausted) if the queued
  /// backlog ever crossed memory_budget_bits.
  Status budget_status_ VOS_GUARDED_BY(mu_);
  /// Fast-path mirror of "any sticky status is non-OK": one relaxed load
  /// keeps the healthy hot paths at their measured cost.
  std::atomic<bool> degraded_{false};
  /// Elements rejected (poisoned shard / enqueue deadline / budget).
  /// Ordering: relaxed fetch_adds — a pure monotonic statistic; the only
  /// exact read (dropped_elements() after a failed Flush) happens after
  /// the barrier has ordered every drop site.
  std::atomic<uint64_t> dropped_elements_{0};
  /// Bytes held by queued-but-unapplied sub-batches (budget accounting):
  /// charged before the push, released after apply / discard / reject,
  /// so in-flight batches stay inside the ceiling. Ordering: relaxed
  /// RMWs suffice — the ceiling comes from the charge-BEFORE-push
  /// protocol (each lane's charge is visible in its own fetch_add return
  /// before the bytes exist in any ring), not from inter-thread
  /// ordering; no other memory is published under this counter.
  std::atomic<size_t> queued_bytes_{0};
  /// Static (arrays + tables) footprint in bits, computed once.
  size_t static_memory_bits_ = 0;
  /// worker_dead_[w]: the worker thread exited via an injected kill; its
  /// shards cannot ingest again in this process.
  std::vector<uint8_t> worker_dead_ VOS_GUARDED_BY(mu_);
  /// Serializes the cold failure/restore state above. NEVER taken on the
  /// healthy hot path and never held while taking a park mutex — the
  /// PR 8 "drain under mu_" rule. The park mutexes live in lane/slot
  /// arrays, which VOS_ACQUIRED_AFTER cannot name, so their side of the
  /// order is enforced as VOS_EXCLUDES(mu_) on every function that
  /// acquires one (WakeAllWaiters, PushWithBackPressure, EnqueueSubBatch,
  /// PopNextBatch, CompleteLaneBatch, WaitLanesDrained); the statically
  /// nameable peers are pinned here so any future nesting has a declared
  /// direction the analysis can check.
  mutable Mutex mu_ VOS_ACQUIRED_AFTER(init_mu_, flush_mu_);
};

}  // namespace vos::core

// ShardedVosSketch: the concurrent, shard-aware write path of VOS.
//
// The paper's O(1) update (§IV) leaves a serial `for (e : stream)
// Update(e)` loop as the only ingestion bottleneck. This class removes it
// by partitioning the stream *by user* across S fully independent
// VosSketch shards: shard s owns every user with ShardOf(u) == s and
// nothing else — its own bit array (m/S bits of the total budget), its own
// exact β counter, its own f-cell family (per-shard derived f seed), its
// own dirty set. Shards never share mutable state, so S ingest workers
// proceed without any synchronization on the hot path.
//
// Shard-routing invariant: a user's entire element history lands on
// exactly one shard (stream/shard_router.h), which keeps every shard's
// sub-stream locally feasible and makes every pair query answerable —
// both endpoints of (u, v) live in shards known from two ShardOf calls,
// and their digests remain XOR-comparable because ψ (item → virtual bit)
// is shared across shards; only the f families (virtual bit → cell)
// differ. Same-shard pairs estimate exactly as a standalone VosSketch on
// that shard's sub-stream would; cross-shard pairs generalize the §IV
// contamination correction from (1−2β)² to (1−2β_A)(1−2β_B), i.e. the
// 2·ln|1−2β| term becomes ln|1−2β_A| + ln|1−2β_B|.
//
// Ingestion pipeline (ingest_threads ≥ 1): the producer tags each batch
// with per-element shard ids and enqueues it — one shared, immutable
// batch — onto every worker's bounded queue. Worker w scans the batch and
// applies exactly the elements whose shard it owns (shard s belongs to
// worker s mod W), preserving per-shard element order; back-pressure
// blocks the producer when a queue is full. With ingest_threads == 0 the
// pipeline is synchronous: UpdateBatch routes and applies inline, which
// is deterministic and what the equivalence tests compare against.
//
// Dense user remap (num_shards > 1): shard s's VosSketch lives entirely
// in shard-local id space. A construction-time DenseShardMap
// (stream/shard_router.h) assigns every global id a dense local id — its
// global-id rank within its shard — and routing rewrites each element's
// user to that local id before the shard sees it. Shard s is therefore
// sized for exactly the users it owns: per-user state (cardinality
// counters, dirty epochs) totals ~8 bytes/user across ALL shards instead
// of ~8·S bytes/user, the remap itself costs a fixed 8 bytes/user, and
// MemoryBits() counts all of it (see below). Because the map depends
// only on (seed, num_shards, num_users) — never on stream order — shard
// state stays deterministic across pipelines, and the query tier
// translates with two O(1) table lookups (LocalIdOf / GlobalUserOf).
// With num_shards == 1 the remap is the identity and is skipped
// entirely, keeping the single shard bit-identical to a standalone
// VosSketch(base) fed the raw stream.
//
// Thread-safety contract: Update / UpdateBatch / Flush are
// producer-side calls and must come from one thread at a time. Queries
// (EstimatePair, shard(), Cardinality) require a quiesced pipeline —
// call Flush() first; they are then const and concurrent-safe. The
// destructor flushes and joins the workers.
//
// Known costs at extreme scale (ROADMAP "Ingestion engine" follow-ups):
// because each worker scans the whole tagged batch (skipping foreign
// elements), the per-worker scan floor caps async speedup at roughly
// (t_update + t_scan)/t_scan for large S; per-(producer, shard)
// sub-batches remove the O(S·N) scan when shard counts grow past the
// worker count of one socket.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/vos_estimator.h"
#include "core/vos_sketch.h"
#include "stream/shard_router.h"

namespace vos::core {

/// Sizing and pipeline tunables of a sharded VOS sketch.
struct ShardedVosConfig {
  /// Total-budget sketch config: `base.m` is the bit budget across ALL
  /// shards (each shard gets m / num_shards), `base.seed` seeds ψ (shared
  /// by every shard) and the router; per-shard f seeds are derived from
  /// it. With num_shards == 1 the shard is configured exactly as a
  /// standalone VosSketch(base).
  VosConfig base;
  /// Number of independent shards (≥ 1).
  uint32_t num_shards = 1;
  /// Ingest worker threads: 0 = synchronous inline ingestion (no worker
  /// threads, deterministic); otherwise min(ingest_threads, num_shards)
  /// workers are spawned and each owns a fixed subset of the shards.
  unsigned ingest_threads = 0;
  /// Elements buffered by Update() before auto-enqueueing one batch
  /// (asynchronous mode only; UpdateBatch enqueues the caller's batch
  /// as-is).
  size_t batch_size = 4096;
  /// Bounded queue depth, in batches per worker; a full queue blocks the
  /// producer (back-pressure instead of unbounded memory).
  size_t queue_capacity = 64;
};

/// S independent VosSketch shards behind one ingest/query facade.
class ShardedVosSketch {
 public:
  ShardedVosSketch(const ShardedVosConfig& config, UserId num_users,
                   VosEstimatorOptions estimator_options = {});
  ~ShardedVosSketch();

  ShardedVosSketch(const ShardedVosSketch&) = delete;
  ShardedVosSketch& operator=(const ShardedVosSketch&) = delete;

  /// The VosConfig shard `shard` runs: base with m divided by num_shards
  /// and (for num_shards > 1) a per-shard derived f seed. Exposed so
  /// tests and external shard replicas can construct bit-identical
  /// standalone references.
  static VosConfig ShardConfig(const ShardedVosConfig& config,
                               uint32_t shard);

  /// Processes one element. Synchronous mode applies it inline;
  /// asynchronous mode buffers it and enqueues a batch every
  /// `batch_size` elements.
  void Update(const stream::Element& e);

  /// Processes a contiguous batch, preserving per-shard element order.
  void UpdateBatch(const stream::Element* elements, size_t count);

  /// Blocks until every accepted element is applied to its shard
  /// (including the Update() buffer). No-op in synchronous mode.
  void Flush();

  /// True while elements are buffered or queued but not yet applied.
  bool HasPendingIngest() const;

  /// (ŝ, Ĵ) for a pair at the current (flushed) state. Same-shard pairs
  /// match a standalone VosSketch fed the shard's (locally re-id'd)
  /// sub-stream bit-for-bit; cross-shard pairs use the two-β
  /// contamination correction (see file comment).
  PairEstimate EstimatePair(UserId u, UserId v) const;

  uint32_t ShardOf(UserId user) const { return router_.ShardOf(user); }
  uint32_t num_shards() const { return router_.num_shards(); }
  const stream::ShardRouter& router() const { return router_; }

  /// True when the dense remap is engaged (num_shards > 1); with one
  /// shard local ids equal global ids.
  bool dense_remap() const { return router_.num_shards() > 1; }

  /// Dense local id of `user` within shard ShardOf(user) — the id its
  /// owning shard's VosSketch knows it by.
  UserId LocalIdOf(UserId user) const {
    return dense_remap() ? dense_map_.LocalOf(user) : user;
  }

  /// Inverse of LocalIdOf: the global id behind (shard, local).
  UserId GlobalUserOf(uint32_t shard, UserId local) const {
    return dense_remap() ? dense_map_.GlobalOf(shard, local) : local;
  }

  /// Users owned by `shard` (the size of its dense local id space).
  UserId ShardUserCount(uint32_t shard) const {
    return shards_[shard].num_users();
  }

  const VosSketch& shard(uint32_t s) const { return shards_[s]; }
  VosSketch& mutable_shard(uint32_t s) { return shards_[s]; }

  /// n_u, read from the user's owning shard.
  uint32_t Cardinality(UserId user) const {
    return shards_[ShardOf(user)].Cardinality(LocalIdOf(user));
  }

  /// Honest total memory: the shard arrays (≈ base.m bits by
  /// construction) PLUS every per-user structure the sharded facade
  /// allocates — per-shard cardinality counters and dirty epochs
  /// (VosSketch::PerUserStateBits) and the dense remap's forward/inverse
  /// tables. Thanks to the dense remap the per-user portion is
  /// independent of num_shards (~8–16 bytes/user total, vs. ~8·S
  /// bytes/user without it), and — unlike plain VosSketch::MemoryBits(),
  /// which excludes the one cardinality counter per user every compared
  /// method keeps — nothing here is silently dropped: duplicated or
  /// facade-specific per-user state is exactly the overhead a
  /// Figure-2-style equal-memory comparison must see.
  size_t MemoryBits() const;

  const ShardedVosConfig& config() const { return config_; }
  const VosEstimator& estimator() const { return estimator_; }
  UserId num_users() const { return num_users_; }

 private:
  /// One tagged, immutable batch shared by every worker.
  struct IngestBatch {
    std::vector<stream::Element> elements;
    std::vector<uint16_t> tags;  ///< tags[i] = shard of elements[i]
  };

  struct WorkerState {
    std::deque<std::shared_ptr<const IngestBatch>> queue;  // guarded by mu_
    size_t enqueued = 0;   ///< batches pushed (guarded by mu_)
    size_t completed = 0;  ///< batches fully applied (guarded by mu_)
  };

  bool async() const { return !worker_threads_.empty(); }
  /// Rewrites a batch to shard-local coordinates (dense local ids +
  /// shard tags); pure tagging when the remap is off (one shard).
  void RouteBatch(stream::Element* elements, size_t count, uint16_t* tags);
  void EnqueueBatch(std::shared_ptr<const IngestBatch> batch);
  void FlushPendingBuffer();
  void WorkerLoop(unsigned worker);

  ShardedVosConfig config_;
  stream::ShardRouter router_;
  /// Global id → (shard, dense local id); empty when num_shards == 1
  /// (identity remap). Immutable after construction.
  stream::DenseShardMap dense_map_;
  UserId num_users_ = 0;
  VosEstimator estimator_;
  std::vector<VosSketch> shards_;
  /// owner_[s] = worker that applies shard s's elements.
  std::vector<uint8_t> owner_;

  // Producer-side Update() buffer (async mode; single producer).
  std::vector<stream::Element> pending_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<WorkerState> worker_state_;
  bool stopping_ = false;
  std::vector<std::thread> worker_threads_;
};

}  // namespace vos::core

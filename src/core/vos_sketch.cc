#include "core/vos_sketch.h"

#include <algorithm>

namespace vos::core {

VosSketch::VosSketch(const VosConfig& config, UserId num_users)
    : config_(config),
      psi_seed_(hash::DeriveSeed(config.seed, 0x9a11)),
      f_seed_(config.f_seed != 0 ? config.f_seed
                                 : hash::DeriveSeed(config.seed, 0xf00d)),
      array_(config.m),
      cardinality_(num_users, 0),
      dirty_epoch_(config.track_dirty ? num_users : 0, 0) {
  VOS_CHECK(config.k >= 1) << "virtual sketch needs at least one bit";
  VOS_CHECK(config.m >= 1) << "shared array must be non-empty";
  {
    std::vector<uint64_t> seeds(config.k);
    for (uint32_t j = 0; j < config.k; ++j) {
      seeds[j] = hash::DeriveSeed(f_seed_, j);
    }
    f_seeds_ = std::make_shared<const std::vector<uint64_t>>(std::move(seeds));
  }
  switch (config.psi_kind) {
    case PsiKind::kTwoUniversal:
      psi_two_universal_ = std::make_shared<hash::TwoUniversalHash>(
          psi_seed_, config.k);
      break;
    case PsiKind::kTabulation:
      psi_tabulation_ = std::make_shared<hash::TabulationHash>(psi_seed_);
      break;
    case PsiKind::kMixer:
      break;
  }
}

void VosSketch::MergeFrom(const VosSketch& other) {
  VOS_CHECK(IsCompatibleWith(other))
      << "merging incompatible VOS sketches (config/user-count mismatch)";
  array_.XorWith(other.array_);
  for (size_t u = 0; u < cardinality_.size(); ++u) {
    if (other.cardinality_[u] != 0) {
      cardinality_[u] += other.cardinality_[u];
      MarkDirty(static_cast<UserId>(u));
    }
  }
}

void VosSketch::ClearDirtyUsers() const {
  dirty_users_.clear();
  if (++dirty_current_epoch_ == 0) {
    // uint32 epoch wrapped: reset the per-user epochs so stale entries
    // from 2^32 snapshots ago cannot alias the fresh epoch.
    std::fill(dirty_epoch_.begin(), dirty_epoch_.end(), 0u);
    dirty_current_epoch_ = 1;
  }
}

BitVector VosSketch::ExtractUserSketch(UserId user) const {
  BitVector sketch(config_.k);
  for (uint32_t j = 0; j < config_.k; ++j) {
    if (GetUserBit(user, j)) sketch.Flip(j);
  }
  return sketch;
}

}  // namespace vos::core

#include "core/odd_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vos::core {

OddSketch::OddSketch(uint32_t k, uint64_t seed) : seed_(seed), bits_(k) {
  VOS_CHECK(k >= 1) << "odd sketch needs at least one bit";
}

double OddSketch::EstimateSymmetricDifferenceFromAlpha(double alpha,
                                                       uint32_t k) {
  VOS_DCHECK(alpha >= 0.0 && alpha <= 1.0);
  // E[alpha] = (1 − (1 − 2/k)^{nΔ}) / 2 < 1/2: alpha ≥ 1/2 means the sketch
  // is saturated (nΔ ≫ k). Cap at the value an all-but-one-bit observation
  // would give, so callers get a finite, monotone estimate.
  const double arg = 1.0 - 2.0 * alpha;
  const double floor_arg = 1.0 / (2.0 * k);
  if (arg <= floor_arg) {
    return -0.5 * k * std::log(floor_arg);
  }
  return -0.5 * k * std::log(arg);
}

double OddSketch::EstimateSymmetricDifference(const OddSketch& a,
                                              const OddSketch& b) {
  VOS_CHECK(a.k() == b.k()) << "sketch size mismatch";
  VOS_CHECK(a.seed_ == b.seed_) << "sketches built with different ψ";
  const double d = static_cast<double>(a.bits_.HammingDistance(b.bits_));
  return EstimateSymmetricDifferenceFromAlpha(d / a.k(), a.k());
}

}  // namespace vos::core

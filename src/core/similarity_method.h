// The common interface every similarity-estimation method implements.
//
// The paper compares four methods — VOS (its contribution), MinHash, OPH and
// RP — on identical streams under an equal memory budget. The harness drives
// them all through this interface: stream elements in via Update() (the
// operation whose cost Figure 2 measures), pair estimates out via
// EstimatePair() (whose accuracy Figure 3 measures).

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/element.h"

namespace vos::core {

using stream::Element;
using stream::UserId;

/// A method's answer for one user pair at the current time.
struct PairEstimate {
  /// ŝ_uv — estimated number of common items.
  double common = 0.0;
  /// Ĵ(S_u, S_v) — estimated Jaccard coefficient.
  double jaccard = 0.0;
};

/// Streaming user-similarity estimator over fully dynamic graph streams.
///
/// Implementations maintain per-user cardinality counters n_u internally
/// (the paper notes all methods keep these; they are excluded from the
/// sketch memory budget because every method pays the identical cost).
class SimilarityMethod {
 public:
  virtual ~SimilarityMethod() = default;

  /// Human-readable method name ("VOS", "MinHash", …) used in tables.
  virtual std::string Name() const = 0;

  /// Processes one stream element (u, i, ±).
  virtual void Update(const Element& e) = 0;

  /// Processes a contiguous batch of elements, in order. The default
  /// simply loops Update(); methods with a batched/concurrent ingest path
  /// (VOS-sharded) override it to amortize routing and hand whole batches
  /// to their workers. Semantics are identical to the element loop — the
  /// harness may use either interchangeably.
  virtual void UpdateBatch(const Element* elements, size_t count) {
    for (size_t i = 0; i < count; ++i) Update(elements[i]);
  }

  /// Producer-lane variant: processes the batch on ingest lane
  /// `producer`. Methods with a multi-producer pipeline (VOS-sharded)
  /// accept concurrent calls on DISTINCT lanes in
  /// [0, ConcurrentIngestProducers()); each lane must be driven by one
  /// thread at a time and sees its own elements applied in FIFO order.
  /// The default ignores the lane and forwards to the single-producer
  /// UpdateBatch — safe, because the default advertises one lane.
  virtual void UpdateBatch(const Element* elements, size_t count,
                           unsigned producer) {
    (void)producer;
    UpdateBatch(elements, count);
  }

  /// Blocks until every element previously passed to Update/UpdateBatch
  /// (on any lane) is reflected in the sketch state, then reports the
  /// ingest pipeline's health: OK for synchronous methods and healthy
  /// pipelines; a sticky non-OK Status when a concurrent pipeline has
  /// dropped data (poisoned shard, starved lane, exceeded memory budget
  /// — see core/sharded_vos_sketch.h). The harness calls it before
  /// evaluating a checkpoint so asynchronous ingest pipelines quiesce
  /// first, and aborts the run on a non-OK answer. Requires that no
  /// producer lane is feeding concurrently.
  virtual Status FlushIngest() { return Status::OK(); }

  /// Producer-lane variant: blocks until lane `producer`'s elements are
  /// applied. Safe to call from the lane's own thread while other lanes
  /// are still feeding; the default forwards to the global FlushIngest.
  virtual Status FlushIngest(unsigned producer) {
    (void)producer;
    return FlushIngest();
  }

  /// Number of ingest lanes that may call the producer-lane UpdateBatch
  /// concurrently (1 = single-producer, the default). The harness uses
  /// this to decide how many replay threads to spawn.
  virtual unsigned ConcurrentIngestProducers() const { return 1; }

  /// Estimates (ŝ_uv, Ĵ_uv) for the pair at the current time.
  virtual PairEstimate EstimatePair(UserId u, UserId v) const = 0;

  /// Sketch memory in bits, for equal-memory comparisons. Excludes the
  /// per-user cardinality counters shared by all methods (see class
  /// comment).
  virtual size_t MemoryBits() const = 0;

  /// Optional batch hook called before a round of EstimatePair() calls for
  /// `users`; lets methods precompute per-user digests (VOS materializes
  /// its k reconstructed bits per tracked user once instead of per pair).
  virtual void PrepareQuery(const std::vector<UserId>& users) {
    (void)users;
  }

  /// Clears any cache built by PrepareQuery (called when the stream
  /// advances past a checkpoint).
  virtual void InvalidateQueryCache() {}

  /// Optional: worker threads PrepareQuery may use for batch digest
  /// extraction (0 = hardware concurrency). Methods without a parallel
  /// batch path ignore it.
  virtual void SetQueryThreads(unsigned num_threads) { (void)num_threads; }
};

}  // namespace vos::core

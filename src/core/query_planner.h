// QueryPlanner: shard-aware batch similarity queries over a
// ShardedVosSketch — the query tier that scales with shard count.
//
// PR 2 sharded the write path; this class shards the read path to match.
// It owns one SimilarityIndex per shard, each built over that shard's
// VosSketch in shard-local id space (the dense remap of
// core/sharded_vos_sketch.h), and plans queries as a scatter–gather over
// those indexes:
//
//   * Rebuild(candidates) partitions the global candidate set by shard,
//     translates ids to dense locals, and (re)builds every shard index —
//     S independent snapshot builds, run in parallel. With
//     QueryOptions::incremental each snapshot retains refresh state, and
//     Refresh() drains each shard's dirty set shard-locally through
//     SimilarityIndex::RefreshDirty (with its adaptive full-rebuild
//     fallback) — incremental maintenance never crosses a shard boundary.
//
//   * AllPairsAbove(τ) decomposes the pair space exactly: S same-shard
//     passes (each shard index's own cardinality-sorted sweep, kernels,
//     prefilter — unchanged) plus S·(S−1)/2 cross-shard passes that scan
//     one shard's DigestMatrix against another's. Digests from different
//     shards are XOR-comparable (shared ψ, equal k); only the β
//     correction changes: each digest carries its own shard's
//     contamination, so the §IV (1−2β)² factor generalizes to
//     (1−2β_A)(1−2β_B) and the estimator receives the mean of the two
//     log-beta terms. The conservative prefilters generalize too — the τ
//     cardinality bound becomes a two-sided window over the partner
//     shard's sorted rows (both matrices are cardinality-sorted, so both
//     window ends are partition points), and the 3/4-row confinement
//     check and exact log-alpha screen run with the combined
//     ln|1−2β_A| + ln|1−2β_B| cut. Estimates are bit-identical to
//     ShardedVosSketch::EstimatePair on the same quiesced state: the
//     same log-alpha table, the same mean-log-beta combination.
//
//   * TopK(u, k) scatters the query digest to every shard index and
//     gathers per-shard top-k lists under a shared global threshold
//     bound: each worker publishes its current k-th best Ĵ (a lower bound
//     on the final k-th best, since the merged result can only be
//     better), and every worker prunes candidates whose clamped Ĵ
//     provably falls below the published bound before popcounting.
//     Pruning is strict-inequality conservative, so the merged result is
//     bit-identical to the unpruned scan for every schedule.
//
// Parallelism model: the planner parallelizes ACROSS tasks (shard passes,
// cross-shard row blocks) with QueryOptions::num_threads workers; each
// task runs single-threaded inside (per-shard indexes are configured with
// one thread), so there is no nested oversubscription. With S == 1 the
// planner degenerates to the single global index scanned by one task —
// exactly the pre-sharding query path, which is what
// bench/micro_query_path.cc measures shard scaling against.
//
// Results are global: pairs/entries carry global user ids (canonically
// oriented u < v), merged across tasks in deterministic task order and
// sorted with the same total orders SimilarityIndex uses — the output is
// independent of thread count and schedule.
//
// Thread-safety contract: Rebuild()/Refresh() mutate the planner and must
// not run concurrently with queries or each other, and they require a
// quiesced ingest pipeline — call ShardedVosSketch::Flush() first, as for
// any SimilarityIndex snapshot. Between snapshots TopK/AllPairsAbove and
// the *Reference twins are const and concurrent-safe.
//
// The *Reference implementations answer from per-pair
// ShardedVosSketch::EstimatePair calls — the ground truth the planner is
// asserted bit-identical against (tests/query_planner_test.cc) and the
// baseline the bench measures speedups over.

#pragma once

#include <memory>
#include <vector>

#include "core/sharded_vos_sketch.h"
#include "core/similarity_index.h"

namespace vos::core {

/// Scatter–gather query planner over per-shard SimilarityIndex snapshots.
class QueryPlanner {
 public:
  using Entry = SimilarityIndex::Entry;
  using Pair = SimilarityIndex::Pair;

  /// Binds to `sketch` (not owned; must outlive the planner).
  /// QueryOptions::num_threads is the planner's task-level worker count;
  /// QueryOptions::incremental enables Refresh() (requires the shards to
  /// track dirty users, VosConfig::track_dirty).
  explicit QueryPlanner(const ShardedVosSketch& sketch,
                        VosEstimatorOptions estimator_options = {},
                        QueryOptions query_options = {});

  /// Snapshots every shard index for the global candidate set.
  /// Candidates must be unique; pairs and entries are reported between
  /// candidates only.
  void Rebuild(std::vector<UserId> candidates);

  /// Incrementally re-snapshots the SAME candidate set, draining each
  /// shard's dirty set shard-locally (SimilarityIndex::RefreshDirty, with
  /// the adaptive full-rebuild fallback). Requires
  /// QueryOptions::incremental and a prior Rebuild(). Returns true when
  /// every shard refreshed incrementally, false if any fell back to a
  /// full per-shard rebuild. Result is bit-identical either way.
  bool Refresh();

  /// All unordered candidate pairs with Ĵ ≥ `jaccard_threshold`, global
  /// ids, u < v, descending Ĵ (ties by (u, v)) — same pair set and
  /// bit-identical estimates as AllPairsAboveReference on quiesced state.
  std::vector<Pair> AllPairsAbove(double jaccard_threshold) const;

  /// The `k` candidates most similar to `query` (global id; any user of
  /// the stream, candidate or not), excluding the query itself.
  std::vector<Entry> TopK(UserId query, size_t k) const;

  /// Ground truth: one ShardedVosSketch::EstimatePair call per candidate
  /// pair. O(n²·k) — tests and bench baselines only.
  std::vector<Pair> AllPairsAboveReference(double jaccard_threshold) const;

  /// Ground truth for TopK (see AllPairsAboveReference).
  std::vector<Entry> TopKReference(UserId query, size_t k) const;

  size_t candidate_count() const { return candidates_.size(); }
  const std::vector<UserId>& candidates() const { return candidates_; }

  /// The shard-local index of shard s (snapshot of its candidates in
  /// dense local ids). Exposed for diagnostics, tests and the method
  /// adapter's per-pair cache reads.
  const SimilarityIndex& shard_index(uint32_t s) const {
    return *indexes_[s];
  }

  const QueryOptions& query_options() const { return query_options_; }

  /// Task-level worker count for subsequent Rebuild/Refresh/queries
  /// (0 = hardware concurrency). Results are bit-identical for every
  /// value, so a long-lived planner can follow
  /// SimilarityMethod::SetQueryThreads without invalidating its
  /// snapshots. Not concurrent-safe with running queries.
  void set_num_threads(unsigned num_threads) {
    query_options_.num_threads = num_threads;
  }

 private:
  /// One unit of AllPairsAbove work: a same-shard pass (whole shard) or a
  /// row block of a cross-shard (s, t) pass.
  struct PairTask {
    uint32_t s = 0;
    uint32_t t = 0;
    size_t row_begin = 0;  ///< rows of shard s's matrix (cross tasks)
    size_t row_end = 0;
    bool same_shard = false;
  };

  /// Scans rows [begin, end) of shard s's matrix against all rows of
  /// shard t's matrix (s != t), appending passing pairs (global ids) to
  /// `out`. Two-sided cardinality window + confinement prefilter, 1×8
  /// kernels.
  void ScanCrossShardBlock(uint32_t s, uint32_t t, size_t begin, size_t end,
                           double jaccard_threshold,
                           std::vector<Pair>* out) const;

  /// Translates a same-shard index result to global ids, canonically
  /// oriented.
  void AppendSameShardPairs(uint32_t s, std::vector<Pair> local_pairs,
                            std::vector<Pair>* out) const;

  /// Global id of shard s's matrix row p.
  UserId GlobalOfRow(uint32_t s, size_t p) const;

  const ShardedVosSketch* sketch_;
  VosEstimator estimator_;
  QueryOptions query_options_;
  std::vector<UserId> candidates_;
  /// One snapshot index per shard, over that shard's candidate locals.
  std::vector<std::unique_ptr<SimilarityIndex>> indexes_;
  /// ln|1−2·d/k| per Hamming distance d — shared by every cross-shard
  /// task (identical by construction to each index's internal table).
  std::vector<double> log_alpha_table_;
};

}  // namespace vos::core

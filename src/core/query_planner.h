// QueryPlanner: shard-aware batch similarity queries over a
// ShardedVosSketch — the query tier that scales with shard count.
//
// PR 2 sharded the write path; this class shards the read path to match.
// It owns one SimilarityIndex per shard, each built over that shard's
// VosSketch in shard-local id space (the dense remap of
// core/sharded_vos_sketch.h), and plans queries as a scatter–gather over
// those indexes:
//
//   * Rebuild(candidates) partitions the global candidate set by shard,
//     translates ids to dense locals, and (re)builds every shard index —
//     S independent snapshot builds, run in parallel. With
//     QueryOptions::incremental each snapshot retains refresh state, and
//     Refresh() drains each shard's dirty set shard-locally through
//     SimilarityIndex::RefreshDirty (with its adaptive full-rebuild
//     fallback) — incremental maintenance never crosses a shard boundary.
//
//   * AllPairsAbove(τ) decomposes the pair space exactly: S same-shard
//     triangle passes plus S·(S−1)/2 cross-shard rectangle passes that
//     scan one shard's DigestMatrix against another's, all described as
//     pair_scan::Passes and run on the shared tiled scan tier
//     (core/pair_scan.h) — every pass is decomposed into cache-sized
//     row×row tiles dispatched to ONE worker pool, so a skewed ("hot")
//     shard's triangle parallelizes across tiles instead of serializing
//     as a single task. Digests from different shards are XOR-comparable
//     (shared ψ, equal k); only the β correction changes: each digest
//     carries its own shard's contamination, so the §IV (1−2β)² factor
//     generalizes to (1−2β_A)(1−2β_B) and the estimator receives the
//     mean of the two log-beta terms. The conservative prefilters
//     generalize too — the τ cardinality bound becomes a two-sided
//     window over the partner shard's sorted rows (both matrices are
//     cardinality-sorted, so both window ends are partition points), and
//     the 3/4-row confinement check and exact log-alpha screen run with
//     the combined ln|1−2β_A| + ln|1−2β_B| cut. Estimates are
//     bit-identical to ShardedVosSketch::EstimatePair on the same
//     quiesced state: the same log-alpha table, the same mean-log-beta
//     combination. With QueryOptions::banding_bands > 0 every pass runs
//     banded instead (per-shard BandingTables built at Rebuild/Refresh;
//     cross-shard passes merge-join two shards' tables): the result is a
//     subset of the exact result with identical per-pair estimates — the
//     banding recall contract, src/core/README.md.
//
//   * TopK(u, k) scatters the query digest to every shard index and
//     gathers per-shard top-k lists under a shared global threshold
//     bound: each worker publishes its current k-th best Ĵ (a lower bound
//     on the final k-th best, since the merged result can only be
//     better), and every worker prunes candidates whose clamped Ĵ
//     provably falls below the published bound before popcounting.
//     Pruning is strict-inequality conservative, so the merged result is
//     bit-identical to the unpruned scan for every schedule.
//
// Parallelism model: the planner parallelizes ACROSS scan units (the
// tiles of every same-shard and cross-shard pass, QueryOptions::tile_rows
// per tile edge) with QueryOptions::num_threads workers; each unit runs
// single-threaded inside (per-shard indexes are configured with one
// thread), so there is no nested oversubscription. With S == 1 the
// planner degenerates to the single global index — tiled exactly as
// SimilarityIndex::AllPairsAbove tiles it — which is what
// bench/micro_query_path.cc measures shard scaling against.
//
// Results are global: pairs/entries carry global user ids (canonically
// oriented u < v), merged across tasks in deterministic task order and
// sorted with the same total orders SimilarityIndex uses — the output is
// independent of thread count and schedule.
//
// Thread-safety contract: Rebuild()/Refresh() mutate the planner and must
// not run concurrently with queries or each other, and they require a
// quiesced ingest pipeline — call ShardedVosSketch::Flush() first, as for
// any SimilarityIndex snapshot. Between snapshots TopK/AllPairsAbove and
// the *Reference twins are const and concurrent-safe.
//
// The *Reference implementations answer from per-pair
// ShardedVosSketch::EstimatePair calls — the ground truth the planner is
// asserted bit-identical against (tests/query_planner_test.cc) and the
// baseline the bench measures speedups over.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/sharded_vos_sketch.h"
#include "core/similarity_index.h"

namespace vos::core {

/// Scatter–gather query planner over per-shard SimilarityIndex snapshots.
class QueryPlanner {
 public:
  using Entry = SimilarityIndex::Entry;
  using Pair = SimilarityIndex::Pair;

  /// Binds to `sketch` (not owned; must outlive the planner).
  /// QueryOptions::num_threads is the planner's task-level worker count;
  /// QueryOptions::incremental enables Refresh() (requires the shards to
  /// track dirty users, VosConfig::track_dirty).
  explicit QueryPlanner(const ShardedVosSketch& sketch,
                        VosEstimatorOptions estimator_options = {},
                        QueryOptions query_options = {});

  /// Snapshots every shard index for the global candidate set.
  /// Candidates must be unique; pairs and entries are reported between
  /// candidates only.
  void Rebuild(std::vector<UserId> candidates);

  /// Incrementally re-snapshots the SAME candidate set, draining each
  /// shard's dirty set shard-locally (SimilarityIndex::RefreshDirty, with
  /// the adaptive full-rebuild fallback). Requires
  /// QueryOptions::incremental and a prior Rebuild(). Returns true when
  /// every shard refreshed incrementally, false if any fell back to a
  /// full per-shard rebuild. Result is bit-identical either way.
  bool Refresh();

  /// All unordered candidate pairs with Ĵ ≥ `jaccard_threshold`, global
  /// ids, u < v, descending Ĵ (ties by (u, v)) — same pair set and
  /// bit-identical estimates as AllPairsAboveReference on quiesced state.
  std::vector<Pair> AllPairsAbove(double jaccard_threshold) const;

  /// The `k` candidates most similar to `query` (global id; any user of
  /// the stream, candidate or not), excluding the query itself.
  ///
  /// Warm start: the shared raise-only bound can be seeded from
  /// QueryOptions::topk_warm_threshold and/or (topk_warm_start) the
  /// planner-remembered k-th best of the previous completed TopK for the
  /// SAME (query, k) — bounds are keyed per query so a mixed query set
  /// cannot cross-pollute. A seed is optimistic, never trusted: when the
  /// merged result does not end with k entries at or above the seed, the
  /// scan reruns cold — so the returned entries are bit-identical to a
  /// cold start for every seed.
  std::vector<Entry> TopK(UserId query, size_t k) const;

  /// Ground truth: one ShardedVosSketch::EstimatePair call per candidate
  /// pair. O(n²·k) — tests and bench baselines only.
  std::vector<Pair> AllPairsAboveReference(double jaccard_threshold) const;

  /// Ground truth for TopK (see AllPairsAboveReference).
  std::vector<Entry> TopKReference(UserId query, size_t k) const;

  size_t candidate_count() const { return candidates_.size(); }
  const std::vector<UserId>& candidates() const { return candidates_; }

  /// The shard-local index of shard s (snapshot of its candidates in
  /// dense local ids). Exposed for diagnostics, tests and the method
  /// adapter's per-pair cache reads.
  const SimilarityIndex& shard_index(uint32_t s) const {
    return *indexes_[s];
  }

  const QueryOptions& query_options() const { return query_options_; }

  /// The optimizer's verdicts for every pass AllPairsAbove(τ) would run,
  /// in pass order (the S same-shard triangles with ≥ 2 rows, then the
  /// cross-shard rectangles with two non-empty sides). The decision code
  /// is shared with AllPairsAbove, so each report predicts the executed
  /// plan (core/query_optimizer.h).
  std::vector<optimizer::PassReport> PlanAllPairs(
      double jaccard_threshold) const;

  /// Recall feedback fan-out: forwards to every shard index's
  /// ReportMeasuredRecall, so an undershoot re-plans every pass of the
  /// next snapshot exact (rectangles consult both sides' feedback bits).
  void ReportMeasuredRecall(double recall) const;

  /// Task-level worker count for subsequent Rebuild/Refresh/queries
  /// (0 = hardware concurrency). Results are bit-identical for every
  /// value, so a long-lived planner can follow
  /// SimilarityMethod::SetQueryThreads without invalidating its
  /// snapshots. Not concurrent-safe with running queries.
  void set_num_threads(unsigned num_threads) {
    query_options_.num_threads = num_threads;
  }

 private:
  /// The TopK scatter–gather with the shared bound seeded at
  /// `warm_seed` (≤ 0 = cold). A positive seed may prune entries the
  /// final result needs, so TopK() verifies and reruns cold.
  std::vector<Entry> TopKImpl(UserId query, size_t k, double warm_seed) const;

  /// The shared stats → plan decision for the cross-shard rectangle
  /// s × t at `jaccard_threshold` (see SimilarityIndex::PlanTrianglePass
  /// for the triangle twin).
  optimizer::PassReport PlanRectanglePass(uint32_t s, uint32_t t,
                                          double jaccard_threshold,
                                          bool prefilter) const;

  /// Global id of shard s's matrix row p.
  UserId GlobalOfRow(uint32_t s, size_t p) const;

  const ShardedVosSketch* sketch_;
  VosEstimator estimator_;
  QueryOptions query_options_;
  std::vector<UserId> candidates_;
  /// One snapshot index per shard, over that shard's candidate locals.
  std::vector<std::unique_ptr<SimilarityIndex>> indexes_;
  /// ln|1−2·d/k| per Hamming distance d — shared by every cross-shard
  /// task (identical by construction to each index's internal table).
  std::vector<double> log_alpha_table_;
  /// k-th best Ĵ of the last completed full-k TopK, keyed per
  /// (query, k) — one shared bound would thrash between high- and
  /// low-similarity queries and force a cold rerun on almost every call
  /// of a mixed query set. The key packs both (a collision is harmless:
  /// every seed is verified, so a wrong bound only costs a cold rerun,
  /// never a result). Mutex-guarded because TopK is const and
  /// concurrent-safe; the map is a verified hint either way.
  static uint64_t WarmKey(UserId query, size_t k) {
    return (uint64_t{query} << 32) | (k & 0xffffffffull);
  }
  mutable Mutex warm_mutex_;
  mutable std::unordered_map<uint64_t, double> warm_topk_bounds_
      VOS_GUARDED_BY(warm_mutex_);
};

}  // namespace vos::core

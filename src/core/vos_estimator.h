// Closed-form estimators and theoretical moments of VOS (§IV).
//
// Given the observed 1-bit fraction α of the XOR-combined reconstructed
// sketches of a pair and the array fill β, the paper derives
//
//   E[α] ≈ (1 − (1−2β)² · e^{−2·nΔ/k}) / 2
//   n̂Δ  = −k·(ln(1−2α) − 2·ln(1−2β)) / 2
//   ŝ   = (n_u+n_v)/2 + k·(ln|1−2α| − 2·ln|1−2β|)/4
//   Ĵ   = ŝ / (n_u + n_v − ŝ)
//
// plus approximations of E[ŝ] and Var[ŝ]. This header implements all of
// them, with explicit saturation handling: ln(1−2α) is undefined for
// α ≥ ½, which the paper sidesteps with |1−2α|; we do the same and
// optionally clamp ŝ to its feasible range [0, min(n_u, n_v)] (clamping is
// applied uniformly to every method by the harness, DESIGN.md §5.3).

#pragma once

#include <cstdint>
#include <vector>

#include "core/similarity_method.h"

namespace vos::core {

/// Numerical guards and estimator options.
struct VosEstimatorOptions {
  /// Clamp ŝ to [0, min(n_u, n_v)] (and Ĵ to [0, 1]).
  bool clamp_to_feasible = true;
  /// |1−2α| and |1−2β| are floored at this value before taking logs, so a
  /// saturated sketch yields a large finite estimate instead of ±∞.
  double log_arg_floor = 1e-12;
};

/// Stateless estimator functions parameterized by (k, options).
class VosEstimator {
 public:
  explicit VosEstimator(uint32_t k, VosEstimatorOptions options = {})
      : k_(k), options_(options) {}

  /// n̂Δ from observed α and β.
  double EstimateSymmetricDifference(double alpha, double beta) const;

  /// ŝ_uv from cardinalities, observed α and β.
  double EstimateCommonItems(double n_u, double n_v, double alpha,
                             double beta) const;

  // --- Precomputed-log entry points (the batch query engine) ---
  //
  // ŝ depends on α and β only through ln(max(|1−2α|, floor)) and
  // ln(max(|1−2β|, floor)). Since α = d/k takes just k+1 values for a
  // Hamming distance d, a batch engine can tabulate LogAlphaTerm once per
  // index build and estimate each pair without any transcendental calls.
  // EstimateCommonItems(n_u, n_v, α, β) is *defined* as
  // EstimateCommonItemsFromLogTerms(n_u, n_v, LogAlphaTerm(α),
  // LogBetaTerm(β)), so the two paths are bit-identical by construction.

  /// ln(max(|1−2α|, floor)) — the α-dependent log term of ŝ.
  double LogAlphaTerm(double alpha) const;

  /// LogAlphaTerm(d / k) for every Hamming distance d in [0, k] — the
  /// lookup table the batch engines index by d. Built here (once, both by
  /// SimilarityIndex and VosMethod) so the tabulated values can never
  /// diverge from the live path.
  std::vector<double> BuildLogAlphaTable() const;

  /// ln(max(|1−2β|, floor)) — the β-dependent log term of ŝ.
  double LogBetaTerm(double beta) const;

  /// ŝ_uv from cardinalities and the two precomputed log terms.
  double EstimateCommonItemsFromLogTerms(double n_u, double n_v,
                                         double log_alpha_term,
                                         double log_beta_term) const;

  /// Convenience: (ŝ, Ĵ) from cardinalities and precomputed log terms.
  PairEstimate EstimateFromLogTerms(double n_u, double n_v,
                                    double log_alpha_term,
                                    double log_beta_term) const;

  /// Ĵ from a ŝ estimate (the paper computes Ĵ = ŝ/(n_u+n_v−ŝ)).
  double JaccardFromCommon(double common, double n_u, double n_v) const;

  /// Containment Ĉ(u→v) = ŝ/n_u — the fraction of u's items v also holds
  /// (asymmetric; the measure behind "is u's set a subset of v's?").
  /// Returns 0 when n_u = 0; clamped to [0, 1] when clamping is enabled.
  double ContainmentFromCommon(double common, double n_u) const;

  /// Szymkiewicz–Simpson overlap coefficient ŝ/min(n_u, n_v); 0 when
  /// either set is empty.
  double OverlapFromCommon(double common, double n_u, double n_v) const;

  /// Convenience: both estimates at once.
  PairEstimate Estimate(double n_u, double n_v, double alpha,
                        double beta) const;

  /// A ŝ estimate with a ±z·σ confidence band derived from the §IV
  /// variance approximation (σ evaluated at the *estimated* symmetric
  /// difference). The band is clamped to the feasible range when clamping
  /// is enabled.
  struct IntervalEstimate {
    double common = 0.0;  ///< point estimate ŝ
    double lo = 0.0;      ///< ŝ − z·σ̂ (clamped)
    double hi = 0.0;      ///< ŝ + z·σ̂ (clamped)
    double sigma = 0.0;   ///< σ̂ from the variance formula
  };

  /// Point estimate plus a confidence band at `z` standard deviations
  /// (z = 1.96 ≈ 95% under the normal approximation).
  IntervalEstimate EstimateWithConfidence(double n_u, double n_v,
                                          double alpha, double beta,
                                          double z = 1.96) const;

  // --- Theoretical moments (§IV), used by tests and the ablation bench ---

  /// E[α] for a pair with true symmetric difference nΔ under fill β.
  double ExpectedAlpha(double n_delta, double beta) const;

  /// Approximate E[ŝ] (paper's expectation formula).
  double ExpectedCommonEstimate(double s, double n_delta, double beta) const;

  /// Approximate Var[ŝ] (paper's variance formula). Note: the printed
  /// formula's β term carries a k² factor where the bit-level delta-method
  /// derivation gives k (see bench/ablation_estimator_moments.cc); kept
  /// verbatim for fidelity. Confidence intervals use the delta-method
  /// variance below, whose coverage is verified by Monte-Carlo tests.
  double VarianceCommonEstimate(double n_delta, double beta) const;

  /// Delta-method plug-in variance of ŝ given the *observed* α:
  /// Var[ŝ] ≈ k·α(1−α) / (4·(1−2α)²).
  double DeltaMethodVariance(double alpha) const;

  uint32_t k() const { return k_; }
  const VosEstimatorOptions& options() const { return options_; }

 private:
  /// ln(max(|x|, floor)).
  double SafeLogAbs(double x) const;

  uint32_t k_;
  VosEstimatorOptions options_;
};

}  // namespace vos::core

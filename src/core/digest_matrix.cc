#include "core/digest_matrix.h"

#include <algorithm>
#include <thread>

#include "common/kernels.h"

namespace vos::core {

unsigned ResolveThreadCount(unsigned requested, size_t work_items) {
  unsigned threads = requested;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (work_items < threads) threads = static_cast<unsigned>(work_items);
  return std::max(threads, 1u);
}

void DigestMatrix::ExtractRowFromArray(const BitVector& array,
                                       const VosSketch& sketch, UserId user,
                                       uint64_t* dst, uint32_t* cells) {
  VOS_DCHECK(array.size() == sketch.config().m)
      << "array/geometry size mismatch";
  const std::vector<uint64_t>& seeds = sketch.f_seed_table();
  const uint64_t m = sketch.config().m;
  const uint32_t k = sketch.config().k;
  VOS_DCHECK(cells == nullptr || m <= uint64_t{0xffffffff})
      << "cell capture stores cells as uint32; m too large";
  // The per-j hash/gather/pack loop is the extraction kernel —
  // runtime-dispatched (4- or 8-lane hashing on AVX2/AVX-512),
  // bit-identical to scalar at every level.
  kernels::Active().extract_bits(array.words().data(), seeds.data(), k, user,
                                 m, dst, cells);
}

void DigestMatrix::ExtractRow(const VosSketch& sketch, UserId user,
                              uint64_t* dst) {
  ExtractRowFromArray(sketch.array(), sketch, user, dst);
}

void DigestMatrix::ExtractRowFromCells(const BitVector& array,
                                       const uint32_t* cells, uint32_t k,
                                       uint64_t* dst) {
  kernels::Active().extract_bits_from_cells(array.words().data(), cells, k,
                                            dst);
}

/// Shared thread-parallel fill over disjoint row ranges.
DigestMatrix DigestMatrix::BuildImpl(const BitVector& array,
                                     const VosSketch& sketch,
                                     const std::vector<stream::UserId>& users,
                                     unsigned num_threads) {
  DigestMatrix matrix;
  matrix.k_ = sketch.config().k;
  matrix.num_rows_ = users.size();
  matrix.words_per_row_ = DigestMatrix::WordsPerRow(matrix.k_);
  matrix.words_.assign(matrix.num_rows_ * matrix.words_per_row_, 0);
  if (matrix.num_rows_ == 0) return matrix;

  const auto extract_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      DigestMatrix::ExtractRowFromArray(
          array, sketch, users[i],
          matrix.words_.data() + i * matrix.words_per_row_);
    }
  };

  const unsigned threads = ResolveThreadCount(num_threads, matrix.num_rows_);
  if (threads <= 1) {
    extract_range(0, matrix.num_rows_);
    return matrix;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t chunk = (matrix.num_rows_ + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    const size_t begin = std::min(matrix.num_rows_, t * chunk);
    const size_t end = std::min(matrix.num_rows_, begin + chunk);
    if (begin == end) break;
    workers.emplace_back(extract_range, begin, end);
  }
  for (std::thread& worker : workers) worker.join();
  return matrix;
}

DigestMatrix DigestMatrix::Build(const VosSketch& sketch,
                                 const std::vector<UserId>& users,
                                 unsigned num_threads) {
  return BuildImpl(sketch.array(), sketch, users, num_threads);
}

DigestMatrix DigestMatrix::BuildFromArray(const BitVector& array,
                                          const VosSketch& sketch,
                                          const std::vector<UserId>& users,
                                          unsigned num_threads) {
  VOS_CHECK(array.size() == sketch.config().m)
      << "array/geometry size mismatch";
  return BuildImpl(array, sketch, users, num_threads);
}

BitVector DigestMatrix::RowAsBitVector(size_t i) const {
  const uint64_t* row = Row(i);
  return BitVector::FromWords(
      k_, std::vector<uint64_t>(row, row + words_per_row_));
}

}  // namespace vos::core

#include "core/vos_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "core/sharded_vos_sketch.h"

namespace vos::core {
namespace {

/// XOR-fold checksum over the serialized payload (array words and
/// cardinalities), with position mixing so reordering is detected.
uint64_t Checksum(const std::vector<uint64_t>& words,
                  const std::vector<uint32_t>& cards) {
  uint64_t sum = 0x5b5e1ab1eULL;
  uint64_t index = 0;
  for (uint64_t w : words) sum ^= hash::Hash64(w, ++index);
  for (uint32_t c : cards) sum ^= hash::Hash64(c, ++index);
  return sum;
}

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked read of one POD at *pos; false (and no advance) when
/// fewer than sizeof(T) bytes remain. Every parser below goes through
/// this, so no size field is ever trusted before the bytes backing it are
/// known to exist.
template <typename T>
bool ReadPodAt(const uint8_t* data, size_t size, size_t* pos, T* value) {
  if (size - *pos < sizeof(T)) return false;
  std::memcpy(value, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return bytes;
}

/// Appends one v3 section: header (type, id, payload size), payload, and
/// a CRC32 covering header AND payload — a flipped bit anywhere in the
/// section, including its length field, is pinned to this section.
void AppendSection(std::string* out, uint32_t type, uint32_t id,
                   const std::string& payload) {
  const size_t start = out->size();
  AppendPod(out, type);
  AppendPod(out, id);
  AppendPod(out, static_cast<uint64_t>(payload.size()));
  out->append(payload);
  AppendPod(out, Crc32(out->data() + start, out->size() - start));
}

/// Atomically commits `bytes` to `path`: temp file, fsync, rename, parent
/// fsync. The checkpoint fault sites hook in here (see
/// common/fault_injector.h): tear/corrupt damage the bytes but report
/// success (silent corruption, for Restore to catch); crash stops before
/// the rename so the previous checkpoint survives.
Status CommitDurably(std::string bytes, const std::string& path) {
  FaultInjector& injector = FaultInjector::Global();
  if (injector.armed()) {
    if (const std::optional<FaultSpec> spec =
            injector.FireCheckpoint(FaultSite::kCheckpointCorrupt)) {
      if (spec->byte_offset < bytes.size()) {
        bytes[spec->byte_offset] ^= 0x01;
      }
    }
    if (const std::optional<FaultSpec> spec =
            injector.FireCheckpoint(FaultSite::kCheckpointTear)) {
      bytes.resize(std::min<size_t>(bytes.size(), spec->byte_offset));
    }
  }
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for writing: " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("write failed: " + tmp + ": " + err);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fsync failed: " + tmp + ": " + err);
  }
  ::close(fd);
  if (injector.armed() &&
      injector.FireCheckpoint(FaultSite::kCheckpointCrash)) {
    // The "process died" between publishing the temp file and the
    // rename: path still holds whatever checkpoint it held before.
    return Status::IoError("injected crash before rename; " + path +
                           " was not replaced");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename failed: " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  // fsync the parent directory so the rename itself is durable.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace

// ----------------------------------------------------------- VosSketchIo

void VosSketchIo::SerializeFields(const VosSketch& sketch,
                                  std::string* out) {
  AppendPod(out, sketch.config_.k);
  AppendPod(out, sketch.config_.m);
  AppendPod(out, sketch.config_.seed);
  AppendPod(out, static_cast<uint8_t>(sketch.config_.psi_kind));
  // The *resolved* f seed, so sketches built with a per-shard override
  // (VosConfig::f_seed) restore to the identical f family.
  AppendPod(out, sketch.f_seed_);
  AppendPod(out, static_cast<uint32_t>(sketch.cardinality_.size()));
  const std::vector<uint64_t>& words = sketch.array_.words();
  AppendPod(out, static_cast<uint64_t>(words.size()));
  out->append(reinterpret_cast<const char*>(words.data()),
              words.size() * sizeof(uint64_t));
  out->append(reinterpret_cast<const char*>(sketch.cardinality_.data()),
              sketch.cardinality_.size() * sizeof(uint32_t));
}

StatusOr<VosSketch> VosSketchIo::ParseFields(const uint8_t* data,
                                             size_t size, uint32_t version,
                                             const std::string& context,
                                             size_t* consumed) {
  size_t pos = 0;
  VosConfig config;
  uint8_t psi_kind = 0;
  uint32_t num_users = 0;
  uint64_t num_words = 0;
  if (!ReadPodAt(data, size, &pos, &config.k) ||
      !ReadPodAt(data, size, &pos, &config.m) ||
      !ReadPodAt(data, size, &pos, &config.seed) ||
      !ReadPodAt(data, size, &pos, &psi_kind)) {
    return Status::Corruption(context + ": truncated header");
  }
  if (version >= 2) {
    // v2 carries the resolved f-family seed (VosConfig::f_seed override).
    if (!ReadPodAt(data, size, &pos, &config.f_seed)) {
      return Status::Corruption(context + ": truncated header");
    }
  } else {
    // v1 predates the f_seed field: those sketches could only have been
    // written with the legacy default family, which f_seed == 0 makes
    // VosSketch re-derive from `seed` — the identical f cells.
    config.f_seed = 0;
  }
  if (!ReadPodAt(data, size, &pos, &num_users) ||
      !ReadPodAt(data, size, &pos, &num_words)) {
    return Status::Corruption(context + ": truncated header");
  }
  if (psi_kind > static_cast<uint8_t>(PsiKind::kTabulation)) {
    return Status::Corruption(context + ": unknown psi kind " +
                              std::to_string(psi_kind));
  }
  config.psi_kind = static_cast<PsiKind>(psi_kind);
  if (config.k == 0 || config.m == 0 || config.m > (uint64_t{1} << 48) ||
      num_words != (config.m + 63) / 64) {
    return Status::Corruption(context + ": inconsistent geometry");
  }
  // Validate the declared payload against the bytes actually present
  // BEFORE allocating anything: a size-lying header must fail with this
  // message, not with a multi-gigabyte allocation or a short read.
  const uint64_t payload_bytes =
      num_words * sizeof(uint64_t) +
      static_cast<uint64_t>(num_users) * sizeof(uint32_t);
  if (payload_bytes > size - pos) {
    return Status::Corruption(
        context + ": header declares " + std::to_string(payload_bytes) +
        " payload bytes but only " + std::to_string(size - pos) +
        " remain (truncated file?)");
  }
  std::vector<uint64_t> words(num_words);
  std::memcpy(words.data(), data + pos, num_words * sizeof(uint64_t));
  pos += num_words * sizeof(uint64_t);
  std::vector<uint32_t> cards(num_users);
  std::memcpy(cards.data(), data + pos, num_users * sizeof(uint32_t));
  pos += static_cast<size_t>(num_users) * sizeof(uint32_t);
  if (config.m % 64 != 0 && !words.empty() &&
      (words.back() >> (config.m % 64)) != 0) {
    return Status::Corruption(context + ": stray bits beyond m");
  }

  VosSketch sketch(config, static_cast<stream::UserId>(num_users));
  sketch.array_ = BitVector::FromWords(config.m, std::move(words));
  sketch.cardinality_ = std::move(cards);
  if (consumed != nullptr) *consumed = pos;
  return sketch;
}

Status VosSketchIo::Save(const VosSketch& sketch, const std::string& path) {
  std::string buffer;
  buffer.append(kMagic, 8);
  AppendPod(&buffer, kVersion);
  SerializeFields(sketch, &buffer);
  AppendPod(&buffer, Checksum(sketch.array_.words(), sketch.cardinality_));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<VosSketch> VosSketchIo::Load(const std::string& path) {
  VOS_ASSIGN_OR_RETURN(const std::string bytes, ReadWholeFile(path));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  const size_t size = bytes.size();
  if (size < 12) {
    return Status::Corruption(path + ": file too short for a header (" +
                              std::to_string(size) + " bytes)");
  }
  if (std::memcmp(data, kMagic, 8) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, data + 8, sizeof(version));
  if (version < kMinVersion || version > kVersion) {
    return Status::Corruption(path + ": unsupported version " +
                              std::to_string(version));
  }
  size_t consumed = 0;
  VOS_ASSIGN_OR_RETURN(
      VosSketch sketch,
      ParseFields(data + 12, size - 12, version, path, &consumed));
  const size_t tail = 12 + consumed;
  if (size - tail < sizeof(uint64_t)) {
    return Status::Corruption(path + ": truncated payload (checksum missing)");
  }
  if (size - tail > sizeof(uint64_t)) {
    // An oversized file is as suspect as a truncated one: some other
    // writer appended to it, or the header under-declares its payload.
    return Status::Corruption(
        path + ": " + std::to_string(size - tail - sizeof(uint64_t)) +
        " trailing bytes after the checksum (oversized file)");
  }
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, data + tail, sizeof(stored_checksum));
  if (stored_checksum !=
      Checksum(sketch.array_.words(), sketch.cardinality_)) {
    return Status::Corruption(path + ": checksum mismatch");
  }
  return sketch;
}

// ---------------------------------------------------- ShardedCheckpointIo

const char* ShardedCheckpointIo::SectionName(uint32_t type) {
  switch (type) {
    case kSectionManifest:
      return "manifest";
    case kSectionDenseMap:
      return "dense_map";
    case kSectionWatermarks:
      return "watermarks";
    case kSectionShard:
      return "shard";
  }
  return "unknown";
}

Status ShardedCheckpointIo::Save(const ShardedVosSketch& sketch,
                                 const std::string& path) {
  // Serialize everything to memory first: the on-disk commit is then one
  // durable write-and-rename, and a crash at any point can never expose
  // a half-built file at `path`.
  std::string file;
  file.append(VosSketchIo::kMagic, 8);
  AppendPod(&file, kVersion);
  const uint32_t num_shards = sketch.router_.num_shards();
  const uint32_t lanes = static_cast<uint32_t>(sketch.accepted_.size());
  AppendPod(&file, static_cast<uint32_t>(3 + num_shards));  // section count
  {
    // Manifest: the geometry this checkpoint was taken under. Restore
    // refuses a live instance that disagrees on any field.
    std::string payload;
    AppendPod(&payload, num_shards);
    AppendPod(&payload, lanes);
    AppendPod(&payload, sketch.config_.base.k);
    AppendPod(&payload, sketch.config_.base.m);
    AppendPod(&payload, sketch.config_.base.seed);
    AppendPod(&payload, static_cast<uint8_t>(sketch.config_.base.psi_kind));
    AppendPod(&payload, static_cast<uint32_t>(sketch.num_users_));
    AppendSection(&file, kSectionManifest, 0, payload);
  }
  {
    // Dense remap forward table (empty with one shard: identity). The
    // map is derivable from (seed, num_shards, num_users), so on restore
    // this doubles as an end-to-end check that the live instance derived
    // the identical partition.
    std::string payload;
    const uint32_t entries = sketch.dense_remap() ? sketch.num_users_ : 0;
    AppendPod(&payload, entries);
    for (uint32_t u = 0; u < entries; ++u) {
      AppendPod(&payload,
                static_cast<uint32_t>(sketch.dense_map_.LocalOf(u)));
    }
    AppendSection(&file, kSectionDenseMap, 0, payload);
  }
  {
    // Per-lane ingest watermarks, recorded at the Flush barrier: lane p
    // resumes its stream from element accepted_[p].
    std::string payload;
    AppendPod(&payload, lanes);
    for (const std::atomic<uint64_t>& watermark : sketch.accepted_) {
      AppendPod(&payload, watermark.load(std::memory_order_relaxed));
    }
    AppendSection(&file, kSectionWatermarks, 0, payload);
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::string payload;
    VosSketchIo::SerializeFields(sketch.shards_[s], &payload);
    AppendSection(&file, kSectionShard, s, payload);
  }
  return CommitDurably(std::move(file), path);
}

Status ShardedCheckpointIo::Restore(ShardedVosSketch* sketch,
                                    const std::string& path) {
  VOS_ASSIGN_OR_RETURN(const std::string bytes, ReadWholeFile(path));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  const size_t size = bytes.size();
  if (size < 16) {
    return Status::Corruption(path +
                              ": file too short for a checkpoint header (" +
                              std::to_string(size) + " bytes)");
  }
  if (std::memcmp(data, VosSketchIo::kMagic, 8) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  uint32_t version = 0;
  uint32_t section_count = 0;
  std::memcpy(&version, data + 8, sizeof(version));
  std::memcpy(&section_count, data + 12, sizeof(section_count));
  if (version != kVersion) {
    return Status::Corruption(path + ": unsupported checkpoint version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kVersion) + ")");
  }

  // Stage 1: parse and verify EVERY section before touching live state.
  const uint32_t live_shards = sketch->router_.num_shards();
  std::vector<std::optional<VosSketch>> staged(live_shards);
  std::vector<uint64_t> watermarks;
  bool have_manifest = false;
  bool have_dense = false;
  bool have_watermarks = false;
  uint32_t manifest_shards = 0;
  uint32_t manifest_lanes = 0;
  size_t pos = 16;
  for (uint32_t i = 0; i < section_count; ++i) {
    const size_t section_start = pos;
    uint32_t type = 0;
    uint32_t id = 0;
    uint64_t payload_size = 0;
    if (!ReadPodAt(data, size, &pos, &type) ||
        !ReadPodAt(data, size, &pos, &id) ||
        !ReadPodAt(data, size, &pos, &payload_size)) {
      return Status::Corruption(
          path + ": truncated section header (section " + std::to_string(i) +
          " of " + std::to_string(section_count) + "; torn write?)");
    }
    const std::string tag = std::string(SectionName(type)) + "[" +
                            std::to_string(id) + "]";
    if (payload_size > size - pos) {
      return Status::Corruption(
          path + ": section " + tag + " declares " +
          std::to_string(payload_size) + " payload bytes but only " +
          std::to_string(size - pos) + " remain (torn write?)");
    }
    const uint8_t* payload = data + pos;
    pos += payload_size;
    uint32_t stored_crc = 0;
    if (!ReadPodAt(data, size, &pos, &stored_crc)) {
      return Status::Corruption(path + ": section " + tag +
                                " is missing its CRC (torn write?)");
    }
    const uint32_t actual_crc =
        Crc32(data + section_start, 16 + payload_size);
    if (actual_crc != stored_crc) {
      return Status::Corruption(path + ": CRC mismatch in section " + tag);
    }
    if (i == 0 && type != kSectionManifest) {
      return Status::Corruption(path +
                                ": first section must be the manifest, got " +
                                tag);
    }
    size_t p = 0;  // cursor within this section's payload
    switch (type) {
      case kSectionManifest: {
        uint32_t k = 0;
        uint64_t m = 0;
        uint64_t seed = 0;
        uint8_t psi_kind = 0;
        uint32_t num_users = 0;
        if (!ReadPodAt(payload, payload_size, &p, &manifest_shards) ||
            !ReadPodAt(payload, payload_size, &p, &manifest_lanes) ||
            !ReadPodAt(payload, payload_size, &p, &k) ||
            !ReadPodAt(payload, payload_size, &p, &m) ||
            !ReadPodAt(payload, payload_size, &p, &seed) ||
            !ReadPodAt(payload, payload_size, &p, &psi_kind) ||
            !ReadPodAt(payload, payload_size, &p, &num_users)) {
          return Status::Corruption(path + ": manifest section truncated");
        }
        const auto mismatch = [&](const std::string& what, uint64_t ckpt,
                                  uint64_t live) {
          return Status::FailedPrecondition(
              path + ": manifest mismatch: checkpoint has " + what + " = " +
              std::to_string(ckpt) + " but the live instance has " +
              std::to_string(live) +
              "; restore requires an identically configured sketch");
        };
        if (manifest_shards != live_shards) {
          return mismatch("num_shards", manifest_shards, live_shards);
        }
        if (manifest_lanes != sketch->accepted_.size()) {
          return mismatch("ingest_lanes", manifest_lanes,
                          sketch->accepted_.size());
        }
        if (k != sketch->config_.base.k) {
          return mismatch("k", k, sketch->config_.base.k);
        }
        if (m != sketch->config_.base.m) {
          return mismatch("m", m, sketch->config_.base.m);
        }
        if (seed != sketch->config_.base.seed) {
          return mismatch("seed", seed, sketch->config_.base.seed);
        }
        if (psi_kind !=
            static_cast<uint8_t>(sketch->config_.base.psi_kind)) {
          return mismatch(
              "psi_kind", psi_kind,
              static_cast<uint8_t>(sketch->config_.base.psi_kind));
        }
        if (num_users != sketch->num_users_) {
          return mismatch("num_users", num_users, sketch->num_users_);
        }
        have_manifest = true;
        break;
      }
      case kSectionDenseMap: {
        uint32_t entries = 0;
        if (!ReadPodAt(payload, payload_size, &p, &entries) ||
            payload_size - p != static_cast<uint64_t>(entries) * 4) {
          return Status::Corruption(path + ": dense_map section truncated");
        }
        const uint32_t expected =
            sketch->dense_remap() ? sketch->num_users_ : 0;
        if (entries != expected) {
          return Status::FailedPrecondition(
              path + ": dense_map covers " + std::to_string(entries) +
              " users but the live instance's remap covers " +
              std::to_string(expected));
        }
        for (uint32_t u = 0; u < entries; ++u) {
          uint32_t local = 0;
          ReadPodAt(payload, payload_size, &p, &local);
          if (local != sketch->dense_map_.LocalOf(u)) {
            // Same (seed, num_shards, num_users) must derive the same
            // map; a disagreement means the manifest match was a lie.
            return Status::FailedPrecondition(
                path + ": dense_map disagrees with the live remap at user " +
                std::to_string(u));
          }
        }
        have_dense = true;
        break;
      }
      case kSectionWatermarks: {
        uint32_t lanes = 0;
        if (!ReadPodAt(payload, payload_size, &p, &lanes) ||
            payload_size - p != static_cast<uint64_t>(lanes) * 8) {
          return Status::Corruption(path +
                                    ": watermarks section truncated");
        }
        if (lanes != sketch->accepted_.size()) {
          return Status::FailedPrecondition(
              path + ": watermarks cover " + std::to_string(lanes) +
              " lanes but the live instance has " +
              std::to_string(sketch->accepted_.size()));
        }
        watermarks.resize(lanes);
        for (uint32_t l = 0; l < lanes; ++l) {
          ReadPodAt(payload, payload_size, &p, &watermarks[l]);
        }
        have_watermarks = true;
        break;
      }
      case kSectionShard: {
        if (id >= live_shards) {
          return Status::Corruption(path + ": section " + tag +
                                    " names a shard out of range (have " +
                                    std::to_string(live_shards) + ")");
        }
        if (staged[id].has_value()) {
          return Status::Corruption(path + ": duplicate section " + tag);
        }
        size_t consumed = 0;
        StatusOr<VosSketch> parsed = VosSketchIo::ParseFields(
            payload, payload_size, /*version=*/2,
            path + " section " + tag, &consumed);
        if (!parsed.ok()) return parsed.status();
        if (consumed != payload_size) {
          return Status::Corruption(path + ": section " + tag + " has " +
                                    std::to_string(payload_size - consumed) +
                                    " trailing bytes");
        }
        if (!parsed->IsCompatibleWith(sketch->shards_[id])) {
          return Status::FailedPrecondition(
              path + ": section " + tag +
              " is incompatible with the live shard (k/m/seed/f_seed/"
              "user-count mismatch)");
        }
        staged[id] = std::move(parsed).value();
        break;
      }
      default:
        return Status::Corruption(path + ": unknown section type " +
                                  std::to_string(type));
    }
  }
  if (pos != size) {
    return Status::Corruption(path + ": " + std::to_string(size - pos) +
                              " trailing bytes after the last section");
  }
  if (!have_manifest || !have_dense || !have_watermarks) {
    return Status::Corruption(path + ": missing required section (" +
                              std::string(!have_manifest ? "manifest"
                                          : !have_dense ? "dense_map"
                                                        : "watermarks") +
                              ")");
  }
  for (uint32_t s = 0; s < live_shards; ++s) {
    if (!staged[s].has_value()) {
      return Status::Corruption(path + ": missing section shard[" +
                                std::to_string(s) + "]");
    }
  }

  // Stage 2: every section verified — commit atomically under the
  // pipeline lock. Element-wise moves keep the shards_ vector storage
  // (external references to shard(s) stay valid).
  {
    MutexLock lock(&sketch->mu_);
    for (uint32_t s = 0; s < live_shards; ++s) {
      sketch->shards_[s] = std::move(*staged[s]);
    }
    for (size_t p = 0; p < watermarks.size(); ++p) {
      // The lane resumes from its watermark with an empty buffer:
      // accepted == dispatched, nothing pending.
      sketch->accepted_[p].store(watermarks[p], std::memory_order_relaxed);
      sketch->dispatched_[p].store(watermarks[p], std::memory_order_relaxed);
    }
    for (Status& status : sketch->shard_status_) status = Status::OK();
    sketch->budget_status_ = Status::OK();
    sketch->dropped_elements_.store(0, std::memory_order_relaxed);
    bool still_degraded = false;
    // Recovery heals poisoning — except shards whose worker thread was
    // killed: a dead thread cannot be resurrected in-process.
    for (uint32_t s = 0; s < live_shards && !sketch->owner_.empty(); ++s) {
      if (sketch->worker_dead_[sketch->owner_[s]] != 0) {
        sketch->shard_status_[s] = Status::FailedPrecondition(
            "shard " + std::to_string(s) +
            ": owning worker thread was killed; restore this checkpoint "
            "into a fresh instance to resume ingest on this shard");
        still_degraded = true;
      }
    }
    sketch->degraded_.store(still_degraded, std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace vos::core

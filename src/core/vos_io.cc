#include "core/vos_io.h"

#include <cstring>
#include <fstream>

namespace vos::core {
namespace {

/// XOR-fold checksum over the serialized payload (array words and
/// cardinalities), with position mixing so reordering is detected.
uint64_t Checksum(const std::vector<uint64_t>& words,
                  const std::vector<uint32_t>& cards) {
  uint64_t sum = 0x5b5e1ab1eULL;
  uint64_t index = 0;
  for (uint64_t w : words) sum ^= hash::Hash64(w, ++index);
  for (uint32_t c : cards) sum ^= hash::Hash64(c, ++index);
  return sum;
}

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status VosSketchIo::Save(const VosSketch& sketch, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kMagic, 8);
  WritePod(out, kVersion);
  WritePod(out, sketch.config_.k);
  WritePod(out, sketch.config_.m);
  WritePod(out, sketch.config_.seed);
  WritePod(out, static_cast<uint8_t>(sketch.config_.psi_kind));
  // The *resolved* f seed, so sketches built with a per-shard override
  // (VosConfig::f_seed) restore to the identical f family.
  WritePod(out, sketch.f_seed_);
  WritePod(out, static_cast<uint32_t>(sketch.cardinality_.size()));
  const std::vector<uint64_t>& words = sketch.array_.words();
  WritePod(out, static_cast<uint64_t>(words.size()));
  out.write(reinterpret_cast<const char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(uint64_t)));
  out.write(
      reinterpret_cast<const char*>(sketch.cardinality_.data()),
      static_cast<std::streamsize>(sketch.cardinality_.size() *
                                   sizeof(uint32_t)));
  WritePod(out, Checksum(words, sketch.cardinality_));
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<VosSketch> VosSketchIo::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[8];
  in.read(magic, 8);
  if (!in.good() || std::memcmp(magic, kMagic, 8) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version < kMinVersion ||
      version > kVersion) {
    return Status::Corruption(path + ": unsupported version " +
                              std::to_string(version));
  }
  VosConfig config;
  uint8_t psi_kind = 0;
  uint32_t num_users = 0;
  uint64_t num_words = 0;
  if (!ReadPod(in, &config.k) || !ReadPod(in, &config.m) ||
      !ReadPod(in, &config.seed) || !ReadPod(in, &psi_kind)) {
    return Status::Corruption(path + ": truncated header");
  }
  if (version >= 2) {
    // v2 carries the resolved f-family seed (VosConfig::f_seed override).
    if (!ReadPod(in, &config.f_seed)) {
      return Status::Corruption(path + ": truncated header");
    }
  } else {
    // v1 predates the f_seed field: those sketches could only have been
    // written with the legacy default family, which f_seed == 0 makes
    // VosSketch re-derive from `seed` — the identical f cells.
    config.f_seed = 0;
  }
  if (!ReadPod(in, &num_users) || !ReadPod(in, &num_words)) {
    return Status::Corruption(path + ": truncated header");
  }
  if (psi_kind > static_cast<uint8_t>(PsiKind::kTabulation)) {
    return Status::Corruption(path + ": unknown psi kind " +
                              std::to_string(psi_kind));
  }
  config.psi_kind = static_cast<PsiKind>(psi_kind);
  if (config.k == 0 || config.m == 0 ||
      num_words != (config.m + 63) / 64) {
    return Status::Corruption(path + ": inconsistent geometry");
  }
  std::vector<uint64_t> words(num_words);
  in.read(reinterpret_cast<char*>(words.data()),
          static_cast<std::streamsize>(num_words * sizeof(uint64_t)));
  std::vector<uint32_t> cards(num_users);
  in.read(reinterpret_cast<char*>(cards.data()),
          static_cast<std::streamsize>(num_users * sizeof(uint32_t)));
  uint64_t stored_checksum = 0;
  if (!in.good() || !ReadPod(in, &stored_checksum)) {
    return Status::Corruption(path + ": truncated payload");
  }
  if (stored_checksum != Checksum(words, cards)) {
    return Status::Corruption(path + ": checksum mismatch");
  }
  if (config.m % 64 != 0 && (words.back() >> (config.m % 64)) != 0) {
    return Status::Corruption(path + ": stray bits beyond m");
  }

  VosSketch sketch(config, static_cast<stream::UserId>(num_users));
  sketch.array_ = BitVector::FromWords(config.m, std::move(words));
  sketch.cardinality_ = std::move(cards);
  return sketch;
}

}  // namespace vos::core

#include "core/query_optimizer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/timer.h"
#include "core/scan_common.h"

namespace vos::core::optimizer {
namespace {

/// Keeps the probe loops observable so -O3 cannot fold them away.
volatile uint64_t g_probe_sink = 0;

uint64_t NextLcg(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state;
}

/// Runs `body` (which processes `units_per_call` units per call) until at
/// least ~200 µs elapsed, returns seconds per unit. Geometric iteration
/// growth keeps the probe short on fast kernels and honest on slow ones.
template <typename Body>
double SecondsPerUnit(double units_per_call, const Body& body) {
  uint64_t iters = 16;
  for (;;) {
    WallTimer timer;
    for (uint64_t it = 0; it < iters; ++it) body();
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed >= 200e-6 || iters >= (uint64_t{1} << 22)) {
      return elapsed / (static_cast<double>(iters) * units_per_call);
    }
    iters *= 4;
  }
}

/// Microprobes one dispatch table: the 1×8 XOR+popcount kernel at two
/// word counts (a two-point fit splits the marginal word cost from the
/// fixed per-pair overhead), a pack-sort pass (the banded candidate
/// list's dominant cost), and a linear run-detection walk (the banding
/// bucket enumeration's per-entry cost).
KernelCostModel ProbeLevel(const kernels::KernelTable& table) {
  constexpr size_t kRows = 16;
  constexpr size_t kWordsShort = 8;
  constexpr size_t kWordsLong = 32;
  std::vector<uint64_t> rows(kRows * kWordsLong);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (uint64_t& w : rows) w = NextLcg(&state);

  const auto pair_seconds = [&](size_t words) {
    return SecondsPerUnit(static_cast<double>((kRows - 8) * 8), [&] {
      size_t out[8];
      uint64_t sink = 0;
      for (size_t r = 0; r + 8 < kRows; ++r) {
        table.xor_popcount8(rows.data() + r * kWordsLong,
                            rows.data() + (r + 1) * kWordsLong, kWordsLong,
                            words, out);
        sink += out[0] + out[7];
      }
      g_probe_sink = g_probe_sink + sink;
    });
  };
  const double t_short = pair_seconds(kWordsShort);
  const double t_long = pair_seconds(kWordsLong);

  KernelCostModel costs;
  costs.seconds_per_pair_word =
      std::max((t_long - t_short) / (kWordsLong - kWordsShort), 1e-12);
  // The fixed overhead can probe negative under timer noise; floor it at
  // one word's cost so no plan ever looks free.
  costs.seconds_per_pair = std::max(
      t_short - costs.seconds_per_pair_word * kWordsShort,
      costs.seconds_per_pair_word);

  constexpr size_t kSortN = size_t{1} << 13;
  std::vector<uint64_t> unsorted(kSortN);
  for (uint64_t& v : unsorted) v = NextLcg(&state);
  std::vector<uint64_t> scratch(kSortN);
  costs.seconds_per_candidate =
      SecondsPerUnit(static_cast<double>(kSortN), [&] {
        scratch = unsorted;
        std::sort(scratch.begin(), scratch.end());
        g_probe_sink = g_probe_sink + scratch[0];
      });
  // scratch is now sorted; a run-detection walk over it prices the
  // bucket-enumeration / merge-join entry cost.
  costs.seconds_per_entry = SecondsPerUnit(static_cast<double>(kSortN), [&] {
    uint64_t runs = 0;
    for (size_t i = 1; i < kSortN; ++i) runs += scratch[i] != scratch[i - 1];
    g_probe_sink = g_probe_sink + runs;
  });
  costs.level = table.level;
  return costs;
}

constexpr size_t kNumLevels = 4;

Mutex g_costs_mutex;
bool g_probed[kNumLevels] VOS_GUARDED_BY(g_costs_mutex) = {};
KernelCostModel g_costs[kNumLevels] VOS_GUARDED_BY(g_costs_mutex);
bool g_override_set VOS_GUARDED_BY(g_costs_mutex) = false;
KernelCostModel g_override VOS_GUARDED_BY(g_costs_mutex);

}  // namespace

const char* PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kAuto:
      return "auto";
    case PlanMode::kForceExact:
      return "exact";
    case PlanMode::kForceBanded:
      return "banded";
  }
  return "auto";
}

const char* PlanKindName(PlanKind kind) {
  return kind == PlanKind::kBanded ? "banded" : "exact";
}

bool ParsePlanMode(const char* s, PlanMode* out) {
  if (s == nullptr) return false;
  const std::string value(s);
  if (value == "auto") {
    *out = PlanMode::kAuto;
  } else if (value == "exact") {
    *out = PlanMode::kForceExact;
  } else if (value == "banded") {
    *out = PlanMode::kForceBanded;
  } else {
    return false;
  }
  return true;
}

PlanMode EffectivePlanMode(PlanMode configured) {
  const char* env = std::getenv("VOS_PLAN");
  if (env == nullptr || env[0] == '\0') return configured;
  PlanMode parsed;
  if (ParsePlanMode(env, &parsed)) return parsed;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "vos: unknown VOS_PLAN value \"%s\" ignored "
                 "(want auto | exact | banded)\n",
                 env);
  }
  return configured;
}

const KernelCostModel& CalibratedCosts() {
  const kernels::DispatchLevel level = kernels::ActiveLevel();
  const size_t idx =
      std::min<size_t>(static_cast<size_t>(level), kNumLevels - 1);
  MutexLock lock(&g_costs_mutex);
  if (g_override_set) return g_override;
  if (!g_probed[idx]) {
    const kernels::KernelTable* table = kernels::TableFor(level);
    g_costs[idx] = ProbeLevel(table != nullptr ? *table : kernels::Active());
    g_probed[idx] = true;
  }
  return g_costs[idx];
}

void SetCalibratedCostsForTest(const KernelCostModel* costs) {
  MutexLock lock(&g_costs_mutex);
  g_override_set = costs != nullptr;
  if (costs != nullptr) g_override = *costs;
}

PassPlan ChoosePassPlan(const PassStats& stats, const KernelCostModel& costs,
                        PlanMode mode) {
  PassPlan plan;
  const double per_pair =
      static_cast<double>(stats.words_per_row) * costs.seconds_per_pair_word +
      costs.seconds_per_pair;
  plan.exact_cost = static_cast<double>(stats.exact_pairs) * per_pair;
  if (!stats.banded_available) {
    // Nothing to choose: a force-banded request degrades to exact rather
    // than failing, so VOS_PLAN=banded is safe over banding-off configs.
    plan.banded_cost = std::numeric_limits<double>::infinity();
    plan.kind = PlanKind::kExact;
    plan.forced = mode != PlanMode::kAuto;
    return plan;
  }
  const double entry_walk =
      static_cast<double>(stats.banded_entries) * costs.seconds_per_entry;
  plan.banded_cost =
      entry_walk +
      static_cast<double>(stats.banded_candidates) *
          (per_pair + costs.seconds_per_candidate) +
      stats.dirty_fraction * entry_walk;
  switch (mode) {
    case PlanMode::kForceExact:
      plan.kind = PlanKind::kExact;
      plan.forced = true;
      break;
    case PlanMode::kForceBanded:
      plan.kind = PlanKind::kBanded;
      plan.forced = true;
      break;
    case PlanMode::kAuto:
      plan.kind = plan.banded_cost < plan.exact_cost ? PlanKind::kBanded
                                                     : PlanKind::kExact;
      break;
  }
  return plan;
}

size_t TriangleWindowPairs(const uint32_t* cards, size_t n, double tau,
                           bool prefilter) {
  if (n < 2) return 0;
  if (!prefilter) return n * (n - 1) / 2;
  const double tau_frac = tau / (1.0 + tau);
  size_t pairs = 0;
  size_t end = 1;
  // Window ends are monotone in p (a larger card admits every partner a
  // smaller one does — scan::CardinalityFail is monotone), so the sweep
  // is O(n) total: `end` only moves forward.
  for (size_t p = 0; p + 1 < n; ++p) {
    const double card_p = cards[p];
    if (end < p + 1) end = p + 1;
    while (end < n &&
           !scan::CardinalityFail(card_p, card_p + cards[end], tau_frac)) {
      ++end;
    }
    pairs += end - (p + 1);
  }
  return pairs;
}

size_t RectangleWindowPairs(const uint32_t* cards_a, size_t n_a,
                            const uint32_t* cards_b, size_t n_b, double tau,
                            bool prefilter) {
  if (n_a == 0 || n_b == 0) return 0;
  if (!prefilter) return n_a * n_b;
  const double tau_frac = tau / (1.0 + tau);
  size_t pairs = 0;
  size_t lo = 0, hi = 0;
  // Both window ends are non-decreasing in the a-row's cardinality (the
  // same partition points ScanRectTile binary-searches per row).
  for (size_t p = 0; p < n_a; ++p) {
    const double card_a = cards_a[p];
    while (lo < n_b &&
           scan::CardinalityFail(cards_b[lo], card_a + cards_b[lo],
                                 tau_frac)) {
      ++lo;
    }
    if (hi < lo) hi = lo;
    while (hi < n_b &&
           !scan::CardinalityFail(card_a, card_a + cards_b[hi], tau_frac)) {
      ++hi;
    }
    pairs += hi - lo;
  }
  return pairs;
}

namespace {

/// Parses a sysfs cache size string ("48K", "2048K", "260M") to bytes;
/// 0 on anything unexpected.
size_t ParseCacheSize(const std::string& text) {
  size_t value = 0;
  size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<size_t>(text[i] - '0');
    ++i;
  }
  if (i >= text.size()) return value;
  if (text[i] == 'K') return value << 10;
  if (text[i] == 'M') return value << 20;
  if (text[i] == 'G') return value << 30;
  return value;
}

/// Per-core cache budget for one tile's working set: min(L2, LLC/cores)
/// from /sys/devices/system/cpu/cpu0/cache, with a 256 KiB fallback when
/// the hierarchy cannot be read (non-Linux, sandboxes).
size_t DetectPerCoreCacheBytes() {
  size_t l2 = 0;
  size_t llc = 0;
  for (int idx = 0; idx < 8; ++idx) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx);
    std::ifstream type_file(base + "/type");
    std::ifstream level_file(base + "/level");
    std::ifstream size_file(base + "/size");
    if (!type_file || !level_file || !size_file) continue;
    std::string type, size_text;
    int level = 0;
    type_file >> type;
    level_file >> level;
    size_file >> size_text;
    if (type == "Instruction") continue;
    const size_t bytes = ParseCacheSize(size_text);
    if (bytes == 0) continue;
    if (level == 2) l2 = std::max(l2, bytes);
    llc = std::max(llc, bytes);
  }
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  size_t budget = l2;
  if (llc != 0) {
    const size_t llc_share = std::max<size_t>(llc / cores, size_t{64} << 10);
    budget = budget == 0 ? llc_share : std::min(budget, llc_share);
  }
  return budget == 0 ? size_t{256} << 10 : budget;
}

}  // namespace

size_t AdaptiveTileRows(size_t words_per_row) {
  static const size_t budget = DetectPerCoreCacheBytes();
  const size_t words = words_per_row == 0 ? 1 : words_per_row;
  // Two resident row ranges of 8-byte words per tile; target half the
  // budget so per-unit output buffers and the partner stream fit too.
  size_t tile = (budget / 2) / (2 * words * sizeof(uint64_t));
  tile &= ~size_t{7};
  return std::min<size_t>(std::max<size_t>(tile, 64), 2048);
}

}  // namespace vos::core::optimizer

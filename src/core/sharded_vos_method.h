// SimilarityMethod adapter for ShardedVosSketch: the sharded write path
// behind the same harness interface as every other method.
//
// Update/UpdateBatch feed the concurrent ingest pipeline; FlushIngest
// quiesces it (the harness calls it at every checkpoint). PrepareQuery
// flushes, then materializes the tracked users' digests into one
// DigestMatrix *per shard* — each user extracted from its owning shard —
// so EstimatePair is a word-wise XOR+popcount between two cached rows
// plus log-table lookups, exactly like VosMethod's batch path. Rows from
// different shards are directly comparable (shared ψ, equal k); only the
// β correction switches to the two-shard form (see
// core/sharded_vos_sketch.h).

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/digest_matrix.h"
#include "core/sharded_vos_sketch.h"
#include "core/similarity_method.h"

namespace vos::core {

/// Sharded VOS as a pluggable SimilarityMethod ("VOS-sharded").
class ShardedVosMethod : public SimilarityMethod {
 public:
  ShardedVosMethod(const ShardedVosConfig& config, UserId num_users,
                   VosEstimatorOptions options = {});

  std::string Name() const override { return "VOS-sharded"; }

  void Update(const Element& e) override { sketch_.Update(e); }
  void UpdateBatch(const Element* elements, size_t count) override {
    sketch_.UpdateBatch(elements, count);
  }
  void FlushIngest() override { sketch_.Flush(); }

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  size_t MemoryBits() const override { return sketch_.MemoryBits(); }

  void PrepareQuery(const std::vector<UserId>& users) override;
  void InvalidateQueryCache() override;
  void SetQueryThreads(unsigned num_threads) override {
    query_threads_ = num_threads;
  }

  const ShardedVosSketch& sketch() const { return sketch_; }
  ShardedVosSketch& mutable_sketch() { return sketch_; }

 private:
  /// Where a cached user's digest row lives.
  struct CacheSlot {
    uint32_t shard = 0;
    uint32_t row = 0;
  };

  ShardedVosSketch sketch_;
  /// ln|1−2·d/k| per Hamming distance d (see SimilarityIndex).
  std::vector<double> log_alpha_table_;
  /// One digest matrix per shard, rows for that shard's tracked users.
  std::vector<DigestMatrix> cache_;
  std::unordered_map<UserId, CacheSlot> cache_slots_;
  /// Per-shard β and log-beta term memoized at PrepareQuery; EstimatePair
  /// revalidates against the live β (one compare per endpoint).
  std::vector<double> cached_beta_;
  std::vector<double> cached_log_beta_term_;
  unsigned query_threads_ = 0;
};

}  // namespace vos::core

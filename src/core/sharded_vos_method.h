// SimilarityMethod adapter for ShardedVosSketch: the sharded write path
// behind the same harness interface as every other method.
//
// Update/UpdateBatch feed the concurrent ingest pipeline; FlushIngest
// quiesces it (the harness calls it at every checkpoint). Two query-cache
// modes:
//
//   * Default: PrepareQuery flushes, then materializes the tracked users'
//     digests into one DigestMatrix *per shard* — each user extracted
//     from its owning shard under its dense local id — so EstimatePair is
//     a word-wise XOR+popcount between two cached rows plus log-table
//     lookups, exactly like VosMethod's batch path. Rows from different
//     shards are directly comparable (shared ψ, equal k); only the β
//     correction switches to the two-shard form (see
//     core/sharded_vos_sketch.h).
//
//   * Shard-local planner mode (ShardedQueryConfig::shards_local): the
//     cache is a QueryPlanner holding one incremental SimilarityIndex per
//     shard. The first PrepareQuery builds the per-shard snapshots; every
//     subsequent PrepareQuery over the SAME tracked set refreshes them
//     incrementally (SimilarityIndex::RefreshDirty shard-locally, with
//     the adaptive full-rebuild fallback) instead of re-extracting every
//     row — the PR 2 follow-up paid off at the harness checkpoint loop.
//     EstimatePair reads snapshot rows from the shard indexes; estimates
//     are bit-identical to the default mode on quiesced state. This mode
//     requires (and force-enables) VosConfig::track_dirty on the shards.

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/digest_matrix.h"
#include "core/query_planner.h"
#include "core/sharded_vos_sketch.h"
#include "core/similarity_method.h"

namespace vos::core {

/// Query-tier knobs of ShardedVosMethod (the ingest knobs live in
/// ShardedVosConfig).
struct ShardedQueryConfig {
  /// Maintain shard-local incremental SimilarityIndexes (QueryPlanner)
  /// as the PrepareQuery cache instead of rebuilding per-shard digest
  /// matrices from scratch at every checkpoint. Implies dirty tracking
  /// on the shards.
  bool shards_local = false;
  /// Planner task-level worker threads (0 = hardware concurrency). Only
  /// meaningful with shards_local; SetQueryThreads overrides it.
  unsigned planner_threads = 0;
  /// Rows per tile edge of the planner's pair scans (0 = the pair_scan
  /// tier default; see QueryOptions::tile_rows). Only meaningful with
  /// shards_local.
  size_t tile_rows = 0;
  /// Opt-in LSH banding for planner-level AllPairsAbove over the tracked
  /// set (see QueryOptions::banding_bands; 0 = exact, the default).
  /// Per-pair EstimatePair answers are unaffected — banding only changes
  /// which pairs a planner all-pairs query enumerates.
  uint32_t banding_bands = 0;
  uint32_t banding_rows_per_band = 8;
  /// Degenerate-bucket guard for the banding tables (see
  /// QueryOptions::banding_max_bucket; 0 = uncapped).
  uint32_t banding_max_bucket = 1024;
  /// Recall floor of the optimizer's feedback loop (see
  /// QueryOptions::banding_recall_floor; 0 = off).
  double banding_recall_floor = 0.0;
  /// Per-pass plan selection for planner queries (see
  /// QueryOptions::plan; VOS_PLAN overrides per query).
  optimizer::PlanMode plan = optimizer::PlanMode::kAuto;
};

/// Sharded VOS as a pluggable SimilarityMethod ("VOS-sharded").
class ShardedVosMethod : public SimilarityMethod {
 public:
  ShardedVosMethod(const ShardedVosConfig& config, UserId num_users,
                   VosEstimatorOptions options = {},
                   ShardedQueryConfig query_config = {});

  std::string Name() const override { return "VOS-sharded"; }

  void Update(const Element& e) override { sketch_.Update(e); }
  void UpdateBatch(const Element* elements, size_t count) override {
    sketch_.UpdateBatch(elements, count);
  }
  /// Producer-lane ingest: distinct lanes in
  /// [0, ConcurrentIngestProducers()) may feed concurrently, each from
  /// one thread (see core/sharded_vos_sketch.h).
  void UpdateBatch(const Element* elements, size_t count,
                   unsigned producer) override {
    sketch_.UpdateBatch(elements, count, producer);
  }
  /// Quiesces the pipeline and surfaces its sticky health: a poisoned
  /// shard / starved lane / exceeded budget comes back as the non-OK
  /// Status (see core/sharded_vos_sketch.h). Queries keep serving — the
  /// last PrepareQuery snapshot stays valid — but new data is the
  /// caller's to stop sending.
  Status FlushIngest() override { return sketch_.Flush(); }
  Status FlushIngest(unsigned producer) override {
    return sketch_.FlushProducer(producer);
  }
  unsigned ConcurrentIngestProducers() const override {
    return sketch_.num_producers();
  }

  /// Atomic whole-pipeline checkpoint / recovery (forwards to
  /// ShardedVosSketch; see there for the watermark contract). Restore
  /// additionally drops the planner and the digest caches — their
  /// incremental state references the pre-restore snapshots.
  Status Checkpoint(const std::string& path) {
    return sketch_.Checkpoint(path);
  }
  Status Restore(const std::string& path);

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  size_t MemoryBits() const override { return sketch_.MemoryBits(); }

  void PrepareQuery(const std::vector<UserId>& users) override;
  void InvalidateQueryCache() override;
  void SetQueryThreads(unsigned num_threads) override {
    query_threads_ = num_threads;
  }

  const ShardedVosSketch& sketch() const { return sketch_; }
  ShardedVosSketch& mutable_sketch() { return sketch_; }

  /// The planner cache (shards_local mode only; nullptr otherwise or
  /// before the first PrepareQuery). Exposed for tests and for callers
  /// that want planner-level queries (TopK/AllPairsAbove) over the
  /// tracked set.
  const QueryPlanner* planner() const { return planner_.get(); }

 private:
  /// Where a cached user's digest row lives (default mode).
  struct CacheSlot {
    uint32_t shard = 0;
    uint32_t row = 0;
  };

  PairEstimate EstimateFromPlanner(UserId u, UserId v) const;

  /// Force-enables dirty tracking when the planner mode needs it.
  static ShardedVosConfig WithQueryConfig(ShardedVosConfig config,
                                          const ShardedQueryConfig& query);

  ShardedVosConfig config_;
  ShardedQueryConfig query_config_;
  ShardedVosSketch sketch_;
  /// ln|1−2·d/k| per Hamming distance d (see SimilarityIndex).
  std::vector<double> log_alpha_table_;

  // --- Default-mode cache: one digest matrix per shard ------------------
  std::vector<DigestMatrix> cache_;
  std::unordered_map<UserId, CacheSlot> cache_slots_;
  /// Per-shard β and log-beta term memoized at PrepareQuery; EstimatePair
  /// revalidates against the live β (one compare per endpoint).
  std::vector<double> cached_beta_;
  std::vector<double> cached_log_beta_term_;

  // --- Planner-mode cache ----------------------------------------------
  std::unique_ptr<QueryPlanner> planner_;
  /// The tracked set the planner snapshots cover; a different set at
  /// PrepareQuery forces a full planner Rebuild.
  std::vector<UserId> planner_candidates_;
  /// False between InvalidateQueryCache and the next PrepareQuery: the
  /// planner keeps its incremental state but EstimatePair answers from
  /// the live sketch.
  bool planner_ready_ = false;

  unsigned query_threads_ = 0;
};

}  // namespace vos::core

// VosDrift: per-user set drift between two snapshots of the same sketch.
//
// A library-level extension that falls out of the odd-sketch algebra: for
// two snapshots A(t1), A(t2) of one VosSketch (same config, same stream),
// the XOR A(t1) ⊕ A(t2) is *exactly* the VOS array of the sub-stream
// (t1, t2] — every cell holds the parity of the flips between the
// snapshots. Reconstructing user u's k bits from the XOR-ed array
// therefore yields (a contaminated view of) the odd sketch of
// S_u(t1) Δ S_u(t2), and the §IV machinery estimates:
//
//   drift_u      = |S_u(t1) Δ S_u(t2)|          (how much churned)
//   stability_u  = J(S_u(t1), S_u(t2))           (how much persisted)
//
// Contamination correction uses β_Δ — the 1-bit fraction of the XOR-ed
// array — with a single (1−2β_Δ) factor: only one reconstructed digest is
// involved, unlike the two-user pair estimate. Typical uses: churn
// monitoring ("alert when a user's subscriptions turn over by more than
// X"), snapshot dedup, and change-rate dashboards — all without storing
// any per-user state beyond the two sketch snapshots.

#pragma once

#include <vector>

#include "common/bit_vector.h"
#include "core/vos_estimator.h"
#include "core/vos_sketch.h"

namespace vos::core {

/// Drift analysis bound to two snapshots of one logical sketch.
class VosDrift {
 public:
  /// `before` and `after` must be snapshots of the same logical sketch
  /// (identical config and user count); aborts otherwise. Both must
  /// outlive this object.
  VosDrift(const VosSketch& before, const VosSketch& after,
           VosEstimatorOptions options = {});

  /// Estimated |S_u(t1) Δ S_u(t2)| — items subscribed or unsubscribed in
  /// between (an item toggled twice cancels, as in the underlying parity).
  double EstimateDrift(UserId u) const;

  /// Estimated Jaccard between the user's two snapshots,
  /// J = s/(n1+n2−s) with s = (n1+n2−drift)/2; 1.0 means unchanged.
  double EstimateStability(UserId u) const;

  /// EstimateDrift for every user in `users`, batch-extracted through a
  /// DigestMatrix over the delta array (thread-parallel, contiguous rows,
  /// word-wise popcounts — the churn-dashboard path that was previously
  /// one heap BitVector per user). Results are bit-identical to the
  /// per-user EstimateDrift calls.
  std::vector<double> EstimateDriftBatch(const std::vector<UserId>& users,
                                         unsigned num_threads = 0) const;

  /// EstimateStability for every user in `users` (see EstimateDriftBatch).
  std::vector<double> EstimateStabilityBatch(
      const std::vector<UserId>& users, unsigned num_threads = 0) const;

  /// β_Δ — the fill of the XOR-ed array (diagnostic; estimates degrade as
  /// it approaches ½).
  double delta_beta() const { return delta_beta_; }

 private:
  /// n̂Δ from the count of 1s among the user's k reconstructed delta bits
  /// (the shared core of the scalar and batch paths).
  double DriftFromOnes(uint32_t ones) const;
  double StabilityFromDrift(UserId u, double drift) const;

  const VosSketch* after_;  // geometry source for CellOf
  VosEstimator estimator_;
  const VosSketch* before_;
  BitVector delta_array_;
  double delta_beta_;
};

}  // namespace vos::core

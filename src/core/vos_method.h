// SimilarityMethod adapter for VOS: sketch + estimator + batch query cache.
//
// EstimatePair on raw VosSketch costs O(k) hash evaluations per user; with
// hundreds of tracked users and tens of thousands of tracked pairs per
// checkpoint that work is quadratic in pairs. PrepareQuery materializes the
// tracked users' reconstructed k-bit sketches once — into a contiguous
// DigestMatrix, extracted thread-parallel — so a pair estimate is a single
// word-wise XOR+popcount row kernel plus a log-table lookup (no
// transcendental calls on the pair loop; see
// VosEstimator::EstimateFromLogTerms for the bit-identity argument).

#pragma once

#include <memory>
#include <unordered_map>

#include "common/bit_vector.h"
#include "core/digest_matrix.h"
#include "core/similarity_index.h"
#include "core/similarity_method.h"
#include "core/vos_estimator.h"
#include "core/vos_sketch.h"

namespace vos::core {

/// VOS as a pluggable SimilarityMethod.
class VosMethod : public SimilarityMethod {
 public:
  /// `query_options` configures batch scans built through MakeIndex()
  /// (tile_rows, banding_*, prefilter — the method_factory knobs land
  /// here); the per-pair EstimatePair path ignores it.
  VosMethod(const VosConfig& config, UserId num_users,
            VosEstimatorOptions options = {}, QueryOptions query_options = {});

  std::string Name() const override { return "VOS"; }

  void Update(const Element& e) override { sketch_.Update(e); }

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  size_t MemoryBits() const override { return sketch_.MemoryBits(); }

  void PrepareQuery(const std::vector<UserId>& users) override;
  void InvalidateQueryCache() override {
    cache_.Clear();
    cache_rows_.clear();
  }
  void SetQueryThreads(unsigned num_threads) override {
    query_threads_ = num_threads;
  }

  const VosSketch& sketch() const { return sketch_; }
  const VosEstimator& estimator() const { return estimator_; }
  const QueryOptions& query_options() const { return query_options_; }

  /// A snapshot SimilarityIndex over `candidates`, configured with this
  /// method's QueryOptions (so factory knobs — tile_rows, banding_* —
  /// and the last SetQueryThreads govern its scans). The returned index
  /// follows the usual snapshot semantics (core/similarity_index.h);
  /// callers drive TopK/AllPairsAbove on it directly.
  std::unique_ptr<SimilarityIndex> MakeIndex(
      std::vector<UserId> candidates) const;

 private:
  /// Returns the cached digest for `user`, or extracts one on the fly
  /// (slow path for users outside the PrepareQuery set).
  BitVector DigestFor(UserId user) const;

  VosSketch sketch_;
  VosEstimator estimator_;
  QueryOptions query_options_;
  /// ln|1−2·d/k| per Hamming distance d ∈ [0, k] (see SimilarityIndex).
  std::vector<double> log_alpha_table_;
  DigestMatrix cache_;
  std::unordered_map<UserId, size_t> cache_rows_;
  /// ln|1−2β| memoized at PrepareQuery; EstimatePair revalidates against
  /// the live β (one compare), so estimates always reflect the current
  /// fill while the unchanged-β hot loop pays no log.
  double cached_beta_ = -1.0;
  double cached_log_beta_term_ = 0.0;
  unsigned query_threads_ = 0;
};

/// Ablation baseline: the dedicated (non-virtual) odd sketch of [9], one
/// private k-bit array per user. Same estimator with β = 0. Under an equal
/// total memory budget each user gets far fewer bits than VOS's virtual k
/// (no sharing), which is the design point the paper's virtualization
/// argument rests on.
class DedicatedOddSketchMethod : public SimilarityMethod {
 public:
  /// `bits_per_user` — k of each private odd sketch.
  DedicatedOddSketchMethod(uint32_t bits_per_user, UserId num_users,
                           uint64_t seed, VosEstimatorOptions options = {});

  std::string Name() const override { return "OddSketch"; }

  void Update(const Element& e) override;

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  size_t MemoryBits() const override;

 private:
  uint32_t bits_per_user_;
  uint64_t psi_seed_;
  VosEstimator estimator_;
  std::vector<BitVector> sketches_;
  std::vector<uint32_t> cardinality_;
};

}  // namespace vos::core

// SimilarityMethod adapter for VOS: sketch + estimator + batch query cache.
//
// EstimatePair on raw VosSketch costs O(k) hash evaluations per user; with
// hundreds of tracked users and tens of thousands of tracked pairs per
// checkpoint that work is quadratic in pairs. PrepareQuery materializes each
// tracked user's reconstructed k-bit sketch once, so a pair estimate is a
// single word-wise Hamming distance.

#pragma once

#include <memory>
#include <unordered_map>

#include "common/bit_vector.h"
#include "core/similarity_method.h"
#include "core/vos_estimator.h"
#include "core/vos_sketch.h"

namespace vos::core {

/// VOS as a pluggable SimilarityMethod.
class VosMethod : public SimilarityMethod {
 public:
  VosMethod(const VosConfig& config, UserId num_users,
            VosEstimatorOptions options = {})
      : sketch_(config, num_users),
        estimator_(config.k, options) {}

  std::string Name() const override { return "VOS"; }

  void Update(const Element& e) override { sketch_.Update(e); }

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  size_t MemoryBits() const override { return sketch_.MemoryBits(); }

  void PrepareQuery(const std::vector<UserId>& users) override;
  void InvalidateQueryCache() override { digest_cache_.clear(); }

  const VosSketch& sketch() const { return sketch_; }
  const VosEstimator& estimator() const { return estimator_; }

 private:
  /// Returns the cached digest for `user`, or extracts one on the fly.
  BitVector DigestFor(UserId user) const;

  VosSketch sketch_;
  VosEstimator estimator_;
  std::unordered_map<UserId, BitVector> digest_cache_;
};

/// Ablation baseline: the dedicated (non-virtual) odd sketch of [9], one
/// private k-bit array per user. Same estimator with β = 0. Under an equal
/// total memory budget each user gets far fewer bits than VOS's virtual k
/// (no sharing), which is the design point the paper's virtualization
/// argument rests on.
class DedicatedOddSketchMethod : public SimilarityMethod {
 public:
  /// `bits_per_user` — k of each private odd sketch.
  DedicatedOddSketchMethod(uint32_t bits_per_user, UserId num_users,
                           uint64_t seed, VosEstimatorOptions options = {});

  std::string Name() const override { return "OddSketch"; }

  void Update(const Element& e) override;

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  size_t MemoryBits() const override;

 private:
  uint32_t bits_per_user_;
  uint64_t psi_seed_;
  VosEstimator estimator_;
  std::vector<BitVector> sketches_;
  std::vector<uint32_t> cardinality_;
};

}  // namespace vos::core

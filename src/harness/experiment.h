// The evaluation protocol of §V as a reusable harness.
//
// Protocol (mirroring the paper):
//   1. Build the *static* graph (all base insertions) and select the top-N
//      users by cardinality, then the tracked pairs — pairs among them with
//      at least one common item.
//   2. Replay the fully dynamic stream into every method under test and
//      into the exact store simultaneously.
//   3. At each checkpoint t, compute exact PairTruths and every method's
//      PairEstimates for the tracked pairs, and reduce to AAPE(t) and
//      ARMSE(t).
//
// A separate single-method timing entry point (MeasureUpdateRuntime) backs
// the Figure 2 benches: it replays the stream through one method with
// nothing else on the hot path and returns wall-clock seconds.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/similarity_method.h"
#include "exact/exact_store.h"
#include "exact/pair_selection.h"
#include "harness/method_factory.h"
#include "harness/metrics.h"
#include "stream/graph_stream.h"

namespace vos::harness {

/// Tunables of an accuracy experiment.
struct ExperimentConfig {
  /// Top users by static cardinality to form pairs from (paper: 5,000;
  /// scaled with the datasets here).
  size_t top_users = 300;
  /// Cap on tracked pairs (0 = no cap); subsampled deterministically.
  size_t max_pairs = 20000;
  /// Number of evaluation checkpoints, evenly spaced over the stream.
  size_t num_checkpoints = 10;
  /// Worker threads for per-checkpoint batch digest extraction
  /// (SimilarityMethod::SetQueryThreads; 0 = hardware concurrency).
  /// Metrics are bit-identical for every value.
  unsigned query_threads = 0;
  /// Method sizing (base_k, λ, seeds, clamping), ingest knobs
  /// (vos_shards, ingest_threads, ingest_producers — the accuracy replay
  /// itself stays single-producer so checkpoint cuts are exact —
  /// ingest_batch, the latter of which also sets
  /// the replay batch size for both experiment entry points; metrics are
  /// identical for every value, since the default UpdateBatch is the
  /// element loop and batched methods quiesce via FlushIngest before
  /// each checkpoint), and query-tier knobs (query_shards_local /
  /// planner_threads: "VOS-sharded" checkpoints refresh shard-local
  /// incremental indexes instead of re-extracting every tracked user;
  /// estimates — and therefore all metrics — are bit-identical either
  /// way).
  MethodFactoryConfig factory;
};

/// One method's metrics at one checkpoint.
struct MethodCheckpoint {
  std::string method;
  PairMetrics metrics;
};

/// One evaluation checkpoint.
struct Checkpoint {
  /// Stream time t (number of elements processed, 1-based like the paper).
  size_t t = 0;
  /// Live edges in the exact store at t (diagnostic).
  size_t live_edges = 0;
  std::vector<MethodCheckpoint> methods;
};

/// Full result of an accuracy experiment.
struct ExperimentResult {
  std::string stream_name;
  size_t stream_elements = 0;
  size_t tracked_pairs = 0;
  size_t tracked_users = 0;
  std::vector<Checkpoint> checkpoints;

  /// The final checkpoint (stream fully consumed), as used by Figures
  /// 3(b)/(d).
  const Checkpoint& Final() const { return checkpoints.back(); }
};

/// Runs the §V protocol for `method_names` on `stream`.
///
/// Checkpoints are evenly spaced; the last one always falls on the final
/// element. Returns InvalidArgument for unknown method names or an empty
/// stream.
StatusOr<ExperimentResult> RunAccuracyExperiment(
    const stream::GraphStream& stream,
    const std::vector<std::string>& method_names,
    const ExperimentConfig& config);

/// Replays `stream` through one freshly created method and returns seconds
/// of wall-clock update time (no queries on the path). Ingestion runs in
/// factory.ingest_batch-sized UpdateBatch calls with a FlushIngest inside
/// the timed region, so "VOS-sharded" is measured end-to-end — routing,
/// queues and shard workers included — under the factory's
/// vos_shards/ingest_threads/ingest_producers knobs. When the method
/// advertises ConcurrentIngestProducers() > 1, the stream is
/// pre-partitioned by user across that many lanes (outside the timed
/// region — deployed producers receive their own streams) and replayed by
/// one thread per lane, each flushing its own lane inside the timer.
/// Backs Figure 2 in serial, sharded and multi-producer configurations.
StatusOr<double> MeasureUpdateRuntime(const stream::GraphStream& stream,
                                      const std::string& method_name,
                                      const MethodFactoryConfig& factory);

/// Selects tracked users and pairs per the §V protocol from the *static*
/// graph (insertions only — deletions ignored). Exposed for tests and
/// examples.
struct TrackedSet {
  std::vector<stream::UserId> users;
  std::vector<exact::UserPair> pairs;
};
TrackedSet SelectTrackedSet(const stream::GraphStream& stream,
                            size_t top_users, size_t max_pairs,
                            uint64_t seed);

}  // namespace vos::harness

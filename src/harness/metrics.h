// The paper's two accuracy metrics (§V):
//
//   AAPE(t)  = 1/|P| · Σ_{(u,v)∈P} | (s_uv − ŝ_uv) / s_uv |
//              (average absolute percentage error of the common-item count)
//   ARMSE(t) = sqrt( 1/|P| · Σ_{(u,v)∈P} (Ĵ_uv − J_uv)² )
//              (average root-mean-square error of the Jaccard estimate)
//
// Pairs whose ground truth makes a metric undefined at a checkpoint are
// skipped and counted: AAPE skips s_uv = 0 (division by zero — possible
// after massive deletions wipe a pair's common items), ARMSE skips pairs
// whose union is empty. Skip counts are reported so a method can never
// look good by virtue of undefined pairs.

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/similarity_method.h"
#include "exact/ground_truth.h"

namespace vos::harness {

/// Accumulates AAPE over pairs; call Add per pair, then value().
class AapeAccumulator {
 public:
  /// Adds one pair with exact count `s` and estimate `s_hat`. Pairs with
  /// s == 0 are skipped (see header).
  void Add(double s, double s_hat) {
    if (s <= 0.0) {
      ++skipped_;
      return;
    }
    sum_ += std::abs((s - s_hat) / s);
    ++count_;
  }

  /// AAPE over the added pairs; 0 if none were countable.
  double value() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  size_t count() const { return count_; }
  size_t skipped() const { return skipped_; }

 private:
  double sum_ = 0.0;
  size_t count_ = 0;
  size_t skipped_ = 0;
};

/// Accumulates ARMSE over pairs.
class ArmseAccumulator {
 public:
  /// Adds one pair with exact Jaccard `j` (pass `defined=false` for pairs
  /// with empty union) and estimate `j_hat`.
  void Add(double j, double j_hat, bool defined = true) {
    if (!defined) {
      ++skipped_;
      return;
    }
    const double diff = j_hat - j;
    sum_sq_ += diff * diff;
    ++count_;
  }

  /// sqrt(mean squared error); 0 if no pairs were countable.
  double value() const;

  size_t count() const { return count_; }
  size_t skipped() const { return skipped_; }

 private:
  double sum_sq_ = 0.0;
  size_t count_ = 0;
  size_t skipped_ = 0;
};

/// Both metrics of one method at one checkpoint.
struct PairMetrics {
  double aape = 0.0;
  double armse = 0.0;
  size_t pairs_counted_aape = 0;
  size_t pairs_skipped_aape = 0;
  size_t pairs_counted_armse = 0;
};

/// Convenience: evaluates both metrics across aligned truth/estimate
/// vectors (as produced by exact::ComputePairTruths and a method's
/// EstimatePair loop).
PairMetrics EvaluatePairs(const std::vector<exact::PairTruth>& truths,
                          const std::vector<core::PairEstimate>& estimates);

}  // namespace vos::harness

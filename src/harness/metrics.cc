#include "harness/metrics.h"

#include <cmath>

#include "common/logging.h"

namespace vos::harness {

double ArmseAccumulator::value() const {
  return count_ == 0 ? 0.0 : std::sqrt(sum_sq_ / count_);
}

PairMetrics EvaluatePairs(const std::vector<exact::PairTruth>& truths,
                          const std::vector<core::PairEstimate>& estimates) {
  VOS_CHECK(truths.size() == estimates.size())
      << "truth/estimate vectors misaligned:" << truths.size() << "vs"
      << estimates.size();
  AapeAccumulator aape;
  ArmseAccumulator armse;
  for (size_t i = 0; i < truths.size(); ++i) {
    aape.Add(truths[i].common, estimates[i].common);
    armse.Add(truths[i].Jaccard(), estimates[i].jaccard,
              /*defined=*/truths[i].Union() > 0);
  }
  PairMetrics metrics;
  metrics.aape = aape.value();
  metrics.armse = armse.value();
  metrics.pairs_counted_aape = aape.count();
  metrics.pairs_skipped_aape = aape.skipped();
  metrics.pairs_counted_armse = armse.count();
  return metrics;
}

}  // namespace vos::harness

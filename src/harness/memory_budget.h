// The equal-memory rule of §V and its translation to per-method parameters.
//
// The paper compares all methods "under the same memory size m = 32·k·|U|
// bits, where the memory size of each value of the k registers … is 32
// bits". Given the base register count k (k = 100 in Figure 3) and the user
// count |U|:
//
//   MinHash / OPH / RP : k registers of 32 bits per user
//   b-bit minwise      : ⌊32·k / b⌋ registers of b bits per user
//   dedicated OddSketch: 32·k private bits per user
//   VOS                : one shared array of m = 32·k·|U| bits, with each
//                        user's *virtual* sketch sized k_vos = λ·32·k bits
//                        (λ = 2 in §V — virtual bits are free, only the
//                        shared array consumes memory)
//
// MemoryBudget performs these translations in one place so every bench and
// test sizes methods identically.

#pragma once

#include <cstdint>

#include "common/logging.h"

namespace vos::harness {

/// Equal-memory parameter calculator.
class MemoryBudget {
 public:
  /// `base_k` — registers per user of the baseline methods; `num_users` —
  /// |U| of the stream (the shared-array sizing needs it).
  MemoryBudget(uint32_t base_k, uint64_t num_users)
      : base_k_(base_k), num_users_(num_users) {
    VOS_CHECK(base_k >= 1);
    VOS_CHECK(num_users >= 1);
  }

  /// Total budget in bits: m = 32·k·|U|.
  uint64_t TotalBits() const { return 32ULL * base_k_ * num_users_; }

  /// Per-user budget in bits: 32·k.
  uint64_t BitsPerUser() const { return 32ULL * base_k_; }

  /// Register count for MinHash / OPH / RP.
  uint32_t BaselineK() const { return base_k_; }

  /// Virtual odd-sketch size for VOS at multiplier λ: k_vos = λ·32·k.
  uint32_t VosVirtualK(double lambda) const {
    VOS_CHECK(lambda > 0.0);
    const double k = lambda * static_cast<double>(BitsPerUser());
    VOS_CHECK(k >= 1.0 && k <= 4e9) << "virtual k out of range:" << k;
    return static_cast<uint32_t>(k);
  }

  /// Shared-array size for VOS: the whole budget.
  uint64_t VosArrayBits() const { return TotalBits(); }

  /// Register count for b-bit minwise at digest width b.
  uint32_t BbitK(uint32_t b) const {
    VOS_CHECK(b >= 1 && b <= 32);
    const uint64_t k = BitsPerUser() / b;
    VOS_CHECK(k >= 1);
    return static_cast<uint32_t>(k);
  }

  /// Private bits per user for the dedicated odd-sketch ablation.
  uint32_t DedicatedOddSketchBits() const {
    return static_cast<uint32_t>(BitsPerUser());
  }

  uint64_t num_users() const { return num_users_; }

 private:
  uint32_t base_k_;
  uint64_t num_users_;
};

}  // namespace vos::harness

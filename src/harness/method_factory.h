// Construction of similarity methods by name under a shared memory budget.
//
// Bench binaries and tests name methods with strings ("VOS", "MinHash",
// "OPH", "RP", …); the factory translates a name plus a MemoryBudget into a
// correctly sized instance. Centralizing this guarantees that every
// experiment sizes methods by the same §V rule.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/similarity_method.h"
#include "harness/memory_budget.h"

namespace vos::harness {

/// Everything the factory needs besides the method name.
struct MethodFactoryConfig {
  /// Base register count k (per-user budget is 32·k bits).
  uint32_t base_k = 100;
  /// VOS virtual-size multiplier λ (§V uses 2).
  double lambda = 2.0;
  /// Digest width for "b-bit".
  uint32_t bbit_b = 2;
  /// Domain sizes of the target stream.
  uint64_t num_users = 0;
  uint64_t num_items = 0;
  /// Master seed (per-method seeds are derived from it and the name).
  uint64_t seed = 99;
  /// Apply feasible-range clamping to all estimates (DESIGN.md §5.3).
  bool clamp = true;
  /// Shard count for "VOS-sharded" (total memory budget is split across
  /// shards, so the comparison with "VOS" is equal-memory). Ignored by
  /// every other method.
  uint32_t vos_shards = 4;
  /// Ingest worker threads for "VOS-sharded": 0 = synchronous routing
  /// (deterministic, no worker threads), ≥1 spawns min(threads, shards)
  /// shard workers fed from bounded per-(producer, shard) queues.
  unsigned ingest_threads = 0;
  /// Producer lanes for "VOS-sharded"'s asynchronous pipeline: each lane
  /// routes its own batches and owns one bounded queue per shard, so
  /// ingest scales with concurrent producers (MeasureUpdateRuntime spawns
  /// one replay thread per lane). Ignored in synchronous mode and by
  /// every other method.
  unsigned ingest_producers = 1;
  /// Elements per auto-enqueued ingest batch for "VOS-sharded"'s
  /// per-element Update path.
  size_t ingest_batch = 4096;
  /// Pin "VOS-sharded" shard workers to NUMA nodes (worker w → node
  /// w mod nodes) and first-touch their shard state there. A performance
  /// hint only — estimates are bit-identical either way — so the harness
  /// default comes from numa::DefaultPinThreads() at the tool layer:
  /// off on single-node machines, on (or VOS_PIN) on multi-node ones.
  bool pin_threads = false;
  /// "VOS-sharded" query tier: maintain shard-local incremental
  /// SimilarityIndexes (core/query_planner.h) as the PrepareQuery cache.
  /// Checkpoints after the first refresh only changed rows instead of
  /// re-extracting every tracked user. Enables dirty tracking on the
  /// shards (a small per-update cost), so it is off by default to keep
  /// the Figure-2 update measurement at the paper's bare cost; estimates
  /// are bit-identical either way.
  bool query_shards_local = false;
  /// Planner task-level worker threads for query_shards_local (0 =
  /// hardware concurrency; SimilarityMethod::SetQueryThreads overrides).
  unsigned planner_threads = 0;
  /// Rows per tile edge of the pair-scan tier's all-pairs scans
  /// (core/pair_scan.h; 0 = the tier default). Lands in "VOS"'s
  /// MakeIndex QueryOptions and "VOS-sharded"'s planner mode; results
  /// are bit-identical for every value.
  size_t tile_rows = 0;
  /// Opt-in LSH banding for all-pairs scans (0 = exact enumeration, the
  /// default): band the leading banding_bands × banding_rows_per_band
  /// digest bits and enumerate only bucket-colliding pairs. Reported
  /// pairs carry exact estimates; recall is measured against the exact
  /// path (see src/core/README.md). Per-pair EstimatePair answers are
  /// never affected.
  uint32_t banding_bands = 0;
  uint32_t banding_rows_per_band = 8;
  /// Degenerate-bucket guard for banded scans: key runs longer than this
  /// are split into max_bucket-sized cohorts so sparse digest sets (one
  /// giant all-zero bucket) keep banded candidate generation
  /// subquadratic. 0 = uncapped.
  uint32_t banding_max_bucket = 1024;
  /// Recall floor for the query optimizer's feedback loop: a banded
  /// query whose measured recall undercuts this is re-planned exact on
  /// the next snapshot. 0 = feedback off.
  double banding_recall_floor = 0.0;
  /// Per-pass plan selection ("auto" | "exact" | "banded" — the --plan
  /// flag): auto prices exact vs banded per pass with calibrated kernel
  /// costs (core/query_optimizer.h); the forced modes pin every pass.
  /// The VOS_PLAN env var overrides this per query.
  std::string plan = "auto";
};

/// Recognized names: "VOS", "VOS-sharded", "MinHash", "OPH", "OPH+rot",
/// "OPH+rand", "OPH+opt", "RP", "OddSketch", "b-bit". Returns
/// InvalidArgument for anything else.
StatusOr<std::unique_ptr<core::SimilarityMethod>> CreateMethod(
    const std::string& name, const MethodFactoryConfig& config);

/// The paper's four methods in the paper's plotting order.
std::vector<std::string> PaperMethods();

/// All method names the factory accepts.
std::vector<std::string> AllMethods();

}  // namespace vos::harness

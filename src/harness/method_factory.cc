#include "harness/method_factory.h"

#include <algorithm>

#include "baselines/bbit_minwise.h"
#include "baselines/hll_union.h"
#include "baselines/minhash.h"
#include "baselines/oph.h"
#include "baselines/random_pairing.h"
#include "core/query_optimizer.h"
#include "core/sharded_vos_method.h"
#include "core/vos_method.h"
#include "hashing/hash64.h"
#include "hashing/seeds.h"

namespace vos::harness {
namespace {

uint64_t SeedFor(const MethodFactoryConfig& config, const std::string& name) {
  return hash::DeriveSeed(config.seed, hash::HashString(name));
}

std::unique_ptr<core::SimilarityMethod> MakeOph(
    const MethodFactoryConfig& config, baseline::Densification densification,
    const std::string& name) {
  baseline::OphConfig oph;
  oph.k = config.base_k;
  oph.densification = densification;
  oph.seed = SeedFor(config, name);
  oph.options.clamp_to_feasible = config.clamp;
  return std::make_unique<baseline::Oph>(
      oph, static_cast<stream::UserId>(config.num_users), config.num_items);
}

}  // namespace

StatusOr<std::unique_ptr<core::SimilarityMethod>> CreateMethod(
    const std::string& name, const MethodFactoryConfig& config) {
  if (config.num_users == 0 || config.num_items == 0) {
    return Status::InvalidArgument(
        "MethodFactoryConfig.num_users/num_items must be set");
  }
  core::optimizer::PlanMode plan_mode = core::optimizer::PlanMode::kAuto;
  if (!core::optimizer::ParsePlanMode(config.plan.c_str(), &plan_mode)) {
    return Status::InvalidArgument("unknown plan '" + config.plan +
                                   "' (want auto | exact | banded)");
  }
  const MemoryBudget budget(config.base_k, config.num_users);
  const auto num_users = static_cast<stream::UserId>(config.num_users);

  if (name == "VOS") {
    core::VosConfig vos;
    vos.k = budget.VosVirtualK(config.lambda);
    vos.m = budget.VosArrayBits();
    vos.seed = SeedFor(config, name);
    // Harness methods are never consumed incrementally; keep the paper's
    // bare O(1) update on the Figure-2 measurement path.
    vos.track_dirty = false;
    core::VosEstimatorOptions options;
    options.clamp_to_feasible = config.clamp;
    core::QueryOptions query_options;
    query_options.tile_rows = config.tile_rows;
    query_options.banding_bands = config.banding_bands;
    query_options.banding_rows_per_band = config.banding_rows_per_band;
    query_options.banding_max_bucket = config.banding_max_bucket;
    query_options.banding_recall_floor = config.banding_recall_floor;
    query_options.plan = plan_mode;
    return std::unique_ptr<core::SimilarityMethod>(
        std::make_unique<core::VosMethod>(vos, num_users, options,
                                          query_options));
  }
  if (name == "VOS-sharded") {
    core::ShardedVosConfig sharded;
    sharded.base.k = budget.VosVirtualK(config.lambda);
    sharded.base.m = budget.VosArrayBits();  // total across shards
    // Same seed as "VOS" so a 1-shard sharded method is the identical
    // sketch (ShardedVosSketch::ShardConfig keeps the base config then).
    sharded.base.seed = SeedFor(config, "VOS");
    sharded.base.track_dirty = false;  // as for "VOS": bare update path
    sharded.num_shards = std::max<uint32_t>(1, config.vos_shards);
    sharded.ingest_threads = config.ingest_threads;
    sharded.ingest_producers = std::max<unsigned>(1, config.ingest_producers);
    sharded.batch_size = std::max<size_t>(1, config.ingest_batch);
    sharded.pin_numa_workers = config.pin_threads;
    core::VosEstimatorOptions options;
    options.clamp_to_feasible = config.clamp;
    core::ShardedQueryConfig query;
    query.shards_local = config.query_shards_local;
    query.planner_threads = config.planner_threads;
    query.tile_rows = config.tile_rows;
    query.banding_bands = config.banding_bands;
    query.banding_rows_per_band = config.banding_rows_per_band;
    query.banding_max_bucket = config.banding_max_bucket;
    query.banding_recall_floor = config.banding_recall_floor;
    query.plan = plan_mode;
    return std::unique_ptr<core::SimilarityMethod>(
        std::make_unique<core::ShardedVosMethod>(sharded, num_users, options,
                                                 query));
  }
  if (name == "MinHash") {
    baseline::MinHashConfig mh;
    mh.k = budget.BaselineK();
    mh.seed = SeedFor(config, name);
    mh.options.clamp_to_feasible = config.clamp;
    return std::unique_ptr<core::SimilarityMethod>(
        std::make_unique<baseline::MinHash>(mh, num_users, config.num_items));
  }
  if (name == "OPH") {
    return std::unique_ptr<core::SimilarityMethod>(
        MakeOph(config, baseline::Densification::kNone, name));
  }
  if (name == "OPH+rot") {
    return std::unique_ptr<core::SimilarityMethod>(
        MakeOph(config, baseline::Densification::kRotationRight, name));
  }
  if (name == "OPH+rand") {
    return std::unique_ptr<core::SimilarityMethod>(
        MakeOph(config, baseline::Densification::kRandomDirection, name));
  }
  if (name == "OPH+opt") {
    return std::unique_ptr<core::SimilarityMethod>(
        MakeOph(config, baseline::Densification::kOptimal, name));
  }
  if (name == "RP") {
    baseline::RandomPairingConfig rp;
    rp.k = budget.BaselineK();
    rp.seed = SeedFor(config, name);
    rp.options.clamp_to_feasible = config.clamp;
    return std::unique_ptr<core::SimilarityMethod>(
        std::make_unique<baseline::RandomPairing>(rp, num_users));
  }
  if (name == "OddSketch") {
    core::VosEstimatorOptions options;
    options.clamp_to_feasible = config.clamp;
    return std::unique_ptr<core::SimilarityMethod>(
        std::make_unique<core::DedicatedOddSketchMethod>(
            budget.DedicatedOddSketchBits(), num_users, SeedFor(config, name),
            options));
  }
  if (name == "HLL-union") {
    baseline::HllUnionConfig hll;
    // Equal memory at 8 bits/register: 32·k/8 = 4·k registers, rounded
    // down to a power of two (HLL requires it).
    uint32_t registers = 16;
    while (registers * 2 <= 4 * budget.BaselineK()) registers *= 2;
    hll.registers = registers;
    hll.seed = SeedFor(config, name);
    hll.options.clamp_to_feasible = config.clamp;
    return std::unique_ptr<core::SimilarityMethod>(
        std::make_unique<baseline::HllUnion>(hll, num_users));
  }
  if (name == "b-bit") {
    baseline::BbitMinwiseConfig bb;
    bb.k = budget.BbitK(config.bbit_b);
    bb.b = config.bbit_b;
    bb.seed = SeedFor(config, name);
    bb.options.clamp_to_feasible = config.clamp;
    return std::unique_ptr<core::SimilarityMethod>(
        std::make_unique<baseline::BbitMinwise>(bb, num_users,
                                                config.num_items));
  }
  return Status::InvalidArgument("unknown method '" + name + "'");
}

std::vector<std::string> PaperMethods() {
  return {"MinHash", "OPH", "RP", "VOS"};
}

std::vector<std::string> AllMethods() {
  return {"MinHash", "OPH",   "OPH+rot",   "OPH+rand", "OPH+opt",    "RP",
          "OddSketch", "b-bit", "HLL-union", "VOS",      "VOS-sharded"};
}

}  // namespace vos::harness

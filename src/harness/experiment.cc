#include "harness/experiment.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "common/numa.h"
#include "common/timer.h"
#include "exact/ground_truth.h"
#include "hashing/hash64.h"
#include "stream/replayer.h"

namespace vos::harness {

TrackedSet SelectTrackedSet(const stream::GraphStream& stream,
                            size_t top_users, size_t max_pairs,
                            uint64_t seed) {
  // Static view: the set of edges *ever inserted*, as the paper selects
  // users/pairs on the graph dataset itself, before the deletion process.
  // An edge deleted and later re-inserted (feasible per §II) counts once.
  exact::ExactStore static_store(stream.num_users());
  std::unordered_set<uint64_t> seen;
  for (const stream::Element& e : stream.elements()) {
    if (e.action != stream::Action::kInsert) continue;
    if (seen.insert(stream::EdgeKey(e.user, e.item)).second) {
      static_store.Update(e);
    }
  }
  TrackedSet tracked;
  tracked.users = exact::TopCardinalityUsers(static_store, top_users);
  tracked.pairs = exact::PairsWithCommonItems(static_store, tracked.users,
                                              max_pairs, seed);
  return tracked;
}

StatusOr<ExperimentResult> RunAccuracyExperiment(
    const stream::GraphStream& stream,
    const std::vector<std::string>& method_names,
    const ExperimentConfig& config) {
  if (stream.empty()) {
    return Status::InvalidArgument("empty stream");
  }
  MethodFactoryConfig factory = config.factory;
  factory.num_users = stream.num_users();
  factory.num_items = stream.num_items();

  // Instantiate all methods up front (fails fast on unknown names).
  std::vector<std::unique_ptr<core::SimilarityMethod>> methods;
  for (const std::string& name : method_names) {
    VOS_ASSIGN_OR_RETURN(auto method, CreateMethod(name, factory));
    method->SetQueryThreads(config.query_threads);
    methods.push_back(std::move(method));
  }

  const TrackedSet tracked = SelectTrackedSet(
      stream, config.top_users, config.max_pairs, factory.seed);
  if (tracked.pairs.empty()) {
    return Status::FailedPrecondition(
        "no tracked pairs: stream too sparse for top_users=" +
        std::to_string(config.top_users));
  }

  ExperimentResult result;
  result.stream_name = stream.name();
  result.stream_elements = stream.size();
  result.tracked_users = tracked.users.size();
  result.tracked_pairs = tracked.pairs.size();

  exact::ExactStore store(stream.num_users());
  stream::StreamReplayer::ReplayBatched(
      stream, config.num_checkpoints,
      std::max<size_t>(1, factory.ingest_batch),
      [&](const stream::Element* batch, size_t count) {
        for (size_t i = 0; i < count; ++i) store.Update(batch[i]);
        for (auto& method : methods) method->UpdateBatch(batch, count);
      },
      [&](size_t t) {
        Checkpoint cp;
        cp.t = t;
        cp.live_edges = store.TotalEdges();
        const std::vector<exact::PairTruth> truths =
            exact::ComputePairTruths(store, tracked.pairs);
        for (auto& method : methods) {
          // Quiesce async pipelines at checkpoints; a degraded pipeline
          // (poisoned shard, starved lane) invalidates the whole
          // accuracy run, so fail loudly instead of scoring bad state.
          const Status flushed = method->FlushIngest();
          VOS_CHECK(flushed.ok())
              << method->Name() << "ingest degraded:" << flushed.ToString();
          method->PrepareQuery(tracked.users);
          std::vector<core::PairEstimate> estimates;
          estimates.reserve(tracked.pairs.size());
          for (const exact::UserPair& pair : tracked.pairs) {
            estimates.push_back(method->EstimatePair(pair.u, pair.v));
          }
          method->InvalidateQueryCache();
          MethodCheckpoint mc;
          mc.method = method->Name();
          mc.metrics = EvaluatePairs(truths, estimates);
          cp.methods.push_back(std::move(mc));
        }
        result.checkpoints.push_back(std::move(cp));
      });
  return result;
}

StatusOr<double> MeasureUpdateRuntime(const stream::GraphStream& stream,
                                      const std::string& method_name,
                                      const MethodFactoryConfig& factory_in) {
  MethodFactoryConfig factory = factory_in;
  factory.num_users = stream.num_users();
  factory.num_items = stream.num_items();
  VOS_ASSIGN_OR_RETURN(auto method, CreateMethod(method_name, factory));

  // Batched replay, flushed inside the timed region, so methods with an
  // asynchronous ingest pipeline are charged for their whole pipeline —
  // not just the enqueue cost.
  const stream::Element* elements = stream.elements().data();
  const size_t total = stream.size();
  const size_t batch = std::max<size_t>(1, factory.ingest_batch);
  const unsigned producers = method->ConcurrentIngestProducers();
  if (producers <= 1) {
    WallTimer timer;
    for (size_t t = 0; t < total; t += batch) {
      method->UpdateBatch(elements + t, std::min(batch, total - t));
    }
    const Status flushed = method->FlushIngest();
    VOS_CHECK(flushed.ok())
        << method->Name() << "ingest degraded:" << flushed.ToString();
    return timer.ElapsedSeconds();
  }

  // Multi-producer replay: partition the stream by user across P lanes
  // (hash-scattered, like the shard routing), so each lane's sub-stream
  // stays feasible — a user's deletes never overtake their inserts when
  // their whole history rides one lane. Partitioning happens OUTSIDE the
  // timed region: in a deployment each producer receives its own stream;
  // the measured cost is the pipeline (routing, queues, shard workers),
  // not this harness-side split.
  std::vector<std::vector<stream::Element>> lanes(producers);
  for (auto& lane : lanes) lane.reserve(total / producers + 1);
  for (size_t t = 0; t < total; ++t) {
    lanes[hash::ReduceToRange(hash::Mix64(elements[t].user), producers)]
        .push_back(elements[t]);
  }
  WallTimer timer;
  // Per-lane flush statuses, checked after join: a lane's
  // DeadlineExceeded is not sticky, so dropping it here could let the
  // final global FlushIngest report OK over a silently degraded lane.
  std::vector<Status> lane_status(producers);
  {
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        // Mirror the worker-side pinning: producer p lands on the node
        // whose workers own most of its traffic's shards only by luck,
        // but round-robin keeps the lanes spread instead of letting the
        // scheduler stack them on one node. Best-effort, like the
        // workers' own pinning.
        if (factory.pin_threads) numa::PinCurrentThreadToNode(p);
        const std::vector<stream::Element>& lane = lanes[p];
        for (size_t t = 0; t < lane.size(); t += batch) {
          method->UpdateBatch(lane.data() + t,
                              std::min(batch, lane.size() - t), p);
        }
        lane_status[p] = method->FlushIngest(p);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (unsigned p = 0; p < producers; ++p) {
    VOS_CHECK(lane_status[p].ok()) << method->Name() << "producer" << p
                                   << "flush degraded:"
                                   << lane_status[p].ToString();
  }
  const Status flushed = method->FlushIngest();
  VOS_CHECK(flushed.ok())
      << method->Name() << "ingest degraded:" << flushed.ToString();
  return timer.ElapsedSeconds();
}

}  // namespace vos::harness

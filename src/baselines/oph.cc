#include "baselines/oph.h"

#include "common/logging.h"
#include "hashing/seeds.h"
#include "hashing/two_universal.h"

namespace vos::baseline {

std::string DensificationName(Densification d) {
  switch (d) {
    case Densification::kNone:
      return "none";
    case Densification::kRotationRight:
      return "rotation-right";
    case Densification::kRandomDirection:
      return "random-direction";
    case Densification::kOptimal:
      return "optimal";
  }
  return "unknown";
}

Oph::Oph(const OphConfig& config, UserId num_users, uint64_t num_items)
    : config_(config),
      num_users_(num_users),
      rank_function_(config.hash_mode, hash::DeriveSeed(config.seed, 0),
                     num_items),
      bins_(static_cast<size_t>(num_users) * config.k),
      cardinality_(num_users, 0),
      densify_seed_(hash::DeriveSeed(config.seed, 0xdeb5)) {
  VOS_CHECK(config.k >= 1) << "OPH needs at least one bin";
}

std::string Oph::Name() const {
  if (config_.densification == Densification::kNone) return "OPH";
  return "OPH+" + DensificationName(config_.densification);
}

uint32_t Oph::BinOf(stream::ItemId item) const {
  const uint64_t rank = rank_function_.Rank(item);
  // floor(rank·k / p): equal-width bins over the rank domain [0, p).
  return static_cast<uint32_t>(
      (static_cast<__uint128_t>(rank) * config_.k) /
      rank_function_.RankDomain());
}

void Oph::Update(const Element& e) {
  const uint32_t j = BinOf(e.item);
  MinRegister& bin = bins_[static_cast<size_t>(e.user) * config_.k + j];
  if (e.action == Action::kInsert) {
    ++cardinality_[e.user];
    const uint32_t rank = rank_function_.Rank(e.item);
    if (rank < bin.rank) {
      bin.rank = rank;
      bin.item = e.item;
    }
  } else {
    VOS_DCHECK(cardinality_[e.user] > 0) << "deletion below zero" << e;
    --cardinality_[e.user];
    // §III: deleting the bin's sampled minimum empties the bin (bias).
    if (bin.occupied() && bin.item == e.item) bin.Clear();
  }
}

std::vector<MinRegister> Oph::DensifiedRow(UserId u) const {
  const MinRegister* row = &bins_[static_cast<size_t>(u) * config_.k];
  std::vector<MinRegister> out(row, row + config_.k);
  if (config_.densification == Densification::kNone) return out;

  const uint32_t k = config_.k;
  auto fill_from = [&out](uint32_t empty_bin, uint32_t source_bin) {
    out[empty_bin] = out[source_bin];
  };

  switch (config_.densification) {
    case Densification::kNone:
      break;
    case Densification::kRotationRight: {
      for (uint32_t j = 0; j < k; ++j) {
        if (out[j].occupied()) continue;
        for (uint32_t step = 1; step < k; ++step) {
          const uint32_t src = (j + step) % k;
          // Copy from the original (pre-densification) registers only.
          if (row[src].occupied()) {
            fill_from(j, src);
            break;
          }
        }
      }
      break;
    }
    case Densification::kRandomDirection: {
      for (uint32_t j = 0; j < k; ++j) {
        if (out[j].occupied()) continue;
        // Direction decided by a per-bin coin shared across users, so two
        // users densify identically (required for the match estimator).
        const bool go_right = (hash::Hash64(j, densify_seed_) & 1) != 0;
        for (uint32_t step = 1; step < k; ++step) {
          const uint32_t src =
              go_right ? (j + step) % k : (j + k - step) % k;
          if (row[src].occupied()) {
            fill_from(j, src);
            break;
          }
        }
      }
      break;
    }
    case Densification::kOptimal: {
      for (uint32_t j = 0; j < k; ++j) {
        if (out[j].occupied()) continue;
        // Walk a per-(bin, attempt) universal hash sequence; identical
        // across users. Bounded walk: k·8 attempts cannot fail unless the
        // whole row is empty.
        const uint64_t walk_seed = hash::DeriveSeed(densify_seed_, j);
        for (uint32_t attempt = 0; attempt < 8 * k; ++attempt) {
          const uint32_t src = static_cast<uint32_t>(
              hash::ReduceToRange(hash::Hash64(attempt, walk_seed), k));
          if (row[src].occupied()) {
            fill_from(j, src);
            break;
          }
        }
      }
      break;
    }
  }
  return out;
}

PairEstimate Oph::EstimatePair(UserId u, UserId v) const {
  double jaccard = 0.0;
  if (config_.densification == Densification::kNone) {
    const MinRegister* row_u = &bins_[static_cast<size_t>(u) * config_.k];
    const MinRegister* row_v = &bins_[static_cast<size_t>(v) * config_.k];
    uint32_t matches = 0;
    uint32_t non_empty = 0;
    for (uint32_t j = 0; j < config_.k; ++j) {
      const bool occ_u = row_u[j].occupied();
      const bool occ_v = row_v[j].occupied();
      if (occ_u || occ_v) ++non_empty;
      if (occ_u && occ_v && row_u[j].item == row_v[j].item) ++matches;
    }
    jaccard = non_empty == 0
                  ? 0.0
                  : static_cast<double>(matches) / non_empty;
  } else {
    const std::vector<MinRegister> row_u = DensifiedRow(u);
    const std::vector<MinRegister> row_v = DensifiedRow(v);
    uint32_t matches = 0;
    for (uint32_t j = 0; j < config_.k; ++j) {
      if (row_u[j].occupied() && row_v[j].occupied() &&
          row_u[j].item == row_v[j].item) {
        ++matches;
      }
    }
    jaccard = static_cast<double>(matches) / config_.k;
  }
  return FromJaccard(jaccard, cardinality_[u], cardinality_[v],
                     config_.options);
}

}  // namespace vos::baseline

// Register storage shared by the min-wise baselines (MinHash, OPH, b-bit).
//
// A register remembers the current minimum-rank item of a sample slot:
// {rank, item}, with rank == kEmptyRank marking an empty slot. Ranks come
// from one of two sources (HashMode):
//
//   * kMixer — rank = Hash64(item, seed) truncated to 31 bits. Fast; tiny
//     collision probability (≈|S|²/2³¹ per pair of items).
//   * kFeistel — rank = π(item) for an exact random permutation π of the
//     item domain, matching the formal definition of MinHash/OPH in §III.
//
// Matching compares *items*, not ranks, so a rank collision can only affect
// which item wins a minimum, never create a spurious match (except for the
// b-bit digest, whose collisions are part of its estimator).

#pragma once

#include <cstdint>
#include <memory>

#include "hashing/feistel_permutation.h"
#include "hashing/hash64.h"
#include "stream/element.h"

namespace vos::baseline {

using stream::ItemId;

/// How min-wise ranks are computed. kMixer is the default everywhere; the
/// correctness-focused tests also run kFeistel (exact permutations).
enum class HashMode : uint8_t {
  kMixer = 0,
  kFeistel = 1,
};

/// Sentinel rank for an empty register.
inline constexpr uint32_t kEmptyRank = 0xffffffffu;

/// One sample slot: the minimum-rank item seen (and still live) so far.
struct MinRegister {
  uint32_t rank = kEmptyRank;
  ItemId item = 0;

  bool occupied() const { return rank != kEmptyRank; }
  void Clear() {
    rank = kEmptyRank;
    item = 0;
  }
};

/// Rank source abstraction over the two modes. Ranks are < 2^31, so they
/// can never equal kEmptyRank.
class RankFunction {
 public:
  /// `domain_size` — |I|; used only by kFeistel (exact permutation of the
  /// item domain).
  RankFunction(HashMode mode, uint64_t seed, uint64_t domain_size)
      : mode_(mode),
        seed_(seed),
        permutation_(mode == HashMode::kFeistel
                         ? std::make_unique<hash::FeistelPermutation>(
                               seed, domain_size)
                         : nullptr),
        domain_size_(domain_size) {}

  uint32_t Rank(ItemId item) const {
    if (mode_ == HashMode::kMixer) {
      return static_cast<uint32_t>(hash::Hash64(item, seed_) >> 33);
    }
    return static_cast<uint32_t>(permutation_->Apply(item));
  }

  /// Size of the rank domain p: 2^31 for kMixer, |I| for kFeistel. OPH
  /// derives its bin boundaries from this.
  uint64_t RankDomain() const {
    return mode_ == HashMode::kMixer ? (uint64_t{1} << 31) : domain_size_;
  }

  HashMode mode() const { return mode_; }

 private:
  HashMode mode_;
  uint64_t seed_;
  std::unique_ptr<hash::FeistelPermutation> permutation_;
  uint64_t domain_size_;
};

}  // namespace vos::baseline

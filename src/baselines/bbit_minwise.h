// b-bit minwise hashing (Li & König — WWW'10), as a memory-reduction
// extension of MinHash (related work in §I of the paper).
//
// Instead of a full 32-bit register per hash function, only the lowest b
// bits of each min-rank are compared. Two registers then match either
// because the underlying sampled items agree (probability J) or by a b-bit
// collision (probability ≈ 1/2^b for non-matching items), so
//
//   E[M] ≈ C + (1 − C)·J   with C = 2^{−b}
//   Ĵ = (M − C) / (1 − C)
//
// Dynamic-stream handling is inherited from MinHash (register emptied when
// its sampled item is deleted), including the deletion bias. Registers
// where either side is empty contribute neither matches nor trials.
//
// Memory model: k·b bits per user — under the paper's fixed budget a b-bit
// method affords 32/b× more registers, which is the trade-off the ablation
// bench explores.

#pragma once

#include <string>

#include "baselines/minhash.h"

namespace vos::baseline {

/// Configuration of b-bit minwise hashing.
struct BbitMinwiseConfig {
  /// Registers per user.
  uint32_t k = 100;
  /// Bits compared per register (1 ≤ b ≤ 32).
  uint32_t b = 2;
  HashMode hash_mode = HashMode::kMixer;
  uint64_t seed = 17;
  BaselineOptions options;
};

/// b-bit minwise similarity estimator.
class BbitMinwise : public core::SimilarityMethod {
 public:
  BbitMinwise(const BbitMinwiseConfig& config, UserId num_users,
              uint64_t num_items);

  std::string Name() const override {
    return "b-bit(b=" + std::to_string(config_.b) + ")";
  }

  void Update(const Element& e) override { inner_.Update(e); }

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  /// Modeled memory: k digests of b bits per user.
  size_t MemoryBits() const override {
    return static_cast<size_t>(config_.k) * config_.b * num_users_;
  }

  uint32_t Cardinality(UserId u) const { return inner_.Cardinality(u); }

 private:
  BbitMinwiseConfig config_;
  UserId num_users_;
  /// Maintains full registers; the b-bit digest is taken at query time.
  /// (A production deployment would store only digests and rebuild them
  /// from the stream; keeping the full registers here does not change any
  /// estimate because the digest is a pure function of the register.)
  MinHash inner_;
};

}  // namespace vos::baseline

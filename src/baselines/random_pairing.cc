#include "baselines/random_pairing.h"

#include "common/logging.h"

namespace vos::baseline {

RandomPairing::RandomPairing(const RandomPairingConfig& config,
                             UserId num_users)
    : config_(config),
      num_users_(num_users),
      slots_(static_cast<size_t>(num_users) * config.k),
      cardinality_(num_users, 0),
      rng_(config.seed) {
  VOS_CHECK(config.k >= 1) << "RP needs at least one slot";
}

void RandomPairing::Update(const Element& e) {
  Slot* row = &slots_[static_cast<size_t>(e.user) * config_.k];
  if (e.action == Action::kInsert) {
    const uint32_t n_after = ++cardinality_[e.user];
    for (uint32_t j = 0; j < config_.k; ++j) {
      Slot& slot = row[j];
      const uint32_t d = slot.c1 + slot.c2;
      if (d > 0) {
        // Compensation phase: the insertion "pairs" with one uncompensated
        // deletion; it enters the sample iff that deletion had been of the
        // sampled item (probability c1/(c1+c2)).
        if (rng_.NextBounded(d) < slot.c1) {
          slot.item = e.item;
          slot.occupied = true;
          --slot.c1;
        } else {
          --slot.c2;
        }
      } else if (!slot.occupied) {
        slot.item = e.item;
        slot.occupied = true;
      } else {
        // Size-1 reservoir step over the n_after live items.
        if (rng_.NextBounded(n_after) == 0) slot.item = e.item;
      }
    }
  } else {
    VOS_DCHECK(cardinality_[e.user] > 0) << "deletion below zero" << e;
    --cardinality_[e.user];
    for (uint32_t j = 0; j < config_.k; ++j) {
      Slot& slot = row[j];
      if (slot.occupied && slot.item == e.item) {
        slot.occupied = false;
        ++slot.c1;
      } else {
        ++slot.c2;
      }
    }
  }
}

PairEstimate RandomPairing::EstimatePair(UserId u, UserId v) const {
  const Slot* row_u = &slots_[static_cast<size_t>(u) * config_.k];
  const Slot* row_v = &slots_[static_cast<size_t>(v) * config_.k];
  uint32_t matches = 0;
  for (uint32_t j = 0; j < config_.k; ++j) {
    if (row_u[j].occupied && row_v[j].occupied &&
        row_u[j].item == row_v[j].item) {
      ++matches;
    }
  }
  const double n_u = cardinality_[u];
  const double n_v = cardinality_[v];
  // ŝ = n_u·n_v/k · #matches (unbiased; see header).
  const double common = n_u * n_v * static_cast<double>(matches) / config_.k;
  return FromCommon(common, n_u, n_v, config_.options);
}

}  // namespace vos::baseline

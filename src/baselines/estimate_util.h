// Shared estimator plumbing for the sampling baselines (§II–III).
//
// MinHash/OPH/b-bit estimate the Jaccard coefficient J first and convert to
// the number of common items via the identity of §II:
//   s_uv = J·(n_u + n_v) / (J + 1).
// RP estimates s_uv directly and converts the other way:
//   J = s / (n_u + n_v − s).
// Both conversions live here, with the same feasible-range clamping the VOS
// estimator applies (DESIGN.md §5.3), so no method gets an unfair numeric
// advantage.

#pragma once

#include <algorithm>

#include "core/similarity_method.h"

namespace vos::baseline {

using core::PairEstimate;

/// Options shared by all baseline estimators.
struct BaselineOptions {
  /// Clamp ŝ to [0, min(n_u, n_v)] and Ĵ to [0, 1].
  bool clamp_to_feasible = true;
};

/// s = J·(n_u+n_v)/(J+1), optionally clamped.
inline PairEstimate FromJaccard(double jaccard, double n_u, double n_v,
                                const BaselineOptions& options) {
  PairEstimate est;
  est.jaccard = jaccard;
  est.common = jaccard * (n_u + n_v) / (jaccard + 1.0);
  if (options.clamp_to_feasible) {
    est.jaccard = std::clamp(est.jaccard, 0.0, 1.0);
    est.common = std::clamp(est.common, 0.0, std::min(n_u, n_v));
  }
  return est;
}

/// J = s/(n_u+n_v−s), optionally clamped.
inline PairEstimate FromCommon(double common, double n_u, double n_v,
                               const BaselineOptions& options) {
  PairEstimate est;
  est.common = common;
  const double denom = n_u + n_v - common;
  est.jaccard = denom <= 0.0 ? (common > 0.0 ? 1.0 : 0.0) : common / denom;
  if (options.clamp_to_feasible) {
    est.common = std::clamp(est.common, 0.0, std::min(n_u, n_v));
    est.jaccard = std::clamp(est.jaccard, 0.0, 1.0);
  }
  return est;
}

}  // namespace vos::baseline

// MinHash (Broder et al.) extended to fully dynamic streams per §III.
//
// k independent rank functions h_1..h_k; register j of user u holds
// φ_j(S_u), the item of S_u with minimum rank under h_j. Per element:
//
//   insert i: for each j, claim the register if i's rank is smaller
//             (or the register is empty)                        — O(k)
//   delete i: for each j, if φ_j(S_u) == i, clear the register  — O(k)
//
// The deletion rule is the natural streaming extension the paper analyzes:
// the true new minimum cannot be recovered from the register alone, so the
// slot goes empty and only refills on later insertions. This is exactly the
// *sampling bias* of §III — after deletions the surviving registers are not
// uniform samples of S_u — and it is the effect Figure 3 quantifies. The
// bias is inherent to the method, not an implementation shortcut.
//
// Estimator: Ĵ = (Σ_j 1(φ_j(S_u) = φ_j(S_v) ≠ ∅)) / k, then
// ŝ = Ĵ·(n_u+n_v)/(Ĵ+1).

#pragma once

#include <string>
#include <vector>

#include "baselines/estimate_util.h"
#include "baselines/register_common.h"
#include "core/similarity_method.h"

namespace vos::baseline {

using core::Element;
using core::PairEstimate;
using core::UserId;
using stream::Action;

/// Configuration of the MinHash baseline.
struct MinHashConfig {
  /// Number of registers (hash functions) per user.
  uint32_t k = 100;
  HashMode hash_mode = HashMode::kMixer;
  uint64_t seed = 7;
  BaselineOptions options;
};

/// Dynamic MinHash over all users of a stream.
class MinHash : public core::SimilarityMethod {
 public:
  /// `num_items` is the item-domain size (needed for exact permutations).
  MinHash(const MinHashConfig& config, UserId num_users, uint64_t num_items);

  std::string Name() const override { return "MinHash"; }

  void Update(const Element& e) override;

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  /// Modeled memory: k registers of 32 bits per user (the paper's
  /// accounting; §V fixes 32 bits per register value).
  size_t MemoryBits() const override {
    return static_cast<size_t>(config_.k) * 32 * num_users_;
  }

  /// Register j of user u (tests & the b-bit digest read these).
  const MinRegister& RegisterAt(UserId u, uint32_t j) const {
    return registers_[static_cast<size_t>(u) * config_.k + j];
  }

  uint32_t k() const { return config_.k; }
  uint32_t Cardinality(UserId u) const { return cardinality_[u]; }

 private:
  MinHashConfig config_;
  UserId num_users_;
  std::vector<RankFunction> rank_functions_;  // one per register index
  std::vector<MinRegister> registers_;        // num_users × k, row-major
  std::vector<uint32_t> cardinality_;
};

}  // namespace vos::baseline

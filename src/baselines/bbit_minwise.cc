#include "baselines/bbit_minwise.h"

#include "common/logging.h"

namespace vos::baseline {
namespace {

MinHashConfig InnerConfig(const BbitMinwiseConfig& config) {
  MinHashConfig inner;
  inner.k = config.k;
  inner.hash_mode = config.hash_mode;
  inner.seed = config.seed;
  inner.options = config.options;
  return inner;
}

}  // namespace

BbitMinwise::BbitMinwise(const BbitMinwiseConfig& config, UserId num_users,
                         uint64_t num_items)
    : config_(config),
      num_users_(num_users),
      inner_(InnerConfig(config), num_users, num_items) {
  VOS_CHECK(config.b >= 1 && config.b <= 32)
      << "b must be in [1, 32], got" << config.b;
}

PairEstimate BbitMinwise::EstimatePair(UserId u, UserId v) const {
  const uint32_t mask = config_.b >= 32
                            ? 0xffffffffu
                            : ((uint32_t{1} << config_.b) - 1);
  uint32_t matches = 0;
  uint32_t trials = 0;
  for (uint32_t j = 0; j < config_.k; ++j) {
    const MinRegister& ru = inner_.RegisterAt(u, j);
    const MinRegister& rv = inner_.RegisterAt(v, j);
    if (!ru.occupied() || !rv.occupied()) continue;
    ++trials;
    if ((ru.rank & mask) == (rv.rank & mask)) ++matches;
  }
  double jaccard = 0.0;
  if (trials > 0) {
    const double m = static_cast<double>(matches) / trials;
    const double c = config_.b >= 32 ? 0.0 : 1.0 / (uint64_t{1} << config_.b);
    jaccard = (m - c) / (1.0 - c);  // collision-corrected (Li & König)
  }
  return FromJaccard(jaccard, inner_.Cardinality(u), inner_.Cardinality(v),
                     config_.options);
}

}  // namespace vos::baseline

// Random Pairing (Gemulla, Lehner, Haas — VLDB Journal'08) adapted to
// per-user similarity sampling, as sketched in §III of the paper.
//
// RP maintains a bounded uniform sample of an evolving set under insertions
// and deletions by *pairing* each uncompensated deletion with a later
// insertion. Following the paper, each user keeps k independent RP samplers
// of size 1; slot j of user u is a uniform random item φ_j(S_u) (whenever
// its compensation counters are drained). Slots are independent across j
// and across users, so for a pair (u, v)
//
//   P(φ_j(S_u) = φ_j(S_v)) = s_uv / (n_u·n_v),
//
// giving the unbiased estimator ŝ = n_u·n_v/k · Σ_j 1(φ_j(S_u) = φ_j(S_v)).
// (The paper's formula omits the 1/k normalization — see DESIGN.md §2.)
// Unlike MinHash, matching slots carry no min-wise coordination, hence the
// much larger variance the paper observes (the match probability has
// denominator n_u·n_v instead of |S_u ∪ S_v|).
//
// Per-slot RP state (Gemulla's c1/c2): c1 counts uncompensated deletions of
// the sampled item, c2 those of other items. An insertion during
// compensation refills the slot with probability c1/(c1+c2); otherwise the
// standard size-1 reservoir step applies. Every slot must see every element
// of its user — O(k) per update, which is why RP sits with MinHash on the
// slow side of Figure 2.

#pragma once

#include <string>
#include <vector>

#include "baselines/estimate_util.h"
#include "common/random.h"
#include "core/similarity_method.h"

namespace vos::baseline {

using core::Element;
using core::PairEstimate;
using core::UserId;
using stream::Action;
using stream::ItemId;

/// Configuration of the RP baseline.
struct RandomPairingConfig {
  /// Number of independent size-1 RP samplers per user.
  uint32_t k = 100;
  uint64_t seed = 13;
  BaselineOptions options;
};

/// Random Pairing similarity estimator.
class RandomPairing : public core::SimilarityMethod {
 public:
  RandomPairing(const RandomPairingConfig& config, UserId num_users);

  std::string Name() const override { return "RP"; }

  void Update(const Element& e) override;

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  /// Modeled memory: k registers of 32 bits per user (§V accounting; the
  /// compensation counters are transient bookkeeping, charged analogously
  /// to the other methods' per-register metadata).
  size_t MemoryBits() const override {
    return static_cast<size_t>(config_.k) * 32 * num_users_;
  }

  uint32_t Cardinality(UserId u) const { return cardinality_[u]; }

  /// Slot state, exposed for the uniformity tests.
  struct Slot {
    ItemId item = 0;
    bool occupied = false;
    uint32_t c1 = 0;  ///< uncompensated deletions that hit the sample
    uint32_t c2 = 0;  ///< uncompensated deletions that missed the sample
  };

  const Slot& SlotAt(UserId u, uint32_t j) const {
    return slots_[static_cast<size_t>(u) * config_.k + j];
  }

  uint32_t k() const { return config_.k; }

 private:
  RandomPairingConfig config_;
  UserId num_users_;
  std::vector<Slot> slots_;  // num_users × k, row-major
  std::vector<uint32_t> cardinality_;
  Rng rng_;  // shared draw source; slots consume independent variates
};

}  // namespace vos::baseline

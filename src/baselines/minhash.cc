#include "baselines/minhash.h"

#include "common/logging.h"
#include "hashing/seeds.h"

namespace vos::baseline {

MinHash::MinHash(const MinHashConfig& config, UserId num_users,
                 uint64_t num_items)
    : config_(config),
      num_users_(num_users),
      registers_(static_cast<size_t>(num_users) * config.k),
      cardinality_(num_users, 0) {
  VOS_CHECK(config.k >= 1) << "MinHash needs at least one register";
  rank_functions_.reserve(config.k);
  for (uint32_t j = 0; j < config.k; ++j) {
    rank_functions_.emplace_back(config.hash_mode,
                                 hash::DeriveSeed(config.seed, j), num_items);
  }
}

void MinHash::Update(const Element& e) {
  MinRegister* row = &registers_[static_cast<size_t>(e.user) * config_.k];
  if (e.action == Action::kInsert) {
    ++cardinality_[e.user];
    for (uint32_t j = 0; j < config_.k; ++j) {
      const uint32_t rank = rank_functions_[j].Rank(e.item);
      if (rank < row[j].rank) {  // kEmptyRank compares larger than any rank
        row[j].rank = rank;
        row[j].item = e.item;
      }
    }
  } else {
    VOS_DCHECK(cardinality_[e.user] > 0) << "deletion below zero" << e;
    --cardinality_[e.user];
    for (uint32_t j = 0; j < config_.k; ++j) {
      // §III case 2: the register's sampled item disappeared; the true new
      // minimum is unrecoverable, so the register goes empty (bias source).
      if (row[j].occupied() && row[j].item == e.item) row[j].Clear();
    }
  }
}

PairEstimate MinHash::EstimatePair(UserId u, UserId v) const {
  const MinRegister* row_u = &registers_[static_cast<size_t>(u) * config_.k];
  const MinRegister* row_v = &registers_[static_cast<size_t>(v) * config_.k];
  uint32_t matches = 0;
  for (uint32_t j = 0; j < config_.k; ++j) {
    if (row_u[j].occupied() && row_v[j].occupied() &&
        row_u[j].item == row_v[j].item) {
      ++matches;
    }
  }
  const double jaccard = static_cast<double>(matches) / config_.k;
  return FromJaccard(jaccard, cardinality_[u], cardinality_[v],
                     config_.options);
}

}  // namespace vos::baseline

// One Permutation Hashing (Li, Owen, Zhang — NIPS'12) extended to fully
// dynamic streams per §III, with optional densification variants.
//
// A single rank function h partitions the rank domain [0, p) into k equal
// bins; bin j of user u holds the minimum-rank item of S_u whose rank falls
// in bin j. Per element only the item's own bin is touched — O(1):
//
//   insert i: claim bin(h(i)) if i's rank is smaller or the bin is empty
//   delete i: if the bin's stored item is i, the bin goes empty (the same
//             unrecoverable-minimum bias as MinHash, §III)
//
// Estimator (paper): Ĵ = Σ 1(oph_j(S_u) = oph_j(S_v) ≠ ∅) /
//                        Σ 1(oph_j(S_u) ≠ ∅ ∨ oph_j(S_v) ≠ ∅).
//
// Densification (extensions; related work [5][6][7]) fills empty bins at
// query time from non-empty ones so the plain MinHash estimator Ĵ = M/k can
// be used — useful for LSH indexing. Under deletions the filled values
// inherit the deletion bias; the ablation bench A3 quantifies this.

#pragma once

#include <string>
#include <vector>

#include "baselines/estimate_util.h"
#include "baselines/register_common.h"
#include "core/similarity_method.h"

namespace vos::baseline {

using core::Element;
using core::PairEstimate;
using core::UserId;
using stream::Action;

/// Query-time empty-bin filling scheme.
enum class Densification : uint8_t {
  /// No filling; the paper's OPH estimator over non-empty bins.
  kNone = 0,
  /// Shrivastava & Li, ICML'14: copy from the nearest non-empty bin to the
  /// right (circularly).
  kRotationRight = 1,
  /// Shrivastava & Li, UAI'14: direction chosen per bin by an unbiased coin
  /// (hash of the bin index), improving variance.
  kRandomDirection = 2,
  /// Shrivastava, ICML'17: each empty bin walks a 2-universal hash sequence
  /// of source bins until it hits a non-empty one (optimal variance).
  kOptimal = 3,
};

std::string DensificationName(Densification d);

/// Configuration of the OPH baseline.
struct OphConfig {
  /// Number of bins.
  uint32_t k = 100;
  HashMode hash_mode = HashMode::kMixer;
  Densification densification = Densification::kNone;
  uint64_t seed = 11;
  BaselineOptions options;
};

/// Dynamic OPH over all users of a stream.
class Oph : public core::SimilarityMethod {
 public:
  Oph(const OphConfig& config, UserId num_users, uint64_t num_items);

  std::string Name() const override;

  void Update(const Element& e) override;

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  /// Modeled memory: k registers of 32 bits per user (§V accounting).
  size_t MemoryBits() const override {
    return static_cast<size_t>(config_.k) * 32 * num_users_;
  }

  /// Bin register j of user u.
  const MinRegister& BinAt(UserId u, uint32_t j) const {
    return bins_[static_cast<size_t>(u) * config_.k + j];
  }

  /// The bin an item falls into: floor(rank·k / p).
  uint32_t BinOf(stream::ItemId item) const;

  uint32_t k() const { return config_.k; }
  uint32_t Cardinality(UserId u) const { return cardinality_[u]; }

  /// Returns user u's k bins after applying the configured densification
  /// (identity copy for kNone). Exposed for tests and the ablation bench.
  std::vector<MinRegister> DensifiedRow(UserId u) const;

 private:
  OphConfig config_;
  UserId num_users_;
  RankFunction rank_function_;
  std::vector<MinRegister> bins_;  // num_users × k, row-major
  std::vector<uint32_t> cardinality_;
  uint64_t densify_seed_;
};

}  // namespace vos::baseline

// HyperLogLog union-cardinality baseline (extension).
//
// A natural "what about cardinality sketches?" comparator: keep one HLL per
// user; estimate |S_u ∪ S_v| by merging (register-wise max) and derive
//   ŝ = n_u + n_v − |Ŝ_u ∪ S_v|,   Ĵ = ŝ / |Ŝ_u ∪ S_v|
// via inclusion–exclusion, using the exact per-user counters n_u that every
// method in this library keeps.
//
// The instructive part is its *failure mode on deletions*: HLL registers
// store maxima, which cannot be decremented, so an unsubscription leaves
// the union estimate stuck at its historical high-water mark while
// n_u + n_v shrinks — ŝ is progressively *underestimated* (often clamped
// at 0) as deletions accumulate. This is the same one-way-ness that breaks
// MinHash, in an even starker form, and the ablation bench quantifies it
// against VOS's parity-exact deletions.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/estimate_util.h"
#include "core/similarity_method.h"

namespace vos::baseline {

using core::Element;
using core::PairEstimate;
using core::UserId;
using stream::Action;
using stream::ItemId;

/// Configuration of the per-user HLL sketches.
struct HllUnionConfig {
  /// Number of HLL registers per user (power of two, ≥ 16). Standard
  /// relative error ≈ 1.04/sqrt(registers).
  uint32_t registers = 256;
  uint64_t seed = 23;
  BaselineOptions options;
};

/// Per-user HyperLogLog sketches with union-based similarity estimates.
class HllUnion : public core::SimilarityMethod {
 public:
  HllUnion(const HllUnionConfig& config, UserId num_users);

  std::string Name() const override { return "HLL-union"; }

  /// Insertions update the register maxima; deletions adjust only n_u —
  /// the registers cannot forget (see header).
  void Update(const Element& e) override;

  PairEstimate EstimatePair(UserId u, UserId v) const override;

  /// 6 bits per register would suffice; we model the standard dense HLL
  /// at 8 bits/register for byte alignment.
  size_t MemoryBits() const override {
    return static_cast<size_t>(config_.registers) * 8 * num_users_;
  }

  /// Estimated |S_u| from the sketch alone (testing aid; pair estimates
  /// use the exact counters per the class comment).
  double EstimateCardinality(UserId u) const;

  uint32_t Cardinality(UserId u) const { return cardinality_[u]; }

 private:
  /// Raw HLL estimate from a register row, with the standard small-range
  /// (linear counting) correction.
  double EstimateFromRegisters(const uint8_t* row_a,
                               const uint8_t* row_b) const;

  HllUnionConfig config_;
  UserId num_users_;
  double alpha_m_;  // HLL bias-correction constant for `registers`
  std::vector<uint8_t> registers_;  // num_users × registers, row-major
  std::vector<uint32_t> cardinality_;
};

}  // namespace vos::baseline

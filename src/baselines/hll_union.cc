#include "baselines/hll_union.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "hashing/hash64.h"
#include "hashing/seeds.h"

namespace vos::baseline {

HllUnion::HllUnion(const HllUnionConfig& config, UserId num_users)
    : config_(config),
      num_users_(num_users),
      registers_(static_cast<size_t>(num_users) * config.registers, 0),
      cardinality_(num_users, 0) {
  const uint32_t m = config.registers;
  VOS_CHECK(m >= 16 && (m & (m - 1)) == 0)
      << "HLL registers must be a power of two >= 16, got" << m;
  // Flajolet et al.'s bias-correction constant.
  switch (m) {
    case 16:
      alpha_m_ = 0.673;
      break;
    case 32:
      alpha_m_ = 0.697;
      break;
    case 64:
      alpha_m_ = 0.709;
      break;
    default:
      alpha_m_ = 0.7213 / (1.0 + 1.079 / m);
  }
}

void HllUnion::Update(const Element& e) {
  if (e.action == Action::kDelete) {
    VOS_DCHECK(cardinality_[e.user] > 0) << "deletion below zero" << e;
    --cardinality_[e.user];
    return;  // registers cannot forget — the documented failure mode
  }
  ++cardinality_[e.user];
  const uint64_t h = hash::Hash64(e.item, hash::DeriveSeed(config_.seed, 1));
  const int b = std::countr_zero(config_.registers);  // log2(registers)
  const uint32_t bucket = static_cast<uint32_t>(h & (config_.registers - 1));
  // Rank = 1-based position of the leftmost 1-bit in the remaining
  // (64 − b)-bit word; (64 − b) + 1 when that word is zero.
  const uint64_t w = h >> b;
  const auto rank = static_cast<uint8_t>(
      w == 0 ? (64 - b) + 1 : std::countl_zero(w) - b + 1);
  uint8_t& reg =
      registers_[static_cast<size_t>(e.user) * config_.registers + bucket];
  reg = std::max(reg, rank);
}

double HllUnion::EstimateFromRegisters(const uint8_t* row_a,
                                       const uint8_t* row_b) const {
  const uint32_t m = config_.registers;
  double inverse_sum = 0.0;
  uint32_t zero_registers = 0;
  for (uint32_t j = 0; j < m; ++j) {
    const uint8_t reg =
        row_b == nullptr ? row_a[j] : std::max(row_a[j], row_b[j]);
    inverse_sum += std::ldexp(1.0, -reg);
    zero_registers += (reg == 0);
  }
  double estimate = alpha_m_ * m * m / inverse_sum;
  if (estimate <= 2.5 * m && zero_registers > 0) {
    // Small-range correction: linear counting.
    estimate = m * std::log(static_cast<double>(m) / zero_registers);
  }
  return estimate;
}

double HllUnion::EstimateCardinality(UserId u) const {
  return EstimateFromRegisters(
      &registers_[static_cast<size_t>(u) * config_.registers], nullptr);
}

PairEstimate HllUnion::EstimatePair(UserId u, UserId v) const {
  const double union_estimate = EstimateFromRegisters(
      &registers_[static_cast<size_t>(u) * config_.registers],
      &registers_[static_cast<size_t>(v) * config_.registers]);
  const double n_u = cardinality_[u];
  const double n_v = cardinality_[v];
  const double common = n_u + n_v - union_estimate;  // inclusion–exclusion
  return FromCommon(common, n_u, n_v, config_.options);
}

}  // namespace vos::baseline

#include "weighted/weighted_set.h"

#include <algorithm>

namespace vos::weighted {

double GeneralizedJaccard(const WeightedSet& x, const WeightedSet& y) {
  // Σmax = Σx + Σy − Σmin, so one pass over the smaller map suffices for
  // Σmin.
  const WeightedSet& small = x.size() <= y.size() ? x : y;
  const WeightedSet& large = x.size() <= y.size() ? y : x;
  double sum_min = 0.0;
  for (const auto& [item, w] : small.weights()) {
    sum_min += std::min(w, large.Weight(item));
  }
  const double sum_max = x.TotalWeight() + y.TotalWeight() - sum_min;
  return sum_max <= 0.0 ? 0.0 : sum_min / sum_max;
}

}  // namespace vos::weighted

#include "weighted/icws.h"

#include <cmath>
#include <limits>

#include "hashing/hash64.h"
#include "hashing/seeds.h"

namespace vos::weighted {
namespace {

/// Uniform(0, 1] from a hash (never exactly 0, so logs are finite).
double UniformFromHash(uint64_t h) {
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

/// Deterministic per-(item, slot) randomness: r, c ~ Gamma(2,1), β ~ U[0,1).
struct ItemSlotRandomness {
  double r;
  double c;
  double beta;
};

ItemSlotRandomness DrawRandomness(ItemId item, uint32_t slot, uint64_t seed) {
  const uint64_t base = hash::DeriveSeed2(seed, item, slot);
  const double u1 = UniformFromHash(hash::Hash64(1, base));
  const double u2 = UniformFromHash(hash::Hash64(2, base));
  const double u3 = UniformFromHash(hash::Hash64(3, base));
  const double u4 = UniformFromHash(hash::Hash64(4, base));
  const double u5 = UniformFromHash(hash::Hash64(5, base));
  ItemSlotRandomness rnd;
  rnd.r = -std::log(u1 * u2);  // Gamma(2, 1)
  rnd.c = -std::log(u3 * u4);  // Gamma(2, 1)
  rnd.beta = u5 == 1.0 ? 0.0 : u5;
  return rnd;
}

}  // namespace

IcwsSketch::IcwsSketch(const WeightedSet& set, uint32_t k, uint64_t seed)
    : seed_(seed), samples_(k) {
  VOS_CHECK(k >= 1) << "ICWS needs at least one slot";
  std::vector<double> best(k, std::numeric_limits<double>::infinity());
  for (const auto& [item, weight] : set.weights()) {
    VOS_DCHECK(weight > 0.0);
    const double log_w = std::log(weight);
    for (uint32_t j = 0; j < k; ++j) {
      const ItemSlotRandomness rnd = DrawRandomness(item, j, seed);
      const double t = std::floor(log_w / rnd.r + rnd.beta);
      const double y = std::exp(rnd.r * (t - rnd.beta));
      const double a = rnd.c / (y * std::exp(rnd.r));
      if (a < best[j]) {
        best[j] = a;
        samples_[j].item = item;
        samples_[j].t = static_cast<int64_t>(t);
        samples_[j].occupied = true;
      }
    }
  }
}

double IcwsSketch::EstimateJaccard(const IcwsSketch& a, const IcwsSketch& b) {
  VOS_CHECK(a.k() == b.k()) << "sketch size mismatch";
  VOS_CHECK(a.seed_ == b.seed_) << "sketches built with different seeds";
  uint32_t matches = 0;
  for (uint32_t j = 0; j < a.k(); ++j) {
    matches += a.samples_[j].Matches(b.samples_[j]);
  }
  return static_cast<double>(matches) / a.k();
}

}  // namespace vos::weighted

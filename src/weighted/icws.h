// Improved Consistent Weighted Sampling (Ioffe, ICDM 2010) — reference [10]
// of the paper.
//
// ICWS draws, per sample slot j, a pair (item, t) from a weighted vector x
// such that two vectors' samples collide with probability exactly the
// generalized Jaccard J(x, y) = Σmin/Σmax. For each item i with weight
// w_i > 0 and slot j, using item/slot-seeded randomness:
//
//   r, c ~ Gamma(2, 1)   (via −ln(u₁·u₂)),   β ~ Uniform(0, 1)
//   t    = ⌊ ln(w_i)/r + β ⌋
//   y    = exp(r·(t − β))
//   a    = c / (y · exp(r))
//
// Slot j samples the item minimizing a, remembering (item, t). "Consistent"
// means the sample depends only on the vector itself, so sketches can be
// compared across users; matching on the pair (item, t) is what yields the
// exact-J collision probability.
//
// Scope note (and the paper's point): ICWS is a *static-dataset* method —
// a weight update changes ln(w) and may move every slot's minimum, so
// there is no O(1) streaming update, and deletions have the same
// unrecoverable-minimum problem as MinHash. The sketch here is built from
// a WeightedSet snapshot; the ablation bench contrasts that workflow with
// VOS's streaming updates on 0/1 weights.

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "weighted/weighted_set.h"

namespace vos::weighted {

/// One ICWS sample: the (item, t) pair of a slot.
struct IcwsSample {
  ItemId item = 0;
  int64_t t = 0;
  bool occupied = false;

  bool Matches(const IcwsSample& other) const {
    return occupied && other.occupied && item == other.item && t == other.t;
  }
};

/// A k-slot ICWS sketch of one weighted vector.
class IcwsSketch {
 public:
  /// Builds the sketch of `set` with `k` slots; `seed` keys the shared
  /// randomness (sketches are comparable iff built with equal k and seed).
  IcwsSketch(const WeightedSet& set, uint32_t k, uint64_t seed);

  uint32_t k() const { return static_cast<uint32_t>(samples_.size()); }
  uint64_t seed() const { return seed_; }
  const IcwsSample& sample(uint32_t j) const { return samples_[j]; }

  /// Ĵ = (Σ_j 1(sample_j(x) = sample_j(y))) / k. Sketches must share
  /// (k, seed).
  static double EstimateJaccard(const IcwsSketch& a, const IcwsSketch& b);

  /// Modeled memory: one 32-bit item id plus an 8-bit t digest per slot
  /// (t is small in practice; the model follows §V's register accounting).
  size_t MemoryBits() const { return samples_.size() * 40; }

 private:
  uint64_t seed_;
  std::vector<IcwsSample> samples_;
};

}  // namespace vos::weighted

// Weighted sets and the generalized (weighted) Jaccard coefficient.
//
// The paper's related work ([10]–[13]: Ioffe ICDM'10, Shrivastava NIPS'16,
// Wu et al. ICDM'16/WWW'17) studies similarity of *weighted* vectors
//   J(x, y) = Σ_i min(x_i, y_i) / Σ_i max(x_i, y_i),
// the natural refinement of set Jaccard when items carry intensities
// (ratings, play counts, tf-idf). §I of the paper notes these consistent
// weighted sampling methods are, like MinHash, customized to static
// datasets — this module implements the exact measure and the ICWS sketch
// (weighted/icws.h) so that claim is reproducible, and documents the
// static-dataset scope explicitly.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/logging.h"
#include "stream/element.h"

namespace vos::weighted {

using stream::ItemId;

/// A sparse non-negative weighted vector over the item domain.
class WeightedSet {
 public:
  WeightedSet() = default;

  /// Sets item's weight (> 0); weight 0 removes the item.
  void Set(ItemId item, double weight) {
    VOS_CHECK(weight >= 0.0) << "weights must be non-negative, got" << weight;
    if (weight == 0.0) {
      weights_.erase(item);
    } else {
      weights_[item] = weight;
    }
  }

  /// Adds `delta` to item's weight (clamping at 0 removes the item).
  void Add(ItemId item, double delta) {
    const double next = Weight(item) + delta;
    Set(item, next < 0.0 ? 0.0 : next);
  }

  /// The item's weight; 0 when absent.
  double Weight(ItemId item) const {
    const auto it = weights_.find(item);
    return it == weights_.end() ? 0.0 : it->second;
  }

  size_t size() const { return weights_.size(); }
  bool empty() const { return weights_.empty(); }

  /// Σ_i x_i.
  double TotalWeight() const {
    double total = 0.0;
    for (const auto& [item, w] : weights_) total += w;
    return total;
  }

  const std::unordered_map<ItemId, double>& weights() const {
    return weights_;
  }

 private:
  std::unordered_map<ItemId, double> weights_;
};

/// Exact generalized Jaccard Σ min / Σ max; 0 when both vectors are empty.
double GeneralizedJaccard(const WeightedSet& x, const WeightedSet& y);

}  // namespace vos::weighted

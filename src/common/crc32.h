// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Used by the v3 checkpoint container (core/vos_io.h) to checksum each
// section independently, so a torn or bit-rotted checkpoint names the
// damaged section instead of failing with a whole-file mismatch. The
// XOR-fold checksum the v1/v2 sketch files carry stays untouched — CRC32
// additionally catches the burst errors (torn tail, zero-filled page)
// that an XOR fold can cancel out.

#pragma once

#include <cstddef>
#include <cstdint>

namespace vos {

/// CRC-32 of `size` bytes at `data`. `seed` chains incremental updates:
/// Crc32(b, n1+n2) == Crc32(b + n1, n2, Crc32(b, n1)).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace vos

// Runtime-dispatched SIMD kernel table for the library's data-plane hot
// loops: XOR+popcount over digest rows, batched digest-bit extraction,
// producer-side shard routing, and LSH band-key derivation.
//
// One Release binary built for baseline x86-64 (or aarch64) carries every
// implementation the compiler could produce — scalar always, plus AVX2
// (Harley–Seal popcount, 4-lane hash/gather), AVX-512 (VPOPCNTDQ, 8-lane
// hash/gather with mask-register bit packing) and NEON (vcnt) variants
// compiled in their own translation units with per-file ISA flags — and
// picks the best one the *running* CPU supports at first use. This
// replaces the old model where the Hamming kernels only vectorized under
// a -march=native build, which pinned a binary to the build machine's
// microarchitecture (see CMakeLists.txt VOS_NATIVE_ARCH, now a pure
// tuning opt-in).
//
// Contract: every kernel at every dispatch level is BIT-IDENTICAL to the
// scalar reference — same popcounts, same extracted cells/bits, same
// shard ids and locals, same band keys — for every input, including
// unaligned row bases, odd strides and 0..7-word tails
// (tests/kernel_dispatch_test.cc sweeps all available levels against
// scalar). Dispatch therefore never changes results, only throughput, and
// the scalar table doubles as the reference implementation the rest of
// the system's bit-identity tests are anchored to.
//
// Selection order (first available wins): VOS_DISPATCH env override
// ("scalar" | "avx2" | "avx512" | "neon"; unknown or unavailable values
// warn to stderr once and fall through), then the best level the CPU
// supports. SetDispatchLevel() forces a level programmatically (tests and
// the bench --dispatch flag); Active() is safe to call concurrently with
// a SetDispatchLevel from another thread (atomic table pointer).
//
// Adding an ISA: add kernels_<isa>.cc exporting `const KernelTable*
// <Isa>Kernels()` (nullptr when the TU is compiled without the ISA), give
// the file its ISA flags + VOS_KERNELS_<ISA> define in CMakeLists.txt,
// add the probe in kernels.cc, and extend kernel_dispatch_test's sweep —
// the test needs no per-ISA code, it compares whatever AvailableLevels()
// reports. Keep ISA translation units free of project headers that
// define inline functions: an inline emitted under -mavx2 can be the copy
// the linker keeps, silently making the "baseline" binary crash on older
// CPUs.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vos::kernels {

/// The dispatch levels, in preference order (higher = wider).
enum class DispatchLevel : uint8_t {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// One resolved set of kernels. All entries are non-null; a level that
/// has no profitable implementation of some kernel aliases the scalar
/// one (NEON does this for the gather-shaped kernels).
struct KernelTable {
  /// popcount(a[i] ^ b[i]) summed over i in [0, n) — the Hamming
  /// distance between two n-word digest rows.
  size_t (*xor_popcount)(const uint64_t* a, const uint64_t* b, size_t n);

  /// 1×8 register-blocked variant: out[t] = popcount(a XOR
  /// (b_base + t·stride)) over n words, t in [0, 8).
  void (*xor_popcount8)(const uint64_t* a, const uint64_t* b_base,
                        size_t stride, size_t n, size_t out[8]);

  /// 2×4 variant: out[t] = popcount(a0 XOR (b_base + t·stride)),
  /// out[4+t] = popcount(a1 XOR (b_base + t·stride)), t in [0, 4).
  void (*xor_popcount2x4)(const uint64_t* a0, const uint64_t* a1,
                          const uint64_t* b_base, size_t stride, size_t n,
                          size_t out[8]);

  /// popcount(a[i]) summed over i in [0, n).
  size_t (*popcount_words)(const uint64_t* a, size_t n);

  /// Digest extraction (DigestMatrix::ExtractRowFromArray's hot loop):
  /// for j in [0, k), cell_j = ReduceToRange(Hash64(user, seeds[j]), m);
  /// bit j of dst = array_words[cell_j >> 6] >> (cell_j & 63) & 1. dst
  /// holds ceil(k/64) words; pad bits are zeroed. When `cells` is
  /// non-null it receives cell_0..cell_{k-1} as uint32 (callers must
  /// ensure m <= 2^32 in that case; m itself may be up to 2^48).
  void (*extract_bits)(const uint64_t* array_words, const uint64_t* seeds,
                       uint32_t k, uint64_t user, uint64_t m, uint64_t* dst,
                       uint32_t* cells);

  /// Re-extraction from captured cells (DigestMatrix::ExtractRowFromCells):
  /// bit j of dst = array_words[cells[j] >> 6] >> (cells[j] & 63) & 1.
  void (*extract_bits_from_cells)(const uint64_t* array_words,
                                  const uint32_t* cells, uint32_t k,
                                  uint64_t* dst);

  /// Producer-side routing (ShardRouter::ShardOf over a batch):
  /// shards[i] = ReduceToRange(Mix64(users[i] ^ seed_mix), num_shards)
  /// with seed_mix = seed * 0x9e3779b97f4a7c15. When local_of is
  /// non-null, additionally locals[i] = local_of[users[i]] (the
  /// DenseShardMap gather; callers bounds-check users first).
  void (*route_batch)(const uint32_t* users, size_t n, uint64_t seed_mix,
                      uint32_t num_shards, const uint32_t* local_of,
                      uint16_t* shards, uint32_t* locals);

  /// Band-key derivation (BandingTable): keys[b] = bits
  /// [b·rows_per_band, (b+1)·rows_per_band) of the packed row, for b in
  /// [0, bands). Requires bands·rows_per_band <= words·64 and words >= 1;
  /// rows_per_band in [1, 64]. Never reads past row[words).
  void (*band_keys)(const uint64_t* row, size_t words, uint32_t bands,
                    uint32_t rows_per_band, uint64_t* keys);

  DispatchLevel level;
  const char* name;  ///< "scalar" | "neon" | "avx2" | "avx512"
};

namespace internal {
/// The active table; nullptr until first resolution. Exposed only so
/// Active() can stay inline (one relaxed load on the hot path).
extern std::atomic<const KernelTable*> g_active;
/// Slow path: probes the CPU, applies VOS_DISPATCH, stores and returns
/// the chosen table. Idempotent and safe under concurrent first calls.
const KernelTable* ResolveActive();
}  // namespace internal

/// The kernels every hot path dispatches through. First call probes the
/// CPU and honours VOS_DISPATCH; later calls are one atomic load.
inline const KernelTable& Active() {
  const KernelTable* table =
      internal::g_active.load(std::memory_order_relaxed);
  if (table == nullptr) table = internal::ResolveActive();
  return *table;
}

/// Level of the table Active() currently returns.
DispatchLevel ActiveLevel();

/// The table for `level`, or nullptr when it is not compiled in or the
/// CPU lacks the ISA. TableFor(kScalar) never returns nullptr.
const KernelTable* TableFor(DispatchLevel level);

/// Every level available on this build + CPU, ascending (always starts
/// with kScalar).
std::vector<DispatchLevel> AvailableLevels();

/// Forces the active table. Returns false (and changes nothing) when the
/// level is unavailable. Used by tests and the bench --dispatch flags;
/// production binaries normally rely on the automatic probe.
bool SetDispatchLevel(DispatchLevel level);

/// Human-readable level name ("scalar", "neon", "avx2", "avx512").
const char* LevelName(DispatchLevel level);

/// Parses a LevelName back to its level; false on unknown strings.
bool ParseDispatchLevel(const char* s, DispatchLevel* out);

}  // namespace vos::kernels

// Bounded single-producer / single-consumer ring buffer.
//
// The textbook lock-free case: exactly one writer thread (TryPush) and
// exactly one reader thread (TryPop). head_ and tail_ are MONOTONIC
// operation counters — never wrapped — so "full" is tail − head ==
// capacity and the slot index is counter % capacity; a uint64 counter
// cannot overflow in any realistic run. Each counter sits on its own
// cache line (the producer writes tail_, the consumer writes head_;
// padding keeps them from false-sharing), and each side caches its last
// view of the other's counter so the uncontended push/pop costs one
// relaxed load and one release store — no locks, no RMW, no fences.
//
// Memory ordering: the producer's release store of tail_ publishes the
// slot write to the consumer's acquire load (pop sees fully constructed
// values); symmetrically the consumer's release store of head_ publishes
// the slot's vacancy to the producer (push never overwrites a value that
// is still being read). Nothing else is ordered — callers that need a
// cross-thread handshake beyond the values themselves (parking
// protocols, poison flags) must pair their own fences with pushed() /
// popped().
//
// pushed() / popped() expose the monotonic counters: exact for the
// owning side, a lower bound (acquire) for everyone else — exactly what
// occupancy polling and flush barriers need. size() derives from them
// and is approximate unless the ring is externally quiesced.
//
// Init() is separate from construction so the CONSUMER thread can
// allocate the slot array: first-touch places the pages on the NUMA node
// of the worker that will read from them (core/sharded_vos_sketch.cc).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace vos {

template <typename T>
class SpscRing {
 public:
  /// An unallocated ring; call Init() exactly once before first use.
  SpscRing() = default;
  explicit SpscRing(size_t capacity) { Init(capacity); }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Allocates the slot array (capacity ≥ 1). Calling from the consumer
  /// thread first-touches the slots on its node. Must complete before
  /// (happen-before) any TryPush/TryPop; calling twice aborts.
  void Init(size_t capacity) {
    VOS_CHECK(slots_ == nullptr) << "SpscRing::Init called twice";
    VOS_CHECK(capacity >= 1) << "SpscRing capacity must be >= 1";
    capacity_ = capacity;
    slots_ = std::make_unique<T[]>(capacity);
  }

  size_t capacity() const { return capacity_; }
  bool initialized() const { return slots_ != nullptr; }

  /// Producer only. Moves from `value` on success; a full ring returns
  /// false and leaves `value` untouched — nothing is ever written past
  /// the live slots.
  bool TryPush(T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail % capacity_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Moves the oldest value into *out and resets the slot
  /// (heap payloads are released as soon as they are consumed, not when
  /// the slot is eventually overwritten).
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head % capacity_]);
    slots_[head % capacity_] = T();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Values ever pushed / popped. Exact for the owning side; a lower
  /// bound from any other thread.
  uint64_t pushed() const { return tail_.load(std::memory_order_acquire); }
  uint64_t popped() const { return head_.load(std::memory_order_acquire); }

  /// Approximate occupancy from any thread (exact once quiesced). The
  /// tail is read second so a concurrent pop cannot make this underflow.
  size_t size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }
  bool Empty() const { return size() == 0; }
  bool Full() const { return size() >= capacity_; }

 private:
  static constexpr size_t kCacheLine = 64;

  size_t capacity_ = 0;
  std::unique_ptr<T[]> slots_;

  /// Consumer-owned line: next slot to pop, plus the consumer's cached
  /// view of tail_.
  alignas(kCacheLine) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;

  /// Producer-owned line: next slot to fill, plus the producer's cached
  /// view of head_.
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  // (alignas(64) rounds sizeof up, so tail_'s line is not shared either.)
};

}  // namespace vos

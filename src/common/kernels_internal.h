// Internal seam between kernels.cc and the per-ISA translation units.
//
// The ISA files (kernels_avx2.cc, kernels_avx512.cc, kernels_neon.cc) are
// compiled with ISA flags the rest of the build does not have, so they
// must not include project headers that define inline functions — an
// inline emitted under -mavx2 can be the definition the linker keeps for
// every caller, silently un-baselining the binary. This header therefore
// carries DECLARATIONS ONLY (plus the shared hash constants, which are
// data, not code): the scalar kernels the ISA tails fall back to, the
// per-element helpers for ragged tails, and the per-ISA factory
// functions kernels.cc probes.

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/kernels.h"

namespace vos::kernels::internal {

// Hash constants shared with hashing/hash64.h (Murmur3 finalizer,
// splitmix64 "Mix13", golden-ratio seed stride). The ISA files replicate
// the mixing arithmetic lane-wise from these; kernels.cc's scalar
// kernels call hash64.h directly, and tests/kernel_dispatch_test.cc
// pins every level to those scalar results.
inline constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
inline constexpr uint64_t kMix64Mul1 = 0xff51afd7ed558ccdULL;
inline constexpr uint64_t kMix64Mul2 = 0xc4ceb9fe1a85ec53ULL;
inline constexpr uint64_t kMix64V2Mul1 = 0xbf58476d1ce4e5b9ULL;
inline constexpr uint64_t kMix64V2Mul2 = 0x94d049bb133111ebULL;

// Scalar kernels — the bit-identity reference and the tails' fallback.
// Defined in kernels.cc (a baseline-ISA translation unit).
size_t ScalarXorPopcount(const uint64_t* a, const uint64_t* b, size_t n);
void ScalarXorPopcount8(const uint64_t* a, const uint64_t* b_base,
                        size_t stride, size_t n, size_t out[8]);
void ScalarXorPopcount2x4(const uint64_t* a0, const uint64_t* a1,
                          const uint64_t* b_base, size_t stride, size_t n,
                          size_t out[8]);
size_t ScalarPopcountWords(const uint64_t* a, size_t n);
void ScalarExtractBits(const uint64_t* array_words, const uint64_t* seeds,
                       uint32_t k, uint64_t user, uint64_t m, uint64_t* dst,
                       uint32_t* cells);
void ScalarExtractBitsFromCells(const uint64_t* array_words,
                                const uint32_t* cells, uint32_t k,
                                uint64_t* dst);
void ScalarRouteBatch(const uint32_t* users, size_t n, uint64_t seed_mix,
                      uint32_t num_shards, const uint32_t* local_of,
                      uint16_t* shards, uint32_t* locals);
void ScalarBandKeys(const uint64_t* row, size_t words, uint32_t bands,
                    uint32_t rows_per_band, uint64_t* keys);

// Per-element helpers for the ISA kernels' ragged tails (lane counts
// rarely divide k or bands exactly).
uint64_t ScalarCellOf(uint64_t user, uint64_t seed, uint64_t m);
uint64_t ScalarBandKeyAt(const uint64_t* row, uint32_t bit_begin,
                         uint32_t nbits);

// Per-ISA factories: the level's table when this build compiled the
// implementation, nullptr when the TU was stubbed out (compiler lacks
// the intrinsics, or wrong target arch). CPU support is probed by the
// caller (kernels.cc), not here.
const KernelTable* Avx2Kernels();
const KernelTable* Avx512Kernels();
const KernelTable* NeonKernels();

}  // namespace vos::kernels::internal

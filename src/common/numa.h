// NUMA topology detection and thread pinning for the ingest fabric.
//
// Detection parses /sys/devices/system/node/node*/cpulist (Linux); any
// failure — non-Linux, sysfs absent, unparsable — degrades to a single
// synthetic node holding every hardware thread, so callers never branch
// on "is NUMA available": a single-node Topology simply makes pinning a
// no-op-shaped round-robin over one node.
//
// Pinning itself is best-effort: PinCurrentThreadToNode returns false
// (and changes nothing) off Linux or when sched_setaffinity is refused
// (containers commonly mask CPUs). The sharded ingest pipeline treats a
// false return as "run unpinned", never as an error — affinity is a
// performance hint, not a correctness requirement.

#pragma once

#include <cstddef>
#include <vector>

namespace vos::numa {

/// One entry per NUMA node; node_cpus[n] lists the logical CPU ids the
/// kernel reports for node n (sorted, non-empty).
struct Topology {
  std::vector<std::vector<int>> node_cpus;

  size_t num_nodes() const { return node_cpus.size(); }
  bool multi_node() const { return node_cpus.size() > 1; }
  /// Total logical CPUs across all nodes.
  size_t num_cpus() const;
};

/// The machine's topology, detected once and cached (thread-safe).
const Topology& Detect();

/// Parses a kernel cpulist string ("0-3,8,10-11") into CPU ids; returns
/// an empty vector on malformed input. Exposed for tests.
std::vector<int> ParseCpuList(const char* text);

/// Pins the calling thread to every CPU of `node` (mod num_nodes, so any
/// worker index is a valid argument). Returns false if the platform
/// cannot pin or the kernel refused; the thread is left unpinned.
bool PinCurrentThreadToNode(size_t node);

/// The default for --pin_threads / ShardedVosConfig::pin_numa_workers at
/// the tool/harness layer: the VOS_PIN environment variable if set
/// ("0"/"false"/"off" disable, anything else enables), otherwise on only
/// when the machine actually has more than one node.
bool DefaultPinThreads();

}  // namespace vos::numa

#include "common/fault_injector.h"

#include <cstdlib>

#include "common/logging.h"

namespace vos {
namespace {

/// site-name → FaultSite for the VOS_FAULTS syntax.
bool ParseSite(const std::string& name, FaultSite* site) {
  for (uint8_t s = 0; s <= static_cast<uint8_t>(FaultSite::kCheckpointCrash);
       ++s) {
    if (name == FaultSiteName(static_cast<FaultSite>(s))) {
      *site = static_cast<FaultSite>(s);
      return true;
    }
  }
  return false;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kWorkerKill:
      return "worker_kill";
    case FaultSite::kUpdateThrow:
      return "update_throw";
    case FaultSite::kLaneStall:
      return "lane_stall";
    case FaultSite::kCheckpointTear:
      return "ckpt_tear";
    case FaultSite::kCheckpointCorrupt:
      return "ckpt_corrupt";
    case FaultSite::kCheckpointCrash:
      return "ckpt_crash";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::FaultInjector() {
  const char* plan = std::getenv("VOS_FAULTS");
  if (plan == nullptr || plan[0] == '\0') return;
  std::string error;
  VOS_CHECK(ArmFromString(plan, &error))
      << "malformed VOS_FAULTS plan:" << error;
}

void FaultInjector::Arm(FaultSpec spec) {
  if (spec.site == FaultSite::kLaneStall) spec.once = false;
  MutexLock lock(&mu_);
  entries_.push_back(Entry{spec});
  armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  MutexLock lock(&mu_);
  entries_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ArmFromString(const std::string& plan,
                                  std::string* error) {
  std::vector<FaultSpec> specs;
  size_t pos = 0;
  while (pos < plan.size()) {
    const size_t end = plan.find(';', pos);
    const std::string token =
        plan.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? plan.size() : end + 1;
    if (token.empty()) continue;
    const size_t colon = token.find(':');
    FaultSpec spec;
    if (!ParseSite(token.substr(0, colon), &spec.site)) {
      if (error != nullptr) *error = "unknown site '" + token + "'";
      return false;
    }
    if (colon != std::string::npos) {
      size_t kv_pos = colon + 1;
      while (kv_pos < token.size()) {
        const size_t kv_end = token.find(',', kv_pos);
        const std::string kv = token.substr(
            kv_pos, kv_end == std::string::npos ? kv_end : kv_end - kv_pos);
        kv_pos = kv_end == std::string::npos ? token.size() : kv_end + 1;
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          if (error != nullptr) *error = "expected key=value, got '" + kv + "'";
          return false;
        }
        const std::string key = kv.substr(0, eq);
        char* parse_end = nullptr;
        const long long value =
            std::strtoll(kv.c_str() + eq + 1, &parse_end, 10);
        if (parse_end == nullptr || *parse_end != '\0') {
          if (error != nullptr) *error = "bad number in '" + kv + "'";
          return false;
        }
        if (key == "after") {
          spec.after_hits = static_cast<uint64_t>(value);
        } else if (key == "shard") {
          spec.shard = value;
        } else if (key == "producer") {
          spec.producer = value;
        } else if (key == "offset") {
          spec.byte_offset = static_cast<uint64_t>(value);
        } else if (key == "delay_ms") {
          spec.delay_ms = static_cast<uint32_t>(value);
        } else {
          if (error != nullptr) *error = "unknown key '" + key + "'";
          return false;
        }
      }
    }
    specs.push_back(spec);
  }
  for (const FaultSpec& spec : specs) Arm(spec);
  return true;
}

std::optional<FaultSpec> FaultInjector::Match(FaultSite site, int64_t shard,
                                              int64_t producer) {
  MutexLock lock(&mu_);
  for (Entry& entry : entries_) {
    if (entry.fired || entry.spec.site != site) continue;
    if (entry.spec.shard >= 0 && shard >= 0 && entry.spec.shard != shard) {
      continue;
    }
    if (entry.spec.producer >= 0 && producer >= 0 &&
        entry.spec.producer != producer) {
      continue;
    }
    if (entry.hits++ < entry.spec.after_hits) continue;
    if (entry.spec.once) {
      entry.fired = true;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    fires_[static_cast<size_t>(site)].fetch_add(1,
                                                std::memory_order_relaxed);
    return entry.spec;
  }
  return std::nullopt;
}

bool FaultInjector::Fire(FaultSite site, uint32_t shard, unsigned producer) {
  if (!armed()) return false;
  return Match(site, shard, producer).has_value();
}

uint32_t FaultInjector::StallMs(uint32_t shard, unsigned producer) {
  if (!armed()) return 0;
  const std::optional<FaultSpec> spec =
      Match(FaultSite::kLaneStall, shard, producer);
  return spec.has_value() ? spec->delay_ms : 0;
}

std::optional<FaultSpec> FaultInjector::FireCheckpoint(FaultSite site) {
  if (!armed()) return std::nullopt;
  return Match(site, -1, -1);
}

}  // namespace vos

// Fixed-width text tables for the benchmark harness output.
//
// Every figure-reproduction bench prints its series as an aligned table so
// the rows can be compared directly against the paper's plots and pasted
// into EXPERIMENTS.md.

#pragma once

#include <string>
#include <vector>

namespace vos {

/// Collects rows of string cells and renders them with aligned columns.
///
/// Usage:
///   TablePrinter t({"dataset", "method", "AAPE"});
///   t.AddRow({"youtube_s", "VOS", "0.042"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with Format*() helpers below.
  size_t num_rows() const { return rows_.size(); }

  /// Renders the header, a separator, and all rows, right-aligning numeric
  /// columns (cells that parse fully as a double).
  std::string ToString() const;

  /// Formats `v` with `digits` significant digits (trailing-zero trimmed).
  static std::string FormatDouble(double v, int digits = 4);

  /// Formats an integer count.
  static std::string FormatInt(int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vos

// AVX2 kernel table. Compiled with -mavx2 -mpopcnt (per-file flags in
// CMakeLists.txt); everything here must stay behind the runtime probe in
// kernels.cc, so this file includes no project headers beyond the
// declaration-only kernels_internal.h — see the ODR note there.
//
// Popcounts use the Harley–Seal carry-save tree over 16-vector (64-word)
// blocks with the Muła nibble-LUT byte popcount underneath — one
// PopcountBytes per 4 words in the steady state instead of four. Hashing
// kernels run 4 lanes of 64-bit arithmetic per vector; 64-bit multiplies
// (AVX2 has none) are assembled from _mm256_mul_epu32 cross terms, exact
// mod 2^64 for Mullo64 and exact full-width for MulHi64 (each partial
// sum stays below 2^64, so no carries are lost). Ragged tails (n % lane
// count) always fall through to the Scalar* reference kernels.

#include "common/kernels_internal.h"

#if defined(VOS_KERNELS_AVX2)

#include <immintrin.h>

namespace vos::kernels::internal {
namespace {

// ------------------------------------------------------------ popcount core

/// Per-byte popcount of v (Muła): nibble LUT via PSHUFB, high + low.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// Per-64-bit-lane popcount of v.
inline __m256i PopcountLanes(__m256i v) {
  return _mm256_sad_epu8(PopcountBytes(v), _mm256_setzero_si256());
}

/// Sum of the four 64-bit lanes.
inline size_t HorizontalSum(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<size_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<size_t>(_mm_extract_epi64(sum, 1));
}

/// Carry-save adder: {h, l} = a + b + c per bit position.
inline void Csa(__m256i& h, __m256i& l, __m256i a, __m256i b, __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

inline __m256i LoadXor(const uint64_t* a, const uint64_t* b, size_t i) {
  return _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
}

// --------------------------------------------------------------- popcounts

size_t Avx2XorPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i total = _mm256_setzero_si256();
  size_t i = 0;

  // Harley–Seal over 64-word blocks: 16 input vectors compress through a
  // CSA tree into one "sixteens" vector per block plus carried
  // ones/twos/fours/eights, so the expensive PopcountBytes runs once per
  // 16 vectors.
  if (n >= 64) {
    __m256i ones = _mm256_setzero_si256();
    __m256i twos = _mm256_setzero_si256();
    __m256i fours = _mm256_setzero_si256();
    __m256i eights = _mm256_setzero_si256();
    for (; i + 64 <= n; i += 64) {
      __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
      Csa(twos_a, ones, ones, LoadXor(a, b, i), LoadXor(a, b, i + 4));
      Csa(twos_b, ones, ones, LoadXor(a, b, i + 8), LoadXor(a, b, i + 12));
      Csa(fours_a, twos, twos, twos_a, twos_b);
      Csa(twos_a, ones, ones, LoadXor(a, b, i + 16), LoadXor(a, b, i + 20));
      Csa(twos_b, ones, ones, LoadXor(a, b, i + 24), LoadXor(a, b, i + 28));
      Csa(fours_b, twos, twos, twos_a, twos_b);
      Csa(eights_a, fours, fours, fours_a, fours_b);
      Csa(twos_a, ones, ones, LoadXor(a, b, i + 32), LoadXor(a, b, i + 36));
      Csa(twos_b, ones, ones, LoadXor(a, b, i + 40), LoadXor(a, b, i + 44));
      Csa(fours_a, twos, twos, twos_a, twos_b);
      Csa(twos_a, ones, ones, LoadXor(a, b, i + 48), LoadXor(a, b, i + 52));
      Csa(twos_b, ones, ones, LoadXor(a, b, i + 56), LoadXor(a, b, i + 60));
      Csa(fours_b, twos, twos, twos_a, twos_b);
      Csa(eights_b, fours, fours, fours_a, fours_b);
      Csa(sixteens, eights, eights, eights_a, eights_b);
      total = _mm256_add_epi64(total, PopcountLanes(sixteens));
    }
    total = _mm256_slli_epi64(total, 4);
    total = _mm256_add_epi64(total,
                             _mm256_slli_epi64(PopcountLanes(eights), 3));
    total = _mm256_add_epi64(total,
                             _mm256_slli_epi64(PopcountLanes(fours), 2));
    total = _mm256_add_epi64(total,
                             _mm256_slli_epi64(PopcountLanes(twos), 1));
    total = _mm256_add_epi64(total, PopcountLanes(ones));
  }

  for (; i + 4 <= n; i += 4) {
    total = _mm256_add_epi64(total, PopcountLanes(LoadXor(a, b, i)));
  }
  size_t count = HorizontalSum(total);
  if (i < n) count += ScalarXorPopcount(a + i, b + i, n - i);
  return count;
}

void Avx2XorPopcount8(const uint64_t* a, const uint64_t* b_base, size_t stride,
                      size_t n, size_t out[8]) {
  __m256i acc[8];
  for (int t = 0; t < 8; ++t) acc[t] = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a_vec =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    for (int t = 0; t < 8; ++t) {
      const __m256i b_vec = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b_base + t * stride + i));
      acc[t] = _mm256_add_epi64(
          acc[t], PopcountLanes(_mm256_xor_si256(a_vec, b_vec)));
    }
  }
  for (int t = 0; t < 8; ++t) out[t] = HorizontalSum(acc[t]);
  if (i < n) {
    for (int t = 0; t < 8; ++t) {
      out[t] += ScalarXorPopcount(a + i, b_base + t * stride + i, n - i);
    }
  }
}

void Avx2XorPopcount2x4(const uint64_t* a0, const uint64_t* a1,
                        const uint64_t* b_base, size_t stride, size_t n,
                        size_t out[8]) {
  __m256i acc[8];
  for (int t = 0; t < 8; ++t) acc[t] = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a0_vec =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + i));
    const __m256i a1_vec =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + i));
    for (int t = 0; t < 4; ++t) {
      const __m256i b_vec = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b_base + t * stride + i));
      acc[t] = _mm256_add_epi64(
          acc[t], PopcountLanes(_mm256_xor_si256(a0_vec, b_vec)));
      acc[4 + t] = _mm256_add_epi64(
          acc[4 + t], PopcountLanes(_mm256_xor_si256(a1_vec, b_vec)));
    }
  }
  for (int t = 0; t < 8; ++t) out[t] = HorizontalSum(acc[t]);
  if (i < n) {
    for (int t = 0; t < 4; ++t) {
      out[t] += ScalarXorPopcount(a0 + i, b_base + t * stride + i, n - i);
      out[4 + t] += ScalarXorPopcount(a1 + i, b_base + t * stride + i, n - i);
    }
  }
}

size_t Avx2PopcountWords(const uint64_t* a, size_t n) {
  __m256i total = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    total = _mm256_add_epi64(
        total, PopcountLanes(_mm256_loadu_si256(
                   reinterpret_cast<const __m256i*>(a + i))));
  }
  size_t count = HorizontalSum(total);
  if (i < n) count += ScalarPopcountWords(a + i, n - i);
  return count;
}

// ------------------------------------------------------------- 64-bit hash

/// a·b mod 2^64 per lane (AVX2 has no 64-bit multiply): lo·lo plus the
/// two 32-bit cross terms shifted up.
inline __m256i Mullo64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

/// High 64 bits of a·b per lane, exact: four 32×32 partial products with
/// the low-half carry folded in. Every partial sum is < 2^64.
inline __m256i MulHi64(__m256i a, __m256i b) {
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i carry = _mm256_srli_epi64(
      _mm256_add_epi64(_mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                                        _mm256_and_si256(lh, mask32)),
                       _mm256_and_si256(hl, mask32)),
      32);
  return _mm256_add_epi64(
      _mm256_add_epi64(hh, carry),
      _mm256_add_epi64(_mm256_srli_epi64(lh, 32), _mm256_srli_epi64(hl, 32)));
}

/// hash::Mix64, 4 lanes (murmur3 finalizer).
inline __m256i Mix64Lanes(__m256i x) {
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mullo64(x, _mm256_set1_epi64x(static_cast<long long>(kMix64Mul1)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mullo64(x, _mm256_set1_epi64x(static_cast<long long>(kMix64Mul2)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  return x;
}

/// hash::Mix64V2, 4 lanes (splitmix64 Mix13 finalizer).
inline __m256i Mix64V2Lanes(__m256i x) {
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = Mullo64(x, _mm256_set1_epi64x(static_cast<long long>(kMix64V2Mul1)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = Mullo64(x, _mm256_set1_epi64x(static_cast<long long>(kMix64V2Mul2)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
  return x;
}

// --------------------------------------------------------------- extraction

void Avx2ExtractBits(const uint64_t* array_words, const uint64_t* seeds,
                     uint32_t k, uint64_t user, uint64_t m, uint64_t* dst,
                     uint32_t* cells) {
  const __m256i user_vec = _mm256_set1_epi64x(static_cast<long long>(user));
  const __m256i golden = _mm256_set1_epi64x(static_cast<long long>(kGolden));
  const __m256i m_vec = _mm256_set1_epi64x(static_cast<long long>(m));
  const __m256i bit_mask = _mm256_set1_epi64x(1);
  uint64_t word = 0;
  uint32_t j = 0;
  for (; j + 4 <= k; j += 4) {
    const __m256i seed_vec =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(seeds + j));
    // hash::Hash64(user, seed) = Mix64V2(Mix64(user ^ seed·φ) + seed).
    __m256i h = _mm256_xor_si256(user_vec, Mullo64(seed_vec, golden));
    h = Mix64V2Lanes(_mm256_add_epi64(Mix64Lanes(h), seed_vec));
    // hash::ReduceToRange: cell = (h·m) >> 64.
    const __m256i cell = MulHi64(h, m_vec);
    if (cells != nullptr) {
      alignas(32) uint64_t cell_lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(cell_lanes), cell);
      for (int t = 0; t < 4; ++t) {
        cells[j + t] = static_cast<uint32_t>(cell_lanes[t]);
      }
    }
    const __m256i gathered = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(array_words),
        _mm256_srli_epi64(cell, 6), 8);
    const __m256i bits = _mm256_and_si256(
        _mm256_srlv_epi64(gathered, _mm256_and_si256(cell, _mm256_set1_epi64x(63))),
        bit_mask);
    // Pack the four 0/1 lanes into bits (j&63)..(j&63)+3 of the output
    // word: lane bit 0 → sign bit → movemask.
    const int lane_mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_slli_epi64(bits, 63)));
    word |= static_cast<uint64_t>(lane_mask) << (j & 63);
    if ((j & 63) == 60) {
      *dst++ = word;
      word = 0;
    }
  }
  for (; j < k; ++j) {
    const uint64_t cell = ScalarCellOf(user, seeds[j], m);
    if (cells != nullptr) cells[j] = static_cast<uint32_t>(cell);
    word |= ((array_words[cell >> 6] >> (cell & 63)) & 1) << (j & 63);
    if ((j & 63) == 63) {
      *dst++ = word;
      word = 0;
    }
  }
  if ((k & 63) != 0) *dst = word;
}

void Avx2ExtractBitsFromCells(const uint64_t* array_words,
                              const uint32_t* cells, uint32_t k,
                              uint64_t* dst) {
  const __m256i bit_mask = _mm256_set1_epi64x(1);
  const __m256i low6 = _mm256_set1_epi64x(63);
  uint64_t word = 0;
  uint32_t j = 0;
  for (; j + 4 <= k; j += 4) {
    const __m256i cell = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + j)));
    const __m256i gathered = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(array_words),
        _mm256_srli_epi64(cell, 6), 8);
    const __m256i bits = _mm256_and_si256(
        _mm256_srlv_epi64(gathered, _mm256_and_si256(cell, low6)), bit_mask);
    const int lane_mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_slli_epi64(bits, 63)));
    word |= static_cast<uint64_t>(lane_mask) << (j & 63);
    if ((j & 63) == 60) {
      *dst++ = word;
      word = 0;
    }
  }
  for (; j < k; ++j) {
    const uint32_t cell = cells[j];
    word |= ((array_words[cell >> 6] >> (cell & 63)) & 1) << (j & 63);
    if ((j & 63) == 63) {
      *dst++ = word;
      word = 0;
    }
  }
  if ((k & 63) != 0) *dst = word;
}

// ------------------------------------------------------------------ routing

// Routing stays scalar at the AVX2 level: Mix64 is two 64-bit multiplies
// per user, and AVX2 has no 64-bit multiply — the three-pmuludq emulation
// plus lane widening measured consistently SLOWER than the scalar loop
// (~0.85× on micro_ingest_path's routing phase), so vectorizing here
// would regress the ingest hot path on AVX2-only machines. AVX-512 has
// native vpmullq and keeps its vector implementation.

// ---------------------------------------------------------------- band keys

void Avx2BandKeys(const uint64_t* row, size_t words, uint32_t bands,
                  uint32_t rows_per_band, uint64_t* keys) {
  const uint64_t key_mask = rows_per_band == 64
                                ? ~uint64_t{0}
                                : ((uint64_t{1} << rows_per_band) - 1);
  const __m256i mask_vec =
      _mm256_set1_epi64x(static_cast<long long>(key_mask));
  const __m256i low6 = _mm256_set1_epi64x(63);
  const __m256i sixty_four = _mm256_set1_epi64x(64);
  const __m256i last_word =
      _mm256_set1_epi64x(static_cast<long long>(words - 1));
  const __m256i step =
      _mm256_set1_epi64x(static_cast<long long>(4 * rows_per_band));
  __m256i begin = _mm256_setr_epi64x(
      0, static_cast<long long>(rows_per_band),
      static_cast<long long>(2 * rows_per_band),
      static_cast<long long>(3 * rows_per_band));
  uint32_t b = 0;
  for (; b + 4 <= bands; b += 4, begin = _mm256_add_epi64(begin, step)) {
    const __m256i w = _mm256_srli_epi64(begin, 6);
    const __m256i off = _mm256_and_si256(begin, low6);
    // Second word index clamped into range: lanes whose slice does not
    // span a boundary shift it out entirely (variable shifts ≥ 64 yield
    // 0 on AVX2), so the clamp only prevents the out-of-bounds gather.
    const __m256i w_next = _mm256_add_epi64(w, _mm256_set1_epi64x(1));
    const __m256i w2 = _mm256_blendv_epi8(
        w_next, last_word, _mm256_cmpgt_epi64(w_next, last_word));
    const long long* base = reinterpret_cast<const long long*>(row);
    const __m256i g1 = _mm256_i64gather_epi64(base, w, 8);
    const __m256i g2 = _mm256_i64gather_epi64(base, w2, 8);
    const __m256i v = _mm256_or_si256(
        _mm256_srlv_epi64(g1, off),
        _mm256_sllv_epi64(g2, _mm256_sub_epi64(sixty_four, off)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + b),
                        _mm256_and_si256(v, mask_vec));
  }
  for (; b < bands; ++b) {
    keys[b] = ScalarBandKeyAt(row, b * rows_per_band, rows_per_band);
  }
}

constexpr KernelTable kAvx2Table = {
    Avx2XorPopcount,
    Avx2XorPopcount8,
    Avx2XorPopcount2x4,
    Avx2PopcountWords,
    Avx2ExtractBits,
    Avx2ExtractBitsFromCells,
    ScalarRouteBatch,  // see the routing note above: scalar wins on AVX2
    Avx2BandKeys,
    DispatchLevel::kAvx2,
    "avx2",
};

}  // namespace

const KernelTable* Avx2Kernels() { return &kAvx2Table; }

}  // namespace vos::kernels::internal

#else  // !VOS_KERNELS_AVX2

namespace vos::kernels::internal {
const KernelTable* Avx2Kernels() { return nullptr; }
}  // namespace vos::kernels::internal

#endif

// Deterministic pseudo-random number generation for libvos.
//
// Every stochastic component in the library (generators, samplers, seeds for
// hash families) draws from Rng, a xoshiro256** generator seeded via
// SplitMix64. All constructors take explicit 64-bit seeds so experiments are
// reproducible bit-for-bit (DESIGN.md §5.6). <random> engines are avoided in
// library code because their sequences are not portable across standard
// library implementations.

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace vos {

/// SplitMix64 step: advances `state` and returns a well-mixed 64-bit value.
///
/// Used both as a stand-alone mixer and to expand a single user seed into
/// the 256-bit xoshiro state.
inline uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  /// Seeds deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed = 0x6f5902ac237024bdULL) { Seed(seed); }

  /// Re-seeds the generator (same expansion as the constructor).
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(sm);
  }

  /// Next raw 64-bit output.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  ///
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound) {
    VOS_DCHECK(bound > 0);
    // 128-bit multiply-high with rejection to remove modulo bias.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// Samples from a Zipf distribution over ranks {0, 1, …, n−1} with exponent
/// `alpha`: P(rank = r) ∝ 1 / (r + 1)^alpha.
///
/// Heavy-tailed item popularity / user activity in the synthetic datasets is
/// generated with this sampler (DESIGN.md §2, dataset substitution). Uses an
/// inverted-CDF table, so construction is O(n) and each sample is
/// O(log n).
class ZipfSampler {
 public:
  /// `n` must be ≥ 1; `alpha` ≥ 0 (0 degenerates to the uniform
  /// distribution).
  ZipfSampler(size_t n, double alpha);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank ≤ r), cdf_.back() == 1.
};

}  // namespace vos

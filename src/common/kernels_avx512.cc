// AVX-512 kernel table. Compiled with F+BW+VL+DQ+VPOPCNTDQ per-file
// flags (CMakeLists.txt); kernels.cc only hands this table out when the
// running CPU reports all five features, so VPOPCNTDQ is used
// unconditionally here (Ice Lake and later; Skylake-X falls back to the
// AVX2 table). Same ODR rule as the AVX2 file: no project headers beyond
// kernels_internal.h.
//
// Relative to AVX2 the wins are structural: native 64-bit popcount
// (VPOPCNTDQ) replaces the whole Harley–Seal tree, masked loads make
// word tails branch-free in-vector (no scalar fallback on the popcount
// kernels), native 64-bit mullo (DQ) shortens the hash lanes, and
// compare-into-mask packs extraction bits without the movemask dance.

#include "common/kernels_internal.h"

#if defined(VOS_KERNELS_AVX512)

#include <immintrin.h>

namespace vos::kernels::internal {
namespace {

inline __m512i LoadXor(const uint64_t* a, const uint64_t* b, size_t i) {
  return _mm512_xor_si512(_mm512_loadu_si512(a + i),
                          _mm512_loadu_si512(b + i));
}

/// Tail mask selecting the low `n` (< 8) lanes.
inline __mmask8 TailMask(size_t n) {
  return static_cast<__mmask8>((1u << n) - 1);
}

// --------------------------------------------------------------- popcounts

size_t Avx512XorPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(LoadXor(a, b, i)));
    acc1 = _mm512_add_epi64(acc1, _mm512_popcnt_epi64(LoadXor(a, b, i + 8)));
  }
  if (i + 8 <= n) {
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(LoadXor(a, b, i)));
    i += 8;
  }
  if (i < n) {
    const __mmask8 mask = TailMask(n - i);
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(
                  _mm512_xor_si512(_mm512_maskz_loadu_epi64(mask, a + i),
                                   _mm512_maskz_loadu_epi64(mask, b + i))));
  }
  return static_cast<size_t>(
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)));
}

void Avx512XorPopcount8(const uint64_t* a, const uint64_t* b_base,
                        size_t stride, size_t n, size_t out[8]) {
  __m512i acc[8];
  for (int t = 0; t < 8; ++t) acc[t] = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a_vec = _mm512_loadu_si512(a + i);
    for (int t = 0; t < 8; ++t) {
      const __m512i b_vec = _mm512_loadu_si512(b_base + t * stride + i);
      acc[t] = _mm512_add_epi64(
          acc[t], _mm512_popcnt_epi64(_mm512_xor_si512(a_vec, b_vec)));
    }
  }
  if (i < n) {
    const __mmask8 mask = TailMask(n - i);
    const __m512i a_vec = _mm512_maskz_loadu_epi64(mask, a + i);
    for (int t = 0; t < 8; ++t) {
      const __m512i b_vec =
          _mm512_maskz_loadu_epi64(mask, b_base + t * stride + i);
      acc[t] = _mm512_add_epi64(
          acc[t], _mm512_popcnt_epi64(_mm512_xor_si512(a_vec, b_vec)));
    }
  }
  for (int t = 0; t < 8; ++t) {
    out[t] = static_cast<size_t>(_mm512_reduce_add_epi64(acc[t]));
  }
}

void Avx512XorPopcount2x4(const uint64_t* a0, const uint64_t* a1,
                          const uint64_t* b_base, size_t stride, size_t n,
                          size_t out[8]) {
  __m512i acc[8];
  for (int t = 0; t < 8; ++t) acc[t] = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a0_vec = _mm512_loadu_si512(a0 + i);
    const __m512i a1_vec = _mm512_loadu_si512(a1 + i);
    for (int t = 0; t < 4; ++t) {
      const __m512i b_vec = _mm512_loadu_si512(b_base + t * stride + i);
      acc[t] = _mm512_add_epi64(
          acc[t], _mm512_popcnt_epi64(_mm512_xor_si512(a0_vec, b_vec)));
      acc[4 + t] = _mm512_add_epi64(
          acc[4 + t], _mm512_popcnt_epi64(_mm512_xor_si512(a1_vec, b_vec)));
    }
  }
  if (i < n) {
    const __mmask8 mask = TailMask(n - i);
    const __m512i a0_vec = _mm512_maskz_loadu_epi64(mask, a0 + i);
    const __m512i a1_vec = _mm512_maskz_loadu_epi64(mask, a1 + i);
    for (int t = 0; t < 4; ++t) {
      const __m512i b_vec =
          _mm512_maskz_loadu_epi64(mask, b_base + t * stride + i);
      acc[t] = _mm512_add_epi64(
          acc[t], _mm512_popcnt_epi64(_mm512_xor_si512(a0_vec, b_vec)));
      acc[4 + t] = _mm512_add_epi64(
          acc[4 + t], _mm512_popcnt_epi64(_mm512_xor_si512(a1_vec, b_vec)));
    }
  }
  for (int t = 0; t < 8; ++t) {
    out[t] = static_cast<size_t>(_mm512_reduce_add_epi64(acc[t]));
  }
}

size_t Avx512PopcountWords(const uint64_t* a, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  if (i < n) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(
                 _mm512_maskz_loadu_epi64(TailMask(n - i), a + i)));
  }
  return static_cast<size_t>(_mm512_reduce_add_epi64(acc));
}

// ------------------------------------------------------------- 64-bit hash

/// High 64 bits of a·b per lane (no native instruction even on AVX-512):
/// same exact cross-term assembly as the AVX2 file, 8 lanes wide.
inline __m512i MulHi64(__m512i a, __m512i b) {
  const __m512i mask32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i ll = _mm512_mul_epu32(a, b);
  const __m512i lh = _mm512_mul_epu32(a, b_hi);
  const __m512i hl = _mm512_mul_epu32(a_hi, b);
  const __m512i hh = _mm512_mul_epu32(a_hi, b_hi);
  const __m512i carry = _mm512_srli_epi64(
      _mm512_add_epi64(_mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                                        _mm512_and_si512(lh, mask32)),
                       _mm512_and_si512(hl, mask32)),
      32);
  return _mm512_add_epi64(
      _mm512_add_epi64(hh, carry),
      _mm512_add_epi64(_mm512_srli_epi64(lh, 32), _mm512_srli_epi64(hl, 32)));
}

/// hash::Mix64, 8 lanes (native 64-bit mullo via AVX-512DQ).
inline __m512i Mix64Lanes(__m512i x) {
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
  x = _mm512_mullo_epi64(
      x, _mm512_set1_epi64(static_cast<long long>(kMix64Mul1)));
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
  x = _mm512_mullo_epi64(
      x, _mm512_set1_epi64(static_cast<long long>(kMix64Mul2)));
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
  return x;
}

/// hash::Mix64V2, 8 lanes.
inline __m512i Mix64V2Lanes(__m512i x) {
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 30));
  x = _mm512_mullo_epi64(
      x, _mm512_set1_epi64(static_cast<long long>(kMix64V2Mul1)));
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 27));
  x = _mm512_mullo_epi64(
      x, _mm512_set1_epi64(static_cast<long long>(kMix64V2Mul2)));
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
  return x;
}

// --------------------------------------------------------------- extraction

void Avx512ExtractBits(const uint64_t* array_words, const uint64_t* seeds,
                       uint32_t k, uint64_t user, uint64_t m, uint64_t* dst,
                       uint32_t* cells) {
  const __m512i user_vec = _mm512_set1_epi64(static_cast<long long>(user));
  const __m512i golden = _mm512_set1_epi64(static_cast<long long>(kGolden));
  const __m512i m_vec = _mm512_set1_epi64(static_cast<long long>(m));
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i low6 = _mm512_set1_epi64(63);
  uint64_t word = 0;
  uint32_t j = 0;
  for (; j + 8 <= k; j += 8) {
    const __m512i seed_vec = _mm512_loadu_si512(seeds + j);
    __m512i h = _mm512_xor_si512(user_vec,
                                 _mm512_mullo_epi64(seed_vec, golden));
    h = Mix64V2Lanes(_mm512_add_epi64(Mix64Lanes(h), seed_vec));
    const __m512i cell = MulHi64(h, m_vec);
    if (cells != nullptr) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cells + j),
                          _mm512_cvtepi64_epi32(cell));
    }
    const __m512i gathered =
        _mm512_i64gather_epi64(_mm512_srli_epi64(cell, 6), array_words, 8);
    // Lane t's digest bit, tested straight into a mask register: bit t
    // of the mask is ((gathered >> (cell & 63)) & 1).
    const __mmask8 lane_mask = _mm512_test_epi64_mask(
        _mm512_srlv_epi64(gathered, _mm512_and_si512(cell, low6)), one);
    word |= static_cast<uint64_t>(lane_mask) << (j & 63);
    if ((j & 63) == 56) {
      *dst++ = word;
      word = 0;
    }
  }
  for (; j < k; ++j) {
    const uint64_t cell = ScalarCellOf(user, seeds[j], m);
    if (cells != nullptr) cells[j] = static_cast<uint32_t>(cell);
    word |= ((array_words[cell >> 6] >> (cell & 63)) & 1) << (j & 63);
    if ((j & 63) == 63) {
      *dst++ = word;
      word = 0;
    }
  }
  if ((k & 63) != 0) *dst = word;
}

void Avx512ExtractBitsFromCells(const uint64_t* array_words,
                                const uint32_t* cells, uint32_t k,
                                uint64_t* dst) {
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i low6 = _mm512_set1_epi64(63);
  uint64_t word = 0;
  uint32_t j = 0;
  for (; j + 8 <= k; j += 8) {
    const __m512i cell = _mm512_cvtepu32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + j)));
    const __m512i gathered =
        _mm512_i64gather_epi64(_mm512_srli_epi64(cell, 6), array_words, 8);
    const __mmask8 lane_mask = _mm512_test_epi64_mask(
        _mm512_srlv_epi64(gathered, _mm512_and_si512(cell, low6)), one);
    word |= static_cast<uint64_t>(lane_mask) << (j & 63);
    if ((j & 63) == 56) {
      *dst++ = word;
      word = 0;
    }
  }
  for (; j < k; ++j) {
    const uint32_t cell = cells[j];
    word |= ((array_words[cell >> 6] >> (cell & 63)) & 1) << (j & 63);
    if ((j & 63) == 63) {
      *dst++ = word;
      word = 0;
    }
  }
  if ((k & 63) != 0) *dst = word;
}

// ------------------------------------------------------------------ routing

void Avx512RouteBatch(const uint32_t* users, size_t n, uint64_t seed_mix,
                      uint32_t num_shards, const uint32_t* local_of,
                      uint16_t* shards, uint32_t* locals) {
  const __m512i mix_vec = _mm512_set1_epi64(static_cast<long long>(seed_mix));
  const __m512i shards_vec =
      _mm512_set1_epi64(static_cast<long long>(num_shards));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i u32x8 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(users + i));
    const __m512i u64x8 = _mm512_cvtepu32_epi64(u32x8);
    const __m512i h = Mix64Lanes(_mm512_xor_si512(u64x8, mix_vec));
    // ReduceToRange for num_shards < 2^32:
    // (h_hi·S + ((h_lo·S) >> 32)) >> 32.
    const __m512i hi_s =
        _mm512_mul_epu32(_mm512_srli_epi64(h, 32), shards_vec);
    const __m512i lo_s = _mm512_mul_epu32(h, shards_vec);
    const __m512i shard = _mm512_srli_epi64(
        _mm512_add_epi64(hi_s, _mm512_srli_epi64(lo_s, 32)), 32);
    // shard < num_shards ≤ 0xffff, so the 64→16 narrowing is lossless.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(shards + i),
                     _mm512_cvtepi64_epi16(shard));
    if (local_of != nullptr) {
      const __m256i gathered = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(local_of), u32x8, 4);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(locals + i), gathered);
    }
  }
  if (i < n) {
    ScalarRouteBatch(users + i, n - i, seed_mix, num_shards, local_of,
                     shards + i, locals == nullptr ? nullptr : locals + i);
  }
}

// ---------------------------------------------------------------- band keys

void Avx512BandKeys(const uint64_t* row, size_t words, uint32_t bands,
                    uint32_t rows_per_band, uint64_t* keys) {
  const uint64_t key_mask = rows_per_band == 64
                                ? ~uint64_t{0}
                                : ((uint64_t{1} << rows_per_band) - 1);
  const __m512i mask_vec = _mm512_set1_epi64(static_cast<long long>(key_mask));
  const __m512i low6 = _mm512_set1_epi64(63);
  const __m512i sixty_four = _mm512_set1_epi64(64);
  const __m512i last_word =
      _mm512_set1_epi64(static_cast<long long>(words - 1));
  const __m512i step =
      _mm512_set1_epi64(static_cast<long long>(8 * rows_per_band));
  const __m512i lane_ids = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  __m512i begin = _mm512_mullo_epi64(
      lane_ids, _mm512_set1_epi64(static_cast<long long>(rows_per_band)));
  uint32_t b = 0;
  for (; b + 8 <= bands; b += 8, begin = _mm512_add_epi64(begin, step)) {
    const __m512i w = _mm512_srli_epi64(begin, 6);
    const __m512i off = _mm512_and_si512(begin, low6);
    // Clamp the spill-word index (memory safety only; lanes that do not
    // span a boundary shift the spill word out entirely).
    const __m512i w2 = _mm512_min_epu64(
        _mm512_add_epi64(w, _mm512_set1_epi64(1)), last_word);
    const __m512i g1 = _mm512_i64gather_epi64(w, row, 8);
    const __m512i g2 = _mm512_i64gather_epi64(w2, row, 8);
    const __m512i v = _mm512_or_si512(
        _mm512_srlv_epi64(g1, off),
        _mm512_sllv_epi64(g2, _mm512_sub_epi64(sixty_four, off)));
    _mm512_storeu_si512(keys + b, _mm512_and_si512(v, mask_vec));
  }
  for (; b < bands; ++b) {
    keys[b] = ScalarBandKeyAt(row, b * rows_per_band, rows_per_band);
  }
}

constexpr KernelTable kAvx512Table = {
    Avx512XorPopcount,
    Avx512XorPopcount8,
    Avx512XorPopcount2x4,
    Avx512PopcountWords,
    Avx512ExtractBits,
    Avx512ExtractBitsFromCells,
    Avx512RouteBatch,
    Avx512BandKeys,
    DispatchLevel::kAvx512,
    "avx512",
};

}  // namespace

const KernelTable* Avx512Kernels() { return &kAvx512Table; }

}  // namespace vos::kernels::internal

#else  // !VOS_KERNELS_AVX512

namespace vos::kernels::internal {
const KernelTable* Avx512Kernels() { return nullptr; }
}  // namespace vos::kernels::internal

#endif

// NEON kernel table (aarch64, where NEON is baseline — so no runtime
// probe is needed beyond "this TU was compiled in"). Popcounts use
// vcntq_u8 + the widening pairwise-add ladder; the gather-shaped kernels
// (extraction, routing, band keys) have no NEON gather to build on, so
// they alias the scalar reference — the table still wins on the
// popcount-bound query path. Same ODR rule as the other ISA files: no
// project headers beyond kernels_internal.h.

#include "common/kernels_internal.h"

#if defined(VOS_KERNELS_NEON)

#include <arm_neon.h>

namespace vos::kernels::internal {
namespace {

/// Per-64-bit-lane popcount of v.
inline uint64x2_t PopcountLanes(uint64x2_t v) {
  return vpaddlq_u32(
      vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))));
}

inline uint64x2_t LoadXor(const uint64_t* a, const uint64_t* b, size_t i) {
  return veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
}

size_t NeonXorPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64x2_t acc0 = vdupq_n_u64(0);
  uint64x2_t acc1 = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vaddq_u64(acc0, PopcountLanes(LoadXor(a, b, i)));
    acc1 = vaddq_u64(acc1, PopcountLanes(LoadXor(a, b, i + 2)));
  }
  size_t count = static_cast<size_t>(vaddvq_u64(vaddq_u64(acc0, acc1)));
  if (i < n) count += ScalarXorPopcount(a + i, b + i, n - i);
  return count;
}

void NeonXorPopcount8(const uint64_t* a, const uint64_t* b_base, size_t stride,
                      size_t n, size_t out[8]) {
  uint64x2_t acc[8];
  for (int t = 0; t < 8; ++t) acc[t] = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t a_vec = vld1q_u64(a + i);
    for (int t = 0; t < 8; ++t) {
      acc[t] = vaddq_u64(
          acc[t],
          PopcountLanes(veorq_u64(a_vec, vld1q_u64(b_base + t * stride + i))));
    }
  }
  for (int t = 0; t < 8; ++t) out[t] = static_cast<size_t>(vaddvq_u64(acc[t]));
  if (i < n) {
    for (int t = 0; t < 8; ++t) {
      out[t] += ScalarXorPopcount(a + i, b_base + t * stride + i, n - i);
    }
  }
}

void NeonXorPopcount2x4(const uint64_t* a0, const uint64_t* a1,
                        const uint64_t* b_base, size_t stride, size_t n,
                        size_t out[8]) {
  uint64x2_t acc[8];
  for (int t = 0; t < 8; ++t) acc[t] = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t a0_vec = vld1q_u64(a0 + i);
    const uint64x2_t a1_vec = vld1q_u64(a1 + i);
    for (int t = 0; t < 4; ++t) {
      const uint64x2_t b_vec = vld1q_u64(b_base + t * stride + i);
      acc[t] = vaddq_u64(acc[t], PopcountLanes(veorq_u64(a0_vec, b_vec)));
      acc[4 + t] =
          vaddq_u64(acc[4 + t], PopcountLanes(veorq_u64(a1_vec, b_vec)));
    }
  }
  for (int t = 0; t < 8; ++t) out[t] = static_cast<size_t>(vaddvq_u64(acc[t]));
  if (i < n) {
    for (int t = 0; t < 4; ++t) {
      out[t] += ScalarXorPopcount(a0 + i, b_base + t * stride + i, n - i);
      out[4 + t] += ScalarXorPopcount(a1 + i, b_base + t * stride + i, n - i);
    }
  }
}

size_t NeonPopcountWords(const uint64_t* a, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_u64(acc, PopcountLanes(vld1q_u64(a + i)));
  }
  size_t count = static_cast<size_t>(vaddvq_u64(acc));
  if (i < n) count += ScalarPopcountWords(a + i, n - i);
  return count;
}

constexpr KernelTable kNeonTable = {
    NeonXorPopcount,
    NeonXorPopcount8,
    NeonXorPopcount2x4,
    NeonPopcountWords,
    ScalarExtractBits,
    ScalarExtractBitsFromCells,
    ScalarRouteBatch,
    ScalarBandKeys,
    DispatchLevel::kNeon,
    "neon",
};

}  // namespace

const KernelTable* NeonKernels() { return &kNeonTable; }

}  // namespace vos::kernels::internal

#else  // !VOS_KERNELS_NEON

namespace vos::kernels::internal {
const KernelTable* NeonKernels() { return nullptr; }
}  // namespace vos::kernels::internal

#endif

#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace vos {

ZipfSampler::ZipfSampler(size_t n, double alpha) {
  VOS_CHECK(n >= 1) << "ZipfSampler needs at least one rank";
  VOS_CHECK(alpha >= 0.0) << "Zipf exponent must be non-negative, got" << alpha;
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding shortfall
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace vos

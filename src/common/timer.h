// Wall-clock timing for the runtime experiments (Figure 2).

#pragma once

#include <chrono>

namespace vos {

/// Monotonic stopwatch. Starts running on construction; `Restart()` resets.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vos

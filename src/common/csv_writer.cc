#include "common/csv_writer.h"

namespace vos {

StatusOr<CsvWriter> CsvWriter::Open(const std::string& path,
                                    const std::vector<std::string>& header) {
  if (header.empty()) {
    return Status::InvalidArgument("CSV header must not be empty");
  }
  CsvWriter writer;
  writer.out_.open(path, std::ios::out | std::ios::trunc);
  if (!writer.out_.is_open()) {
    return Status::IoError("cannot open CSV file for writing: " + path);
  }
  writer.arity_ = header.size();
  VOS_RETURN_IF_ERROR(writer.WriteRow(header));
  return writer;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("CSV writer is closed");
  }
  if (cells.size() != arity_) {
    return Status::InvalidArgument("CSV row arity mismatch");
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeCell(cells[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IoError("CSV write failed");
  return Status::OK();
}

Status CsvWriter::Close() {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("CSV writer already closed");
  }
  out_.close();
  if (out_.fail()) return Status::IoError("CSV close failed");
  return Status::OK();
}

std::string CsvWriter::EscapeCell(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace vos

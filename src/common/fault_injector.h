// Deterministic fault injection for the ingest fabric and the checkpoint
// writer.
//
// Production code is sprinkled with cheap probes at its failure sites
// (worker apply loop, lane drain, checkpoint commit). When nothing is
// armed every probe is a single relaxed atomic load — the hot paths stay
// at their measured cost. Tests (and, via the VOS_FAULTS environment
// variable, whole processes) arm FaultSpecs that fire deterministically:
// each spec counts the probes that match its site/shard/producer filter
// and fires on exactly the (after_hits + 1)-th match. Determinism comes
// from that exact counting — a recovery matrix derives `after_hits` from
// its loop indices/seed and replays the identical crash every run; no
// wall-clock or RNG is consulted.
//
// Sites:
//   kWorkerKill        — a shard worker thread exits mid-batch, exactly as
//                        if the thread crashed: its queued batches are
//                        lost and its shards are poisoned.
//   kUpdateThrow       — the apply loop throws mid-batch (models a worker
//                        exception; the pipeline catches it at the worker
//                        boundary and poisons the shard).
//   kLaneStall         — the worker sleeps `delay_ms` before applying each
//                        matching lane's batch (starvation; drives the
//                        enqueue/Flush deadline paths). Persistent by
//                        default (`once = false` is forced).
//   kCheckpointTear    — the checkpoint commit writes only the first
//                        `byte_offset` bytes to the final path and reports
//                        success: a silently torn write.
//   kCheckpointCorrupt — one byte at `byte_offset` is flipped before the
//                        (otherwise normal) durable commit: bit rot.
//   kCheckpointCrash   — the process "crashes" after writing the temp file
//                        but before the rename: Save returns IoError and
//                        the previous checkpoint must remain intact.
//
// VOS_FAULTS syntax (';'-separated specs):
//   site[:key=value,...]   keys: after, shard, producer, offset, delay_ms
//   e.g. VOS_FAULTS="update_throw:shard=1,after=3;ckpt_tear:offset=100"
//
// Thread-safety: Arm/DisarmAll and every probe are safe from any thread.
// Probes on distinct sites never serialize unless something is armed.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace vos {

/// Where a fault can be injected (see file comment).
enum class FaultSite : uint8_t {
  kWorkerKill = 0,
  kUpdateThrow = 1,
  kLaneStall = 2,
  kCheckpointTear = 3,
  kCheckpointCorrupt = 4,
  kCheckpointCrash = 5,
};

/// Stable lower-case name ("worker_kill", "ckpt_tear", ...).
const char* FaultSiteName(FaultSite site);

/// One armed fault: fire at a site, optionally filtered and delayed.
struct FaultSpec {
  FaultSite site = FaultSite::kWorkerKill;
  /// Matching probes to let pass before firing (fires on match
  /// after_hits + 1).
  uint64_t after_hits = 0;
  /// Restrict to one shard / producer lane (-1 = any).
  int64_t shard = -1;
  int64_t producer = -1;
  /// kCheckpointTear: bytes kept; kCheckpointCorrupt: byte flipped.
  uint64_t byte_offset = 0;
  /// kLaneStall: sleep per matching batch, milliseconds.
  uint32_t delay_ms = 0;
  /// Disarm after the first fire (kLaneStall ignores this and stays
  /// armed until DisarmAll).
  bool once = true;
};

/// Process-wide deterministic fault injector (see file comment).
class FaultInjector {
 public:
  /// The process singleton. First access parses VOS_FAULTS (if set);
  /// a malformed plan aborts — a mistyped fault plan silently running
  /// faultless would defeat the harness.
  static FaultInjector& Global();

  void Arm(FaultSpec spec);
  void DisarmAll();

  /// Parses the VOS_FAULTS syntax and arms every spec in it. On a parse
  /// error nothing is armed and `error` (if non-null) names the bad
  /// token.
  bool ArmFromString(const std::string& plan, std::string* error);

  /// True iff any spec is armed. One relaxed load — the no-fault cost of
  /// every probe below.
  bool armed() const {
    return armed_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Probe for kWorkerKill / kUpdateThrow at (shard, producer): counts a
  /// match and returns true iff an armed spec fires now.
  bool Fire(FaultSite site, uint32_t shard, unsigned producer);

  /// Probe for kLaneStall: milliseconds to sleep before applying this
  /// batch (0 = no stall armed for this lane).
  uint32_t StallMs(uint32_t shard, unsigned producer);

  /// Probe for checkpoint-commit faults; returns the firing spec (for
  /// byte_offset) or nullopt.
  std::optional<FaultSpec> FireCheckpoint(FaultSite site);

  /// Total fires at `site` since process start (test assertions).
  uint64_t fires(FaultSite site) const {
    return fires_[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
  }

 private:
  FaultInjector();

  struct Entry {
    FaultSpec spec;
    uint64_t hits = 0;
    bool fired = false;
  };

  /// Counts a match against every armed spec of `site` passing the
  /// filter; returns the spec that fires, if any.
  std::optional<FaultSpec> Match(FaultSite site, int64_t shard,
                                 int64_t producer);

  mutable Mutex mu_;
  std::vector<Entry> entries_ VOS_GUARDED_BY(mu_);
  std::atomic<int> armed_count_{0};     // mirrors entries-not-yet-fired
  std::atomic<uint64_t> fires_[6] = {};
};

}  // namespace vos

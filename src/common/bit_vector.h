// BitVector: a fixed-size bit array with O(1) flip/set/get and an exact,
// incrementally maintained count of 1-bits.
//
// This is the storage substrate for odd sketches and the shared VOS array A.
// The paper tracks the fraction of 1-bits β with a floating-point running
// update (§IV); we instead maintain an exact integer counter updated on every
// mutation, so β = ones() / size() is exact at all times (DESIGN.md §2,
// substitution table).

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace vos {

/// Fixed-size bit array backed by 64-bit words.
///
/// All single-bit operations are O(1); `ones()` is O(1) because the 1-bit
/// count is maintained incrementally. Not thread-safe (callers own
/// synchronization, as in the single-writer streaming model of the paper).
class BitVector {
 public:
  /// Creates an all-zero bit vector with `num_bits` bits.
  explicit BitVector(size_t num_bits = 0)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0), ones_(0) {}

  /// Number of addressable bits.
  size_t size() const { return num_bits_; }

  /// Exact number of 1-bits; O(1).
  size_t ones() const { return ones_; }

  /// Fraction of 1-bits (β in the paper); 0 for an empty vector.
  double FractionOnes() const {
    return num_bits_ == 0 ? 0.0 : static_cast<double>(ones_) / num_bits_;
  }

  /// Returns bit `pos`.
  bool Get(size_t pos) const {
    VOS_DCHECK(pos < num_bits_) << "pos=" << pos << " size=" << num_bits_;
    return (words_[pos >> 6] >> (pos & 63)) & 1;
  }

  /// XORs bit `pos` with 1 and returns its new value.
  ///
  /// This is the single operation VOS performs per stream element
  /// (A[f_ψ(i)(u)] ← A[f_ψ(i)(u)] ⊕ 1).
  bool Flip(size_t pos) {
    VOS_DCHECK(pos < num_bits_) << "pos=" << pos << " size=" << num_bits_;
    const uint64_t mask = uint64_t{1} << (pos & 63);
    uint64_t& word = words_[pos >> 6];
    word ^= mask;
    const bool now_set = (word & mask) != 0;
    ones_ += now_set ? 1 : -1;
    return now_set;
  }

  /// Sets bit `pos` to `value`.
  void Set(size_t pos, bool value) {
    if (Get(pos) != value) Flip(pos);
  }

  /// XORs bit `pos` with `bit` (no-op when bit == false).
  void Xor(size_t pos, bool bit) {
    if (bit) Flip(pos);
  }

  /// Resets all bits to zero, keeping the size.
  void Clear() {
    std::fill(words_.begin(), words_.end(), 0);
    ones_ = 0;
  }

  /// Resizes to `num_bits`, zeroing all content.
  void Reset(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
    ones_ = 0;
  }

  /// Number of positions where this and `other` differ (Hamming distance).
  /// Both vectors must have the same size. O(size/64).
  size_t HammingDistance(const BitVector& other) const;

  /// XORs `other` into this vector (bitwise, sizes must match); updates the
  /// 1-bit count. O(size/64).
  void XorWith(const BitVector& other);

  /// Memory footprint of the payload in bits (excluding object header); this
  /// is what the equal-memory harness accounts for.
  size_t MemoryBits() const { return words_.size() * 64; }

  /// Raw 64-bit words backing the vector (for serialization); bit i lives
  /// at words()[i/64] >> (i%64).
  const std::vector<uint64_t>& words() const { return words_; }

  /// Reconstructs a vector from serialized words. Bits beyond `num_bits` in
  /// the last word must be zero (checked), so equality and popcounts stay
  /// canonical.
  static BitVector FromWords(size_t num_bits, std::vector<uint64_t> words);

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  size_t num_bits_;
  std::vector<uint64_t> words_;
  size_t ones_;
};

}  // namespace vos

// Word-wise XOR+popcount kernels over raw uint64_t spans.
//
// These back the batch query engine (core/digest_matrix.h +
// core/similarity_index.h): a pair estimate reduces to the Hamming distance
// between two packed digest rows, i.e. popcount(a XOR b) over
// words_per_row contiguous words. BitVector::HammingDistance does the same
// arithmetic through two heap-allocated vectors; these kernels operate on
// raw rows of one contiguous matrix so the all-pairs loop streams memory
// linearly.
//
// The loops are 4-way unrolled with independent accumulators so hardware
// popcnt dual-issues instead of serializing on one add chain; under
// -march=native (the VOS_NATIVE_ARCH build option) GCC further
// auto-vectorizes them with the AVX2 nibble-LUT popcount. Measured on the
// dev box this shape beats a hand-written AVX2 Muła kernel (~23 vs ~32
// ns per 6400-bit pair), so the portable code *is* the fast path.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace vos {

/// Number of set bits in (a[i] XOR b[i]) over i in [0, n) — the Hamming
/// distance between two n-word rows.
inline size_t XorPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<size_t>(std::popcount(a[i] ^ b[i]));
    c1 += static_cast<size_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    c2 += static_cast<size_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    c3 += static_cast<size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<size_t>(std::popcount(a[i] ^ b[i]));
  }
  return c0 + c1 + c2 + c3;
}

/// 1×8 register-blocked micro-kernel over eight consecutive rows of a
/// row-major matrix: out[t] = popcount(a XOR (b_base + t·stride)) over n
/// words. Sharing the a-loads across eight partners amortizes load
/// traffic (measured ~1.35× over the pairwise kernel at all-pairs row
/// lengths); callers hand the matrix base of the first partner row and
/// the row stride in words.
inline void XorPopcount8(const uint64_t* a, const uint64_t* b_base,
                         size_t stride, size_t n, size_t out[8]) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t c4 = 0, c5 = 0, c6 = 0, c7 = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a_word = a[i];
    c0 += static_cast<size_t>(std::popcount(a_word ^ b_base[i]));
    c1 += static_cast<size_t>(std::popcount(a_word ^ b_base[stride + i]));
    c2 += static_cast<size_t>(std::popcount(a_word ^ b_base[2 * stride + i]));
    c3 += static_cast<size_t>(std::popcount(a_word ^ b_base[3 * stride + i]));
    c4 += static_cast<size_t>(std::popcount(a_word ^ b_base[4 * stride + i]));
    c5 += static_cast<size_t>(std::popcount(a_word ^ b_base[5 * stride + i]));
    c6 += static_cast<size_t>(std::popcount(a_word ^ b_base[6 * stride + i]));
    c7 += static_cast<size_t>(std::popcount(a_word ^ b_base[7 * stride + i]));
  }
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
  out[4] = c4;
  out[5] = c5;
  out[6] = c6;
  out[7] = c7;
}

/// 2×4 micro-kernel: Hamming distances of two rows against four
/// consecutive rows of a row-major matrix. out[t] = popcount(a0 XOR
/// (b_base + t·stride)); out[4 + t] = the same against a1. The extra
/// register reuse (each b-load feeds two pairs) makes this the fastest
/// all-pairs shape measured (~1.15× over the 1×8 kernel).
inline void XorPopcount2x4(const uint64_t* a0, const uint64_t* a1,
                           const uint64_t* b_base, size_t stride, size_t n,
                           size_t out[8]) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t c4 = 0, c5 = 0, c6 = 0, c7 = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a0_word = a0[i];
    const uint64_t a1_word = a1[i];
    const uint64_t b0_word = b_base[i];
    const uint64_t b1_word = b_base[stride + i];
    const uint64_t b2_word = b_base[2 * stride + i];
    const uint64_t b3_word = b_base[3 * stride + i];
    c0 += static_cast<size_t>(std::popcount(a0_word ^ b0_word));
    c1 += static_cast<size_t>(std::popcount(a0_word ^ b1_word));
    c2 += static_cast<size_t>(std::popcount(a0_word ^ b2_word));
    c3 += static_cast<size_t>(std::popcount(a0_word ^ b3_word));
    c4 += static_cast<size_t>(std::popcount(a1_word ^ b0_word));
    c5 += static_cast<size_t>(std::popcount(a1_word ^ b1_word));
    c6 += static_cast<size_t>(std::popcount(a1_word ^ b2_word));
    c7 += static_cast<size_t>(std::popcount(a1_word ^ b3_word));
  }
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
  out[4] = c4;
  out[5] = c5;
  out[6] = c6;
  out[7] = c7;
}

/// Number of set bits in a[i] over i in [0, n).
inline size_t PopcountWords(const uint64_t* a, size_t n) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<size_t>(std::popcount(a[i]));
    c1 += static_cast<size_t>(std::popcount(a[i + 1]));
    c2 += static_cast<size_t>(std::popcount(a[i + 2]));
    c3 += static_cast<size_t>(std::popcount(a[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<size_t>(std::popcount(a[i]));
  }
  return c0 + c1 + c2 + c3;
}

}  // namespace vos

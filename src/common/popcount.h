// Word-wise XOR+popcount entry points over raw uint64_t spans.
//
// These back the batch query engine (core/digest_matrix.h +
// core/similarity_index.h): a pair estimate reduces to the Hamming distance
// between two packed digest rows, i.e. popcount(a XOR b) over
// words_per_row contiguous words. BitVector::HammingDistance does the same
// arithmetic through two heap-allocated vectors; these kernels operate on
// raw rows of one contiguous matrix so the all-pairs loop streams memory
// linearly.
//
// Since the kernel tier landed these are thin dispatch wrappers: the
// arithmetic lives in common/kernels.cc (scalar reference, 4-way unrolled
// with independent accumulators) with AVX2 Harley–Seal / AVX-512
// VPOPCNTDQ / NEON vcnt implementations selected per-CPU at runtime —
// one relaxed atomic load and an indirect call, amortized over the row
// (or eight rows) each call processes. Every level is bit-identical to
// scalar (tests/kernel_dispatch_test.cc), so callers never see dispatch.

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/kernels.h"

namespace vos {

/// Number of set bits in (a[i] XOR b[i]) over i in [0, n) — the Hamming
/// distance between two n-word rows.
inline size_t XorPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  return kernels::Active().xor_popcount(a, b, n);
}

/// 1×8 register-blocked micro-kernel over eight consecutive rows of a
/// row-major matrix: out[t] = popcount(a XOR (b_base + t·stride)) over n
/// words. Sharing the a-loads across eight partners amortizes load
/// traffic; callers hand the matrix base of the first partner row and
/// the row stride in words.
inline void XorPopcount8(const uint64_t* a, const uint64_t* b_base,
                         size_t stride, size_t n, size_t out[8]) {
  kernels::Active().xor_popcount8(a, b_base, stride, n, out);
}

/// 2×4 micro-kernel: Hamming distances of two rows against four
/// consecutive rows of a row-major matrix. out[t] = popcount(a0 XOR
/// (b_base + t·stride)); out[4 + t] = the same against a1. The extra
/// register reuse (each b-load feeds two pairs) makes this the fastest
/// all-pairs shape measured.
inline void XorPopcount2x4(const uint64_t* a0, const uint64_t* a1,
                           const uint64_t* b_base, size_t stride, size_t n,
                           size_t out[8]) {
  kernels::Active().xor_popcount2x4(a0, a1, b_base, stride, n, out);
}

/// Number of set bits in a[i] over i in [0, n).
inline size_t PopcountWords(const uint64_t* a, size_t n) {
  return kernels::Active().popcount_words(a, n);
}

}  // namespace vos

// Minimal command-line flag parsing for bench and example binaries.
//
// Supports `--name=value` and `--name value`; unknown flags are an error so
// typos in experiment scripts fail loudly instead of silently running the
// default configuration.

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace vos {

/// Parses argv into a name→value map and serves typed lookups with defaults.
class Flags {
 public:
  /// Parses `argv[1..argc)`. Returns InvalidArgument on malformed input
  /// (non-flag positional argument, or `--name` with no value).
  static StatusOr<Flags> Parse(int argc, char** argv);

  /// True if the flag was supplied on the command line.
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// Typed getters; return `def` when the flag is absent. Abort via
  /// VOS_CHECK when the supplied value does not parse — a misconfigured
  /// experiment must not run.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

  /// All parsed flags (for echoing the configuration in bench output).
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace vos

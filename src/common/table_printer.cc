#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace vos {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size();
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  VOS_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  VOS_CHECK(cells.size() == header_.size())
      << "row arity" << cells.size() << "!= header arity" << header_.size();
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  std::vector<bool> numeric(header_.size(), true);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
      if (!LooksNumeric(row[c])) numeric[c] = false;
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      const size_t pad = widths[c] - row[c].size();
      if (align_right && numeric[c]) out << std::string(pad, ' ') << row[c];
      else out << row[c] << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit_row(header_, /*align_right=*/false);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, /*align_right=*/true);
  return out.str();
}

std::string TablePrinter::FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string TablePrinter::FormatInt(int64_t v) { return std::to_string(v); }

}  // namespace vos

#include "common/flags.h"

#include <cstdlib>

namespace vos {

StatusOr<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("positional argument not allowed: " +
                                     arg);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` form; a bare trailing `--name` is treated as boolean
    // true, matching common CLI conventions.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  VOS_CHECK(end == it->second.c_str() + it->second.size())
      << "flag --" << name << " is not an integer:" << it->second;
  return v;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  VOS_CHECK(end == it->second.c_str() + it->second.size())
      << "flag --" << name << " is not a number:" << it->second;
  return v;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  VOS_CHECK(false) << "flag --" << name << " is not a boolean:" << v;
  return def;
}

}  // namespace vos

// Dispatch plumbing + the scalar reference kernels.
//
// This translation unit is compiled with the build's baseline flags (no
// per-file ISA options), so everything here is safe to run on any
// machine the binary targets. The scalar kernel bodies are the former
// inline implementations from common/popcount.h, core/digest_matrix.cc,
// stream/shard_router.h and core/pair_scan.cc, moved behind the table so
// every caller — and every ISA tail — shares one definition of the
// reference arithmetic.

#include "common/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <bit>

#include "common/kernels_internal.h"
#include "hashing/hash64.h"

namespace vos::kernels {
namespace internal {

// ----------------------------------------------------------------- popcounts

size_t ScalarXorPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  // 4-way unrolled with independent accumulators so hardware popcnt
  // dual-issues instead of serializing on one add chain.
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<size_t>(std::popcount(a[i] ^ b[i]));
    c1 += static_cast<size_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    c2 += static_cast<size_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    c3 += static_cast<size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<size_t>(std::popcount(a[i] ^ b[i]));
  }
  return c0 + c1 + c2 + c3;
}

void ScalarXorPopcount8(const uint64_t* a, const uint64_t* b_base,
                        size_t stride, size_t n, size_t out[8]) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t c4 = 0, c5 = 0, c6 = 0, c7 = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a_word = a[i];
    c0 += static_cast<size_t>(std::popcount(a_word ^ b_base[i]));
    c1 += static_cast<size_t>(std::popcount(a_word ^ b_base[stride + i]));
    c2 += static_cast<size_t>(std::popcount(a_word ^ b_base[2 * stride + i]));
    c3 += static_cast<size_t>(std::popcount(a_word ^ b_base[3 * stride + i]));
    c4 += static_cast<size_t>(std::popcount(a_word ^ b_base[4 * stride + i]));
    c5 += static_cast<size_t>(std::popcount(a_word ^ b_base[5 * stride + i]));
    c6 += static_cast<size_t>(std::popcount(a_word ^ b_base[6 * stride + i]));
    c7 += static_cast<size_t>(std::popcount(a_word ^ b_base[7 * stride + i]));
  }
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
  out[4] = c4;
  out[5] = c5;
  out[6] = c6;
  out[7] = c7;
}

void ScalarXorPopcount2x4(const uint64_t* a0, const uint64_t* a1,
                          const uint64_t* b_base, size_t stride, size_t n,
                          size_t out[8]) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t c4 = 0, c5 = 0, c6 = 0, c7 = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a0_word = a0[i];
    const uint64_t a1_word = a1[i];
    const uint64_t b0_word = b_base[i];
    const uint64_t b1_word = b_base[stride + i];
    const uint64_t b2_word = b_base[2 * stride + i];
    const uint64_t b3_word = b_base[3 * stride + i];
    c0 += static_cast<size_t>(std::popcount(a0_word ^ b0_word));
    c1 += static_cast<size_t>(std::popcount(a0_word ^ b1_word));
    c2 += static_cast<size_t>(std::popcount(a0_word ^ b2_word));
    c3 += static_cast<size_t>(std::popcount(a0_word ^ b3_word));
    c4 += static_cast<size_t>(std::popcount(a1_word ^ b0_word));
    c5 += static_cast<size_t>(std::popcount(a1_word ^ b1_word));
    c6 += static_cast<size_t>(std::popcount(a1_word ^ b2_word));
    c7 += static_cast<size_t>(std::popcount(a1_word ^ b3_word));
  }
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
  out[4] = c4;
  out[5] = c5;
  out[6] = c6;
  out[7] = c7;
}

size_t ScalarPopcountWords(const uint64_t* a, size_t n) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<size_t>(std::popcount(a[i]));
    c1 += static_cast<size_t>(std::popcount(a[i + 1]));
    c2 += static_cast<size_t>(std::popcount(a[i + 2]));
    c3 += static_cast<size_t>(std::popcount(a[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<size_t>(std::popcount(a[i]));
  }
  return c0 + c1 + c2 + c3;
}

// ---------------------------------------------------------------- extraction

uint64_t ScalarCellOf(uint64_t user, uint64_t seed, uint64_t m) {
  return hash::ReduceToRange(hash::Hash64(user, seed), m);
}

void ScalarExtractBits(const uint64_t* array_words, const uint64_t* seeds,
                       uint32_t k, uint64_t user, uint64_t m, uint64_t* dst,
                       uint32_t* cells) {
  uint64_t word = 0;
  for (uint32_t j = 0; j < k; ++j) {
    const uint64_t cell = hash::ReduceToRange(hash::Hash64(user, seeds[j]), m);
    if (cells != nullptr) cells[j] = static_cast<uint32_t>(cell);
    word |= ((array_words[cell >> 6] >> (cell & 63)) & 1) << (j & 63);
    if ((j & 63) == 63) {
      *dst++ = word;
      word = 0;
    }
  }
  if ((k & 63) != 0) *dst = word;
}

void ScalarExtractBitsFromCells(const uint64_t* array_words,
                                const uint32_t* cells, uint32_t k,
                                uint64_t* dst) {
  uint64_t word = 0;
  for (uint32_t j = 0; j < k; ++j) {
    const uint32_t cell = cells[j];
    word |= ((array_words[cell >> 6] >> (cell & 63)) & 1) << (j & 63);
    if ((j & 63) == 63) {
      *dst++ = word;
      word = 0;
    }
  }
  if ((k & 63) != 0) *dst = word;
}

// ------------------------------------------------------------------- routing

void ScalarRouteBatch(const uint32_t* users, size_t n, uint64_t seed_mix,
                      uint32_t num_shards, const uint32_t* local_of,
                      uint16_t* shards, uint32_t* locals) {
  for (size_t i = 0; i < n; ++i) {
    shards[i] = static_cast<uint16_t>(
        hash::ReduceToRange(hash::Mix64(users[i] ^ seed_mix), num_shards));
    if (local_of != nullptr) locals[i] = local_of[users[i]];
  }
}

// ----------------------------------------------------------------- band keys

uint64_t ScalarBandKeyAt(const uint64_t* row, uint32_t bit_begin,
                         uint32_t nbits) {
  // bit_begin + nbits ≤ words·64, so the second word read is in range
  // whenever the slice spans a word boundary.
  const uint32_t w = bit_begin >> 6;
  const uint32_t off = bit_begin & 63;
  uint64_t v = row[w] >> off;
  if (off + nbits > 64) v |= row[w + 1] << (64 - off);
  return nbits == 64 ? v : (v & ((uint64_t{1} << nbits) - 1));
}

void ScalarBandKeys(const uint64_t* row, size_t words, uint32_t bands,
                    uint32_t rows_per_band, uint64_t* keys) {
  (void)words;
  for (uint32_t b = 0; b < bands; ++b) {
    keys[b] = ScalarBandKeyAt(row, b * rows_per_band, rows_per_band);
  }
}

}  // namespace internal

// ------------------------------------------------------------------ dispatch

namespace {

constexpr KernelTable kScalarTable = {
    internal::ScalarXorPopcount,
    internal::ScalarXorPopcount8,
    internal::ScalarXorPopcount2x4,
    internal::ScalarPopcountWords,
    internal::ScalarExtractBits,
    internal::ScalarExtractBitsFromCells,
    internal::ScalarRouteBatch,
    internal::ScalarBandKeys,
    DispatchLevel::kScalar,
    "scalar",
};

bool CpuSupports(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return true;
    case DispatchLevel::kNeon:
      // NEON is baseline on aarch64; the factory returns nullptr on
      // every other target, so compiled-in implies supported.
      return true;
    case DispatchLevel::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
#else
      return false;
#endif
    case DispatchLevel::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      // The AVX-512 kernels are compiled against F+BW+VL+DQ and use
      // VPOPCNTDQ unconditionally (Ice Lake+); Skylake-X class parts
      // without it fall back to the AVX2 table.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vpopcntdq");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* BestAvailable() {
  for (const DispatchLevel level :
       {DispatchLevel::kAvx512, DispatchLevel::kAvx2, DispatchLevel::kNeon}) {
    if (const KernelTable* table = TableFor(level)) return table;
  }
  return &kScalarTable;
}

/// VOS_DISPATCH override, or BestAvailable() when unset/unusable.
const KernelTable* ChooseInitial() {
  const char* env = std::getenv("VOS_DISPATCH");
  if (env != nullptr && env[0] != '\0') {
    DispatchLevel level;
    if (!ParseDispatchLevel(env, &level)) {
      std::fprintf(stderr,
                   "vos: VOS_DISPATCH=%s not recognized "
                   "(want scalar|neon|avx2|avx512); using automatic "
                   "dispatch\n",
                   env);
    } else if (const KernelTable* table = TableFor(level)) {
      return table;
    } else {
      std::fprintf(stderr,
                   "vos: VOS_DISPATCH=%s unavailable on this build/CPU; "
                   "using automatic dispatch\n",
                   env);
    }
  }
  return BestAvailable();
}

}  // namespace

namespace internal {

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ResolveActive() {
  // Resolve once (thread-safe static init covers concurrent first
  // calls), then publish unless SetDispatchLevel won the race.
  static const KernelTable* const resolved = ChooseInitial();
  const KernelTable* expected = nullptr;
  g_active.compare_exchange_strong(expected, resolved,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
  return g_active.load(std::memory_order_relaxed);
}

}  // namespace internal

DispatchLevel ActiveLevel() { return Active().level; }

const KernelTable* TableFor(DispatchLevel level) {
  if (!CpuSupports(level)) return nullptr;
  switch (level) {
    case DispatchLevel::kScalar:
      return &kScalarTable;
    case DispatchLevel::kNeon:
      return internal::NeonKernels();
    case DispatchLevel::kAvx2:
      return internal::Avx2Kernels();
    case DispatchLevel::kAvx512:
      return internal::Avx512Kernels();
  }
  return nullptr;
}

std::vector<DispatchLevel> AvailableLevels() {
  std::vector<DispatchLevel> levels;
  for (const DispatchLevel level :
       {DispatchLevel::kScalar, DispatchLevel::kNeon, DispatchLevel::kAvx2,
        DispatchLevel::kAvx512}) {
    if (TableFor(level) != nullptr) levels.push_back(level);
  }
  return levels;
}

bool SetDispatchLevel(DispatchLevel level) {
  const KernelTable* table = TableFor(level);
  if (table == nullptr) return false;
  internal::g_active.store(table, std::memory_order_release);
  return true;
}

const char* LevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kNeon:
      return "neon";
    case DispatchLevel::kAvx2:
      return "avx2";
    case DispatchLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseDispatchLevel(const char* s, DispatchLevel* out) {
  for (const DispatchLevel level :
       {DispatchLevel::kScalar, DispatchLevel::kNeon, DispatchLevel::kAvx2,
        DispatchLevel::kAvx512}) {
    if (std::strcmp(s, LevelName(level)) == 0) {
      *out = level;
      return true;
    }
  }
  return false;
}

}  // namespace vos::kernels

// Lightweight assertion and logging macros.
//
// VOS_CHECK(cond)  — always-on invariant; aborts with a message on failure.
// VOS_DCHECK(cond) — debug-only (compiled out in NDEBUG builds); used on hot
//                    paths where the check would cost measurable time.
//
// Both support streaming extra context: VOS_CHECK(a < b) << "a=" << a;

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace vos {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
///
/// Instantiated only on the failure path of VOS_CHECK, so the happy path
/// costs a single predictable branch.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed operands when a debug check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace vos

#define VOS_CHECK(cond)                                         \
  if (cond) {                                                   \
  } else /* NOLINT */                                           \
    ::vos::internal::CheckFailure(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define VOS_DCHECK(cond) \
  if (true) {            \
  } else /* NOLINT */    \
    ::vos::internal::NullStream()
#else
#define VOS_DCHECK(cond) VOS_CHECK(cond)
#endif

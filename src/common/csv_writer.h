// CSV output for benchmark series, so results can be re-plotted externally.

#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace vos {

/// Streams rows to a CSV file with RFC-4180 quoting.
///
/// The bench binaries optionally mirror their printed tables into CSV files
/// (flag `--csv=<path>`) for downstream plotting.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  static StatusOr<CsvWriter> Open(const std::string& path,
                                  const std::vector<std::string>& header);

  /// Appends one row; must match the header arity.
  Status WriteRow(const std::vector<std::string>& cells);

  /// Flushes and closes the file; further writes are errors.
  Status Close();

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

 private:
  CsvWriter() = default;

  static std::string EscapeCell(const std::string& cell);

  std::ofstream out_;
  size_t arity_ = 0;
};

}  // namespace vos

// Clang thread-safety annotations and the annotated mutex wrappers every
// concurrent piece of libvos must use.
//
// The locking contracts of the ingest fabric (which mutex guards which
// field, which helpers require the lock, which paths must NOT hold it)
// were previously prose comments checked only probabilistically by the
// TSan CI legs. These macros turn them into compile-time facts: a clang
// build with -Wthread-safety -Werror=thread-safety (CMake option
// VOS_THREAD_SAFETY, CI job `static-analysis`) fails on any access to a
// VOS_GUARDED_BY field without its mutex, any call to a VOS_REQUIRES
// helper without the lock, and any acquisition that violates a declared
// VOS_EXCLUDES / VOS_ACQUIRED_AFTER order. Under GCC (and any compiler
// without the attributes) every macro expands to nothing and the
// wrappers are zero-cost forwarding shims over the std primitives.
//
// Usage rules (enforced by tools/lint_invariants.py):
//   - No raw std::mutex / std::lock_guard / std::unique_lock /
//     std::condition_variable anywhere in src/ or tools/ outside this
//     header — always vos::Mutex / vos::MutexLock / vos::CondVar, so
//     every lock in the tree is visible to the analysis.
//   - Cold-path blocking only: the wrappers add nothing over std, but
//     the lock-free hot paths (SPSC rings, kernel dispatch) stay
//     annotation-free by construction — they have no mutex to annotate.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// (the macro set mirrors the names used there and in Abseil, prefixed
// VOS_ so a grep finds every annotated contract in one pass).

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VOS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VOS_THREAD_ANNOTATION
#define VOS_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Declares a type that models a capability (a lock).
#define VOS_CAPABILITY(x) VOS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define VOS_SCOPED_CAPABILITY VOS_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define VOS_GUARDED_BY(x) VOS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x`.
#define VOS_PT_GUARDED_BY(x) VOS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations: this mutex must be acquired before/after
/// the named ones (checked under clang's -Wthread-safety-beta; always
/// valuable as greppable documentation of the deadlock-freedom argument).
#define VOS_ACQUIRED_BEFORE(...) \
  VOS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VOS_ACQUIRED_AFTER(...) \
  VOS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held on entry (and does not release
/// it): the `*Locked` helper convention.
#define VOS_REQUIRES(...) \
  VOS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires / releases the capability (no arguments = `this`).
#define VOS_ACQUIRE(...) \
  VOS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VOS_RELEASE(...) \
  VOS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define VOS_TRY_ACQUIRE(result, ...) \
  VOS_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function must NOT be called with the capability held (it acquires it
/// itself, or it takes locks that must never nest inside it).
#define VOS_EXCLUDES(...) VOS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, to the analysis) that the capability is held.
#define VOS_ASSERT_CAPABILITY(x) \
  VOS_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define VOS_RETURN_CAPABILITY(x) VOS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining the false positive it suppresses.
#define VOS_NO_THREAD_SAFETY_ANALYSIS \
  VOS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vos {

/// std::mutex with its capability visible to the analysis. Exposes both
/// the Abseil-style Lock()/Unlock() spelling and the std BasicLockable
/// lowercase spelling so vos::CondVar (and std::scoped_lock, if ever
/// needed) can take it directly.
class VOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VOS_ACQUIRE() { mu_.lock(); }
  void Unlock() VOS_RELEASE() { mu_.unlock(); }
  bool TryLock() VOS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable interface (same capability, lowercase spelling).
  void lock() VOS_ACQUIRE() { mu_.lock(); }
  void unlock() VOS_RELEASE() { mu_.unlock(); }
  bool try_lock() VOS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over a vos::Mutex — the std::lock_guard replacement. The
/// analysis treats the constructor as acquiring and the destructor as
/// releasing, so a guarded field accessed inside the scope type-checks.
class VOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) VOS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() VOS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable that waits on a vos::Mutex directly
/// (condition_variable_any over the BasicLockable interface). Used only
/// on cold park/flush paths, where the _any indirection is noise; the
/// hot paths never block. Wait* require the mutex held; the internal
/// release/reacquire is invisible to the analysis, which matches the
/// caller-visible contract (held on entry, held on return).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) VOS_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) VOS_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& dur)
      VOS_REQUIRES(mu) {
    return cv_.wait_for(mu, dur);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
               Predicate pred) VOS_REQUIRES(mu) {
    return cv_.wait_for(mu, dur, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      VOS_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace vos

// Status / StatusOr: exception-free error handling for libvos.
//
// The library does not throw exceptions (see DESIGN.md §3). Fallible
// operations — file I/O, configuration parsing, budget validation — return a
// Status (or StatusOr<T> when they also produce a value). Hot paths (sketch
// updates, estimators) are infallible by construction and use VOS_DCHECK for
// internal invariants instead.

#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "common/logging.h"

namespace vos {

/// Machine-readable category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kIoError = 5,
  kCorruption = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus a human-readable message.
///
/// Cheap to copy in the OK case (empty message). Follows the RocksDB/Abseil
/// convention: constructors per category, `ok()` query, `ToString()` for
/// diagnostics.
///
/// [[nodiscard]]: dropping a returned Status on the floor is a compile
/// warning (and an error in the CI static-analysis leg) — a silently
/// ignored flush/checkpoint failure is exactly the bug class PR 6 exists
/// to prevent. The rare intentional drop must say so: `(void)Flush();`
/// with a comment on why the status is irrelevant there.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The message supplied at construction; empty for OK.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or a non-OK Status explaining why there is none.
///
/// Accessing `value()` on a non-OK StatusOr aborts (programming error); call
/// sites must check `ok()` first, typically via VOS_RETURN_IF_ERROR /
/// VOS_ASSIGN_OR_RETURN. [[nodiscard]] like Status: a dropped StatusOr
/// discards both the error and the value.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value: `return 42;` inside StatusOr<int> functions.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit from error: `return Status::InvalidArgument(...)`.
  StatusOr(Status status) : status_(std::move(status)) {
    VOS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    VOS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    VOS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    VOS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;  // engaged iff status_.ok()
};

/// Propagates a non-OK status to the caller.
#define VOS_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::vos::Status _vos_st = (expr);          \
    if (!_vos_st.ok()) return _vos_st;       \
  } while (0)

#define VOS_STATUS_CONCAT_IMPL(a, b) a##b
#define VOS_STATUS_CONCAT(a, b) VOS_STATUS_CONCAT_IMPL(a, b)

/// `VOS_ASSIGN_OR_RETURN(auto x, MakeX());` — unwraps or propagates.
#define VOS_ASSIGN_OR_RETURN(decl, expr)                              \
  auto VOS_STATUS_CONCAT(_vos_sor_, __LINE__) = (expr);               \
  if (!VOS_STATUS_CONCAT(_vos_sor_, __LINE__).ok())                   \
    return VOS_STATUS_CONCAT(_vos_sor_, __LINE__).status();           \
  decl = std::move(VOS_STATUS_CONCAT(_vos_sor_, __LINE__)).value()

}  // namespace vos

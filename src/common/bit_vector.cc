#include "common/bit_vector.h"

#include "common/popcount.h"

namespace vos {

size_t BitVector::HammingDistance(const BitVector& other) const {
  VOS_CHECK(num_bits_ == other.num_bits_)
      << "size mismatch:" << num_bits_ << "vs" << other.num_bits_;
  return XorPopcount(words_.data(), other.words_.data(), words_.size());
}

BitVector BitVector::FromWords(size_t num_bits,
                               std::vector<uint64_t> words) {
  VOS_CHECK(words.size() == (num_bits + 63) / 64)
      << "word count" << words.size() << "does not match" << num_bits
      << "bits";
  if (num_bits % 64 != 0 && !words.empty()) {
    const uint64_t tail_mask = (uint64_t{1} << (num_bits % 64)) - 1;
    VOS_CHECK((words.back() & ~tail_mask) == 0)
        << "non-zero bits beyond num_bits in serialized payload";
  }
  BitVector out;
  out.num_bits_ = num_bits;
  out.words_ = std::move(words);
  out.ones_ = PopcountWords(out.words_.data(), out.words_.size());
  return out;
}

void BitVector::XorWith(const BitVector& other) {
  VOS_CHECK(num_bits_ == other.num_bits_)
      << "size mismatch:" << num_bits_ << "vs" << other.num_bits_;
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] ^= other.words_[w];
  }
  ones_ = PopcountWords(words_.data(), words_.size());
}

}  // namespace vos

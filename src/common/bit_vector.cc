#include "common/bit_vector.h"

#include <bit>

namespace vos {

size_t BitVector::HammingDistance(const BitVector& other) const {
  VOS_CHECK(num_bits_ == other.num_bits_)
      << "size mismatch:" << num_bits_ << "vs" << other.num_bits_;
  size_t distance = 0;
  for (size_t w = 0; w < words_.size(); ++w) {
    distance += std::popcount(words_[w] ^ other.words_[w]);
  }
  return distance;
}

BitVector BitVector::FromWords(size_t num_bits,
                               std::vector<uint64_t> words) {
  VOS_CHECK(words.size() == (num_bits + 63) / 64)
      << "word count" << words.size() << "does not match" << num_bits
      << "bits";
  if (num_bits % 64 != 0 && !words.empty()) {
    const uint64_t tail_mask = (uint64_t{1} << (num_bits % 64)) - 1;
    VOS_CHECK((words.back() & ~tail_mask) == 0)
        << "non-zero bits beyond num_bits in serialized payload";
  }
  BitVector out;
  out.num_bits_ = num_bits;
  out.words_ = std::move(words);
  out.ones_ = 0;
  for (uint64_t w : out.words_) out.ones_ += std::popcount(w);
  return out;
}

void BitVector::XorWith(const BitVector& other) {
  VOS_CHECK(num_bits_ == other.num_bits_)
      << "size mismatch:" << num_bits_ << "vs" << other.num_bits_;
  size_t new_ones = 0;
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] ^= other.words_[w];
    new_ones += std::popcount(words_[w]);
  }
  ones_ = new_ones;
}

}  // namespace vos

#include "common/numa.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace vos::numa {
namespace {

/// Every hardware thread on one synthetic node — the portable fallback.
Topology SingleNodeFallback() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  Topology topo;
  topo.node_cpus.emplace_back();
  topo.node_cpus[0].reserve(hw);
  for (unsigned cpu = 0; cpu < hw; ++cpu) {
    topo.node_cpus[0].push_back(static_cast<int>(cpu));
  }
  return topo;
}

Topology DetectUncached() {
#if defined(__linux__)
  Topology topo;
  // Nodes are not necessarily contiguous (memory-only nodes, offlined
  // sockets), so probe ids until a run of misses instead of trusting
  // node0..nodeN-1.
  int misses = 0;
  for (int node = 0; misses < 16; ++node) {
    const std::string path = "/sys/devices/system/node/node" +
                             std::to_string(node) + "/cpulist";
    std::ifstream in(path);
    if (!in.good()) {
      ++misses;
      continue;
    }
    misses = 0;
    std::string line;
    std::getline(in, line);
    std::vector<int> cpus = ParseCpuList(line.c_str());
    // Memory-only nodes have an empty cpulist; they own no workers.
    if (!cpus.empty()) topo.node_cpus.push_back(std::move(cpus));
  }
  if (!topo.node_cpus.empty()) return topo;
#endif
  return SingleNodeFallback();
}

}  // namespace

size_t Topology::num_cpus() const {
  size_t total = 0;
  for (const std::vector<int>& cpus : node_cpus) total += cpus.size();
  return total;
}

const Topology& Detect() {
  static const Topology topo = DetectUncached();
  return topo;
}

std::vector<int> ParseCpuList(const char* text) {
  std::vector<int> cpus;
  if (text == nullptr) return cpus;
  const char* p = text;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const long first = std::strtol(p, &end, 10);
    if (end == p || first < 0) return {};
    long last = first;
    p = end;
    if (*p == '-') {
      ++p;
      last = std::strtol(p, &end, 10);
      if (end == p || last < first) return {};
      p = end;
    }
    for (long cpu = first; cpu <= last; ++cpu) {
      cpus.push_back(static_cast<int>(cpu));
    }
    if (*p == ',') ++p;
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

bool PinCurrentThreadToNode(size_t node) {
#if defined(__linux__)
  const Topology& topo = Detect();
  if (topo.node_cpus.empty()) return false;
  const std::vector<int>& cpus = topo.node_cpus[node % topo.num_nodes()];
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

bool DefaultPinThreads() {
  if (const char* env = std::getenv("VOS_PIN")) {
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
             std::strcmp(env, "off") == 0 || env[0] == '\0');
  }
  return Detect().multi_node();
}

}  // namespace vos::numa

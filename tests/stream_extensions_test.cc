// Unit tests for the stream-module extensions: binary stream I/O, the
// StreamReplayer, and stream profiling (degree statistics).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "stream/binary_io.h"
#include "stream/stream_io.h"
#include "stream/dataset.h"
#include "stream/replayer.h"
#include "stream/stream_stats.h"

namespace vos::stream {
namespace {

// ---------------------------------------------------------------- BinaryIo

TEST(BinaryIoTest, RoundTripsExactly) {
  const std::string path = ::testing::TempDir() + "/vos_binary_io.bin";
  auto original = GenerateDatasetByName("unit");
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveStreamBinary(*original, path).ok());

  auto loaded = LoadStreamBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), original->name());
  EXPECT_EQ(loaded->num_users(), original->num_users());
  EXPECT_EQ(loaded->num_items(), original->num_items());
  ASSERT_EQ(loaded->size(), original->size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i], (*original)[i]);
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, BinaryIsSmallerThanText) {
  const std::string bin_path = ::testing::TempDir() + "/vos_size.bin";
  const std::string txt_path = ::testing::TempDir() + "/vos_size.txt";
  auto stream = GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(SaveStreamBinary(*stream, bin_path).ok());
  ASSERT_TRUE(SaveStream(*stream, txt_path).ok());
  auto file_size = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary | std::ios::ate);
    return static_cast<size_t>(in.tellg());
  };
  EXPECT_LT(file_size(bin_path), file_size(txt_path));
  std::remove(bin_path.c_str());
  std::remove(txt_path.c_str());
}

TEST(BinaryIoTest, DetectsCorruption) {
  const std::string path = ::testing::TempDir() + "/vos_binary_corrupt.bin";
  auto stream = GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(SaveStreamBinary(*stream, path).ok());

  // Flip a byte inside the element payload.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(200);
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(200);
  byte = static_cast<char>(byte ^ 0x08);
  file.write(&byte, 1);
  file.close();

  const auto status = LoadStreamBinary(path).status();
  // Either the checksum or the feasibility validation must catch it.
  EXPECT_TRUE(status.code() == StatusCode::kCorruption ||
              status.code() == StatusCode::kFailedPrecondition)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsMissingFileAndBadMagic) {
  EXPECT_EQ(LoadStreamBinary("/nonexistent/x.bin").status().code(),
            StatusCode::kIoError);
  const std::string path = ::testing::TempDir() + "/vos_bad_magic.bin";
  std::ofstream(path, std::ios::binary) << "NOTASTREAMFILE";
  EXPECT_EQ(LoadStreamBinary(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsOversizedItemIds) {
  GraphStream stream("big", 2, 0xffffffffu);
  stream.Append(0, 0x80000001u, Action::kInsert);
  EXPECT_EQ(SaveStreamBinary(stream, ::testing::TempDir() + "/x.bin").code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Replayer

TEST(ReplayerTest, CheckpointPositionsCoverStreamEnd) {
  const auto positions = StreamReplayer::CheckpointPositions(100, 4);
  EXPECT_EQ(positions, (std::vector<size_t>{25, 50, 75, 100}));
  // More checkpoints than elements: deduplicated, still ends at size.
  const auto tiny = StreamReplayer::CheckpointPositions(3, 10);
  EXPECT_EQ(tiny, (std::vector<size_t>{1, 2, 3}));
  EXPECT_TRUE(StreamReplayer::CheckpointPositions(0, 5).empty());
}

TEST(ReplayerTest, ReplayInvokesCallbacksInOrder) {
  GraphStream stream("replay", 4, 4);
  for (UserId u = 0; u < 4; ++u) stream.Append(u, u, Action::kInsert);

  std::vector<size_t> checkpoints;
  size_t elements_seen = 0;
  size_t elements_at_last_checkpoint = 0;
  StreamReplayer::Replay(
      stream, 2, [&](const Element&) { ++elements_seen; },
      [&](size_t t) {
        checkpoints.push_back(t);
        elements_at_last_checkpoint = elements_seen;
        EXPECT_EQ(elements_seen, t);  // checkpoint fires after t elements
      });
  EXPECT_EQ(elements_seen, 4u);
  EXPECT_EQ(checkpoints, (std::vector<size_t>{2, 4}));
  EXPECT_EQ(elements_at_last_checkpoint, 4u);
}

TEST(ReplayerTest, EmptyCallbacksAreAllowed) {
  auto stream = GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  StreamReplayer::Replay(*stream, 3, nullptr, nullptr);  // must not crash
}

// --------------------------------------------------------------- Profiling

TEST(StreamStatsTest, SummarizeDegreesQuantiles) {
  // Degrees 1..100: median 50-ish, max 100, mean 50.5.
  std::vector<uint64_t> degrees;
  for (uint64_t d = 1; d <= 100; ++d) degrees.push_back(d);
  const DegreeSummary summary = SummarizeDegrees(degrees);
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.max, 100u);
  EXPECT_NEAR(summary.median, 50, 1);
  EXPECT_NEAR(summary.p90, 90, 1);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_NEAR(summary.SkewRatio(), 100 / 50.5, 1e-9);
}

TEST(StreamStatsTest, ZerosExcludedAndEmptyHandled) {
  EXPECT_EQ(SummarizeDegrees({0, 0, 0}).count, 0u);
  EXPECT_EQ(SummarizeDegrees({}).count, 0u);
  const DegreeSummary one = SummarizeDegrees({0, 7, 0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_EQ(one.max, 7u);
}

TEST(StreamStatsTest, ProfileMatchesComputeStats) {
  auto stream = GenerateDatasetByName("toy");
  ASSERT_TRUE(stream.ok());
  const StreamProfile profile = ProfileStream(*stream);
  const StreamStats stats = stream->ComputeStats();
  EXPECT_EQ(profile.stats.num_elements, stats.num_elements);
  EXPECT_EQ(profile.stats.num_insertions, stats.num_insertions);
  EXPECT_EQ(profile.stats.num_deletions, stats.num_deletions);
  EXPECT_EQ(profile.stats.final_edges, stats.final_edges);
  EXPECT_GE(profile.peak_edges, stats.final_edges);
}

TEST(StreamStatsTest, PresetsAreHeavyTailed) {
  // The evaluation depends on a head of high-cardinality users; guard the
  // preset shapes so a generator regression cannot silently flatten them.
  auto stream = GenerateDatasetByName("toy");
  ASSERT_TRUE(stream.ok());
  const StreamProfile profile = ProfileStream(*stream);
  EXPECT_GT(profile.user_degrees.SkewRatio(), 2.0);
  EXPECT_GT(profile.user_degrees.max,
            4 * std::max<uint64_t>(profile.user_degrees.median, 1));
  EXPECT_GT(profile.item_degrees.SkewRatio(), 1.5);
}

}  // namespace
}  // namespace vos::stream

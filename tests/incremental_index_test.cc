// Tests for incremental index maintenance: SimilarityIndex::RefreshDirty
// must be bit-identical to a full Rebuild on the same sketch state — for
// every dirty fraction (including the shared-cell contamination case,
// where updates to NON-candidate users flip bits of clean candidates'
// digests), every thread count, and across repeated refreshes.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "core/similarity_index.h"
#include "core/vos_drift.h"
#include "core/vos_sketch.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

VosConfig SmallConfig(uint64_t m = 1 << 12) {
  VosConfig config;
  config.k = 256;
  // Deliberately small array: shared-cell collisions between users are
  // frequent, so clean candidates' digests DO change when other users
  // update — the case RefreshDirty must catch via the array delta.
  config.m = m;
  config.seed = 31;
  return config;
}

VosSketch PopulatedSketch(const VosConfig& config, UserId users,
                          size_t edges_per_user, uint64_t seed) {
  VosSketch sketch(config, users);
  Rng rng(seed);
  for (UserId u = 0; u < users; ++u) {
    for (size_t i = 0; i < edges_per_user; ++i) {
      sketch.Update({u, static_cast<ItemId>(rng.NextBounded(1 << 28)),
                     Action::kInsert});
    }
  }
  return sketch;
}

/// Full bit-level equality of two index snapshots: candidate order,
/// per-row digests, cardinality order, β, and the query results built
/// from them.
void ExpectIndexesIdentical(const SimilarityIndex& refreshed,
                            const SimilarityIndex& rebuilt,
                            const std::string& context) {
  ASSERT_EQ(refreshed.candidate_count(), rebuilt.candidate_count())
      << context;
  EXPECT_EQ(refreshed.snapshot_beta(), rebuilt.snapshot_beta()) << context;
  const DigestMatrix& ma = refreshed.matrix();
  const DigestMatrix& mb = rebuilt.matrix();
  ASSERT_EQ(ma.rows(), mb.rows()) << context;
  ASSERT_EQ(ma.words_per_row(), mb.words_per_row()) << context;
  for (size_t p = 0; p < ma.rows(); ++p) {
    ASSERT_EQ(refreshed.sorted_to_candidate(p), rebuilt.sorted_to_candidate(p))
        << context << " sorted position " << p;
    ASSERT_EQ(std::memcmp(ma.Row(p), mb.Row(p),
                          ma.words_per_row() * sizeof(uint64_t)),
              0)
        << context << " digest row at sorted position " << p;
  }
  // End-to-end: identical snapshots answer identically.
  const auto pairs_a = refreshed.AllPairsAbove(0.2);
  const auto pairs_b = rebuilt.AllPairsAbove(0.2);
  ASSERT_EQ(pairs_a.size(), pairs_b.size()) << context;
  for (size_t i = 0; i < pairs_a.size(); ++i) {
    EXPECT_EQ(pairs_a[i].u, pairs_b[i].u) << context;
    EXPECT_EQ(pairs_a[i].v, pairs_b[i].v) << context;
    EXPECT_EQ(pairs_a[i].common, pairs_b[i].common) << context;
    EXPECT_EQ(pairs_a[i].jaccard, pairs_b[i].jaccard) << context;
  }
}

/// Applies `dirty_fraction` of the candidates a few fresh inserts (and a
/// matching delete for some), plus — crucially — updates to users OUTSIDE
/// the candidate set, whose flips can land in clean candidates' cells.
void Churn(VosSketch* sketch, const std::vector<UserId>& candidates,
           double dirty_fraction, ItemId* next_item) {
  const size_t dirty_count =
      static_cast<size_t>(dirty_fraction * candidates.size());
  for (size_t i = 0; i < dirty_count; ++i) {
    const ItemId item = (*next_item)++;
    sketch->Update({candidates[i], item, Action::kInsert});
    if (i % 3 == 0) {
      sketch->Update({candidates[i], item, Action::kDelete});
    }
    sketch->Update({candidates[i], (*next_item)++, Action::kInsert});
  }
  // Background churn from non-candidates (contamination-only changes).
  const UserId background = sketch->num_users() - 1;
  for (int i = 0; i < 20; ++i) {
    sketch->Update({background, (*next_item)++, Action::kInsert});
  }
}

TEST(RefreshDirtyTest, BitIdenticalToRebuildAcrossDirtyFractionsAndThreads) {
  const UserId users = 120;
  const UserId num_candidates = 80;  // users 80..119 are background-only
  for (const unsigned threads : {1u, 2u, 8u}) {
    VosSketch sketch = PopulatedSketch(SmallConfig(), users, 60, 5);
    std::vector<UserId> candidates;
    for (UserId u = 0; u < num_candidates; ++u) candidates.push_back(u);

    QueryOptions incremental_options;
    incremental_options.num_threads = threads;
    incremental_options.incremental = true;
    // Force the incremental path at every fraction — the adaptive
    // fallback (covered by AdaptiveRefreshTest below) would otherwise
    // turn the 50%/100% rounds into plain Rebuilds.
    incremental_options.refresh_fallback_fraction = 2.0;
    SimilarityIndex refreshed(sketch, {}, incremental_options);
    refreshed.Rebuild(candidates);
    EXPECT_TRUE(refreshed.CanRefresh());

    QueryOptions plain_options;
    plain_options.num_threads = threads;
    SimilarityIndex rebuilt(sketch, {}, plain_options);

    ItemId next_item = 1 << 29;
    for (const double fraction : {0.0, 0.01, 0.5, 1.0}) {
      Churn(&sketch, candidates, fraction, &next_item);
      EXPECT_TRUE(refreshed.RefreshDirty())
          << "fallback disabled yet RefreshDirty claims it rebuilt";
      rebuilt.Rebuild(candidates);
      ExpectIndexesIdentical(
          refreshed, rebuilt,
          "threads=" + std::to_string(threads) +
              " fraction=" + std::to_string(fraction));
    }
  }
}

// ------------------------------------------------------- adaptive refresh

TEST(AdaptiveRefreshTest, FallsBackToRebuildPastBreakEvenFraction) {
  VosSketch sketch = PopulatedSketch(SmallConfig(1 << 14), 60, 40, 41);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < 60; ++u) candidates.push_back(u);
  QueryOptions options;
  options.num_threads = 1;
  options.incremental = true;  // default fallback fraction: 0.5
  SimilarityIndex index(sketch, {}, options);
  index.Rebuild(candidates);
  SimilarityIndex rebuilt(sketch, {}, QueryOptions{});

  // A handful of dirty candidates: well under the break-even, so the
  // incremental path must run.
  ItemId next_item = 1 << 29;
  sketch.Update({3, next_item++, Action::kInsert});
  sketch.Update({9, next_item++, Action::kInsert});
  EXPECT_TRUE(index.RefreshDirty());
  rebuilt.Rebuild(candidates);
  ExpectIndexesIdentical(index, rebuilt, "small dirty fraction");

  // Touch every candidate: past the break-even, the call must delegate
  // to a full Rebuild — and stay bit-identical.
  for (UserId u = 0; u < 60; ++u) {
    sketch.Update({u, next_item++, Action::kInsert});
  }
  EXPECT_FALSE(index.RefreshDirty());
  rebuilt.Rebuild(candidates);
  ExpectIndexesIdentical(index, rebuilt, "full dirty fraction");

  // The fallback re-captures incremental state: refreshing again works.
  sketch.Update({5, next_item++, Action::kInsert});
  EXPECT_TRUE(index.CanRefresh());
  EXPECT_TRUE(index.RefreshDirty());
  rebuilt.Rebuild(candidates);
  ExpectIndexesIdentical(index, rebuilt, "refresh after fallback");
}

TEST(AdaptiveRefreshTest, FractionOverrideControlsTheBreakEven) {
  VosSketch sketch = PopulatedSketch(SmallConfig(1 << 14), 30, 30, 43);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < 30; ++u) candidates.push_back(u);

  // Zero threshold: any affected candidate forces the rebuild path.
  QueryOptions always_rebuild;
  always_rebuild.num_threads = 1;
  always_rebuild.incremental = true;
  always_rebuild.refresh_fallback_fraction = 0.0;
  SimilarityIndex eager(sketch, {}, always_rebuild);
  eager.Rebuild(candidates);
  ItemId next_item = 1 << 29;
  sketch.Update({0, next_item++, Action::kInsert});
  EXPECT_FALSE(eager.RefreshDirty());
  // Nothing affected is still a (trivial) incremental refresh.
  EXPECT_TRUE(eager.RefreshDirty());

  // Above-one threshold: never falls back, even at 100% dirty.
  QueryOptions never_rebuild = always_rebuild;
  never_rebuild.refresh_fallback_fraction = 1.5;
  SimilarityIndex sticky(sketch, {}, never_rebuild);
  sticky.Rebuild(candidates);
  for (UserId u = 0; u < 30; ++u) {
    sketch.Update({u, next_item++, Action::kInsert});
  }
  EXPECT_TRUE(sticky.RefreshDirty());
  SimilarityIndex rebuilt(sketch, {}, QueryOptions{});
  rebuilt.Rebuild(candidates);
  ExpectIndexesIdentical(sticky, rebuilt, "forced incremental at 100%");
}

TEST(RefreshDirtyTest, NoChangesIsANoOpSnapshot) {
  VosSketch sketch = PopulatedSketch(SmallConfig(), 40, 50, 9);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < 40; ++u) candidates.push_back(u);
  QueryOptions options;
  options.num_threads = 1;
  options.incremental = true;
  SimilarityIndex index(sketch, {}, options);
  index.Rebuild(candidates);
  const auto before = index.AllPairsAbove(0.1);
  index.RefreshDirty();  // nothing changed since Rebuild
  const auto after = index.AllPairsAbove(0.1);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].u, after[i].u);
    EXPECT_EQ(before[i].common, after[i].common);
  }
}

TEST(RefreshDirtyTest, CardinalityOnlyChangesReorderCorrectly) {
  // Insert+delete pairs that cancel in the array can still change n_u
  // (two items on the same virtual bit). Force the scenario: give one
  // candidate a big cardinality jump so the sorted window order changes,
  // and verify refresh tracks the re-sort exactly.
  VosSketch sketch = PopulatedSketch(SmallConfig(1 << 14), 30, 20, 13);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < 30; ++u) candidates.push_back(u);
  QueryOptions options;
  options.num_threads = 1;
  options.incremental = true;
  SimilarityIndex refreshed(sketch, {}, options);
  refreshed.Rebuild(candidates);
  SimilarityIndex rebuilt(sketch, {}, QueryOptions{});

  for (ItemId item = 0; item < 500; ++item) {
    sketch.Update({7, static_cast<ItemId>((1 << 27) + item),
                   Action::kInsert});
  }
  refreshed.RefreshDirty();
  rebuilt.Rebuild(candidates);
  ExpectIndexesIdentical(refreshed, rebuilt, "cardinality jump");
}

TEST(RefreshDirtyTest, RequiresIncrementalOptionAndPriorRebuild) {
  VosSketch sketch = PopulatedSketch(SmallConfig(), 10, 10, 17);
  QueryOptions options;
  options.incremental = true;
  SimilarityIndex index(sketch, {}, options);
  EXPECT_FALSE(index.CanRefresh());  // no Rebuild yet
  SimilarityIndex plain(sketch, {}, QueryOptions{});
  plain.Rebuild({0, 1, 2});
  EXPECT_FALSE(plain.CanRefresh());  // incremental off
}

// ------------------------------------------------------ VosDrift batching

TEST(VosDriftBatchTest, BatchMatchesScalarBitForBit) {
  const VosConfig config = SmallConfig(1 << 14);
  VosSketch sketch = PopulatedSketch(config, 50, 40, 23);
  const VosSketch before = sketch;
  Rng rng(29);
  for (int i = 0; i < 800; ++i) {
    sketch.Update({static_cast<UserId>(rng.NextBounded(50)),
                   static_cast<ItemId>((1 << 27) + i), Action::kInsert});
  }
  const VosDrift drift(before, sketch);
  std::vector<UserId> users;
  for (UserId u = 0; u < 50; ++u) users.push_back(u);
  for (const unsigned threads : {1u, 2u, 8u}) {
    const std::vector<double> drifts = drift.EstimateDriftBatch(users, threads);
    const std::vector<double> stabilities =
        drift.EstimateStabilityBatch(users, threads);
    ASSERT_EQ(drifts.size(), users.size());
    for (UserId u = 0; u < 50; ++u) {
      EXPECT_EQ(drifts[u], drift.EstimateDrift(u)) << "user " << u;
      EXPECT_EQ(stabilities[u], drift.EstimateStability(u)) << "user " << u;
    }
  }
}

}  // namespace
}  // namespace vos::core

// Unit tests for src/stream: element types, GraphStream validation and
// stats, feasibility filtering, the bipartite generator, the dynamic stream
// builder (all three deletion models), the dataset registry, and text I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "stream/bipartite_generator.h"
#include "stream/dataset.h"
#include "stream/dynamic_stream.h"
#include "stream/feasibility.h"
#include "stream/graph_stream.h"
#include "stream/stream_io.h"

namespace vos::stream {
namespace {

// ---------------------------------------------------------------- Element

TEST(ElementTest, FormattingAndEquality) {
  const Element e{3, 7, Action::kInsert};
  std::ostringstream os;
  os << e;
  EXPECT_EQ(os.str(), "(3, 7, +)");
  EXPECT_EQ(e, (Element{3, 7, Action::kInsert}));
  EXPECT_FALSE(e == (Element{3, 7, Action::kDelete}));
  EXPECT_EQ(ActionToChar(Action::kDelete), '-');
}

TEST(ElementTest, EdgeKeyIsInjective) {
  EXPECT_NE(EdgeKey(1, 2), EdgeKey(2, 1));
  EXPECT_EQ(EdgeKey(0xABCD, 0x1234) >> 32, 0xABCDu);
  EXPECT_EQ(EdgeKey(0xABCD, 0x1234) & 0xffffffff, 0x1234u);
}

// ------------------------------------------------------------ GraphStream

GraphStream MakeSmallStream() {
  GraphStream s("test", 10, 10);
  s.Append(1, 2, Action::kInsert);
  s.Append(1, 3, Action::kInsert);
  s.Append(2, 2, Action::kInsert);
  s.Append(1, 2, Action::kDelete);
  return s;
}

TEST(GraphStreamTest, StatsCountInsertionsDeletionsAndFinalEdges) {
  const GraphStream s = MakeSmallStream();
  const StreamStats stats = s.ComputeStats();
  EXPECT_EQ(stats.num_elements, 4u);
  EXPECT_EQ(stats.num_insertions, 3u);
  EXPECT_EQ(stats.num_deletions, 1u);
  EXPECT_EQ(stats.final_edges, 2u);
}

TEST(GraphStreamTest, ValidateAcceptsFeasibleStream) {
  EXPECT_TRUE(MakeSmallStream().Validate().ok());
}

TEST(GraphStreamTest, ValidateRejectsDuplicateInsertion) {
  GraphStream s("bad", 10, 10);
  s.Append(1, 2, Action::kInsert);
  s.Append(1, 2, Action::kInsert);
  EXPECT_EQ(s.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(GraphStreamTest, ValidateRejectsDeadDeletion) {
  GraphStream s("bad", 10, 10);
  s.Append(1, 2, Action::kDelete);
  EXPECT_EQ(s.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(GraphStreamTest, ValidateRejectsOutOfDomainIds) {
  GraphStream s("bad", 2, 2);
  s.Append(5, 0, Action::kInsert);
  EXPECT_EQ(s.Validate().code(), StatusCode::kOutOfRange);
  GraphStream s2("bad2", 2, 2);
  s2.Append(0, 5, Action::kInsert);
  EXPECT_EQ(s2.Validate().code(), StatusCode::kOutOfRange);
}

TEST(GraphStreamTest, ReinsertionAfterDeletionIsFeasible) {
  GraphStream s("ok", 4, 4);
  s.Append(1, 1, Action::kInsert);
  s.Append(1, 1, Action::kDelete);
  s.Append(1, 1, Action::kInsert);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.ComputeStats().final_edges, 1u);
}

// ------------------------------------------------------ FeasibilityFilter

TEST(FeasibilityFilterTest, TracksLiveEdges) {
  FeasibilityFilter filter;
  const Element ins{1, 2, Action::kInsert};
  const Element del{1, 2, Action::kDelete};
  EXPECT_TRUE(filter.IsFeasible(ins));
  EXPECT_FALSE(filter.IsFeasible(del));
  EXPECT_TRUE(filter.Accept(ins));
  EXPECT_EQ(filter.live_edges(), 1u);
  EXPECT_TRUE(filter.IsLive(1, 2));
  EXPECT_FALSE(filter.Accept(ins));  // duplicate insert rejected
  EXPECT_TRUE(filter.Accept(del));
  EXPECT_EQ(filter.live_edges(), 0u);
  EXPECT_FALSE(filter.Accept(del));  // dead delete rejected
}

// ------------------------------------------------- BipartiteGraphGenerator

TEST(BipartiteGeneratorTest, ProducesExactlyRequestedDistinctEdges) {
  BipartiteGraphConfig config;
  config.num_users = 100;
  config.num_items = 80;
  config.num_edges = 1500;
  config.seed = 3;
  const std::vector<Edge> edges = GenerateBipartiteEdges(config);
  EXPECT_EQ(edges.size(), 1500u);
  std::unordered_set<uint64_t> keys;
  for (const Edge& e : edges) {
    EXPECT_LT(e.user, config.num_users);
    EXPECT_LT(e.item, config.num_items);
    EXPECT_TRUE(keys.insert(EdgeKey(e.user, e.item)).second)
        << "duplicate edge";
  }
}

TEST(BipartiteGeneratorTest, DeterministicPerSeed) {
  BipartiteGraphConfig config;
  config.num_users = 50;
  config.num_items = 50;
  config.num_edges = 400;
  config.seed = 11;
  const auto a = GenerateBipartiteEdges(config);
  const auto b = GenerateBipartiteEdges(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  config.seed = 12;
  const auto c = GenerateBipartiteEdges(config);
  // Degree sequences are identical across seeds (degree-targeted
  // construction); the chosen item sets must differ measurably.
  std::unordered_set<uint64_t> keys_a;
  for (const Edge& e : a) keys_a.insert(EdgeKey(e.user, e.item));
  size_t shared = 0;
  for (const Edge& e : c) shared += keys_a.count(EdgeKey(e.user, e.item));
  EXPECT_LT(shared, a.size() * 9 / 10);
}

TEST(BipartiteGeneratorTest, ZipfSkewsDegrees) {
  BipartiteGraphConfig config;
  config.num_users = 2000;
  config.num_items = 2000;
  config.num_edges = 20000;
  config.user_zipf = 1.0;
  config.seed = 5;
  const auto edges = GenerateBipartiteEdges(config);
  std::unordered_map<UserId, int> degree;
  for (const Edge& e : edges) ++degree[e.user];
  // Rank-0 user should dominate the median user by a wide margin.
  EXPECT_GT(degree[0], 50);
  EXPECT_GT(degree[0], degree[1000] * 5);
}

// --------------------------------------------------------- DynamicStream

std::vector<Edge> TestEdges(size_t count) {
  BipartiteGraphConfig config;
  config.num_users = 300;
  config.num_items = 200;
  config.num_edges = count;
  config.seed = 17;
  return GenerateBipartiteEdges(config);
}

TEST(DynamicStreamTest, NoneModelEmitsOnlyInsertions) {
  DynamicStreamConfig config;
  config.model = DeletionModel::kNone;
  const GraphStream s =
      BuildDynamicStream(TestEdges(1000), 300, 200, config, "none");
  EXPECT_TRUE(s.Validate().ok());
  const StreamStats stats = s.ComputeStats();
  EXPECT_EQ(stats.num_insertions, 1000u);
  EXPECT_EQ(stats.num_deletions, 0u);
  EXPECT_EQ(stats.final_edges, 1000u);
}

TEST(DynamicStreamTest, MassiveModelIsFeasibleAndDeletesAboutHalf) {
  DynamicStreamConfig config;
  config.model = DeletionModel::kMassive;
  config.deletion_period = 400;
  config.deletion_fraction = 0.5;
  config.seed = 23;
  const GraphStream s =
      BuildDynamicStream(TestEdges(1000), 300, 200, config, "massive");
  EXPECT_TRUE(s.Validate().ok());
  const StreamStats stats = s.ComputeStats();
  EXPECT_EQ(stats.num_insertions, 1000u);
  // Two massive deletions fire (after 400 and 800 insertions). First kills
  // ~200 of 400 live, second ~300 of ~600 live: expect ~500 deletions total
  // with generous slack.
  EXPECT_GT(stats.num_deletions, 300u);
  EXPECT_LT(stats.num_deletions, 700u);
  EXPECT_EQ(stats.final_edges, stats.num_insertions - stats.num_deletions);
}

TEST(DynamicStreamTest, MassiveModelFractionOneDeletesEverything) {
  DynamicStreamConfig config;
  config.model = DeletionModel::kMassive;
  config.deletion_period = 500;
  config.deletion_fraction = 1.0;
  const GraphStream s =
      BuildDynamicStream(TestEdges(1000), 300, 200, config, "wipe");
  EXPECT_TRUE(s.Validate().ok());
  // Deletions fire at 500 and 1000 insertions, each wiping everything.
  EXPECT_EQ(s.ComputeStats().final_edges, 0u);
}

TEST(DynamicStreamTest, ProbabilisticModelIsFeasible) {
  DynamicStreamConfig config;
  config.model = DeletionModel::kProbabilistic;
  config.deletion_fraction = 0.3;
  config.seed = 29;
  const GraphStream s =
      BuildDynamicStream(TestEdges(2000), 300, 200, config, "prob");
  EXPECT_TRUE(s.Validate().ok());
  const StreamStats stats = s.ComputeStats();
  EXPECT_NEAR(static_cast<double>(stats.num_deletions),
              0.3 * stats.num_insertions, 0.05 * stats.num_insertions);
}

TEST(DynamicStreamTest, DeterministicPerSeed) {
  DynamicStreamConfig config;
  config.model = DeletionModel::kMassive;
  config.deletion_period = 300;
  config.seed = 31;
  const auto edges = TestEdges(900);
  const GraphStream a = BuildDynamicStream(edges, 300, 200, config);
  const GraphStream b = BuildDynamicStream(edges, 300, 200, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

/// All models × fractions stay feasible (property sweep).
class DynamicModelSweepTest
    : public ::testing::TestWithParam<std::tuple<DeletionModel, double>> {};

TEST_P(DynamicModelSweepTest, AlwaysFeasible) {
  DynamicStreamConfig config;
  config.model = std::get<0>(GetParam());
  config.deletion_fraction = std::get<1>(GetParam());
  config.deletion_period = 250;
  config.seed = 37;
  const GraphStream s =
      BuildDynamicStream(TestEdges(800), 300, 200, config, "sweep");
  EXPECT_TRUE(s.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndFractions, DynamicModelSweepTest,
    ::testing::Combine(::testing::Values(DeletionModel::kNone,
                                         DeletionModel::kMassive,
                                         DeletionModel::kProbabilistic),
                       ::testing::Values(0.0, 0.25, 0.5, 1.0)));

// ---------------------------------------------------------------- Dataset

TEST(DatasetTest, RegistryKnowsPaperDatasets) {
  for (const std::string& name : PaperDatasets()) {
    EXPECT_TRUE(GetDatasetSpec(name).ok()) << name;
  }
  EXPECT_EQ(GetDatasetSpec("nope").status().code(), StatusCode::kNotFound);
  EXPECT_GE(ListDatasets().size(), 6u);
}

TEST(DatasetTest, UnitDatasetGeneratesValidStream) {
  auto stream = GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE(stream->Validate().ok());
  EXPECT_EQ(stream->name(), "unit");
  const StreamStats stats = stream->ComputeStats();
  EXPECT_EQ(stats.num_insertions, 6000u);
  EXPECT_GT(stats.num_deletions, 0u);  // period 2500 < 6000 edges
}

TEST(DatasetTest, ToyDatasetDeterministic) {
  auto a = GenerateDatasetByName("toy");
  auto b = GenerateDatasetByName("toy");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(DatasetTest, ScaleSpecScalesAllDimensions) {
  auto spec = GetDatasetSpec("toy");
  ASSERT_TRUE(spec.ok());
  const DatasetSpec half = ScaleSpec(*spec, 0.5);
  EXPECT_EQ(half.graph.num_users, spec->graph.num_users / 2);
  EXPECT_EQ(half.graph.num_edges, spec->graph.num_edges / 2);
  EXPECT_EQ(half.dynamics.deletion_period,
            spec->dynamics.deletion_period / 2);
  EXPECT_NE(half.name, spec->name);
  const GraphStream s = GenerateDataset(half);
  EXPECT_TRUE(s.Validate().ok());
}

// --------------------------------------------------------------- StreamIO

TEST(StreamIoTest, RoundTripsExactly) {
  const std::string path = ::testing::TempDir() + "/vos_stream_io.txt";
  auto original = GenerateDatasetByName("unit");
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveStream(*original, path).ok());

  auto loaded = LoadStream(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name(), original->name());
  EXPECT_EQ(loaded->num_users(), original->num_users());
  EXPECT_EQ(loaded->num_items(), original->num_items());
  ASSERT_EQ(loaded->size(), original->size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i], (*original)[i]);
  }
  std::remove(path.c_str());
}

TEST(StreamIoTest, LoadRejectsMissingFile) {
  EXPECT_EQ(LoadStream("/nonexistent/stream.txt").status().code(),
            StatusCode::kIoError);
}

TEST(StreamIoTest, LoadRejectsBadHeader) {
  const std::string path = ::testing::TempDir() + "/vos_bad_header.txt";
  std::ofstream(path) << "not-a-stream 1 x 10 10\n";
  EXPECT_EQ(LoadStream(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StreamIoTest, LoadRejectsInfeasibleBody) {
  const std::string path = ::testing::TempDir() + "/vos_bad_body.txt";
  std::ofstream(path) << "vos-stream 1 x 10 10\n- 1 1\n";
  EXPECT_EQ(LoadStream(path).status().code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(StreamIoTest, LoadRejectsMalformedElement) {
  const std::string path = ::testing::TempDir() + "/vos_bad_elem.txt";
  std::ofstream(path) << "vos-stream 1 x 10 10\n* 1 1\n";
  EXPECT_EQ(LoadStream(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StreamIoTest, CommentsAndBlankLinesIgnored) {
  const std::string path = ::testing::TempDir() + "/vos_comments.txt";
  std::ofstream(path) << "# a comment\n\nvos-stream 1 x 10 10\n# body\n"
                      << "+ 1 2\n\n+ 2 3\n";
  auto loaded = LoadStream(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vos::stream

// Unit tests for src/core — the paper's contribution: OddSketch, VosSketch,
// VosEstimator (including the §IV moment formulas) and the SimilarityMethod
// adapters.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "core/odd_sketch.h"
#include "core/similarity_method.h"
#include "core/vos_estimator.h"
#include "core/vos_method.h"
#include "core/vos_sketch.h"
#include "stream/dataset.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::ItemId;

// ---------------------------------------------------------------- OddSketch

TEST(OddSketchTest, InsertThenDeleteCancelsExactly) {
  OddSketch sketch(64, 7);
  for (ItemId i = 0; i < 100; ++i) sketch.Toggle(i);
  EXPECT_GT(sketch.Ones(), 0u);
  for (ItemId i = 0; i < 100; ++i) sketch.Toggle(i);  // delete everything
  EXPECT_EQ(sketch.Ones(), 0u);
}

TEST(OddSketchTest, OrderIrrelevance) {
  OddSketch a(32, 3), b(32, 3);
  a.Toggle(1);
  a.Toggle(2);
  a.Toggle(3);
  b.Toggle(3);
  b.Toggle(1);
  b.Toggle(2);
  EXPECT_TRUE(a.bits() == b.bits());
}

TEST(OddSketchTest, BucketMatchesParityDefinition) {
  // O[j] must equal the parity of |{i in S : psi(i) = j}|.
  OddSketch sketch(16, 11);
  const std::vector<ItemId> items = {5, 9, 14, 21, 33, 47, 58};
  std::vector<int> counts(16, 0);
  for (ItemId i : items) {
    sketch.Toggle(i);
    ++counts[sketch.BucketOf(i)];
  }
  for (uint32_t j = 0; j < 16; ++j) {
    EXPECT_EQ(sketch.bits().Get(j), counts[j] % 2 == 1) << "bucket " << j;
  }
}

TEST(OddSketchTest, IdenticalSetsGiveZeroEstimate) {
  OddSketch a(128, 5), b(128, 5);
  for (ItemId i = 0; i < 50; ++i) {
    a.Toggle(i);
    b.Toggle(i);
  }
  EXPECT_DOUBLE_EQ(OddSketch::EstimateSymmetricDifference(a, b), 0.0);
}

TEST(OddSketchTest, EstimateTracksTrueSymmetricDifference) {
  // Average the estimator over independent seeds; it should land near the
  // true nΔ (within a few percent for nΔ ≪ k).
  constexpr uint32_t kBits = 512;
  constexpr int kTrueDelta = 60;
  constexpr int kTrials = 60;
  double sum = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    OddSketch a(kBits, 100 + trial), b(kBits, 100 + trial);
    for (ItemId i = 0; i < 200; ++i) {  // 200 shared items
      a.Toggle(i);
      b.Toggle(i);
    }
    for (ItemId i = 1000; i < 1000 + kTrueDelta / 2; ++i) a.Toggle(i);
    for (ItemId i = 2000; i < 2000 + kTrueDelta / 2; ++i) b.Toggle(i);
    sum += OddSketch::EstimateSymmetricDifference(a, b);
  }
  EXPECT_NEAR(sum / kTrials, kTrueDelta, 0.10 * kTrueDelta);
}

TEST(OddSketchTest, SaturationYieldsFiniteCap) {
  const double capped =
      OddSketch::EstimateSymmetricDifferenceFromAlpha(0.5, 64);
  EXPECT_TRUE(std::isfinite(capped));
  EXPECT_GT(capped, 64.0);  // far beyond the reliable range, but finite
  // Monotone below the cap.
  EXPECT_LT(OddSketch::EstimateSymmetricDifferenceFromAlpha(0.1, 64),
            OddSketch::EstimateSymmetricDifferenceFromAlpha(0.3, 64));
}

// ---------------------------------------------------------------- VosSketch

VosConfig SmallVosConfig(uint32_t k = 256, uint64_t m = 1 << 14,
                         uint64_t seed = 5) {
  VosConfig config;
  config.k = k;
  config.m = m;
  config.seed = seed;
  return config;
}

TEST(VosSketchTest, InsertDeleteCancelsToEmptyArray) {
  VosSketch sketch(SmallVosConfig(), 50);
  Rng rng(3);
  std::vector<Element> inserted;
  for (int i = 0; i < 500; ++i) {
    const Element e{static_cast<stream::UserId>(rng.NextBounded(50)),
                    static_cast<ItemId>(rng.NextBounded(1000)),
                    Action::kInsert};
    // Skip duplicates to keep the stream feasible.
    bool duplicate = false;
    for (const Element& prev : inserted) {
      if (prev.user == e.user && prev.item == e.item) duplicate = true;
    }
    if (duplicate) continue;
    inserted.push_back(e);
    sketch.Update(e);
  }
  EXPECT_GT(sketch.array().ones(), 0u);
  for (const Element& e : inserted) {
    sketch.Update({e.user, e.item, Action::kDelete});
  }
  EXPECT_EQ(sketch.array().ones(), 0u);
  EXPECT_DOUBLE_EQ(sketch.beta(), 0.0);
  for (stream::UserId u = 0; u < 50; ++u) {
    EXPECT_EQ(sketch.Cardinality(u), 0u);
  }
}

TEST(VosSketchTest, BetaIsExactFractionOfOnes) {
  VosSketch sketch(SmallVosConfig(128, 1024), 20);
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    sketch.Update({static_cast<stream::UserId>(rng.NextBounded(20)),
                   static_cast<ItemId>(i), Action::kInsert});
    size_t brute = 0;
    for (size_t pos = 0; pos < sketch.array().size(); ++pos) {
      brute += sketch.array().Get(pos);
    }
    ASSERT_DOUBLE_EQ(sketch.beta(),
                     static_cast<double>(brute) / sketch.array().size());
  }
}

TEST(VosSketchTest, PaperBetaUpdateRuleEquivalence) {
  // The paper's running update β ← β + 2·((old-bit ⊕ 1) − ½)/m (interpreted
  // on the pre-flip value, DESIGN.md §2) must match the exact counter.
  VosSketch sketch(SmallVosConfig(64, 512), 10);
  double paper_beta = 0.0;
  const double m = 512.0;
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const auto user = static_cast<stream::UserId>(rng.NextBounded(10));
    const auto item = static_cast<ItemId>(i);
    const uint64_t cell = sketch.CellOf(user, sketch.BucketOf(item));
    const bool old_bit = sketch.array().Get(cell);
    paper_beta += 2.0 * ((old_bit ? 0.0 : 1.0) - 0.5) / m;
    sketch.Update({user, item, Action::kInsert});
    ASSERT_NEAR(sketch.beta(), paper_beta, 1e-9);
  }
}

TEST(VosSketchTest, ExtractMatchesGetUserBit) {
  VosSketch sketch(SmallVosConfig(), 30);
  for (ItemId i = 0; i < 200; ++i) {
    sketch.Update({static_cast<stream::UserId>(i % 30), i, Action::kInsert});
  }
  for (stream::UserId u : {0u, 7u, 29u}) {
    const BitVector extracted = sketch.ExtractUserSketch(u);
    ASSERT_EQ(extracted.size(), sketch.config().k);
    for (uint32_t j = 0; j < sketch.config().k; ++j) {
      ASSERT_EQ(extracted.Get(j), sketch.GetUserBit(u, j));
    }
  }
}

TEST(VosSketchTest, UpdateIsActionBlindOnArray) {
  // The array flip is identical for insert and delete of the same edge.
  VosSketch a(SmallVosConfig(), 5), b(SmallVosConfig(), 5);
  a.Update({1, 42, Action::kInsert});
  b.Update({1, 42, Action::kInsert});
  b.Update({1, 42, Action::kDelete});
  b.Update({1, 42, Action::kInsert});
  EXPECT_TRUE(a.array() == b.array());
  EXPECT_EQ(a.Cardinality(1), b.Cardinality(1));
}

TEST(VosSketchTest, CardinalityFollowsStream) {
  VosSketch sketch(SmallVosConfig(), 3);
  sketch.Update({2, 1, Action::kInsert});
  sketch.Update({2, 2, Action::kInsert});
  sketch.Update({2, 1, Action::kDelete});
  EXPECT_EQ(sketch.Cardinality(2), 1u);
  EXPECT_EQ(sketch.Cardinality(0), 0u);
}

TEST(VosSketchTest, MemoryBitsIsArrayOnly) {
  VosSketch sketch(SmallVosConfig(256, 4096), 1000);
  EXPECT_EQ(sketch.MemoryBits(), 4096u);
}

// -------------------------------------------------------------- VosEstimator

TEST(VosEstimatorTest, ZeroAlphaZeroBetaGivesFullOverlap) {
  VosEstimator est(512);
  // alpha = 0 → nΔ = 0 → s = (n_u + n_v)/2 = min when equal.
  EXPECT_NEAR(est.EstimateCommonItems(100, 100, 0.0, 0.0), 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.EstimateSymmetricDifference(0.0, 0.0), 0.0);
}

TEST(VosEstimatorTest, RecoverySweepAcrossDeltaAndBeta) {
  // Feed the estimator its own expected alpha: it must return nΔ exactly
  // (the estimator inverts E[alpha]).
  for (uint32_t k : {256u, 1024u, 4096u}) {
    VosEstimator est(k);
    for (double beta : {0.0, 0.05, 0.2}) {
      for (double n_delta : {0.0, 10.0, 100.0, 500.0}) {
        if (n_delta > k / 4) continue;  // stay in the reliable regime
        const double alpha = est.ExpectedAlpha(n_delta, beta);
        // ExpectedAlpha uses exp(-2nΔ/k); the estimator inverts it exactly.
        EXPECT_NEAR(est.EstimateSymmetricDifference(alpha, beta), n_delta,
                    1e-6 * std::max(1.0, n_delta))
            << "k=" << k << " beta=" << beta << " nΔ=" << n_delta;
      }
    }
  }
}

TEST(VosEstimatorTest, ClampingKeepsEstimatesFeasible) {
  VosEstimator clamped(64);
  // Saturated alpha would give a huge negative s without clamping.
  const double s = clamped.EstimateCommonItems(10, 12, 0.49, 0.0);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 10.0);

  VosEstimatorOptions raw_options;
  raw_options.clamp_to_feasible = false;
  VosEstimator raw(64, raw_options);
  EXPECT_LT(raw.EstimateCommonItems(10, 12, 0.49, 0.0), 0.0);
}

TEST(VosEstimatorTest, JaccardEdgeCases) {
  VosEstimator est(64);
  EXPECT_DOUBLE_EQ(est.JaccardFromCommon(0, 0, 0), 0.0);   // both empty
  EXPECT_DOUBLE_EQ(est.JaccardFromCommon(5, 5, 5), 1.0);   // identical
  EXPECT_DOUBLE_EQ(est.JaccardFromCommon(2, 4, 4), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(est.JaccardFromCommon(8, 4, 4), 1.0);   // clamped
}

TEST(VosEstimatorTest, EstimateCombinesBoth) {
  VosEstimator est(1024);
  const double alpha = est.ExpectedAlpha(50, 0.1);
  const PairEstimate pe = est.Estimate(100, 150, alpha, 0.1);
  // nΔ = 50 → s = (100+150-50)/2 = 100, J = 100/150.
  EXPECT_NEAR(pe.common, 100.0, 1e-6);
  EXPECT_NEAR(pe.jaccard, 100.0 / 150.0, 1e-6);
}

TEST(VosEstimatorTest, ExpectedAlphaMatchesSimulation) {
  // Simulate the §IV noise model directly: true odd-sketch XOR bits with
  // P(1) = (1-(1-2/k)^{nΔ})/2, each reconstructed bit flipped w.p. beta.
  constexpr uint32_t k = 2048;
  constexpr double beta = 0.15;
  constexpr int n_delta = 120;
  VosEstimator est(k);
  Rng rng(77);
  double total_alpha = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    int ones = 0;
    for (uint32_t j = 0; j < k; ++j) {
      const double p_true = 0.5 * (1 - std::pow(1 - 2.0 / k, n_delta));
      bool bit = rng.NextBernoulli(p_true);
      if (rng.NextBernoulli(beta)) bit = !bit;  // contamination of Ô_u
      if (rng.NextBernoulli(beta)) bit = !bit;  // contamination of Ô_v
      ones += bit;
    }
    total_alpha += static_cast<double>(ones) / k;
  }
  EXPECT_NEAR(total_alpha / kTrials, est.ExpectedAlpha(n_delta, beta), 0.002);
}

TEST(VosEstimatorTest, MomentFormulasAreFiniteAndOrdered) {
  VosEstimator est(6400);
  for (double beta : {0.01, 0.1, 0.3}) {
    for (double n_delta : {10.0, 100.0, 1000.0}) {
      const double mean = est.ExpectedCommonEstimate(500, n_delta, beta);
      const double var = est.VarianceCommonEstimate(n_delta, beta);
      EXPECT_TRUE(std::isfinite(mean));
      EXPECT_TRUE(std::isfinite(var));
      EXPECT_GT(var, 0.0) << "beta=" << beta << " nΔ=" << n_delta;
    }
  }
  // Variance grows with contamination.
  EXPECT_LT(est.VarianceCommonEstimate(100, 0.01),
            est.VarianceCommonEstimate(100, 0.3));
}

// ------------------------------------------------------------- VosMethod

TEST(VosMethodTest, PrepareQueryCacheMatchesDirectEstimates) {
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  VosConfig config = SmallVosConfig(512, 1 << 15, 21);
  VosMethod cached(config, stream->num_users());
  VosMethod direct(config, stream->num_users());
  for (const Element& e : stream->elements()) {
    cached.Update(e);
    direct.Update(e);
  }
  std::vector<stream::UserId> users = {0, 1, 2, 3, 4, 5};
  cached.PrepareQuery(users);
  for (stream::UserId u : users) {
    for (stream::UserId v : users) {
      if (u >= v) continue;
      const PairEstimate a = cached.EstimatePair(u, v);
      const PairEstimate b = direct.EstimatePair(u, v);
      EXPECT_DOUBLE_EQ(a.common, b.common);
      EXPECT_DOUBLE_EQ(a.jaccard, b.jaccard);
    }
  }
  cached.InvalidateQueryCache();
  const PairEstimate after = cached.EstimatePair(0, 1);
  EXPECT_DOUBLE_EQ(after.common, direct.EstimatePair(0, 1).common);
}

TEST(VosMethodTest, NameAndMemory) {
  VosMethod method(SmallVosConfig(64, 2048), 10);
  EXPECT_EQ(method.Name(), "VOS");
  EXPECT_EQ(method.MemoryBits(), 2048u);
}

TEST(VosMethodTest, AccurateOnDisjointAndIdenticalSets) {
  // Large-ish sketch, two users with known overlap; single instance, so we
  // tolerate sketch noise via wide margins.
  VosConfig config = SmallVosConfig(4096, 1 << 18, 31);
  VosMethod method(config, 3);
  // Users 0 and 1 identical (60 items), user 2 disjoint (60 items).
  for (ItemId i = 0; i < 60; ++i) {
    method.Update({0, i, Action::kInsert});
    method.Update({1, i, Action::kInsert});
    method.Update({2, i + 10000, Action::kInsert});
  }
  const PairEstimate same = method.EstimatePair(0, 1);
  EXPECT_NEAR(same.common, 60.0, 6.0);
  EXPECT_GT(same.jaccard, 0.85);
  const PairEstimate diff = method.EstimatePair(0, 2);
  EXPECT_NEAR(diff.common, 0.0, 6.0);
  EXPECT_LT(diff.jaccard, 0.12);
}

// ------------------------------------------------ DedicatedOddSketchMethod

TEST(DedicatedOddSketchMethodTest, BasicEstimation) {
  DedicatedOddSketchMethod method(2048, 2, 17);
  for (ItemId i = 0; i < 100; ++i) {
    method.Update({0, i, Action::kInsert});
    method.Update({1, i < 80 ? i : i + 5000, Action::kInsert});
  }
  // 80 common, nΔ = 40.
  const PairEstimate est = method.EstimatePair(0, 1);
  EXPECT_NEAR(est.common, 80.0, 10.0);
  EXPECT_EQ(method.Name(), "OddSketch");
  EXPECT_EQ(method.MemoryBits(), 2u * 2048u);
}

TEST(DedicatedOddSketchMethodTest, DeletionExactness) {
  DedicatedOddSketchMethod method(512, 2, 19);
  for (ItemId i = 0; i < 50; ++i) {
    method.Update({0, i, Action::kInsert});
    method.Update({1, i, Action::kInsert});
  }
  for (ItemId i = 25; i < 50; ++i) method.Update({0, i, Action::kDelete});
  for (ItemId i = 25; i < 50; ++i) method.Update({1, i, Action::kDelete});
  // Both sets shrank to the same 25 items: estimate must be ~25, J ~1.
  const PairEstimate est = method.EstimatePair(0, 1);
  EXPECT_NEAR(est.common, 25.0, 3.0);
  EXPECT_GT(est.jaccard, 0.9);
}

}  // namespace
}  // namespace vos::core

// Contract tests: API misuse must fail loudly (VOS_CHECK aborts), and the
// baseline estimator conversion helpers must be numerically exact. Death
// tests pin the crash-on-misuse behaviour so a refactor cannot silently
// turn a programming error into a wrong answer.

#include <gtest/gtest.h>

#include "baselines/estimate_util.h"
#include "common/flags.h"
#include "core/odd_sketch.h"
#include "core/vos_sketch.h"
#include "harness/memory_budget.h"
#include "stream/dataset.h"

namespace vos {
namespace {

using baseline::BaselineOptions;
using baseline::FromCommon;
using baseline::FromJaccard;

// ------------------------------------------------------------ estimate_util

TEST(EstimateUtilTest, FromJaccardInvertsTheIdentity) {
  // s = J(n_u+n_v)/(J+1) — §II's identity. J = 1/3, n = 200+200 → s = 100.
  BaselineOptions options;
  const auto est = FromJaccard(1.0 / 3.0, 200, 200, options);
  EXPECT_NEAR(est.common, 100.0, 1e-9);
  EXPECT_NEAR(est.jaccard, 1.0 / 3.0, 1e-12);
}

TEST(EstimateUtilTest, FromCommonInvertsTheIdentity) {
  BaselineOptions options;
  const auto est = FromCommon(100, 200, 200, options);
  EXPECT_NEAR(est.jaccard, 100.0 / 300.0, 1e-12);
}

TEST(EstimateUtilTest, RoundTripIsConsistent) {
  BaselineOptions options;
  // With n_u = 150, n_v = 250, feasible J is at most min/max = 0.6 (J = 1
  // needs equal sets); beyond that the clamp correctly interferes.
  for (double j : {0.0, 0.1, 0.3, 0.6}) {
    const auto a = FromJaccard(j, 150, 250, options);
    const auto b = FromCommon(a.common, 150, 250, options);
    EXPECT_NEAR(b.jaccard, j, 1e-9) << "J=" << j;
  }
  // Equal cardinalities make the whole [0, 1] range feasible.
  for (double j : {0.9, 1.0}) {
    const auto a = FromJaccard(j, 200, 200, options);
    const auto b = FromCommon(a.common, 200, 200, options);
    EXPECT_NEAR(b.jaccard, j, 1e-9) << "J=" << j;
  }
}

TEST(EstimateUtilTest, ClampingBehaviour) {
  BaselineOptions clamped;
  // Overestimated s beyond min(n_u, n_v) clamps.
  EXPECT_DOUBLE_EQ(FromCommon(500, 100, 300, clamped).common, 100.0);
  EXPECT_DOUBLE_EQ(FromCommon(500, 100, 300, clamped).jaccard, 1.0);
  BaselineOptions raw;
  raw.clamp_to_feasible = false;
  EXPECT_DOUBLE_EQ(FromCommon(500, 100, 300, raw).common, 500.0);
  // Degenerate denominators.
  EXPECT_DOUBLE_EQ(FromCommon(0, 0, 0, clamped).jaccard, 0.0);
  EXPECT_DOUBLE_EQ(FromCommon(10, 5, 5, clamped).jaccard, 1.0);
}

// ------------------------------------------------------------- death tests

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, OddSketchSizeMismatchAborts) {
  core::OddSketch a(64, 1), b(128, 1);
  EXPECT_DEATH(core::OddSketch::EstimateSymmetricDifference(a, b),
               "sketch size mismatch");
}

TEST(ContractDeathTest, OddSketchSeedMismatchAborts) {
  core::OddSketch a(64, 1), b(64, 2);
  EXPECT_DEATH(core::OddSketch::EstimateSymmetricDifference(a, b),
               "different");
}

TEST(ContractDeathTest, IncompatibleMergeAborts) {
  core::VosConfig small;
  small.k = 64;
  small.m = 1 << 10;
  core::VosConfig big = small;
  big.m = 1 << 12;
  core::VosSketch a(small, 4);
  core::VosSketch b(big, 4);
  EXPECT_DEATH(a.MergeFrom(b), "incompatible");
}

TEST(ContractDeathTest, ZeroSizedSketchAborts) {
  core::VosConfig config;
  config.k = 0;
  EXPECT_DEATH(core::VosSketch(config, 1), "at least one bit");
}

TEST(ContractDeathTest, MalformedFlagValueAborts) {
  const char* argv[] = {"prog", "--k=twelve"};
  auto flags = Flags::Parse(2, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_DEATH(flags->GetInt("k", 0), "not an integer");
}

TEST(ContractDeathTest, BadBudgetParametersAbort) {
  EXPECT_DEATH(harness::MemoryBudget(0, 100), "");
  harness::MemoryBudget budget(10, 100);
  EXPECT_DEATH(budget.VosVirtualK(0.0), "");
  EXPECT_DEATH(budget.BbitK(0), "");
}

TEST(ContractDeathTest, NegativeScaleAborts) {
  auto spec = stream::GetDatasetSpec("unit");
  ASSERT_TRUE(spec.ok());
  EXPECT_DEATH(stream::ScaleSpec(*spec, -1.0), "positive");
}

}  // namespace
}  // namespace vos

// Unit tests for the shared pair-scan building blocks (core/scan_common.h):
// the RunIndexed worker-pool helper — including the threads == 0 clamp
// that used to underflow the unsigned pool reservation — and the result
// total orders both scan engines sort to.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/scan_common.h"
#include "core/similarity_index.h"

namespace vos::core::scan {
namespace {

/// Every index in [0, count) visited exactly once, for a given thread
/// request.
void ExpectFullSingleCoverage(unsigned threads, size_t count) {
  std::vector<std::atomic<uint32_t>> visits(count);
  for (auto& v : visits) v.store(0);
  RunIndexed(threads, count, [&](size_t i) {
    ASSERT_LT(i, count);
    visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(visits[i].load(), 1u)
        << "threads=" << threads << " count=" << count << " index=" << i;
  }
}

TEST(RunIndexedTest, ZeroThreadsClampsToOneInsteadOfUnderflowing) {
  // threads is unsigned: before the clamp, 0 made pool.reserve(threads-1)
  // request ~4e9 slots (bad_alloc / OOM) and the spawn loop degenerate.
  // A zero request must behave exactly like a single-threaded run.
  ExpectFullSingleCoverage(/*threads=*/0, /*count=*/257);
  ExpectFullSingleCoverage(/*threads=*/0, /*count=*/0);
}

TEST(RunIndexedTest, CoversAllIndicesForEveryThreadCount) {
  for (unsigned threads : {1u, 2u, 5u, 8u}) {
    ExpectFullSingleCoverage(threads, 1000);
    ExpectFullSingleCoverage(threads, 1);
    ExpectFullSingleCoverage(threads, 0);
  }
}

TEST(RunIndexedTest, MoreThreadsThanWorkStillCoversOnce) {
  ExpectFullSingleCoverage(/*threads=*/16, /*count=*/3);
}

TEST(ScanOrderTest, EntryAndPairOrdersAreStrictTotalOrders) {
  const SimilarityIndex::Entry a{1, 0.0, 0.9};
  const SimilarityIndex::Entry b{2, 0.0, 0.9};
  const SimilarityIndex::Entry c{0, 0.0, 0.5};
  EXPECT_TRUE(EntryBefore(a, b));   // tie on Ĵ → user ascending
  EXPECT_FALSE(EntryBefore(b, a));
  EXPECT_TRUE(EntryBefore(a, c));   // Ĵ descending dominates
  EXPECT_FALSE(EntryBefore(a, a));  // irreflexive

  const SimilarityIndex::Pair p{1, 2, 0.0, 0.8};
  const SimilarityIndex::Pair q{1, 3, 0.0, 0.8};
  const SimilarityIndex::Pair r{0, 9, 0.0, 0.9};
  EXPECT_TRUE(PairBefore(p, q));   // tie on Ĵ → (u, v) ascending
  EXPECT_TRUE(PairBefore(r, p));   // Ĵ descending dominates
  EXPECT_FALSE(PairBefore(p, p));  // irreflexive
}

}  // namespace
}  // namespace vos::core::scan
